"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures.  By
default the flow runs at a reduced scale so ``pytest benchmarks/
--benchmark-only`` completes in well under a minute; set ``REPRO_FULL=1``
to run the paper-scale configuration (100x100 WBGA, 200-sample MC on the
full front, 500-sample verifications -- a few minutes).

Each benchmark *prints* the reproduced rows/series and also writes them to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture.
"""

import os
import sys
from pathlib import Path

import pytest

from repro.flow import (FilterFlowConfig, FlowConfig, paper_scale_config,
                        run_filter_flow, run_model_build_flow)

# The statistical ground-truth helpers (tests/statcheck.py) are shared
# with the test suite; pytest puts each rootdir on sys.path separately,
# so the benchmarks add the tests directory explicitly.
TESTS_DIR = str(Path(__file__).parent.parent / "tests")
if TESTS_DIR not in sys.path:
    sys.path.insert(0, TESTS_DIR)

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_FULL", "") == "1"


def flow_config() -> FlowConfig:
    """The benchmark flow configuration (reduced unless REPRO_FULL=1)."""
    if FULL_SCALE:
        return paper_scale_config()
    # Benchmark-default: bigger than the test-suite reduced config so the
    # front is dense enough for the paper's interpolation strategy, still
    # seconds-scale.
    return FlowConfig(generations=30, population=40, mc_samples=60,
                      max_pareto_points=60, seed=2008)


@pytest.fixture(scope="session")
def flow_result():
    """A completed model-building flow shared by all benchmarks."""
    return run_model_build_flow(flow_config())


@pytest.fixture(scope="session")
def filter_result(flow_result):
    """A completed filter application flow."""
    samples = 500 if FULL_SCALE else 150
    return run_filter_flow(flow_result.model,
                           FilterFlowConfig(verification_samples=samples))


@pytest.fixture(scope="session")
def emit():
    """Writer for benchmark artefacts: print + persist under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
