"""Ablation: yield versus guard-band width (the k-sigma choice).

DESIGN.md fixes the paper's variation percentage as a 3-sigma relative
spread because its guard-banded designs verify at "100 %" yield.  This
ablation sweeps the guard-band width k in {0, 1, 3} sigma on one spec and
measures the resulting Monte-Carlo yield: k=0 (designing at the nominal
spec) loses ~half the dice, k=1 most of a tail, k=3 essentially none --
the quantitative justification for the 3-sigma reading of the paper.

Benchmarks the yield estimation of a 200-die population.
"""

import numpy as np

from repro.designs import OTAParameters, evaluate_ota
from repro.mc import MCConfig, monte_carlo
from repro.measure import Spec, SpecSet
from repro.process import C35
from repro.yieldmodel import estimate_yield


def test_yield_vs_guard_band(flow_result, emit, benchmark):
    model = flow_result.model
    variation = flow_result.variation["gain_db_delta_pct"]
    objectives = flow_result.pareto_objectives
    k_model = flow_result.config.k_sigma

    # Work at a mid-front point: its nominal gain is the k=0 spec.
    index = int(0.5 * (objectives.shape[0] - 1))
    params = OTAParameters.from_array(flow_result.pareto_parameters[index])
    nominal_gain = float(objectives[index, 0])
    sigma_pct = float(variation[index]) / k_model  # 1-sigma in percent

    def evaluator(sample):
        tiled = OTAParameters.from_array(
            np.broadcast_to(params.to_array(), (sample.size, 8)))
        return evaluate_ota(tiled, variations=sample)

    population = monte_carlo(evaluator, C35, MCConfig(n_samples=200, seed=5))

    rows = []
    yields = {}
    for k in (0.0, 1.0, 3.0):
        # Guard-banding by k sigma means the *spec* this design can
        # guarantee sits k sigma below its nominal performance.
        spec_value = nominal_gain * (1.0 - k * sigma_pct / 100.0)
        specs = SpecSet([Spec("gain_db", "ge", spec_value, "dB")])
        estimate = estimate_yield(population, specs)
        yields[k] = estimate.fraction
        rows.append((k, spec_value, estimate.percent))

    estimate_specs = SpecSet([Spec("gain_db", "ge", nominal_gain, "dB")])
    benchmark(estimate_yield, population, estimate_specs)

    lines = [f"design nominal gain: {nominal_gain:.3f} dB, "
             f"1-sigma = {sigma_pct:.3f}%",
             f"{'k (sigma)':>9} {'spec (dB)':>10} {'yield (%)':>10}"]
    for k, spec_value, pct in rows:
        lines.append(f"{k:>9.0f} {spec_value:>10.3f} {pct:>10.1f}")
    emit("ablation_guardband", "\n".join(lines))

    # k=0: the spec sits at the nominal -> ~50% yield.
    assert 0.15 <= yields[0.0] <= 0.85
    # Yield grows monotonically with the guard band.
    assert yields[0.0] < yields[1.0] <= yields[3.0]
    # k=3 delivers the paper's "100%" within MC resolution.
    assert yields[3.0] >= 0.98
