"""Ablation: WBGA vs NSGA-II on the two stages of the flow.

Two findings this reproduction documents (DESIGN.md / filter_flow):

* On the OTA stage (raw gain/PM objectives) the paper's WBGA works well:
  its archive front covers the same trade-off as NSGA-II's.
* On the filter stage (spec-margin objectives) the WBGA *degenerates*:
  because the weights evolve inside the chromosome, an individual that
  maximises one margin while carrying the matching one-sided weight
  vector earns a perfect weighted fitness, so the population splits into
  two specialist clusters and rarely finds the feasible knee where both
  margins are positive.  NSGA-II's crowded non-dominated selection finds
  the knee on every seed.  This is why the filter flow uses NSGA-II.

Benchmarks one NSGA-II run on the filter problem.
"""

import numpy as np

from repro.designs.problems import BehavioralFilterProblem
from repro.mc.sampler import stream
from repro.moo import GAConfig, run_nsga2, run_wbga


def _best_worst_margin(result) -> float:
    return float(np.min(result.all_objectives, axis=1).max())


def _feasible_count(result) -> int:
    return int(np.sum(np.min(result.all_objectives, axis=1) > 0))


def test_wbga_vs_nsga2_on_filter_problem(emit, benchmark):
    config = GAConfig(population_size=24, generations=25, seed=2008)
    seeds = (2008, 7, 42)

    wbga_margins, wbga_feasible = [], []
    nsga_margins, nsga_feasible = [], []
    for seed in seeds:
        wbga = run_wbga(
            BehavioralFilterProblem(ota_gain_db=50.5, ota_ro=1.1e6),
            config, rng=stream(seed, "ablation-wbga"))
        wbga_margins.append(_best_worst_margin(wbga))
        wbga_feasible.append(_feasible_count(wbga))

        nsga = run_nsga2(
            BehavioralFilterProblem(ota_gain_db=50.5, ota_ro=1.1e6),
            config, rng=stream(seed, "ablation-nsga2"))
        nsga_margins.append(_best_worst_margin(nsga))
        nsga_feasible.append(_feasible_count(nsga))

    benchmark.pedantic(
        run_nsga2,
        args=(BehavioralFilterProblem(ota_gain_db=50.5, ota_ro=1.1e6),
              config),
        kwargs={"rng": stream(2008, "ablation-nsga2-bench")},
        iterations=1, rounds=1)

    lines = [
        f"{'optimiser':<10} {'worst-margin per seed':>26} "
        f"{'feasible evals per seed':>26}",
        f"{'WBGA':<10} "
        f"{'  '.join(f'{m:6.3f}' for m in wbga_margins):>26} "
        f"{'  '.join(f'{c:5d}' for c in wbga_feasible):>26}",
        f"{'NSGA-II':<10} "
        f"{'  '.join(f'{m:6.3f}' for m in nsga_margins):>26} "
        f"{'  '.join(f'{c:5d}' for c in nsga_feasible):>26}",
        "",
        "positive worst-margin = satisfies the full filter mask;",
        "NSGA-II reaches the feasible knee on every seed, while the",
        "WBGA's specialist takeover makes it unreliable here (see the",
        "filter_flow module docstring)",
    ]
    emit("ablation_optimizer_filter", "\n".join(lines))

    # NSGA-II reliably reaches the feasible knee on every seed...
    assert min(nsga_margins) > 0.1
    # ...and dominates the WBGA in aggregate: at least as good a knee on
    # median, and far more of the search effort lands in the feasible
    # region (the reliability the flow needs).
    assert float(np.median(nsga_margins)) >= \
        float(np.median(wbga_margins)) - 0.02
    assert sum(nsga_feasible) > 2 * sum(wbga_feasible)


def test_wbga_adequate_on_ota_problem(flow_result, emit, benchmark):
    """On the OTA's raw objectives the paper's WBGA front is healthy:
    wide coverage and a genuine trade-off (validating the paper's choice
    for the model-building stage)."""
    front = flow_result.pareto_objectives
    # Benchmark the front extraction over the full WBGA archive.
    from repro.moo.pareto import non_dominated_mask
    benchmark(non_dominated_mask,
              flow_result.wbga.problem.oriented(
                  flow_result.wbga.all_objectives))
    gain_span = front[:, 0].max() - front[:, 0].min()
    pm_span = front[:, 1].max() - front[:, 1].min()

    lines = [
        f"WBGA OTA front: {front.shape[0]} modelled points",
        f"gain span {gain_span:.1f} dB, pm span {pm_span:.1f} deg",
    ]
    emit("ablation_optimizer_ota", "\n".join(lines))

    assert gain_span > 5.0
    assert pm_span > 3.0
