"""Ablation: which statistical component drives each variation.

The paper's Table 2 rests on "process variation and mismatch models".
This ablation decomposes our C35 model: local (Pelgrom) mismatch
dominates the gain variation (it unbalances the mirrors), while global
capacitor spread dominates the phase-margin variation (it moves the
unity-gain frequency against the fixed mirror poles) -- the physical
mechanisms DESIGN.md calls out.  Benchmarks one 100-die MC slice.
"""

import numpy as np

from repro.designs import OTAParameters, evaluate_ota
from repro.mc import MCConfig, monte_carlo
from repro.process import C35


POINT = OTAParameters(w1=40e-6, l1=3e-6, w2=40e-6, l2=3e-6,
                      w3=30e-6, l3=1e-6, w4=40e-6, l4=3e-6)


def _evaluator(sample):
    tiled = OTAParameters.from_array(
        np.broadcast_to(POINT.to_array(), (sample.size, 8)))
    return evaluate_ota(tiled, variations=sample)


def _spread(config):
    population = monte_carlo(_evaluator, C35, config)
    gain = population["gain_db"]
    pm = population["pm_deg"]
    return (3 * gain.std(ddof=1) / gain.mean() * 100,
            3 * pm.std(ddof=1) / pm.mean() * 100)


def test_variation_decomposition(emit, benchmark):
    benchmark(monte_carlo, _evaluator, C35, MCConfig(n_samples=100, seed=1))

    n = 300
    both = _spread(MCConfig(n_samples=n, seed=11))
    mismatch_only = _spread(MCConfig(n_samples=n, seed=11,
                                     include_global=False))
    global_only = _spread(MCConfig(n_samples=n, seed=11,
                                   include_mismatch=False))

    lines = [
        f"{'component':<16} {'dGain (3s%)':>12} {'dPM (3s%)':>11}",
        f"{'mismatch only':<16} {mismatch_only[0]:>12.3f} "
        f"{mismatch_only[1]:>11.3f}",
        f"{'global only':<16} {global_only[0]:>12.3f} "
        f"{global_only[1]:>11.3f}",
        f"{'both':<16} {both[0]:>12.3f} {both[1]:>11.3f}",
        "",
        "paper Table 2 reference at ~50 dB: dGain ~0.5%, dPM ~1.5%",
    ]
    emit("ablation_variation_sources", "\n".join(lines))

    # Mechanism checks: mismatch rules gain, global (caps) rules PM.
    assert mismatch_only[0] > global_only[0] * 0.8
    assert global_only[1] > mismatch_only[1]
    # Components combine roughly in quadrature.
    combined = np.hypot(mismatch_only[0], global_only[0])
    assert both[0] == __import__("pytest").approx(combined, rel=0.5)
