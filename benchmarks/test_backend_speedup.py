"""E-X1: execution-backend scaling of ``monte_carlo_points``.

Times the same chunked Monte-Carlo sweep on the serial and process
backends, verifies the results are bit-identical (the backend determinism
contract), and reports the wall-clock speedup.  The speedup assertion
only applies on multi-core hosts; single-core CI still checks
equivalence and emits the measurement.
"""

import os
import time

import numpy as np
import pytest

from repro.designs import OTAParameters, evaluate_ota
from repro.mc import MCConfig, monte_carlo_points
from repro.process import C35

from conftest import FULL_SCALE

WORKERS = 2
POINTS = 32 if FULL_SCALE else 8
SAMPLES = 50 if FULL_SCALE else 25
CHUNK_LANES = 100  # keeps every run multi-chunk (see n_chunks below)


def _sweep(backend_spec):
    points = OTAParameters.from_normalized(
        np.linspace(0.15, 0.85, POINTS)[:, None]
        * np.ones((POINTS, 8))).to_array()

    def evaluator(point_indices, repeats, die_sample):
        tiled = OTAParameters.from_array(
            np.repeat(points[point_indices], repeats, axis=0))
        performance = evaluate_ota(tiled, variations=die_sample)
        return {"gain_db": performance["gain_db"],
                "pm_deg": performance["pm_deg"]}

    config = MCConfig(n_samples=SAMPLES, seed=2008,
                      chunk_lanes=CHUNK_LANES, backend=backend_spec)
    start = time.perf_counter()
    result = monte_carlo_points(evaluator, POINTS, C35, config)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_backend_speedup(emit):
    serial_result, serial_time = _sweep("serial")
    process_result, process_time = _sweep(f"process:{WORKERS}")

    # Determinism across backends is unconditional.
    for name in serial_result:
        np.testing.assert_array_equal(serial_result[name],
                                      process_result[name])

    speedup = serial_time / max(process_time, 1e-9)
    cpus = os.cpu_count() or 1
    points_per_chunk = max(1, CHUNK_LANES // SAMPLES)
    n_chunks = (POINTS + points_per_chunk - 1) // points_per_chunk
    lines = [
        f"sweep: {POINTS} points x {SAMPLES} samples, "
        f"chunk_lanes={CHUNK_LANES} ({n_chunks} chunks)",
        f"host CPUs: {cpus}",
        f"serial            : {serial_time * 1e3:8.1f} ms",
        f"process:{WORKERS}         : {process_time * 1e3:8.1f} ms",
        f"speedup           : {speedup:.2f}x",
        "results bit-identical across backends: True",
    ]
    emit("backend_speedup", "\n".join(lines))

    # The hard speedup gate only runs at full scale on multi-core hosts:
    # the reduced sweep is milliseconds-long, so pool startup noise on a
    # busy CI runner would make a wall-clock assertion flaky.  Reduced
    # runs still verify bit-equivalence and publish the measurement.
    if not FULL_SCALE:
        pytest.skip(f"measured {speedup:.2f}x at reduced scale "
                    "(set REPRO_FULL=1 on a multi-core host to assert "
                    "the speedup)")
    if cpus < 2:
        pytest.skip(f"single-CPU host: measured {speedup:.2f}x, "
                    "speedup assertion needs >= 2 cores")
    assert speedup > 1.1, f"expected >1.1x speedup, got {speedup:.2f}x"
