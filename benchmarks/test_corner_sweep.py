"""Corner-sweep benchmark: stacked PVT grid vs the sequential loop.

Records two artefacts:

* ``corner_sweep_speedup.txt`` -- wall time of the full 45-lane PVT grid
  evaluated as one stacked solve vs one circuit build + solve per grid
  point, and the resulting speedup;
* ``corner_margins.txt`` -- the flow's per-corner spec-margin table over
  the Pareto front (the corner-verification stage artefact).
"""

import time

import numpy as np

from repro.corners import CornerGrid, corner_sweep, corner_sweep_sequential
from repro.designs.ota import OTAParameters, evaluate_ota
from repro.process import C35


def _ota_evaluator(params):
    def evaluate(sample):
        tiled = OTAParameters.from_array(
            np.broadcast_to(params.to_array(), (sample.size, 8)))
        return evaluate_ota(tiled, variations=sample)
    return evaluate


def _best_of(fn, repeats=3):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_stacked_sweep_beats_sequential(emit):
    grid = CornerGrid.full(C35)
    evaluate = _ota_evaluator(OTAParameters())

    t_stacked, stacked = _best_of(
        lambda: corner_sweep(evaluate, C35, grid))
    t_sequential, sequential = _best_of(
        lambda: corner_sweep_sequential(evaluate, C35, grid))

    for name in stacked.performance:
        np.testing.assert_array_equal(stacked.performance[name],
                                      sequential.performance[name])

    speedup = t_sequential / t_stacked
    emit("corner_sweep_speedup", "\n".join([
        f"PVT grid: {grid.describe()}",
        f"stacked solve:    {t_stacked * 1e3:8.1f} ms",
        f"sequential loop:  {t_sequential * 1e3:8.1f} ms",
        f"speedup:          {speedup:8.1f}x",
        "(results bit-identical)",
    ]))
    # The stacked sweep amortises circuit build + factorisation across
    # all 45 lanes; anything below parity would be a regression.
    assert speedup > 1.5


def test_flow_corner_margin_table(flow_result, emit):
    check = flow_result.corner_check
    assert check is not None
    emit("corner_margins", check.summary_table())
    # The kit's corners sit on the global model's 3-sigma points, so the
    # gain corner extremes must bound the sampled 3-sigma gain spread on
    # nearly every front design (phase margin is mismatch-dominated and
    # is expected NOT to be bounded -- that asymmetry is the point of
    # the comparison).
    assert check.mc_check["gain_db"].bounded_fraction > 0.8
