"""Extension: the flow on a second topology (Miller two-stage OTA).

The paper applies its algorithm to one circuit; its claim, though, is
"for a given analogue circuit topology and process".  This benchmark runs
the same WBGA front-building stage on a structurally different amplifier
(two-stage Miller compensation, 6-parameter space) and checks that the
machinery generalises: a monotone gain/PM front appears in a different
performance region (two-stage gain ~70+ dB), and front quality is
quantified with the hypervolume indicator.

Benchmarks one WBGA generation-equivalent on the Miller problem.
"""

import numpy as np

from repro.designs.miller import MillerOTAProblem
from repro.mc.sampler import stream
from repro.moo import GAConfig, hypervolume_2d, run_wbga
from repro.moo.pareto import pareto_front_indices

from conftest import FULL_SCALE


def test_miller_front(emit, benchmark):
    if FULL_SCALE:
        config = GAConfig(population_size=60, generations=40, seed=2008)
    else:
        config = GAConfig(population_size=20, generations=12, seed=2008)

    problem = MillerOTAProblem()
    result = run_wbga(problem, config, rng=stream(2008, "miller-wbga"))

    benchmark.pedantic(
        MillerOTAProblem().evaluate_batch,
        args=(np.full((config.population_size, 6), 0.5),),
        iterations=1, rounds=3)

    front = result.pareto_objectives()
    order = pareto_front_indices(problem.oriented(result.all_objectives))
    series = result.all_objectives[order]

    reference = (float(np.nanmin(result.all_objectives[:, 0])) - 1.0,
                 float(np.nanmin(result.all_objectives[:, 1])) - 1.0)
    volume = hypervolume_2d(result.all_objectives, reference)

    lines = [
        f"Miller OTA WBGA run: {result.evaluations} evaluations, "
        f"{front.shape[0]} Pareto points",
        f"gain span {series[0, 0]:.1f}..{series[-1, 0]:.1f} dB "
        f"(two-stage: far above the symmetrical OTA's ~50 dB)",
        f"pm span {series[:, 1].min():.1f}..{series[:, 1].max():.1f} deg",
        f"hypervolume vs nadir reference: {volume:.1f} dB*deg",
        "",
        f"{'gain_db':>8} {'pm_deg':>8}",
    ]
    for row in series[::max(1, len(series) // 12)]:
        lines.append(f"{row[0]:8.2f} {row[1]:8.2f}")
    emit("extension_second_topology", "\n".join(lines))

    # Generalisation checks.
    assert front.shape[0] >= 3
    assert series[-1, 0] > 65.0           # two-stage gain region
    assert np.all(np.diff(series[:, 0]) >= 0)
    pm_along = series[:, 1]
    assert np.all(np.diff(pm_along) <= 1e-9)   # same trade-off law
    assert volume > 0.0
