"""E-F10: the paper's Figure 10 -- the anti-aliasing filter specification.

The paper draws a specification mask; it quotes the OTA requirements
(open-loop gain 50 dB, phase margin 60 degrees) but not the mask numbers,
so this reproduction fixes them (documented in DESIGN.md): unity passband
gain with <= 1 dB ripple to 1 MHz and >= 30 dB attenuation beyond 10 MHz.

Benchmarks the mask evaluation of a filter response (the per-candidate
measurement cost inside the filter MOO).
"""

import numpy as np

from repro.designs import (DEFAULT_FILTER_SPEC, FilterCaps,
                           build_filter_behavioral, evaluate_filter)


def test_fig10_mask(emit, benchmark):
    spec = DEFAULT_FILTER_SPEC

    lines = [
        "anti-aliasing filter specification mask (relative to DC gain):",
        f"  passband: DC .. {spec.f_pass / 1e6:g} MHz within "
        f"+/-{spec.max_ripple_db:g} dB",
        f"  stopband: >= {spec.min_atten_db:g} dB attenuation beyond "
        f"{spec.f_stop / 1e6:g} MHz",
        "",
        "OTA requirements (paper section 5):",
        f"  open-loop gain >= {spec.ota_gain_db:g} dB",
        f"  phase margin   >= {spec.ota_pm_deg:g} deg",
        "",
        "mask corner points (freq Hz, level dB, side):",
    ]
    for freq, level, side in spec.mask_points():
        lines.append(f"  {freq:>10.3g}  {level:>7.2f}  {side}")
    emit("fig10_filter_spec", "\n".join(lines))

    assert spec.ota_gain_db == 50.0 and spec.ota_pm_deg == 60.0
    assert len(spec.mask_points()) == 3
    assert len(spec.mask_specs()) == 2

    circuit = build_filter_behavioral(FilterCaps(), ota_gain_db=50.0,
                                      ota_ro=1.1e6)
    perf = benchmark(evaluate_filter, circuit)
    assert np.isfinite(perf["ripple_db"][0])
