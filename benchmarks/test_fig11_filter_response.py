"""E-F11: the paper's Figure 11 -- the designed filter's response.

Regenerates the section-5 demonstration: OTA chosen from the combined
model (gain > 50 dB, PM > 60 deg with guard-banding), capacitors from the
behavioural-model MOO (30 x 40), transistor-level response of the final
filter, and the 500-sample Monte-Carlo yield check ("confirmed a yield of
100%").  Benchmarks the transistor-level filter AC solve.
"""


from repro.analysis import ac_analysis
from repro.designs import build_filter_transistor
from repro.designs.filter2 import filter_frequency_grid


def test_fig11_response(filter_result, emit, benchmark):
    spec = filter_result.config.spec
    caps = filter_result.caps
    circuit = build_filter_transistor(caps, filter_result.ota_parameters)
    freqs = filter_frequency_grid(10)

    result = benchmark(ac_analysis, circuit, freqs)
    mag = result.magnitude_db("v2")[0]

    lines = [
        f"OTA selection: gain "
        f"{filter_result.ota_design.nominal_performance['gain_db']:.2f} dB "
        f"(guard-banded from {spec.ota_gain_db:g} dB), PM "
        f"{filter_result.ota_design.nominal_performance['pm_deg']:.1f} deg",
        f"capacitors: C1={caps.c1 * 1e12:.1f} pF, C2={caps.c2 * 1e12:.1f} pF, "
        f"C3={caps.c3 * 1e12:.2f} pF",
        f"behavioural prediction: ripple "
        f"{filter_result.nominal_performance['ripple_db']:.2f} dB, "
        f"attenuation {filter_result.nominal_performance['atten_db']:.1f} dB",
        f"transistor measurement: ripple "
        f"{filter_result.transistor_performance['ripple_db']:.2f} dB, "
        f"attenuation {filter_result.transistor_performance['atten_db']:.1f} dB",
        "",
        filter_result.yield_estimate.describe(),
        "",
        f"{'freq (Hz)':>12} {'|H| (dB)':>9}",
    ]
    for k in range(0, freqs.size, max(1, freqs.size // 24)):
        lines.append(f"{freqs[k]:>12.3g} {mag[k]:>9.2f}")
    lines.append("")
    lines.append("paper: filter meets the Figure-10 mask; 500-sample MC "
                 "confirmed 100% yield")
    emit("fig11_filter_response", "\n".join(lines))

    # The transistor response meets the mask.
    assert filter_result.transistor_performance["ripple_db"] <= \
        spec.max_ripple_db
    assert filter_result.transistor_performance["atten_db"] >= \
        spec.min_atten_db
    # And the verified yield is ~100%.
    assert filter_result.yield_estimate.fraction >= 0.95
