"""E-F2: the paper's Figure 2 -- parameter space vs objective space.

Figure 2 is didactic: each parameter-space point maps to an objective-
space point; the black curve is the Pareto front; point B is dominated by
point A.  We regenerate that story with real data: sample the OTA's
parameter space, map to (gain, PM), extract the front, and exhibit a
dominated/dominating pair.  Benchmarks the batched parameter-to-objective
mapping (one stacked simulation of the whole cloud).
"""

import numpy as np

from repro.designs import OTAParameters, evaluate_ota
from repro.moo.pareto import dominates, non_dominated_mask


def test_fig2_mapping(emit, benchmark):
    rng = np.random.default_rng(2)
    cloud_unit = rng.random((64, 8))

    def map_cloud():
        params = OTAParameters.from_normalized(cloud_unit)
        perf = evaluate_ota(params)
        return np.stack([perf["gain_db"], perf["pm_deg"]], axis=1)

    objectives = benchmark(map_cloud)
    mask = non_dominated_mask(objectives)
    front = objectives[mask]

    # Find an (A dominates B) pair like the figure's annotation.
    dominated_idx = int(np.nonzero(~mask)[0][0])
    dominating_idx = next(
        int(i) for i in np.nonzero(mask)[0]
        if dominates(objectives[i], objectives[dominated_idx]))

    lines = [
        f"parameter-space samples: {cloud_unit.shape[0]} points in [0,1]^8",
        f"objective-space image:   gain {objectives[:, 0].min():.1f}.."
        f"{objectives[:, 0].max():.1f} dB, "
        f"pm {objectives[:, 1].min():.1f}..{objectives[:, 1].max():.1f} deg",
        f"pareto-optimal subset:   {int(mask.sum())} points",
        "",
        f"point A (pareto-optimal): gain {objectives[dominating_idx, 0]:.2f}"
        f" dB, pm {objectives[dominating_idx, 1]:.2f} deg",
        f"point B (dominated):      gain {objectives[dominated_idx, 0]:.2f}"
        f" dB, pm {objectives[dominated_idx, 1]:.2f} deg",
        "A dominates B: no worse in both objectives, better in at least one",
    ]
    emit("fig2_objective_space", "\n".join(lines))

    assert dominates(objectives[dominating_idx], objectives[dominated_idx])
    assert 1 <= mask.sum() < cloud_unit.shape[0]
    # Every dominated point has a dominator on the front.
    for k in np.nonzero(~mask)[0]:
        assert any(dominates(f, objectives[k]) for f in front)
