"""E-F7: the paper's Figure 7 -- gain/phase-margin scatter and Pareto front.

The paper evaluates 10,000 individuals (100 generations x 100 population)
and extracts 1022 Pareto-optimal points.  This benchmark regenerates the
scatter statistics and the front series, checks the front's trade-off
shape, and benchmarks the non-dominated filtering of the full archive
(the section-3.3 step).
"""

import numpy as np

from repro.moo.pareto import non_dominated_mask


def test_fig7_front(flow_result, emit, benchmark):
    wbga = flow_result.wbga
    objectives = wbga.all_objectives
    oriented = wbga.problem.oriented(objectives)

    mask = benchmark(non_dominated_mask, oriented)
    front = objectives[mask]
    order = np.argsort(front[:, 0])
    front = front[order]

    lines = [
        f"evaluated individuals: {objectives.shape[0]} "
        f"(paper: 10,000)",
        f"pareto-optimal points: {int(mask.sum())} (paper: 1022)",
        f"gain range of cloud:   {np.nanmin(objectives[:, 0]):6.2f} .. "
        f"{np.nanmax(objectives[:, 0]):6.2f} dB",
        f"pm range of cloud:     {np.nanmin(objectives[:, 1]):6.2f} .. "
        f"{np.nanmax(objectives[:, 1]):6.2f} deg",
        "",
        f"{'gain_db':>8} {'pm_deg':>8}   (front series, every "
        f"{max(1, len(front) // 20)}th point)",
    ]
    for row in front[::max(1, len(front) // 20)]:
        lines.append(f"{row[0]:8.2f} {row[1]:8.2f}")
    emit("fig7_pareto_front", "\n".join(lines))

    # Shape assertions: a genuine monotone trade-off front.
    assert mask.sum() >= 10
    assert np.all(np.diff(front[:, 0]) >= 0)
    pm_sorted = front[np.argsort(front[:, 0]), 1]
    assert np.all(np.diff(pm_sorted) <= 1e-9)
    # The front spans the paper's region of interest (~50 dB, ~75 deg).
    assert front[:, 0].max() > 50.0
    assert front[:, 1].max() > 74.0
