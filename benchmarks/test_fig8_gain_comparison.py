"""E-F8: the paper's Figure 8 -- open-loop gain, behavioural vs transistor.

The paper overlays the Verilog-A model's response on the transistor-level
simulation: they agree through the passband and gain rolloff, then diverge
above ~40 MHz where the transistor's mirror-node parasitic poles bite
("these higher order effects are not modelled").

This benchmark regenerates both curves from a yield-targeted design,
locates the divergence frequency, and additionally exercises the paper's
"could easily be incorporated if required" remark by adding the
equivalent excess-phase pole to the macromodel and showing the divergence
moves out.  Benchmarks the transistor AC sweep.
"""

import numpy as np

from repro.analysis import ac_analysis, log_frequencies
from repro.behavioral import ota_transfer_function
from repro.designs import OTAParameters, build_ota
from repro.measure import Spec, SpecSet


def _divergence_frequency(freqs, mag_a, mag_b, tolerance_db=2.0):
    """First frequency where the two curves separate by tolerance_db."""
    apart = np.abs(mag_a - mag_b) > tolerance_db
    if not np.any(apart):
        return np.inf
    return freqs[np.argmax(apart)]


def test_fig8_comparison(flow_result, emit, benchmark):
    model = flow_result.model
    lo, hi = model.table.key_range("gain_db")
    gain_spec = 50.0 if lo + 0.2 <= 50.0 <= hi - 0.5 else lo + 0.55 * (hi - lo)
    design = model.design_for_specs(
        SpecSet([Spec("gain_db", "ge", gain_spec, "dB")]), strategy="snap")
    params = OTAParameters(**design.parameters)

    freqs = log_frequencies(10, 1e9, 12)
    circuit = build_ota(params)
    result = benchmark(ac_analysis, circuit, freqs)
    transistor_mag = result.magnitude_db("out")[0]

    gain_db = design.nominal_performance["gain_db"]
    pm_deg = design.nominal_performance["pm_deg"]
    ro = model.ro_at("gain_db", design.front_position)
    behavioural = ota_transfer_function(freqs, gain_db=gain_db, ro=ro,
                                        cl=10e-12)
    behavioural_mag = 20 * np.log10(np.abs(behavioural))

    ugf = float(model.table.lookup("gain_db", design.front_position,
                                   "ugf_hz"))
    excess = np.radians(max(90.0 - pm_deg, 0.1))
    pole2 = ugf / np.tan(excess)
    extended = ota_transfer_function(freqs, gain_db=gain_db, ro=ro,
                                     cl=10e-12, parasitic_pole_hz=pole2)
    extended_mag = 20 * np.log10(np.abs(extended))

    f_div = _divergence_frequency(freqs, transistor_mag, behavioural_mag)
    f_div_ext = _divergence_frequency(freqs, transistor_mag, extended_mag)

    lines = [f"{'freq (Hz)':>12} {'transistor':>11} {'verilog-a':>10} "
             f"{'+pole2':>8}"]
    for k in range(0, freqs.size, max(1, freqs.size // 24)):
        lines.append(f"{freqs[k]:>12.3g} {transistor_mag[k]:>11.2f} "
                     f"{behavioural_mag[k]:>10.2f} {extended_mag[k]:>8.2f}")
    lines += [
        "",
        f"divergence (>2 dB) of first-order model: {f_div:.3g} Hz "
        "(paper: above ~40 MHz)",
        f"divergence with excess-phase pole added: {f_div_ext:.3g} Hz",
    ]
    emit("fig8_gain_comparison", "\n".join(lines))

    # Low-frequency agreement within ~1 dB.
    passband = freqs < 1e4
    assert np.max(np.abs(transistor_mag[passband]
                         - behavioural_mag[passband])) < 1.0
    # Divergence appears only in the tens-of-MHz decade or later.
    assert f_div > 5e6
    # Modelling the parasitic pole pushes the divergence out (or keeps it).
    assert f_div_ext >= f_div * 0.99
