"""High-sigma benchmark: rare-event estimator cost vs direct Monte Carlo.

Runs the rare-event estimator on the analytic linear-Gaussian fixtures
(exact ``p_fail = Phi(-beta)``) across the sign-off sigma range and
compares its total simulator-call count against the direct-MC sample
count that the *measured* confidence-interval half-width would have
required (``n = z^2 p (1-p) / h^2``).  Gates a >= 100x saving at and
beyond 4 sigma -- the regime the repo's other estimators cannot reach
at all -- and records the sigma-vs-cost table in
``benchmarks/results/high_sigma.txt`` (the table quoted by
``docs/estimators.md``).
"""

import pytest

from repro.yieldmodel import RareEventConfig, estimate_yield_rare
from statcheck import linear_gaussian_problem

BETAS = (3.0, 4.0, 5.0, 6.0)
GATED_BETAS = tuple(beta for beta in BETAS if beta >= 4.0)
SAVINGS_FLOOR = 100.0


def _run(beta):
    problem = linear_gaussian_problem(beta)
    result = estimate_yield_rare(
        problem.evaluator, problem.specs, problem.pdk,
        RareEventConfig(n_per_level=2000, n_final=4000,
                        include_mismatch=False, chunk_lanes=4000))
    return problem, result


def test_high_sigma_savings(emit):
    rows = []
    savings_by_beta = {}
    for beta in BETAS:
        problem, result = _run(beta)
        lo, hi = result.interval
        assert lo <= problem.p_fail <= hi, (
            f"beta={beta}: truth {problem.p_fail:.3e} outside "
            f"[{lo:.3e}, {hi:.3e}]")
        direct = result.direct_mc_equivalent()
        savings = direct / result.total_simulations
        savings_by_beta[beta] = savings
        rows.append(
            f"{beta:4.1f}  {problem.p_fail:9.3e}  {result.p_fail:9.3e}  "
            f"[{lo:9.3e}, {hi:9.3e}]  {result.total_simulations:7d}  "
            f"{direct:12d}  {savings:10.0f}x")

    header = (f"rare-event estimator vs direct MC at matched CI half-width "
              f"(95% CI)\n"
              f"{'beta':>4}  {'exact p':>9}  {'estimate':>9}  "
              f"{'interval':^25}  {'sims':>7}  {'direct-MC n':>12}  "
              f"{'savings':>11}")
    gate = (f"\ngate: savings >= {SAVINGS_FLOOR:.0f}x for beta in "
            f"{GATED_BETAS} -- "
            + ", ".join(f"{beta:g}s: {savings_by_beta[beta]:.0f}x"
                        for beta in GATED_BETAS))
    emit("high_sigma", "\n".join([header, *rows]) + gate)

    for beta in GATED_BETAS:
        assert savings_by_beta[beta] >= SAVINGS_FLOOR, (
            f"beta={beta}: only {savings_by_beta[beta]:.0f}x fewer "
            f"simulator calls than direct MC (gate: {SAVINGS_FLOOR}x)")


def test_sigma_readout_matches_spec(emit):
    # The equivalent-sigma readout across the table must track beta to
    # within the CI-implied precision -- the number a designer signs
    # off on.
    lines = []
    for beta in BETAS:
        _, result = _run(beta)
        lines.append(f"beta {beta:4.1f} -> estimated sigma "
                     f"{result.sigma_level:6.3f} "
                     f"({result.n_levels} levels, "
                     f"ESS {result.effective_samples:.0f})")
        assert result.sigma_level == pytest.approx(beta, abs=0.15)
    emit("high_sigma_readout", "\n".join(lines))
