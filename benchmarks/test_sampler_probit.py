"""Sampler probit benchmark: vectorised erf polish vs np.vectorize.

The stratified (Latin-hypercube) sampler maps uniforms to normals
through ``_probit``, whose Newton polish evaluates the normal CDF on
every draw.  The polish used to run ``np.vectorize(math.erf)`` -- a
Python-level loop on the hot path; it now uses the vectorised Cody
``erf``.  This benchmark records the before/after cost of the polish on
a representative draw size.
"""

import math
import time

import numpy as np

from repro.mc.sampler import _probit, erf, latin_hypercube_normal, stream

_N = 200_000


def _best_of(fn, repeats=5):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorised_erf_beats_np_vectorize(emit):
    x = _probit(np.linspace(1e-6, 1 - 1e-6, _N))
    arg = x / np.sqrt(2.0)
    legacy = np.vectorize(math.erf)

    t_legacy = _best_of(lambda: legacy(arg))
    t_vector = _best_of(lambda: erf(arg))
    t_probit = _best_of(lambda: _probit(np.linspace(1e-6, 1 - 1e-6, _N)))
    t_lhs = _best_of(
        lambda: latin_hypercube_normal(stream(2008, "bench"), _N // 4, 4))

    np.testing.assert_allclose(erf(arg), legacy(arg), rtol=0, atol=5e-16)

    speedup = t_legacy / t_vector
    emit("sampler_probit", "\n".join([
        f"erf on {_N:,} lanes (best of 5):",
        f"  np.vectorize(math.erf) [before]: {t_legacy * 1e3:8.2f} ms",
        f"  vectorised Cody erf    [after]:  {t_vector * 1e3:8.2f} ms",
        f"  erf speedup:                     {speedup:8.1f}x",
        f"full _probit ({_N:,} draws):       {t_probit * 1e3:8.2f} ms",
        f"latin_hypercube_normal {_N // 4:,}x4:  {t_lhs * 1e3:8.2f} ms",
        "(erf matches math.erf to 5e-16)",
    ]))
    # The Python-loop polish was the dominant cost; the vectorised erf
    # must beat it by a wide margin.
    assert speedup > 3.0
