"""E-X2: service-layer throughput and cache-hit speedup.

The tentpole's operational gate: serving a repeated yield estimate from
the content-addressed result cache must be at least 10x faster than
computing it, and the worker-pool queue must complete a 32-job burst of
small estimates (with realistic duplication across users) end to end,
reporting jobs/sec.  Results land in
``benchmarks/results/service_throughput.txt``.
"""

import time

from repro.cache import ResultCache
from repro.service import JobQueue
from repro.workload import ota_estimate_workload

from conftest import FULL_SCALE

#: The OTA design every request perturbs (natural units, W1 L1 .. W4 L4).
BASE_DESIGN = {"w1": 3e-05, "l1": 1e-06, "w2": 6e-05, "l2": 1e-06,
               "w3": 1e-05, "l3": 2e-06, "w4": 2e-05, "l4": 2e-06}

SPEEDUP_SAMPLES = 5000 if FULL_SCALE else 1000
BURST_JOBS = 32          # the gate: >= 32 concurrent small estimates
DISTINCT_DESIGNS = 8     # 4 "users" per design -> dedup + cache hits
BURST_SAMPLES = 200
WORKERS = 4


def _design(index: int) -> dict:
    design = dict(BASE_DESIGN)
    design["w1"] = BASE_DESIGN["w1"] * (1.0 + 0.02 * index)
    return design


def test_cache_hit_speedup(emit, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    workload = ota_estimate_workload(BASE_DESIGN,
                                     n_samples=SPEEDUP_SAMPLES,
                                     seed=2008, chunk_lanes=256)
    start = time.perf_counter()
    cold = workload.run_cached(cache)
    cold_time = time.perf_counter() - start
    start = time.perf_counter()
    warm = workload.run_cached(cache)
    warm_time = time.perf_counter() - start

    assert not cold.cache_hit and warm.cache_hit
    assert warm.value[0] == cold.value[0]  # bit-identical estimate
    speedup = cold_time / max(warm_time, 1e-9)
    lines = [
        f"estimate: {SPEEDUP_SAMPLES} MC samples of the section-5 OTA",
        f"cold (compute + store): {cold_time * 1e3:8.1f} ms",
        f"warm (cache hit)      : {warm_time * 1e3:8.2f} ms",
        f"cache-hit speedup     : {speedup:.0f}x",
        "hit estimate bit-identical: True",
    ]
    emit("service_throughput", "\n".join(lines))
    assert speedup >= 10.0, \
        f"cache-hit speedup gate: expected >= 10x, got {speedup:.1f}x"


def test_burst_throughput(emit, tmp_path):
    # Appends to the artefact the speedup test started.
    cache = ResultCache(tmp_path / "cache")
    requests = [_design(index % DISTINCT_DESIGNS)
                for index in range(BURST_JOBS)]
    start = time.perf_counter()
    with JobQueue(workers=WORKERS, cache=cache) as jobs:
        ids = [jobs.submit(ota_estimate_workload(
                   design, n_samples=BURST_SAMPLES, seed=2008,
                   chunk_lanes=128))
               for design in requests]
        results = [jobs.result(job_id, timeout=600) for job_id in ids]
    elapsed = time.perf_counter() - start

    assert len(results) == BURST_JOBS
    hits = sum(result.cache_hit for result in results)
    # Every duplicated design beyond its first submission must be served
    # from the cache (single-flight + cache-first execution).
    assert cache.stats.stores == DISTINCT_DESIGNS
    assert hits == BURST_JOBS - DISTINCT_DESIGNS
    jobs_per_sec = BURST_JOBS / elapsed

    from pathlib import Path
    artefact = Path("benchmarks/results/service_throughput.txt")
    previous = artefact.read_text().rstrip() if artefact.exists() else ""
    lines = [
        previous,
        "",
        f"burst: {BURST_JOBS} estimate jobs ({DISTINCT_DESIGNS} distinct "
        f"designs x {BURST_JOBS // DISTINCT_DESIGNS} users), "
        f"{BURST_SAMPLES} samples each, {WORKERS} workers",
        f"wall time             : {elapsed * 1e3:8.1f} ms",
        f"throughput            : {jobs_per_sec:.1f} jobs/sec",
        f"cache                 : {cache.stats.describe()}",
    ]
    emit("service_throughput", "\n".join(line for line in lines if
                                         line is not None).lstrip("\n"))
