"""E-X2: streaming Monte Carlo -- adaptive stopping vs fixed-count MC.

The paper verifies its guard-banded designs with **fixed 500-sample**
Monte-Carlo runs ("confirmed a yield of 100 %").  The streaming engine
reaches the same conclusion at the same stated precision with a fraction
of the simulated lanes, because it stops as soon as the Wilson interval
on the yield is narrower than the requested width instead of burning the
whole budget.  This benchmark gates that claim:

* the adaptive run must use **>= 2x fewer simulated lanes** than the
  paper-style fixed 500-sample verification while meeting the requested
  CI width;
* the fixed-count yield must fall inside the adaptive run's interval and
  the streaming variation numbers must agree with the batch ones (both
  runs draw from the same guard-banded design);
* the streaming path must never materialise the full population --
  every evaluator call is bounded by ``chunk_lanes`` and the retained
  accumulator state by the sketch capacity.

The measured saving is recorded in ``benchmarks/results/streaming_mc.txt``.
"""

import numpy as np

from repro.designs import OTAParameters, evaluate_ota
from repro.mc import AdaptiveStop, MCConfig, monte_carlo
from repro.mc.statistics import relative_spread_pct
from repro.measure.specs import Spec, SpecSet
from repro.process import C35
from repro.yieldmodel import estimate_yield, estimate_yield_streaming

from conftest import FULL_SCALE

#: The paper's verification budget (section 4.3 / section 5).
FIXED_SAMPLES = 500
#: Requested precision: full Wilson-CI width on the yield fraction.
REQUESTED_CI = 0.08
CHUNK_LANES = 50
SKETCH_CAPACITY = 128
PILOT_SAMPLES = 64
SEED = 2008


def _mid_front_reference(flow_result) -> np.ndarray:
    return flow_result.pareto_parameters[flow_result.pareto_count // 2]


def _make_evaluator(reference, lane_log=None):
    def evaluator(die_sample):
        if lane_log is not None:
            lane_log.append(die_sample.size)
        tiled = OTAParameters.from_array(
            np.repeat(reference[None, :], die_sample.size, axis=0))
        performance = evaluate_ota(tiled, variations=die_sample)
        return {"gain_db": performance["gain_db"],
                "pm_deg": performance["pm_deg"]}
    return evaluator


def test_streaming_adaptive_vs_fixed(flow_result, emit):
    reference = _mid_front_reference(flow_result)
    evaluator = _make_evaluator(reference)

    # Guard-band the specs at 3 sigma of a small pilot run (the paper's
    # model-building step supplies the guard bands; the pilot stands in
    # for it so this benchmark is self-contained): the verification
    # below should then confirm a ~100 % yield, like the paper's.
    pilot = monte_carlo(evaluator, C35,
                        MCConfig(n_samples=PILOT_SAMPLES, seed=SEED + 1))
    specs = SpecSet([
        Spec(name, "ge",
             float(np.mean(pilot[name]) - 3.0 * np.std(pilot[name], ddof=1)))
        for name in ("gain_db", "pm_deg")
    ])

    # Paper-style fixed-count verification: 500 samples, no early exit.
    fixed_config = MCConfig(n_samples=FIXED_SAMPLES, seed=SEED,
                            chunk_lanes=CHUNK_LANES)
    fixed_population = monte_carlo(evaluator, C35, fixed_config)
    fixed_estimate = estimate_yield(fixed_population, specs)
    fixed_lo, fixed_hi = fixed_estimate.interval
    fixed_width = fixed_hi - fixed_lo

    # Streaming adaptive verification at the requested precision.  The
    # instrumented evaluator proves the memory contract: no call ever
    # sees more than chunk_lanes lanes.
    lanes_seen: list[int] = []
    adaptive_estimate, streaming = estimate_yield_streaming(
        _make_evaluator(reference, lanes_seen), C35, specs,
        MCConfig(n_samples=FIXED_SAMPLES * 8, seed=SEED,
                 chunk_lanes=CHUNK_LANES),
        adaptive=AdaptiveStop(metric="yield", ci_width=REQUESTED_CI,
                              min_samples=PILOT_SAMPLES),
        sketch_capacity=SKETCH_CAPACITY)
    adaptive_lanes = streaming.samples_done
    adaptive_lo, adaptive_hi = adaptive_estimate.interval
    adaptive_width = adaptive_hi - adaptive_lo
    saving = FIXED_SAMPLES / adaptive_lanes

    # --- Gates -------------------------------------------------------
    # 1. Adaptive stopping met the requested precision with >= 2x fewer
    #    simulated lanes than the paper's fixed-count verification.
    assert streaming.stopped_early
    assert adaptive_width <= REQUESTED_CI
    assert saving >= 2.0, (
        f"adaptive run used {adaptive_lanes} lanes vs fixed "
        f"{FIXED_SAMPLES}: saving {saving:.2f}x < 2x")
    # 2. Both verifications agree: the fixed-count yield lies inside the
    #    adaptive interval (they sample the same guard-banded design).
    assert adaptive_lo <= fixed_estimate.fraction <= adaptive_hi
    # 3. The streaming variation numbers agree with the batch reduction.
    for name in ("gain_db", "pm_deg"):
        batch_spread = float(relative_spread_pct(fixed_population[name]))
        streaming_spread = streaming.variation_percent(name)
        # Different (smaller) draw of the same population: statistical
        # agreement, not bit equality.
        np.testing.assert_allclose(streaming_spread, batch_spread, rtol=0.5)
    # 4. Memory contract: the streaming path never concatenated the
    #    population -- every chunk is bounded by chunk_lanes and the
    #    retained state by the sketch budget.
    assert max(lanes_seen) <= CHUNK_LANES
    for accumulator in streaming.accumulators.values():
        assert accumulator.sketch.state()["values"].size <= SKETCH_CAPACITY

    lines = [
        f"scale: {'full' if FULL_SCALE else 'reduced'} flow front, "
        f"mid-front reference design, specs guard-banded at 3 sigma",
        f"requested precision  : Wilson CI width <= {REQUESTED_CI:g}",
        f"fixed-count run      : {FIXED_SAMPLES} lanes, "
        f"yield {100 * fixed_estimate.fraction:.2f}% "
        f"(CI [{100 * fixed_lo:.2f}%, {100 * fixed_hi:.2f}%], "
        f"width {fixed_width:.4f})",
        f"adaptive streaming   : {adaptive_lanes} lanes, "
        f"yield {100 * adaptive_estimate.fraction:.2f}% "
        f"(CI [{100 * adaptive_lo:.2f}%, {100 * adaptive_hi:.2f}%], "
        f"width {adaptive_width:.4f})",
        f"lane saving          : {saving:.2f}x fewer simulated lanes "
        f"at the requested precision (gate: >= 2x)",
        f"max lanes per chunk  : {max(lanes_seen)} "
        f"(chunk_lanes={CHUNK_LANES}; population never concatenated)",
        "variation (3-sigma relative spread):",
    ]
    for name in ("gain_db", "pm_deg"):
        lines.append(
            f"  {name:<8}: streaming {streaming.variation_percent(name):.3f}% "
            f"vs batch {float(relative_spread_pct(fixed_population[name])):.3f}%")
    emit("streaming_mc", "\n".join(lines))
