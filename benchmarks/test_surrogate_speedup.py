"""E-X2: surrogate-accelerated yield estimation vs direct Monte Carlo.

Estimates the same OTA design's yield twice -- a direct ``monte_carlo``
sweep of the full population, and the surrogate pipeline (seed batch +
adaptive refinement + control batch) classifying an equally large
population -- then verifies the two estimates agree within their
confidence intervals and records the speedup at that matched
sampling error.

Two speedup numbers are reported:

* **simulator-call ratio** (deterministic): population size over the
  surrogate's total circuit-level evaluations -- the number that scales
  to expensive simulators;
* **wall-clock ratio** (host-dependent): end-to-end time of the two
  estimates on this machine.

The wall-clock gate only hardens at full scale (``REPRO_FULL=1``), like
the backend-speedup benchmark; the simulator-call gate always applies.
"""

import time

from repro.designs import OTAParameters, evaluate_ota
from repro.mc import MCConfig, monte_carlo
from repro.measure import Spec, SpecSet
from repro.process import C35
from repro.surrogate import SurrogateConfig, SurrogateYieldEstimator
from repro.yieldmodel import estimate_yield

from conftest import FULL_SCALE

N_MC = 20000 if FULL_SCALE else 6000
N_TRAIN = 128 if FULL_SCALE else 96
REFINE_BUDGET = 192 if FULL_SCALE else 96
CONTROL = 200 if FULL_SCALE else 80

#: The verified design (the library default mid-range OTA) and a
#: high-yield specification ~2 sigma below its nominal performance --
#: the regime the paper's guard-banded designs live in.
SPECS = SpecSet([Spec("gain_db", "ge", 40.85, "dB"),
                 Spec("pm_deg", "ge", 86.75, "deg")])


def _evaluator():
    params = OTAParameters()

    def evaluate(die_sample):
        performance = evaluate_ota(params.tile(die_sample.size),
                                   variations=die_sample)
        return {"gain_db": performance["gain_db"],
                "pm_deg": performance["pm_deg"]}

    return evaluate


def test_surrogate_speedup(emit):
    evaluator = _evaluator()

    start = time.perf_counter()
    direct_perf = monte_carlo(evaluator, C35,
                              MCConfig(n_samples=N_MC, seed=2008,
                                       chunk_lanes=2000))
    direct = estimate_yield(direct_perf, SPECS)
    direct_time = time.perf_counter() - start

    estimator = SurrogateYieldEstimator(
        evaluator, SPECS, C35,
        SurrogateConfig(n_train=N_TRAIN, n_mc=N_MC, control_samples=CONTROL,
                        refine_budget=REFINE_BUDGET, seed=2008))
    start = time.perf_counter()
    estimate = estimator.estimate()
    surrogate_time = time.perf_counter() - start

    sim_speedup = N_MC / estimate.simulator_evals
    wall_speedup = direct_time / max(surrogate_time, 1e-9)
    direct_half = (direct.interval[1] - direct.interval[0]) / 2
    surrogate_half = (estimate.interval[1] - estimate.interval[0]) / 2

    lines = [
        f"design: library-default OTA; spec: {SPECS.describe()}",
        f"population: {N_MC} samples (both estimators)",
        "",
        f"direct MC      : {direct.percent:6.2f}% "
        f"(CI +/-{100 * direct_half:.2f}%)  "
        f"{N_MC} simulator evals, {direct_time:6.2f} s",
        f"surrogate      : {estimate.percent:6.2f}% "
        f"(CI +/-{100 * surrogate_half:.2f}%)  "
        f"{estimate.simulator_evals} simulator evals, "
        f"{surrogate_time:6.2f} s",
        f"  (train {estimate.n_train} + refine {estimate.n_refined} + "
        f"control {CONTROL}; {estimate.ambiguous_lanes} lanes left "
        f"ambiguous)",
        f"  CV error: " + ", ".join(
            f"{name}={err:.3g}" for name, err in estimate.cv_errors.items()),
        "",
        f"simulator-call speedup : {sim_speedup:6.1f}x",
        f"wall-clock speedup     : {wall_speedup:6.1f}x",
        f"estimates agree (CI overlap): {estimate.consistent_with(direct)}",
        f"control batch agrees        : {estimate.consistent_with_control}",
    ]
    emit("surrogate_speedup", "\n".join(lines))

    # Agreement at matched sampling error is the correctness contract.
    assert estimate.consistent_with(direct), (
        f"surrogate {estimate.percent:.2f}% {estimate.interval} vs direct "
        f"{direct.percent:.2f}% {direct.interval}")
    assert estimate.consistent_with_control
    # Matched error: the surrogate interval may widen only modestly
    # (classification term) over the direct interval it replaces.
    assert surrogate_half <= 2.5 * direct_half

    # The deterministic speedup gate: >= 10x fewer circuit evaluations.
    assert sim_speedup >= 10.0, (
        f"expected >=10x simulator-call reduction, got {sim_speedup:.1f}x")
    # Wall clock includes numpy prediction overhead; gate it hard only at
    # full scale where the population dwarfs fixed costs.
    if FULL_SCALE:
        assert wall_speedup >= 10.0, (
            f"expected >=10x wall-clock speedup, got {wall_speedup:.1f}x")
