"""E-T1: the paper's Table 1 -- the OTA designable-parameter space.

Regenerates the parameter/range rows exactly as printed in the paper and
benchmarks the cost of building + compiling the parameterised OTA
testbench (the per-candidate fixed cost of the whole flow).
"""

from repro.analysis import Assembler
from repro.designs import OTA_DESIGN_SPACE, OTAParameters, build_ota


def test_table1_rows(emit, benchmark):
    rows = OTA_DESIGN_SPACE.table1_rows()

    lines = [f"{'Design Parameter:':<24} Range:"]
    for name, rng in rows:
        lines.append(f"{name:<24} {rng}")
    emit("table1_parameter_space", "\n".join(lines))

    # Paper fidelity: 8 W/L parameters + 2 normalised weights.
    assert len(rows) == 10
    assert rows[0][0].startswith("W1")
    assert rows[0][1] == "10um - 60um"
    assert rows[1][1] == "0.35um - 4um"
    assert rows[-1][0] == "Wg2 (Phase weight)"

    def build_and_compile():
        circuit = build_ota(OTAParameters())
        return Assembler(circuit).n

    n_unknowns = benchmark(build_and_compile)
    assert n_unknowns > 8  # nodes + branch unknowns of the testbench
