"""E-T2: the paper's Table 2 -- per-Pareto-point performance + variation.

Regenerates the (design, gain, dGain%, PM, dPM%) rows from the flow's
Monte-Carlo stage and checks the paper's two structural trends in the
50-dB region it tabulates: gain rises while PM falls along the front, and
dPM grows toward the high-gain end.  Benchmarks the variation-model
reduction (200 MC samples -> one percentage per point).
"""

import numpy as np

from repro.yieldmodel import variation_columns


def test_table2_rows(flow_result, emit, benchmark):
    columns = benchmark(variation_columns, flow_result.mc_samples,
                        k_sigma=flow_result.config.k_sigma)
    assert set(columns) == {"gain_db_delta_pct", "pm_deg_delta_pct"}

    rows = flow_result.table2_rows(10)
    lines = [f"{'Design:':>7} {'Gain (dB):':>11} {'dGain (%):':>11} "
             f"{'PM (deg):':>10} {'dPM (%):':>9}"]
    for row in rows:
        lines.append(f"{row['design']:>7d} {row['gain_db']:>11.2f} "
                     f"{row['dgain_pct']:>11.2f} {row['pm_deg']:>10.1f} "
                     f"{row['dpm_pct']:>9.2f}")
    lines.append("")
    lines.append("paper reference rows (Table 2): gain 49.78..51.62 dB, "
                 "dGain 0.52->0.42 %, PM 76.3->73.2 deg, dPM 1.50->1.68 %")
    emit("table2_variation", "\n".join(lines))

    gains = np.array([r["gain_db"] for r in rows])
    pms = np.array([r["pm_deg"] for r in rows])
    dgains = np.array([r["dgain_pct"] for r in rows])
    dpms = np.array([r["dpm_pct"] for r in rows])

    # Monotone trade-off along the sampled rows.
    assert np.all(np.diff(gains) > 0)
    assert np.all(np.diff(pms) < 1e-9)
    # Variations are small percentages of the right magnitude.
    assert np.all((dgains > 0.05) & (dgains < 5.0))
    assert np.all((dpms > 0.05) & (dpms < 8.0))
    # Paper trend: dPM grows toward the high-gain (low-PM) end.
    assert dpms[-3:].mean() > dpms[:3].mean() * 0.9
