"""E-T3: the paper's Table 3 -- the guard-banding interpolation example.

Two reproductions:

1. **Exact**: rebuild the combined model from the paper's own Table 2
   numbers and verify our algorithm outputs the paper's Table 3 values
   bit-for-bit to its printed precision (gain 50 dB -> 0.51 % -> 50.26 dB;
   PM 74 deg -> 1.71 % -> 75.27 deg).
2. **End-to-end**: the same query against the model our flow built.

Benchmarks the guard-band query (one cubic ``$table_model`` read + the
arithmetic) -- the operation the behavioural model performs per design.
"""

import pytest

from repro.measure import Spec
from tests.test_yieldmodel import paper_model


def test_table3_on_paper_data(emit, benchmark):
    model = paper_model()
    gain_spec = Spec("gain_db", "ge", 50.0, "dB")
    pm_spec = Spec("pm_deg", "ge", 74.0, "deg")

    gain_target = benchmark(model.guard_band, gain_spec)
    pm_target = model.guard_band(pm_spec)

    lines = [
        f"{'Performance:':<14} {'Required:':>10} {'Variation:':>11} "
        f"{'New Performance:':>17}",
        f"{'Gain':<14} {'> 50dB':>10} {gain_target.variation_pct:>10.2f}% "
        f"{gain_target.new_value:>16.2f}dB",
        f"{'Phase Margin':<14} {'> 74 deg':>10} "
        f"{pm_target.variation_pct:>10.2f}% "
        f"{pm_target.new_value:>15.2f}deg",
        "",
        "paper Table 3: Gain > 50dB, 0.51%, 50.26dB; "
        "PM > 74deg, 1.71%, 75.27deg",
    ]
    emit("table3_interpolation_paper_data", "\n".join(lines))

    # Reproduction of the paper's arithmetic on its own data.  The
    # paper reads its table locally between points 24/25 (both 0.51%);
    # our global cubic spline gives 0.508% -- agreement to the printed
    # precision.
    assert gain_target.variation_pct == pytest.approx(0.51, abs=0.01)
    assert gain_target.new_value == pytest.approx(50.26, abs=0.02)
    assert pm_target.variation_pct == pytest.approx(1.71, abs=0.02)
    assert pm_target.new_value == pytest.approx(75.27, abs=0.02)


def test_table3_on_flow_model(flow_result, emit, benchmark):
    model = flow_result.model
    lo, hi = model.table.key_range("gain_db")
    # Query inside the sampled front (50 dB when the front covers it).
    gain_query = 50.0 if lo <= 50.0 <= hi else 0.5 * (lo + hi)
    target = benchmark(model.guard_band,
                       Spec("gain_db", "ge", gain_query, "dB"))

    pm_lo, pm_hi = model.table.key_range("pm_deg")
    pm_query = 74.0 if pm_lo <= 74.0 <= pm_hi else 0.5 * (pm_lo + pm_hi)
    pm_target = model.guard_band(Spec("pm_deg", "ge", pm_query, "deg"))

    lines = [
        f"gain: required {target.required:.2f} dB, variation "
        f"{target.variation_pct:.2f}%, new {target.new_value:.2f} dB",
        f"pm:   required {pm_target.required:.2f} deg, variation "
        f"{pm_target.variation_pct:.2f}%, new {pm_target.new_value:.2f} deg",
    ]
    emit("table3_interpolation_flow_model", "\n".join(lines))

    assert target.new_value > target.required
    assert pm_target.new_value > pm_target.required
    assert 0.0 < target.variation_pct < 5.0
