"""E-T4: the paper's Table 4 -- behavioural model vs transistor simulation.

The paper interpolates design parameters from its ``$table_model`` at the
guard-banded performance (gain 50.26 dB, PM 75.27 deg), re-simulates the
interpolated design at transistor level, and reports ~1 % error (gain
50.73 vs 50.26 -> 0.93 %; PM 76.06 vs 75.27 -> 1.03 %).

We do the same end-to-end: yield-target a spec on the flow's model,
re-simulate the interpolated parameters with the MNA engine, and compare.
Benchmarks the transistor-level verification simulation.
"""


from repro.designs import OTAParameters, evaluate_ota
from repro.measure import Spec, SpecSet


def test_table4_accuracy(flow_result, emit, benchmark):
    model = flow_result.model
    lo, hi = model.table.key_range("gain_db")
    gain_spec = 50.0 if lo + 0.2 <= 50.0 <= hi - 0.5 else lo + 0.55 * (hi - lo)
    design = model.design_for_specs(
        SpecSet([Spec("gain_db", "ge", gain_spec, "dB")]))

    predicted_gain = design.nominal_performance["gain_db"]
    predicted_pm = design.nominal_performance["pm_deg"]
    params = OTAParameters(**design.parameters)

    transistor = benchmark(evaluate_ota, params)
    measured_gain = float(transistor["gain_db"][0])
    measured_pm = float(transistor["pm_deg"][0])

    gain_error = abs(measured_gain - predicted_gain) / measured_gain * 100
    pm_error = abs(measured_pm - predicted_pm) / measured_pm * 100

    lines = [
        f"{'Performance':<14} {'Transistor':>11} {'Behavioural':>12} "
        f"{'% error':>8}",
        f"{'Gain (dB)':<14} {measured_gain:>11.2f} {predicted_gain:>12.2f} "
        f"{gain_error:>7.2f}%",
        f"{'PM (deg)':<14} {measured_pm:>11.2f} {predicted_pm:>12.2f} "
        f"{pm_error:>7.2f}%",
        "",
        "paper Table 4: gain 50.73 vs 50.26 (0.93%), "
        "PM 76.06 vs 75.27 (1.03%)",
    ]
    emit("table4_model_accuracy", "\n".join(lines))

    # The paper reports ~1% interpolation error on its dense 1022-point
    # front; our acceptance widens with front sparsity (reduced scale).
    limit = 2.0 if flow_result.pareto_count >= 200 else 8.0
    assert gain_error < limit
    assert pm_error < limit
