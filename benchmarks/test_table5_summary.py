"""E-T5: the paper's Table 5 -- run summary and the cost comparison.

The paper summarises its model-building run (100 generations, 10,000
evaluation samples, 1022 Pareto points, 4 CPU-hours on a 1.2 GHz
UltraSparc 3) and contrasts it with a previously reported 7-hour
conventional optimisation of the same circuit [HOLMES].

We regenerate the summary from the flow ledger and reproduce the
*structure* of the cost claim with the in-repo conventional baseline
(per-candidate transistor Monte Carlo): simulator-call counts per
yield-targeted design obtained, amortised over model reuse.
"""

import numpy as np

from repro.baselines import DirectMCConfig, run_direct_mc_optimization
from repro.measure import Spec, SpecSet


def test_table5_summary(flow_result, emit, benchmark):
    ledger = flow_result.ledger
    config = flow_result.config

    specs = SpecSet([
        Spec("gain_db", "ge",
             float(np.median(flow_result.pareto_objectives[:, 0])), "dB"),
        Spec("pm_deg", "ge",
             float(np.min(flow_result.pareto_objectives[:, 1])), "deg"),
    ])
    baseline = run_direct_mc_optimization(
        specs, DirectMCConfig(population=10, generations=4,
                              mc_samples_per_candidate=25, seed=2008))

    proposed_sims = ledger.total_simulations
    baseline_sims = baseline.transistor_simulations

    # One yield-targeted design from the finished model costs zero
    # transistor simulations; benchmark that query.
    design = benchmark(flow_result.model.design_for_specs, specs)
    assert design.parameters

    lines = [
        f"{'Parameters:':<34} Values:",
        f"{'No. Generations':<34} {config.generations}",
        f"{'Evaluation Samples':<34} {config.generations * config.population}",
        f"{'Pareto Points':<34} {flow_result.total_pareto_found} found, "
        f"{flow_result.pareto_count} modelled",
        f"{'MC samples per Pareto point':<34} {config.mc_samples}",
        "",
        "cost ledger (proposed flow, one-time model build):",
        ledger.table(),
        "",
        "conventional baseline (yield via per-candidate transistor MC):",
        baseline.ledger.table(),
        "",
        f"proposed: {proposed_sims} transistor sims once, then 0 per design",
        f"conventional: {baseline_sims} transistor sims per design episode",
        f"break-even after {proposed_sims / max(baseline_sims, 1):.1f} "
        "design uses (paper: 4h vs 7h already on the first use at full "
        "scale)",
        "",
        "paper Table 5: 100 generations, 10,000 samples, 1022 Pareto "
        "points, 4 CPU-hours (vs 7 hours conventional [5])",
    ]
    emit("table5_summary", "\n".join(lines))

    # Structural claims.
    assert proposed_sims > 0 and baseline_sims > 0
    # The conventional flow pays per design; the proposed flow's
    # per-design marginal cost is zero transistor simulations.
    marginal_proposed = 0
    assert baseline_sims > marginal_proposed
