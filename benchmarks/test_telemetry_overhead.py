"""Telemetry overhead gate: disabled instrumentation must be near-free.

The telemetry call sites (``telemetry.span`` / ``telemetry.counter_add``
/ ``telemetry.bind_task``) sit inside the engines' chunk loops, so they
run on every Monte-Carlo chunk of every flow.  This benchmark times the
same corner-sweep-scale Monte-Carlo run three ways:

* **stripped** -- the telemetry facade monkeypatched to bare stubs, the
  closest measurable stand-in for code with no instrumentation at all;
* **disabled** -- the shipped default (no sink configured);
* **enabled** -- a live JSONL sink recording every span and metric.

The hard gate: the disabled path costs at most 2 % over stripped (plus
a small absolute floor that absorbs timer noise on busy CI runners).
The enabled overhead is only *recorded* -- tracing is opt-in and pays
for the events it writes.

Writes ``benchmarks/results/telemetry_overhead.txt``.
"""

import gc
import time

import numpy as np

from repro import telemetry
from repro.designs.ota import OTAParameters, evaluate_ota
from repro.mc import MCConfig, monte_carlo_points
from repro.process import C35
from repro.telemetry import NULL_SPAN

from conftest import FULL_SCALE

POINTS = 32 if FULL_SCALE else 12
SAMPLES = 50 if FULL_SCALE else 25
CHUNK_LANES = 100  # many chunks => many span/counter call sites hit
REPEATS = 7
#: Relative gate on the disabled-vs-stripped overhead.
MAX_DISABLED_OVERHEAD = 0.02
#: Absolute slack [s] absorbing scheduler/timer noise at reduced scale.
NOISE_FLOOR = 0.005


def _sweep():
    points = OTAParameters.from_normalized(
        np.linspace(0.15, 0.85, POINTS)[:, None]
        * np.ones((POINTS, 8))).to_array()

    def evaluator(point_indices, repeats, die_sample):
        tiled = OTAParameters.from_array(
            np.repeat(points[point_indices], repeats, axis=0))
        performance = evaluate_ota(tiled, variations=die_sample)
        return {"gain_db": performance["gain_db"],
                "pm_deg": performance["pm_deg"]}

    config = MCConfig(n_samples=SAMPLES, seed=2008,
                      chunk_lanes=CHUNK_LANES)
    return monte_carlo_points(evaluator, POINTS, C35, config)


def _best_of(fn, repeats=REPEATS):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _stripped(monkeypatch):
    """Patch the facade the call sites resolve at run time to stubs."""
    monkeypatch.setattr(telemetry, "span",
                        lambda name, **attributes: NULL_SPAN)
    monkeypatch.setattr(telemetry, "counter_add",
                        lambda name, amount=1: None)
    monkeypatch.setattr(telemetry, "gauge_set", lambda name, value: None)
    monkeypatch.setattr(telemetry, "bind_task", lambda fn: fn)
    monkeypatch.setattr(telemetry, "emit",
                        lambda event_type, **fields: None)
    monkeypatch.setattr(telemetry, "enabled", lambda: False)


def test_disabled_overhead_under_gate(emit, monkeypatch, tmp_path):
    telemetry.shutdown()  # the shipped default: no sink
    _sweep()  # warm-up: page in the kernels before any timing

    # Pair the gated modes round by round and gate on the *median*
    # per-round delta: slow drift (thermal, noisy-neighbour CI load)
    # lands on both halves of a pair equally, and the median shrugs
    # off the odd descheduled round that would sink a min-of-runs
    # comparison.  GC stays off during timed regions -- a collection
    # landing in one half of a pair is pure noise.
    stripped_times, deltas = [], []
    stripped = disabled = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(REPEATS):
            gc.collect()
            gc.disable()
            with monkeypatch.context() as patch:
                _stripped(patch)
                start = time.perf_counter()
                stripped = _sweep()
                t_stripped = time.perf_counter() - start
            start = time.perf_counter()
            disabled = _sweep()
            t_disabled = time.perf_counter() - start
            if gc_was_enabled:
                gc.enable()
            stripped_times.append(t_stripped)
            deltas.append(t_disabled - t_stripped)
    finally:
        if gc_was_enabled:
            gc.enable()

    events = tmp_path / "overhead_events.jsonl"
    with telemetry.session(events):
        t_enabled, enabled = _best_of(_sweep)

    # Telemetry never changes numeric results, in any mode.
    for name in stripped:
        np.testing.assert_array_equal(stripped[name], disabled[name])
        np.testing.assert_array_equal(stripped[name], enabled[name])

    t_stripped = float(np.median(stripped_times))
    delta = float(np.median(deltas))
    disabled_overhead = delta / t_stripped
    enabled_overhead = (t_enabled - t_stripped) / t_stripped
    n_chunks = POINTS // max(1, CHUNK_LANES // SAMPLES) + 1
    emit("telemetry_overhead", "\n".join([
        f"sweep: {POINTS} points x {SAMPLES} samples, "
        f"chunk_lanes={CHUNK_LANES} (~{n_chunks} chunks), "
        f"median of {REPEATS} paired rounds",
        f"stripped (no instrumentation) : {t_stripped * 1e3:8.1f} ms",
        f"disabled (shipped default)    : {(t_stripped + delta) * 1e3:8.1f}"
        f" ms  ({100 * disabled_overhead:+.2f}%)",
        f"enabled  (JSONL sink)         : {t_enabled * 1e3:8.1f} ms  "
        f"({100 * enabled_overhead:+.2f}%)",
        f"events recorded               : {len(events.read_bytes())} bytes",
        f"gate: disabled overhead <= {100 * MAX_DISABLED_OVERHEAD:.0f}% "
        f"(+{NOISE_FLOOR * 1e3:.0f} ms noise floor)",
    ]))

    assert delta <= t_stripped * MAX_DISABLED_OVERHEAD + NOISE_FLOOR, (
        f"disabled telemetry costs {100 * disabled_overhead:.2f}% "
        f"(gate {100 * MAX_DISABLED_OVERHEAD:.0f}%)")
