"""E-X3: in-loop yield optimisation -- the multi-fidelity ladder vs
full-MC-everywhere.

Runs the stage-7 yield-aware OTA search twice per seed: once with the
:class:`repro.optimize.EstimatorLadder` escalating only boundary
candidates (corners -> surrogate -> importance-sampled MC), and once
with every candidate forced to the full-MC rung (``min_fidelity=2`` --
what a metamodel-free in-loop yield optimiser would pay).  Three gates:

* **simulator-call saving**: the ladder must spend >=5x fewer full-MC
  simulator calls than the full-MC-everywhere reference, on every seed;
* **matched front quality**: the mean 3-objective hypervolume (gain x
  phase margin x yield, common fixed reference) across seeds must be
  statistically indistinguishable between the two variants -- their
  ``mean +/- 2 * sem`` intervals must overlap;
* **bit-reproducibility**: re-running the ladder search on a different
  execution backend must reproduce the archive and annotations exactly.

Per-fidelity candidate/call counts land in
``benchmarks/results/yield_pareto.txt`` next to the other speedup
records so the perf trajectory stays comparable across PRs.
"""

import dataclasses
import time

import numpy as np

from repro.designs.problems import OTAProblem
from repro.measure import Spec, SpecSet
from repro.moo import hypervolume
from repro.optimize import (FIDELITY_NAMES, LadderConfig, YieldSearchConfig,
                            ota_evaluator_factory, run_yield_search)
from repro.process import C35

from conftest import FULL_SCALE

SEEDS = (2008, 2009, 2010, 2011) if FULL_SCALE else (2008, 2009, 2010)
GENERATIONS = 10 if FULL_SCALE else 6
POPULATION = 24 if FULL_SCALE else 16

#: The in-loop requirement: placed just above the middle of the
#: benchmark-scale front so candidates genuinely straddle the yield
#: boundary (the regime the ladder exists for).
SPECS = SpecSet([Spec("gain_db", "ge", 48.0, "dB"),
                 Spec("pm_deg", "ge", 80.0, "deg")])
TARGET = 0.90

#: Fixed hypervolume reference (oriented frame: gain, pm, yield) --
#: shared by every run so volumes are comparable.
HV_REFERENCE = np.array([35.0, 65.0, -0.02])

LADDER = LadderConfig(surrogate_train=24, surrogate_population=1500,
                      is_pilot=20, is_samples=60)


def _search(min_fidelity: int, seed: int, backend: str | None = None):
    ladder = dataclasses.replace(LADDER, min_fidelity=min_fidelity,
                                 seed=seed, backend=backend)
    config = YieldSearchConfig(mode="yield", yield_target=TARGET,
                               generations=GENERATIONS,
                               population=POPULATION, seed=seed,
                               ladder=ladder)
    start = time.perf_counter()
    result = run_yield_search(OTAProblem(), ota_evaluator_factory(),
                              SPECS, C35, config)
    elapsed = time.perf_counter() - start
    front_hv = hypervolume(result.problem.oriented(
        result.front_objectives()), HV_REFERENCE)
    return result, front_hv, elapsed


def test_yield_pareto_ladder_vs_full_mc(emit):
    rows = []
    hv_ladder, hv_full = [], []
    ratios = []
    ladder_totals = np.zeros(3, dtype=int)
    reference_run = None
    for seed in SEEDS:
        ladder_run, ladder_hv, ladder_time = _search(0, seed)
        full_run, full_hv, full_time = _search(2, seed)
        if seed == SEEDS[0]:
            reference_run = ladder_run
        hv_ladder.append(ladder_hv)
        hv_full.append(full_hv)
        ladder_totals += np.asarray(ladder_run.counts.sims)
        # Gate 1: >=5x fewer full-MC simulator calls, every seed.  A
        # seed whose boundary candidates all resolve below fidelity 2
        # spends zero full-MC calls -- an infinite ratio, reported as
        # the reference cost itself.
        full_mc_ladder = ladder_run.counts.full_mc_sims
        full_mc_reference = full_run.counts.full_mc_sims
        ratio = full_mc_reference / max(1, full_mc_ladder)
        ratios.append(ratio)
        assert ratio >= 5.0, \
            f"seed {seed}: only {ratio:.1f}x fewer full-MC calls"
        rows.append(
            f"seed {seed}: ladder {ladder_run.counts.total_sims:>6d} sims "
            f"(full-MC rung {full_mc_ladder:>5d}) {ladder_time:5.1f} s | "
            f"full-MC-everywhere {full_run.counts.total_sims:>6d} sims "
            f"{full_time:5.1f} s | full-MC ratio {ratio:7.1f}x | "
            f"hv {ladder_hv:7.1f} vs {full_hv:7.1f}")

    # Gate 2: statistically indistinguishable front quality (CI overlap
    # of the across-seed mean hypervolumes).
    hv_ladder = np.asarray(hv_ladder)
    hv_full = np.asarray(hv_full)
    sem_ladder = hv_ladder.std(ddof=1) / np.sqrt(hv_ladder.size)
    sem_full = hv_full.std(ddof=1) / np.sqrt(hv_full.size)
    lo_ladder = hv_ladder.mean() - 2.0 * sem_ladder
    hi_ladder = hv_ladder.mean() + 2.0 * sem_ladder
    lo_full = hv_full.mean() - 2.0 * sem_full
    hi_full = hv_full.mean() + 2.0 * sem_full
    assert lo_ladder <= hi_full and lo_full <= hi_ladder, \
        f"front hypervolumes disagree: ladder [{lo_ladder:.1f}, " \
        f"{hi_ladder:.1f}] vs full-MC [{lo_full:.1f}, {hi_full:.1f}]"

    # Gate 3: bit-reproducible across execution backends.
    thread_run, _, _ = _search(0, SEEDS[0], backend="thread:2")
    np.testing.assert_array_equal(
        thread_run.result.all_objectives,
        reference_run.result.all_objectives)
    np.testing.assert_array_equal(
        thread_run.result.annotations["yield"],
        reference_run.result.annotations["yield"])
    np.testing.assert_array_equal(
        thread_run.result.annotations["fidelity"],
        reference_run.result.annotations["fidelity"])

    fidelity_lines = [
        f"  {level}: {name:<25} {ladder_totals[level]:>7d} sim calls"
        for level, name in enumerate(FIDELITY_NAMES)]
    lines = [
        f"in-loop yield search, OTA: {GENERATIONS} generations x "
        f"{POPULATION} individuals per seed, seeds {list(SEEDS)}",
        f"spec: {SPECS.describe()}; target yield {TARGET:.0%}",
        "",
        *rows,
        "",
        f"minimum full-MC call saving   : {min(ratios):6.1f}x (gate: >=5x)",
        f"front hypervolume (mean+/-sem): ladder "
        f"{hv_ladder.mean():.1f}+/-{sem_ladder:.1f}, full-MC "
        f"{hv_full.mean():.1f}+/-{sem_full:.1f} (CI overlap: yes)",
        "backend bit-reproducibility   : serial == thread:2 (exact)",
        "",
        "ladder simulator calls by fidelity (all seeds summed):",
        *fidelity_lines,
    ]
    emit("yield_pareto", "\n".join(lines))
