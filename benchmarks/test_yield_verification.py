"""E-Y1: the paper's section-4.4 verification -- "A Monte Carlo simulation
using 500 samples was carried out and verified a yield of 100%".

Runs the fresh Monte Carlo on the yield-targeted OTA design and reports
the measured yield with its Wilson interval.  Benchmarks a 50-die MC
batch (the flow's unit of Monte-Carlo work).

A second test runs the same verification in the optional
importance-sampling mode (mean-shift proposal + likelihood-ratio
reweighting, :mod:`repro.yieldmodel.importance`) and cross-checks it
against the direct estimate by confidence-interval overlap.
"""

import numpy as np

from repro.designs import OTAParameters, evaluate_ota
from repro.mc import MCConfig, monte_carlo
from repro.measure import Spec, SpecSet
from repro.process import C35
from repro.yieldmodel import (ImportanceSamplingConfig, estimate_yield,
                              estimate_yield_importance)

from conftest import FULL_SCALE


def _verification_target(flow_result):
    """The yield-targeted design and specs shared by both verifications."""
    model = flow_result.model
    lo, hi = model.table.key_range("gain_db")
    gain_spec = 50.0 if lo + 0.2 <= 50.0 <= hi - 0.5 else lo + 0.55 * (hi - lo)
    pm_floor = float(np.min(flow_result.pareto_objectives[:, 1]))
    specs = SpecSet([Spec("gain_db", "ge", gain_spec, "dB"),
                     Spec("pm_deg", "ge", pm_floor, "deg")])
    design = model.design_for_specs(specs, strategy="snap")
    params = OTAParameters(**design.parameters)

    def evaluator(sample):
        tiled = OTAParameters.from_array(
            np.broadcast_to(params.to_array(), (sample.size, 8)))
        return evaluate_ota(tiled, variations=sample)

    return design, specs, evaluator


def test_yield_verification(flow_result, emit, benchmark):
    design, specs, evaluator = _verification_target(flow_result)

    benchmark(monte_carlo, evaluator, C35, MCConfig(n_samples=50, seed=7))

    n_samples = 500 if FULL_SCALE else 200
    population = monte_carlo(evaluator, C35,
                             MCConfig(n_samples=n_samples, seed=99))
    estimate = estimate_yield(population, specs)

    lines = [
        f"spec: {specs.describe()}",
        f"guard-banded design at front position "
        f"{design.front_position:.3f} dB",
        estimate.describe(),
        "",
        f"paper: 500-sample MC verified a yield of 100%",
    ]
    emit("yield_verification", "\n".join(lines))

    assert estimate.fraction >= 0.98  # "100%" within MC resolution


def test_yield_verification_importance_sampling(flow_result, emit):
    """Optional IS mode of the verification, cross-checked against MC."""
    design, specs, evaluator = _verification_target(flow_result)

    n_samples = 500 if FULL_SCALE else 200
    pilot = 100 if FULL_SCALE else 60
    is_estimate = estimate_yield_importance(
        evaluator, specs, C35,
        ImportanceSamplingConfig(n_samples=n_samples, pilot_samples=pilot,
                                 seed=99))

    population = monte_carlo(evaluator, C35,
                             MCConfig(n_samples=n_samples, seed=99))
    direct = estimate_yield(population, specs)

    lines = [
        f"spec: {specs.describe()}",
        f"guard-banded design at front position "
        f"{design.front_position:.3f} dB",
        is_estimate.describe(),
        "",
        "direct-MC cross-check:",
        direct.describe(),
        "",
        f"estimates consistent (CI overlap): "
        f"{is_estimate.consistent_with(direct)}",
    ]
    emit("yield_verification_importance_sampling", "\n".join(lines))

    # The acceptance cross-check: IS must agree with direct MC within
    # the reported confidence intervals.
    assert is_estimate.consistent_with(direct)
    assert is_estimate.yield_estimate >= 0.95
