"""The paper's section-5 application: anti-aliasing filter design.

Full hierarchical-design story:

1. build the combined OTA model (once),
2. select an OTA meeting gain > 50 dB / PM > 60 deg *with guard-banding*,
3. optimise the filter capacitors C1-C3 on the behavioural OTA model
   (zero transistor simulations in the loop),
4. verify the finished filter at transistor level, including the
   Monte-Carlo yield check the paper reports as "100 %".

Run:  python examples/filter_design.py
"""

import numpy as np

from repro.analysis import ac_analysis
from repro.designs import build_filter_transistor
from repro.designs.filter2 import filter_frequency_grid
from repro.flow import (FilterFlowConfig, FlowConfig, run_filter_flow,
                        run_model_build_flow)


def main() -> None:
    print("step 1: building the combined OTA model...")
    flow = run_model_build_flow(
        FlowConfig(generations=30, population=40, mc_samples=60,
                   max_pareto_points=60, seed=2008),
        progress=lambda msg: print(f"  {msg}"))

    print("\nstep 2-4: filter design on the behavioural model...")
    result = run_filter_flow(flow.model,
                             FilterFlowConfig(verification_samples=300),
                             progress=lambda msg: print(f"  {msg}"))

    print("\nfinal design:")
    caps = result.caps
    print(f"  C1 = {caps.c1 * 1e12:.1f} pF, C2 = {caps.c2 * 1e12:.1f} pF, "
          f"C3 = {caps.c3 * 1e12:.2f} pF")
    print(f"  behavioural prediction: "
          f"ripple {result.nominal_performance['ripple_db']:.2f} dB, "
          f"attenuation {result.nominal_performance['atten_db']:.1f} dB")
    print(f"  transistor measurement: "
          f"ripple {result.transistor_performance['ripple_db']:.2f} dB, "
          f"attenuation {result.transistor_performance['atten_db']:.1f} dB")
    print(f"  {result.yield_estimate.describe()}")

    # Figure-11-style response plot (ASCII).
    circuit = build_filter_transistor(caps, result.ota_parameters)
    freqs = filter_frequency_grid(6)
    mag = ac_analysis(circuit, freqs).magnitude_db("v2")[0]
    print("\ntransistor-level filter response:")
    floor, ceil = -60.0, 5.0
    for f, m in zip(freqs, mag, strict=True):
        column = int((np.clip(m, floor, ceil) - floor) / (ceil - floor) * 50)
        print(f"  {f:>10.3g} Hz {m:>8.2f} dB |{'*' * column}")

    print("\nsimulation cost of this filter design episode:")
    print(result.ledger.table())
    print("\n(the design loop itself used only the behavioural model; "
          "transistor simulations appear solely under 'verification')")


if __name__ == "__main__":
    main()
