"""Characterise the symmetrical OTA with the circuit-simulator substrate.

A tour of the transistor-level machinery underneath the paper's flow:

* DC operating point of the Figure-5 OTA (device bias report),
* AC open-loop Bode response and the measured gain / phase margin /
  unity-gain frequency,
* process corners (TM / WP / WS / WO / WZ),
* a small Monte-Carlo population and its gain histogram.

Run:  python examples/ota_characterization.py
"""

import numpy as np

from repro.analysis import ac_analysis, dc_operating_point
from repro.designs import (OTAParameters, build_ota,
                           default_frequency_grid, evaluate_ota)
from repro.mc import MCConfig, monte_carlo
from repro.process import C35


def ascii_histogram(samples, bins=9, width=40) -> str:
    counts, edges = np.histogram(samples, bins=bins)
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:], strict=True):
        bar = "#" * int(round(width * count / max(counts.max(), 1)))
        lines.append(f"  {lo:7.2f}..{hi:7.2f} | {bar} {count}")
    return "\n".join(lines)


def main() -> None:
    params = OTAParameters(w1=40e-6, l1=3e-6, w2=40e-6, l2=3e-6,
                           w3=30e-6, l3=1e-6, w4=40e-6, l4=3e-6)

    # -- DC operating point -------------------------------------------------
    circuit = build_ota(params)
    op = dc_operating_point(circuit)
    print("DC operating point (strategy: %s):" % op.strategy)
    for name in ("M1", "M3", "M6", "M9"):
        info = op.device(name)
        print(f"  {name}: Id={info['ids'][0] * 1e6:7.2f} uA  "
              f"gm={info['gm'][0] * 1e6:7.1f} uS  "
              f"gm/gds={info['intrinsic_gain'][0]:6.1f}  "
              f"saturated={bool(info['saturated'][0])}")

    # -- AC response ---------------------------------------------------------
    freqs = default_frequency_grid()
    ac = ac_analysis(circuit, freqs, op=op)
    mag = ac.magnitude_db("out")[0]
    print("\nopen-loop Bode response (every ~decade):")
    for k in range(0, freqs.size, max(1, freqs.size // 9)):
        print(f"  {freqs[k]:>12.3g} Hz  {mag[k]:>8.2f} dB")

    perf = evaluate_ota(params)
    print(f"\nmeasured: gain {perf['gain_db'][0]:.2f} dB, "
          f"PM {perf['pm_deg'][0]:.1f} deg, "
          f"UGF {perf['ugf_hz'][0] / 1e6:.2f} MHz, "
          f"f3dB {perf['f3db_hz'][0] / 1e3:.1f} kHz")

    # -- corners ---------------------------------------------------------------
    print("\nprocess corners:")
    for corner in ("tm", "wp", "ws", "wo", "wz"):
        corner_perf = evaluate_ota(params,
                                   variations=C35.corner_sample(corner))
        print(f"  {corner.upper()}: gain {corner_perf['gain_db'][0]:6.2f} dB"
              f"  PM {corner_perf['pm_deg'][0]:6.2f} deg")

    # -- Monte Carlo ---------------------------------------------------------
    def evaluator(sample):
        tiled = OTAParameters.from_array(
            np.broadcast_to(params.to_array(), (sample.size, 8)))
        return evaluate_ota(tiled, variations=sample)

    population = monte_carlo(evaluator, C35,
                             MCConfig(n_samples=300, seed=1))
    gain = population["gain_db"]
    print(f"\nMonte Carlo (300 dice): gain mean {gain.mean():.2f} dB, "
          f"sigma {gain.std(ddof=1):.3f} dB "
          f"(3-sigma spread {3 * gain.std(ddof=1) / gain.mean() * 100:.2f}%)")
    print(ascii_histogram(gain))

    # -- noise -----------------------------------------------------------
    from repro.analysis import log_frequencies, noise_analysis
    noise = noise_analysis(circuit, log_frequencies(1.0, 1e8, 6),
                           output_node="out", input_source="VINP")
    vn_1k = np.sqrt(noise.input_referred_psd[0][
        np.argmin(np.abs(noise.freqs - 1e3))])
    vn_1m = np.sqrt(noise.input_referred_psd[0][
        np.argmin(np.abs(noise.freqs - 1e6))])
    print(f"\ninput-referred noise: {vn_1k * 1e9:.1f} nV/rtHz at 1 kHz "
          f"(flicker), {vn_1m * 1e9:.1f} nV/rtHz at 1 MHz (thermal floor)")
    print(f"dominant low-frequency contributor: "
          f"{noise.dominant_contributor(0)}")


if __name__ == "__main__":
    main()
