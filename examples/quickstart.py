"""Quickstart: build the combined yield+performance model and query it.

Runs the paper's flow end to end at a small scale (about ten seconds):

1. WBGA multi-objective optimisation of the symmetrical OTA,
2. Pareto-front extraction,
3. Monte-Carlo variation analysis,
4. combined-model construction,
5. a Table-3-style yield-targeted query (gain > 50 dB, PM > 70 deg).

Run:  python examples/quickstart.py
"""

from repro.flow import FlowConfig, run_model_build_flow
from repro.measure import Spec, SpecSet


def main() -> None:
    config = FlowConfig(generations=30, population=40, mc_samples=60,
                        max_pareto_points=60, seed=2008)
    result = run_model_build_flow(config, progress=print)

    print()
    print(f"Pareto front: {result.total_pareto_found} points found, "
          f"{result.pareto_count} modelled")
    print(f"gain span: {result.pareto_objectives[:, 0].min():.1f}"
          f"..{result.pareto_objectives[:, 0].max():.1f} dB")
    print()

    specs = SpecSet([
        Spec("gain_db", "ge", 50.0, "dB", label="open-loop gain"),
        Spec("pm_deg", "ge", 70.0, "deg", label="phase margin"),
    ])
    print(f"specification: {specs.describe()}")

    design = result.model.design_for_specs(specs)
    print("\nguard-banded targets (the paper's Table 3):")
    for target in design.targets.values():
        print(f"  {target.name}: required {target.required:g}, "
              f"variation {target.variation_pct:.2f}%, "
              f"new performance {target.new_value:.3f}")

    print("\ninterpolated designable parameters (Table 1 space):")
    for name, value in design.parameters.items():
        print(f"  {name} = {value * 1e6:.3f} um")

    print("\nnominal performance at the selected front point:")
    for name, value in design.nominal_performance.items():
        print(f"  {name} = {value:.3f}")

    print("\ncost ledger:")
    print(result.ledger.table())


if __name__ == "__main__":
    main()
