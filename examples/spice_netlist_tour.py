"""Tour of the circuit-simulation substrate with SPICE-style netlists.

The paper's flow sits on a full analogue simulator; this example drives
it the classic way -- text netlists -- and exercises every analysis:

* DC operating point of a two-stage amplifier described in SPICE,
* AC transfer function of an RLC bandpass,
* transient step response of an RC network,
* a subcircuit-based R-2R ladder DAC sanity check.

Run:  python examples/spice_netlist_tour.py
"""

import numpy as np

from repro.analysis import (ac_analysis, dc_operating_point,
                            log_frequencies, transient_analysis)
from repro.circuit import Pulse
from repro.circuit.parser import parse_netlist
from repro.process import C35

TWO_STAGE_AMP = """
* two-stage NMOS amplifier on the C35 process models
VDD vdd 0 3.3
VIN in 0 DC 0.9 AC 1
RD1 vdd d1 20k
M1 d1 in 0 0 nmos W=20u L=1u
RD2 vdd out 20k
M2 out d1 0 0 nmos W=20u L=1u
CL out 0 1p
"""

RLC_BANDPASS = """
* parallel RLC driven by a current source
I1 0 n DC 0 AC 1
R1 n 0 1k
L1 n 0 10u
C1 n 0 1n
"""

R2R_LADDER = """
* 3-bit R-2R ladder (all bits high)
.subckt rung in out bit
R1 in out 10k
R2 out bit 20k
.ends
V1 b2 0 3.3
V2 b1 0 3.3
V3 b0 0 3.3
Rterm n0 0 20k
X0 n0 n1 b0 rung
X1 n1 n2 b1 rung
X2 n2 vout b2 rung
Rload vout 0 100meg
"""


def main() -> None:
    # -- DC + AC of the two-stage amplifier ------------------------------------
    amp = parse_netlist(TWO_STAGE_AMP, models=C35.models)
    op = dc_operating_point(amp)
    print("two-stage amplifier bias:")
    print(f"  V(d1) = {op.v('d1')[0]:.3f} V, V(out) = {op.v('out')[0]:.3f} V")
    freqs = log_frequencies(10, 1e9, 8)
    ac = ac_analysis(amp, freqs, op=op)
    mag = ac.magnitude_db("out")[0]
    print(f"  low-frequency gain: {mag[0]:.1f} dB "
          f"(two inverting stages => positive net gain)")

    # -- RLC bandpass ---------------------------------------------------------
    rlc = parse_netlist(RLC_BANDPASS)
    f0 = 1 / (2 * np.pi * np.sqrt(10e-6 * 1e-9))
    sweep = ac_analysis(rlc, log_frequencies(f0 / 100, f0 * 100, 10))
    impedance = np.abs(sweep.v("n")[0])
    peak = sweep.freqs[np.argmax(impedance)]
    print(f"\nRLC bandpass: analytic f0 = {f0 / 1e6:.3f} MHz, "
          f"measured peak = {peak / 1e6:.3f} MHz, "
          f"|Z| at peak = {impedance.max():.1f} ohm (R = 1k)")

    # -- transient ---------------------------------------------------------------
    rc = parse_netlist("""
    V1 in 0 DC 0
    R1 in out 1k
    C1 out 0 100n
    """)
    rc.element("V1").waveform = Pulse(0.0, 1.0, rise=1e-9, width=1.0)
    tran = transient_analysis(rc, t_stop=5e-4, dt=1e-6)
    v_end = tran.v("out")[0][-1]
    tau_samples = tran.v("out")[0][100]  # t = 1e-4 s = 1 tau
    print(f"\nRC step response: v(tau) = {tau_samples:.3f} V "
          f"(analytic 0.632), v(5 tau) = {v_end:.3f} V")

    # -- R-2R ladder ---------------------------------------------------------------
    ladder = parse_netlist(R2R_LADDER)
    op = dc_operating_point(ladder)
    print(f"\nR-2R ladder, all bits high: v(out) = {op.v('vout')[0]:.4f} V "
          f"(full-scale 3.3 V x 7/8 x ladder division)")
    print(f"  flattened elements: {len(ladder)} "
          f"(subcircuits expanded with dotted names)")


if __name__ == "__main__":
    main()
