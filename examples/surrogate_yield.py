"""Surrogate-accelerated yield estimation: train, validate, estimate.

Walks the fourth yield path end to end on the library's default OTA
(about fifteen seconds):

1. train polynomial response surfaces of gain and phase margin over the
   process's global-parameter space (a 96-sample Latin-hypercube seed
   batch),
2. inspect the leave-one-out cross-validation errors (the model's
   honest noise floor),
3. estimate yield through the surrogate -- adaptive refinement spends
   extra simulator calls only on lanes too close to a spec limit to
   classify from the model alone,
4. compare against a direct Monte-Carlo estimate of the same population
   size, and show the simulator-call ledger of both.

Run:  python examples/surrogate_yield.py
"""

import time

from repro.designs import OTAParameters, evaluate_ota
from repro.mc import MCConfig, monte_carlo
from repro.measure import Spec, SpecSet
from repro.process import C35
from repro.surrogate import SurrogateConfig, SurrogateYieldEstimator
from repro.yieldmodel import estimate_yield


def main() -> None:
    params = OTAParameters()  # the library-default mid-range OTA

    def evaluator(die_sample):
        performance = evaluate_ota(params.tile(die_sample.size),
                                   variations=die_sample)
        return {"gain_db": performance["gain_db"],
                "pm_deg": performance["pm_deg"]}

    specs = SpecSet([
        Spec("gain_db", "ge", 40.85, "dB", label="open-loop gain"),
        Spec("pm_deg", "ge", 86.75, "deg", label="phase margin"),
    ])
    print(f"specification: {specs.describe()}")

    # 1+2: train and look at the cross-validation errors.
    estimator = SurrogateYieldEstimator(
        evaluator, specs, C35,
        SurrogateConfig(n_train=96, n_mc=6000, control_samples=80,
                        refine_budget=96, seed=2008))
    bundle = estimator.train()
    print()
    print(bundle.describe())

    # 3: the surrogate estimate (refinement + refusal gate + control).
    start = time.perf_counter()
    estimate = estimator.estimate()
    surrogate_time = time.perf_counter() - start
    print()
    print(estimate.describe())

    # 4: direct Monte Carlo on the same population size.
    start = time.perf_counter()
    performance = monte_carlo(evaluator, C35,
                              MCConfig(n_samples=6000, seed=2008,
                                       chunk_lanes=2000))
    direct = estimate_yield(performance, specs)
    direct_time = time.perf_counter() - start
    print()
    print("direct Monte Carlo on the same population:")
    print(direct.describe())

    print()
    print(f"simulator evaluations: surrogate {estimate.simulator_evals}, "
          f"direct 6000 "
          f"({6000 / estimate.simulator_evals:.1f}x fewer)")
    print(f"wall clock: surrogate {surrogate_time:.2f} s, "
          f"direct {direct_time:.2f} s "
          f"({direct_time / max(surrogate_time, 1e-9):.1f}x faster)")
    print(f"estimates agree (CI overlap): "
          f"{estimate.consistent_with(direct)}")

    # The trained bundle is itself a drop-in MC-engine evaluator:
    population = monte_carlo(bundle.as_evaluator(C35), C35,
                             MCConfig(n_samples=100000, seed=7))
    print(f"\nbonus: {population['gain_db'].size} surrogate-evaluated "
          f"lanes through monte_carlo() "
          f"(gain mean {population['gain_db'].mean():.2f} dB) "
          "without a single MNA solve")


if __name__ == "__main__":
    main()
