"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments that lack the `wheel` package required by PEP 660."""
from setuptools import setup

setup()
