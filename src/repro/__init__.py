"""repro -- combined yield + performance behavioural modelling for
analogue ICs.

A from-scratch reproduction of Ali, Wilcock, Wilson & Brown, "A New
Approach for Combining Yield and Performance in Behavioural Models for
Analogue Integrated Circuits" (DATE 2008), including every substrate the
paper relies on: a batched MNA circuit simulator, a statistical 0.35 um
process kit, the weight-based genetic algorithm, Monte-Carlo engines,
Verilog-A ``$table_model`` emulation, and the combined
performance/variation yield model itself.

Quick start::

    from repro.flow import run_model_build_flow, reduced_config
    from repro.measure import Spec, SpecSet

    result = run_model_build_flow(reduced_config())
    specs = SpecSet([Spec("gain_db", "ge", 50.0, "dB"),
                     Spec("pm_deg", "ge", 74.0, "deg")])
    design = result.model.design_for_specs(specs)
    print(design.parameters)

See ``examples/`` for complete walkthroughs and ``benchmarks/`` for the
per-table/figure reproduction harness.
"""

from .errors import (AnalysisError, ConvergenceError, ExtrapolationError,
                     NetlistError, OptimizationError, ParseError, ReproError,
                     SingularMatrixError, SpecificationError, SurrogateError,
                     TableModelError, YieldModelError)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError", "ConvergenceError", "ExtrapolationError",
    "NetlistError", "OptimizationError", "ParseError", "ReproError",
    "SingularMatrixError", "SpecificationError", "SurrogateError",
    "TableModelError", "YieldModelError",
    "__version__",
]
