"""Circuit analyses: DC operating point, AC sweeps, transient, sweeps."""

from .ac import ACResult, ac_analysis, log_frequencies
from .dc import NewtonOptions, OperatingPoint, dc_operating_point
from .mna import Assembler, solve_batched
from .noise import NoiseResult, noise_analysis
from .sweep import dc_sweep, with_element_values
from .tran import TransientResult, transient_analysis

__all__ = [
    "ACResult", "ac_analysis", "log_frequencies",
    "NewtonOptions", "OperatingPoint", "dc_operating_point",
    "Assembler", "solve_batched",
    "NoiseResult", "noise_analysis",
    "dc_sweep", "with_element_values",
    "TransientResult", "transient_analysis",
]
