"""Small-signal AC analysis.

Linearises the circuit at a DC operating point and solves

``(G + j*omega*C) x(omega) = u``

for every requested frequency, batched across the circuit's batch axis.
Frequencies are processed one at a time (each as one stacked complex
solve), which keeps peak memory at ``O(B * N^2)`` even for the paper's
1022-point Pareto sweeps.
"""

from __future__ import annotations

import numpy as np

from .dc import OperatingPoint, dc_operating_point
from .mna import Assembler, solve_batched

__all__ = ["ACResult", "ac_analysis", "log_frequencies"]


def log_frequencies(f_start: float, f_stop: float,
                    points_per_decade: int = 20) -> np.ndarray:
    """Logarithmically spaced frequency grid, inclusive of both endpoints.

    Mirrors the SPICE ``.ac dec`` sweep specification.
    """
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    count = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), count)


class ACResult:
    """Result of an AC sweep.

    Attributes
    ----------
    freqs:
        Frequency grid, shape ``(F,)`` [Hz].
    x:
        Complex solution, shape ``(B, F, N)``.
    op:
        The DC operating point the sweep was linearised at.
    """

    def __init__(self, circuit, assembler: Assembler, op: OperatingPoint,
                 freqs: np.ndarray, x: np.ndarray) -> None:
        self.circuit = circuit
        self.assembler = assembler
        self.op = op
        self.freqs = freqs
        self.x = x

    @property
    def batch(self) -> int:
        return self.x.shape[0]

    def v(self, node: str) -> np.ndarray:
        """Complex node voltage(s), shape ``(B, F)``; ground is zeros."""
        index = self.assembler.topology.index_of(node)
        if index < 0:
            return np.zeros(self.x.shape[:2], dtype=complex)
        return self.x[:, :, index]

    def transfer(self, out_node: str, in_node: str | None = None) -> np.ndarray:
        """Voltage transfer function ``V(out)/V(in)``, shape ``(B, F)``.

        With ``in_node=None`` the raw output voltage is returned, which
        equals the transfer function when the stimulus has unit AC
        magnitude (the usual testbench convention).
        """
        out = self.v(out_node)
        if in_node is None:
            return out
        denominator = self.v(in_node)
        return out / np.where(np.abs(denominator) < 1e-300, 1e-300, denominator)

    def magnitude_db(self, out_node: str, in_node: str | None = None) -> np.ndarray:
        """``20*log10 |H|``, shape ``(B, F)``."""
        h = np.abs(self.transfer(out_node, in_node))
        return 20.0 * np.log10(np.maximum(h, 1e-300))

    def phase_deg(self, out_node: str, in_node: str | None = None,
                  unwrap: bool = True) -> np.ndarray:
        """Phase in degrees, shape ``(B, F)``; unwrapped along frequency."""
        phase = np.angle(self.transfer(out_node, in_node))
        if unwrap:
            phase = np.unwrap(phase, axis=-1)
        return np.degrees(phase)


def ac_analysis(circuit, freqs, *, op: OperatingPoint | None = None,
                assembler: Assembler | None = None) -> ACResult:
    """Run an AC sweep of ``circuit`` over ``freqs``.

    Parameters
    ----------
    freqs:
        Frequency grid [Hz]; see :func:`log_frequencies`.
    op:
        Pre-computed operating point (skips the DC solve when given --
        essential inside Monte-Carlo loops where the caller wants one DC
        solve reused across measurements).
    """
    freqs = np.atleast_1d(np.asarray(freqs, dtype=float))
    if op is None:
        op = dc_operating_point(circuit, assembler=assembler)
    assembler = assembler or op.assembler

    G, C, excitation = assembler.ac_system(op.x)
    batch, n = excitation.shape
    x = np.empty((batch, freqs.size, n), dtype=complex)
    # One stacked complex solve per frequency point keeps memory bounded.
    for k, freq in enumerate(freqs):
        omega = 2.0 * np.pi * freq
        Y = G + 1j * omega * C
        x[:, k, :] = solve_batched(Y, excitation)
    return ACResult(circuit, assembler, op, freqs, x)
