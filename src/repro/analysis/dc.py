"""DC operating-point analysis: batched Newton-Raphson with homotopies.

The solver runs damped Newton-Raphson on the whole circuit batch at once.
If plain iteration fails it escalates through the two classic SPICE
continuation strategies:

1. **gmin stepping** -- a large conductance to ground is added to every
   node and decades are peeled off until only the floor ``GMIN`` remains;
2. **source stepping** -- all independent sources are ramped from a small
   fraction to 100 %.

Only if both fail does :class:`~repro.errors.ConvergenceError` escape.
All iterations operate on the full batch; convergence is tracked per lane
and converged lanes are frozen so late-converging lanes cannot disturb
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from .mna import Assembler, solve_batched

__all__ = ["NewtonOptions", "OperatingPoint", "dc_operating_point"]

#: Conductance floor always present on node diagonals (SPICE GMIN).
GMIN_FLOOR = 1e-12


@dataclass(frozen=True)
class NewtonOptions:
    """Tuning knobs for the Newton-Raphson DC solver.

    Attributes
    ----------
    max_iterations:
        Iteration budget per Newton attempt.
    reltol, vabstol:
        Per-unknown convergence test ``|dx| <= reltol*|x| + vabstol``.
    dv_limit:
        Per-iteration per-unknown update clamp [V]; the damping that keeps
        exponential device models from overshooting.
    gmin_steps:
        Decades used by gmin stepping (from ``10**-gmin_start`` down).
    source_steps:
        Number of source-stepping ramp points.
    """

    max_iterations: int = 200
    reltol: float = 1e-6
    vabstol: float = 1e-9
    dv_limit: float = 0.5
    gmin_start_exponent: int = 2
    gmin_steps: int = 11
    source_steps: int = 12


@dataclass
class OperatingPoint:
    """Result of a DC operating-point analysis.

    Attributes
    ----------
    x:
        Solution vector, shape ``(B, N)`` -- node voltages followed by
        auxiliary branch currents.
    iterations:
        Total Newton iterations spent (all strategies).
    strategy:
        Which strategy converged: ``"newton"``, ``"gmin"`` or ``"source"``.
    """

    circuit: object
    assembler: Assembler
    x: np.ndarray
    iterations: int
    strategy: str

    @property
    def batch(self) -> int:
        return self.x.shape[0]

    def v(self, node: str) -> np.ndarray:
        """Node voltage(s), shape ``(B,)``; ground returns zeros."""
        index = self.assembler.topology.index_of(node)
        if index < 0:
            return np.zeros(self.batch)
        return self.x[:, index]

    def branch_current(self, source_name: str) -> np.ndarray:
        """Branch current of a voltage source, shape ``(B,)``.

        Sign convention: positive current flows from the ``plus`` node
        through the source to ``minus`` (SPICE).
        """
        element = self.circuit.element(source_name)
        return self.x[:, element.branch_index]

    def device(self, name: str) -> dict[str, np.ndarray]:
        """Operating-point report of a (nonlinear) device."""
        return self.circuit.element(name).op_info(self.x)

    def report(self) -> str:
        """Human-readable OP table (first batch lane)."""
        lines = [f"* operating point ({self.strategy}, {self.iterations} iterations)"]
        for name in self.assembler.topology.node_names:
            lines.append(f"  V({name}) = {self.v(name)[0]: .6g} V")
        for element in self.circuit.nonlinear_elements():
            info = element.op_info(self.x)
            if not info:
                continue
            parts = ", ".join(
                f"{key}={np.asarray(val).reshape(-1)[0]:.4g}"
                for key, val in info.items())
            lines.append(f"  {element.name}: {parts}")
        return "\n".join(lines)


def _newton_attempt(assembler: Assembler, x0: np.ndarray, options: NewtonOptions,
                    *, gmin: float, source_scale: float,
                    time: float | None = None) -> tuple[np.ndarray, bool, int]:
    """One damped-Newton run; returns ``(x, all_converged, iterations)``."""
    x = x0.copy()
    batch = x.shape[0]
    converged = np.zeros(batch, dtype=bool)
    for iteration in range(1, options.max_iterations + 1):
        G, rhs = assembler.newton_system(
            x, gmin=gmin + GMIN_FLOOR, source_scale=source_scale, time=time)
        x_new = solve_batched(G, rhs)
        dx = np.clip(x_new - x, -options.dv_limit, options.dv_limit)
        tol = options.reltol * np.abs(x) + options.vabstol
        lane_converged = np.all(np.abs(dx) <= tol, axis=1)
        # Freeze already-converged lanes; advance the rest.
        x = np.where(converged[:, None], x, x + dx)
        converged |= lane_converged
        if np.all(converged):
            return x, True, iteration
    return x, False, options.max_iterations


def dc_operating_point(circuit, *, options: NewtonOptions | None = None,
                       x0: np.ndarray | None = None,
                       source_scale: float = 1.0,
                       time: float | None = None,
                       assembler: Assembler | None = None) -> OperatingPoint:
    """Solve the DC operating point of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to solve; may be batched.
    x0:
        Optional initial guess ``(B, N)`` (warm start).
    source_scale:
        Fraction of the independent sources to apply (used internally by
        source stepping; exposed for ramp studies).
    time:
        When set, sources take their transient value at ``time`` (used by
        the transient integrator).

    Raises
    ------
    ConvergenceError
        If Newton, gmin stepping and source stepping all fail.
    """
    options = options or NewtonOptions()
    assembler = assembler or Assembler(circuit)
    n, batch = assembler.n, assembler.batch
    x = np.zeros((batch, n)) if x0 is None else np.array(x0, dtype=float)
    if x.ndim == 1:
        x = np.broadcast_to(x, (batch, n)).copy()
    total_iterations = 0

    # Strategy 1: plain Newton from the initial guess.
    x_try, ok, used = _newton_attempt(
        assembler, x, options, gmin=0.0, source_scale=source_scale, time=time)
    total_iterations += used
    if ok:
        return OperatingPoint(circuit, assembler, x_try, total_iterations, "newton")

    # Strategy 2: gmin stepping.
    x_step = x.copy()
    gmin_ok = True
    for exponent in np.linspace(-options.gmin_start_exponent, -12, options.gmin_steps):
        gmin = 10.0 ** exponent
        x_step, ok, used = _newton_attempt(
            assembler, x_step, options, gmin=gmin, source_scale=source_scale,
            time=time)
        total_iterations += used
        if not ok:
            gmin_ok = False
            break
    if gmin_ok:
        x_try, ok, used = _newton_attempt(
            assembler, x_step, options, gmin=0.0, source_scale=source_scale,
            time=time)
        total_iterations += used
        if ok:
            return OperatingPoint(circuit, assembler, x_try, total_iterations, "gmin")

    # Strategy 3: source stepping (with a light gmin safety net removed at
    # the final full-scale clean solve).
    x_step = np.zeros((batch, n))
    for scale in np.linspace(1.0 / options.source_steps, 1.0, options.source_steps):
        x_step, ok, used = _newton_attempt(
            assembler, x_step, options, gmin=1e-9,
            source_scale=scale * source_scale, time=time)
        total_iterations += used
        if not ok:
            break
    else:
        x_try, ok, used = _newton_attempt(
            assembler, x_step, options, gmin=0.0, source_scale=source_scale,
            time=time)
        total_iterations += used
        if ok:
            return OperatingPoint(circuit, assembler, x_try, total_iterations,
                                  "source")

    raise ConvergenceError(
        f"DC operating point of {circuit.title!r} failed to converge "
        f"after {total_iterations} Newton iterations "
        "(tried plain Newton, gmin stepping and source stepping)")
