"""Batched Modified Nodal Analysis (MNA) assembly.

The assembler turns a compiled :class:`~repro.circuit.netlist.Circuit` into
stacked dense matrices

* ``G`` -- conductance/Jacobian matrix, shape ``(B, N, N)``,
* ``C`` -- dynamic (capacitance/inductance) matrix, shape ``(B, N, N)``,
* ``rhs`` -- excitation vector, shape ``(B, N)``,

where ``B`` is the circuit batch length (Monte-Carlo samples or GA
individuals solved simultaneously) and ``N`` the unknown count (non-ground
nodes + auxiliary branch currents).  Matrices are dense because analogue
cells are small (the paper's OTA compiles to ~13 unknowns); stacking across
``B`` and using ``numpy.linalg.solve`` on the stack is what makes the
paper's 10,000-individual optimisation and 200-sample-per-point Monte Carlo
runs practical in Python.
"""

from __future__ import annotations

import numpy as np

from ..errors import NetlistError, SingularMatrixError

__all__ = ["StampContext", "ACExcitationContext", "Assembler", "solve_batched"]


class StampContext:
    """Accumulator for element stamps.

    ``add_g``/``add_c``/``add_rhs`` silently drop ground rows/columns
    (index ``-1``), which keeps element stamping code branch-free.
    """

    def __init__(self, n_unknowns: int, batch: int, *, time: float | None = None,
                 source_scale: float = 1.0) -> None:
        self.G = np.zeros((batch, n_unknowns, n_unknowns))
        self.C = np.zeros((batch, n_unknowns, n_unknowns))
        self.rhs = np.zeros((batch, n_unknowns))
        #: Multiplier applied by independent sources (source stepping).
        self.source_scale = source_scale
        #: Transient time; ``None`` outside transient analysis.
        self.time = time

    def add_g(self, i: int, j: int, value) -> None:
        """Add ``value`` to the conductance matrix entry ``(i, j)``."""
        if i < 0 or j < 0:
            return
        self.G[:, i, j] += value

    def add_c(self, i: int, j: int, value) -> None:
        """Add ``value`` to the dynamic matrix entry ``(i, j)``."""
        if i < 0 or j < 0:
            return
        self.C[:, i, j] += value

    def add_rhs(self, i: int, value) -> None:
        """Add ``value`` to the excitation vector entry ``i``."""
        if i < 0:
            return
        self.rhs[:, i] += value


class _JacobianContext:
    """Context handed to nonlinear ``load``: shares G/rhs with a parent."""

    def __init__(self, G: np.ndarray, rhs: np.ndarray,
                 source_scale: float = 1.0, time: float | None = None) -> None:
        self.G = G
        self.rhs = rhs
        self.source_scale = source_scale
        self.time = time

    def add_g(self, i: int, j: int, value) -> None:
        if i < 0 or j < 0:
            return
        self.G[:, i, j] += value

    def add_c(self, i: int, j: int, value) -> None:  # capacitors open in DC
        pass

    def add_rhs(self, i: int, value) -> None:
        if i < 0:
            return
        self.rhs[:, i] += value


class ACExcitationContext:
    """Collects the complex AC excitation vector from source ``ac_rhs``."""

    def __init__(self, n_unknowns: int, batch: int) -> None:
        self.rhs = np.zeros((batch, n_unknowns), dtype=complex)

    def add_rhs(self, i: int, value) -> None:
        if i < 0:
            return
        self.rhs[:, i] += value


class Assembler:
    """Stamps a circuit into batched MNA matrices, caching the linear part.

    The linear stamps (R, C, L, controlled sources, source *topology*) never
    change during Newton iteration, so they are built once; each Newton step
    copies them and adds the nonlinear device loads.
    """

    def __init__(self, circuit) -> None:
        self.circuit = circuit
        self.topology = circuit.compile()
        self.n = self.topology.n_unknowns
        self.batch = self.topology.batch
        self._resolve_current_controls()
        self._linear_cache: StampContext | None = None

    def _resolve_current_controls(self) -> None:
        """Bind CCCS/CCVS control branches to voltage-source aux rows."""
        for element in self.circuit:
            control_name = getattr(element, "control_source", None)
            if control_name is None:
                continue
            source = self.circuit.element(control_name)
            branch = getattr(source, "branch_index", None)
            if branch is None:
                raise NetlistError(
                    f"{element.name!r}: control element {control_name!r} "
                    "has no branch current (must be a voltage source)")
            element.bind_control(branch)

    # -- linear part ---------------------------------------------------------
    def linear(self, *, time: float | None = None) -> StampContext:
        """Linear stamps at unit source scale (cached for ``time is None``)."""
        if time is None and self._linear_cache is not None:
            return self._linear_cache
        ctx = StampContext(self.n, self.batch, time=time, source_scale=1.0)
        for element in self.circuit:
            element.stamp(ctx)
        if time is None:
            self._linear_cache = ctx
        return ctx

    # -- Newton iteration ---------------------------------------------------------
    def newton_system(self, voltages: np.ndarray, *, gmin: float = 0.0,
                      source_scale: float = 1.0,
                      time: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Jacobian and right-hand side linearised at ``voltages``.

        ``gmin`` is added to the *node* diagonal entries only (never the
        auxiliary branch rows, whose equations are not KCL).
        """
        lin = self.linear(time=time)
        G = lin.G.copy()
        rhs = lin.rhs * source_scale
        ctx = _JacobianContext(G, rhs, source_scale=source_scale, time=time)
        for element in self.circuit.nonlinear_elements():
            element.load(voltages, ctx)
        n_nodes = self.topology.n_nodes
        if gmin:
            idx = np.arange(n_nodes)
            G[:, idx, idx] += gmin
        return G, rhs

    # -- small-signal (AC) system -----------------------------------------------------
    def ac_system(self, op_voltages: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Small-signal ``(G, C, excitation)`` at the DC solution.

        ``G``/``C`` are real ``(B, N, N)``; the excitation is complex
        ``(B, N)`` collected from independent sources' AC values.
        """
        ctx = StampContext(self.n, self.batch, source_scale=1.0)
        for element in self.circuit:
            element.stamp(ctx)
        for element in self.circuit.nonlinear_elements():
            element.stamp_ac(op_voltages, ctx)
        ac = ACExcitationContext(self.n, self.batch)
        for element in self.circuit:
            element.ac_rhs(ac)
        return ctx.G, ctx.C, ac.rhs


def _singular_lanes(matrices: np.ndarray) -> list[int]:
    """Flat indices of the singular systems within a stacked batch.

    Runs only on the error path (the batched solve already failed), so a
    per-lane factorisation probe is affordable; it uses the same LAPACK
    LU the batched solve does, so a lane is flagged iff it is what made
    the stack fail.
    """
    n = matrices.shape[-1]
    flat = matrices.reshape(-1, n, n)
    probe = np.zeros(n)
    lanes = []
    for index in range(flat.shape[0]):
        try:
            np.linalg.solve(flat[index], probe)
        except np.linalg.LinAlgError:
            lanes.append(index)
    return lanes


def solve_batched(matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve stacked linear systems ``matrices @ x = rhs``.

    Parameters
    ----------
    matrices:
        Shape ``(..., N, N)``.
    rhs:
        Shape ``(..., N)``.

    Raises
    ------
    SingularMatrixError
        If any system in the stack is singular (typically a floating node
        or a loop of ideal voltage sources).  The exception carries the
        flat indices of the offending lanes as ``lane_indices``, so one
        bad Monte-Carlo sample no longer kills a chunk opaquely: callers
        can report, drop, or re-draw exactly those lanes.
    """
    matrices = np.asarray(matrices)
    try:
        return np.linalg.solve(matrices, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError as exc:
        lanes = _singular_lanes(matrices)
        total = int(np.prod(matrices.shape[:-2], dtype=int))
        if lanes:
            shown = ", ".join(str(lane) for lane in lanes[:8])
            if len(lanes) > 8:
                shown += f", ... ({len(lanes)} total)"
            where = f" in stack lane(s) {shown} of {total}"
        else:  # LAPACK refused the whole stack without naming a lane
            where = ""
        raise SingularMatrixError(
            f"singular MNA matrix{where} "
            f"(floating node or voltage-source loop?): {exc}",
            lane_indices=lanes or None) from exc
