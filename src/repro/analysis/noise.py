"""Small-signal noise analysis.

Computes the output noise power spectral density of a circuit at a DC
operating point, per frequency, with per-element contribution breakdown
and input-referral -- the standard SPICE ``.noise`` analysis.

Method (direct): at each frequency the small-signal system ``Y = G +
j*omega*C`` is assembled once; every elementary noise source (a current
PSD between two nodes) is injected as a unit-current right-hand side, the
stacked system is solved for all sources at once, and the output PSD is
``sum_k |H_k|^2 * S_k(f)``.  Independent sources are quiet; noise comes
from:

* resistors -- thermal, ``S_i = 4kT/R``;
* diodes -- shot, ``S_i = 2qI``;
* MOSFETs -- channel thermal ``S_i = 4kT * gamma_n * gm`` (long-channel
  ``gamma_n = 2/3``) plus flicker ``S_i = KF * gm^2 / (Cox W Leff f)``.

Noise is not required by the paper's flow, but an analogue-model library
without ``.noise`` would not be credible; the example designs use it for
sanity numbers (e.g. the classic integrated kT/C of an RC filter, which
the test suite verifies to four digits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .dc import OperatingPoint, dc_operating_point
from .mna import Assembler

__all__ = ["NoiseResult", "noise_analysis", "BOLTZMANN", "TEMPERATURE"]

BOLTZMANN = 1.380649e-23
ELEMENTARY_CHARGE = 1.602176634e-19
#: Analysis temperature [K] (300 K, matching the device model's kT/q).
TEMPERATURE = 300.0

#: Long-channel MOSFET thermal-noise coefficient.
_GAMMA_THERMAL = 2.0 / 3.0


@dataclass
class _NoiseSource:
    """One elementary noise current source between two matrix rows."""

    element: str
    label: str
    node_a: int
    node_b: int
    psd: object  # callable f -> (B,) array [A^2/Hz]


def _collect_sources(circuit, op: OperatingPoint) -> list[_NoiseSource]:
    """Enumerate the elementary noise sources of every element."""
    from ..circuit.elements import Diode, Resistor
    from ..circuit.mosfet import Mosfet

    four_kt = 4.0 * BOLTZMANN * TEMPERATURE
    sources: list[_NoiseSource] = []
    for element in circuit:
        if isinstance(element, Resistor):
            a, b = element._node_idx
            resistance = np.asarray(element.resistance, dtype=float)
            psd_value = four_kt / resistance

            def make_flat(value):
                return lambda f: np.broadcast_to(value, (op.batch,))

            sources.append(_NoiseSource(element.name, "thermal", a, b,
                                        make_flat(psd_value)))
        elif isinstance(element, Diode):
            a, b = element._node_idx
            info = element.op_info(op.x)
            shot = 2.0 * ELEMENTARY_CHARGE * np.abs(info["id"])
            sources.append(_NoiseSource(
                element.name, "shot", a, b,
                (lambda value: lambda f: np.broadcast_to(
                    value, (op.batch,)))(shot)))
        elif isinstance(element, Mosfet):
            d_idx, _, s_idx, _ = element._node_idx
            vgs, vds, vbs = element._terminal_voltages(op.x)
            point = element.evaluate(vgs, vds, vbs)
            gm = np.abs(point.gm)
            thermal = four_kt * _GAMMA_THERMAL * gm
            sources.append(_NoiseSource(
                element.name, "thermal", d_idx, s_idx,
                (lambda value: lambda f: np.broadcast_to(
                    value, (op.batch,)))(thermal)))

            model = element.model
            if model.kf > 0.0:
                area_cap = model.cox * np.asarray(element.w, float) \
                    * element.leff
                flicker_k = model.kf * gm * gm / np.maximum(area_cap, 1e-30)

                def make_flicker(value, af=model.af):
                    return lambda f: value / np.maximum(f, 1e-3) ** af

                sources.append(_NoiseSource(
                    element.name, "flicker", d_idx, s_idx,
                    make_flicker(flicker_k)))
    return sources


@dataclass
class NoiseResult:
    """Result of a noise analysis.

    Attributes
    ----------
    freqs:
        Frequency grid ``(F,)``.
    output_psd:
        Output noise voltage PSD, shape ``(B, F)`` [V^2/Hz].
    gain:
        |transfer| from the designated input source to the output,
        shape ``(B, F)`` (only when an input was named).
    contributions:
        Mapping ``"element:kind"`` -> ``(B, F)`` output-referred PSD.
    """

    freqs: np.ndarray
    output_psd: np.ndarray
    gain: np.ndarray | None
    contributions: dict[str, np.ndarray]

    @property
    def input_referred_psd(self) -> np.ndarray:
        """Input-referred noise PSD ``output_psd / |gain|^2``."""
        if self.gain is None:
            raise AnalysisError("no input source was designated")
        return self.output_psd / np.maximum(self.gain ** 2, 1e-300)

    def integrated_output_rms(self, f_start: float | None = None,
                              f_stop: float | None = None) -> np.ndarray:
        """RMS output noise over a band, by trapezoidal integration of the
        PSD (``sqrt(integral S df)``), shape ``(B,)``."""
        mask = np.ones(self.freqs.size, dtype=bool)
        if f_start is not None:
            mask &= self.freqs >= f_start
        if f_stop is not None:
            mask &= self.freqs <= f_stop
        if mask.sum() < 2:
            raise AnalysisError("integration band contains <2 sweep points")
        freqs = self.freqs[mask]
        psd = self.output_psd[:, mask]
        return np.sqrt(np.trapezoid(psd, freqs, axis=1))

    def dominant_contributor(self, frequency_index: int = 0) -> str:
        """Name of the largest contributor at a sweep point (lane 0)."""
        return max(self.contributions,
                   key=lambda k: self.contributions[k][0, frequency_index])


def noise_analysis(circuit, freqs, *, output_node: str,
                   input_source: str | None = None,
                   op: OperatingPoint | None = None) -> NoiseResult:
    """Run a ``.noise``-style analysis.

    Parameters
    ----------
    output_node:
        Node whose voltage noise PSD is reported.
    input_source:
        Optional independent-source name for input referral; its transfer
        to the output is computed from its AC excitation topology (a unit
        AC magnitude is assumed).

    Raises
    ------
    AnalysisError
        If the circuit has no noisy elements or the output is ground.
    """
    freqs = np.atleast_1d(np.asarray(freqs, dtype=float))
    if op is None:
        op = dc_operating_point(circuit)
    assembler = op.assembler if op.assembler.circuit is circuit \
        else Assembler(circuit)

    out_index = assembler.topology.index_of(output_node)
    if out_index < 0:
        raise AnalysisError("output node must not be ground")

    G, C, _ = assembler.ac_system(op.x)
    batch, n = op.x.shape
    sources = _collect_sources(circuit, op)
    if not sources:
        raise AnalysisError(f"circuit {circuit.title!r} has no noisy elements")

    # Unit-current injection vector per source (shared across batch).
    injections = np.zeros((len(sources), n))
    for idx, source in enumerate(sources):
        if source.node_a >= 0:
            injections[idx, source.node_a] += 1.0
        if source.node_b >= 0:
            injections[idx, source.node_b] -= 1.0

    gain = None
    input_rhs = None
    if input_source is not None:
        element = circuit.element(input_source)
        saved = element.ac_mag
        element.ac_mag = 1.0
        try:
            _, _, excitation = assembler.ac_system(op.x)
        finally:
            element.ac_mag = saved
        input_rhs = excitation  # (B, n) complex
        gain = np.empty((batch, freqs.size))

    output_psd = np.zeros((batch, freqs.size))
    contributions = {f"{s.element}:{s.label}": np.zeros((batch, freqs.size))
                     for s in sources}

    for k, frequency in enumerate(freqs):
        omega = 2.0 * np.pi * frequency
        Y = G + 1j * omega * C  # (B, n, n)
        # Solve all unit injections at once: (B, n, S).
        rhs = np.broadcast_to(injections.T, (batch, n, len(sources)))
        transfer = np.linalg.solve(Y, rhs)[:, out_index, :]  # (B, S)
        for idx, source in enumerate(sources):
            psd_k = np.asarray(source.psd(frequency), dtype=float)
            term = np.abs(transfer[:, idx]) ** 2 * psd_k
            output_psd[:, k] += term
            contributions[f"{source.element}:{source.label}"][:, k] = term
        if input_rhs is not None:
            response = np.linalg.solve(Y, input_rhs[..., None])[..., 0]
            gain[:, k] = np.abs(response[:, out_index])

    return NoiseResult(freqs=freqs, output_psd=output_psd, gain=gain,
                       contributions=contributions)
