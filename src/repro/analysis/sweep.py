"""Parameter sweeps built on the batch machinery.

A sweep is just a batched circuit: the swept values become a batch axis
and the whole sweep is solved in one stacked factorisation.  This module
provides the small conveniences for the common cases (sweeping a source,
sweeping element values).
"""

from __future__ import annotations

import numpy as np

from .dc import NewtonOptions, OperatingPoint, dc_operating_point

__all__ = ["dc_sweep", "with_element_values"]


class with_element_values:
    """Context manager that temporarily overrides element attribute values.

    Overrides are ``{(element_name, attribute): value}`` where values may be
    batch arrays.  The circuit is re-compiled on entry and exit so the batch
    length stays consistent.

    >>> with with_element_values(circuit, {("R1", "resistance"): np.r_[1e3, 2e3]}):
    ...     op = dc_operating_point(circuit)   # batch of 2
    """

    def __init__(self, circuit, overrides: dict) -> None:
        self.circuit = circuit
        self.overrides = dict(overrides)
        self._saved: dict = {}

    def __enter__(self):
        for (name, attr), value in self.overrides.items():
            element = self.circuit.element(name)
            self._saved[(name, attr)] = getattr(element, attr)
            setattr(element, attr, value)
        self.circuit.invalidate()
        return self.circuit

    def __exit__(self, *exc_info):
        for (name, attr), value in self._saved.items():
            setattr(self.circuit.element(name), attr, value)
        self.circuit.invalidate()
        return False


def dc_sweep(circuit, source_name: str, values, *,
             options: NewtonOptions | None = None) -> OperatingPoint:
    """DC transfer sweep: solve the OP for each source value in ``values``.

    Returns a batched :class:`OperatingPoint` whose lane ``k`` corresponds
    to ``values[k]``.  The source's original value is restored afterwards.
    """
    values = np.asarray(values, dtype=float)
    with with_element_values(circuit, {(source_name, "dc"): values}):
        return dc_operating_point(circuit, options=options)
