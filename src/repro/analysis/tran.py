"""Transient analysis (theta-method: backward Euler or trapezoidal).

Solves ``C(x) dx/dt + i(x) = u(t)`` on a fixed time grid.  The device
capacitance matrix is evaluated at the start of each step (semi-implicit),
which is accurate for the gentle waveforms used in the examples and keeps
every step a plain batched linear solve inside a short Newton loop.

Transient analysis is not needed by the paper's flow itself (gain and
phase margin are AC quantities) but completes the simulator substrate and
is used by the filter step-response example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from .dc import NewtonOptions, dc_operating_point
from .mna import Assembler, solve_batched

__all__ = ["TransientResult", "transient_analysis"]


@dataclass
class TransientResult:
    """Result of a transient run.

    Attributes
    ----------
    times:
        Time grid, shape ``(T,)``.
    x:
        Solution trajectory, shape ``(B, T, N)``.
    """

    circuit: object
    assembler: Assembler
    times: np.ndarray
    x: np.ndarray

    def v(self, node: str) -> np.ndarray:
        """Node voltage waveform(s), shape ``(B, T)``."""
        index = self.assembler.topology.index_of(node)
        if index < 0:
            return np.zeros(self.x.shape[:2])
        return self.x[:, :, index]


def transient_analysis(circuit, t_stop: float, dt: float, *,
                       theta: float = 0.5,
                       newton_options: NewtonOptions | None = None,
                       max_newton: int = 50) -> TransientResult:
    """Integrate ``circuit`` from its ``t=0`` operating point to ``t_stop``.

    Parameters
    ----------
    t_stop, dt:
        End time and fixed step size [s].
    theta:
        Implicitness: ``1.0`` = backward Euler, ``0.5`` = trapezoidal.

    Raises
    ------
    ConvergenceError
        If the per-step Newton loop fails (suggests a smaller ``dt``).
    """
    if not 0.5 <= theta <= 1.0:
        raise ValueError("theta must be in [0.5, 1.0]")
    options = newton_options or NewtonOptions()
    assembler = Assembler(circuit)
    op0 = dc_operating_point(circuit, assembler=assembler, time=0.0,
                             options=options)
    times = np.arange(0.0, t_stop + 0.5 * dt, dt)
    batch, n = op0.x.shape
    trajectory = np.empty((batch, times.size, n))
    trajectory[:, 0, :] = op0.x

    x_prev = op0.x
    # Residual of the static part at the previous accepted point:
    # r = i(x) - u = G x - rhs with stamps linearised exactly at x.
    G_prev, rhs_prev = assembler.newton_system(x_prev, time=float(times[0]))
    residual_prev = np.einsum("bij,bj->bi", G_prev, x_prev) - rhs_prev

    for step, t_new in enumerate(times[1:], start=1):
        # Capacitance matrix at the start of the step.
        _, C, _ = assembler.ac_system(x_prev)
        c_over_h = C / dt
        x = x_prev.copy()
        converged = False
        for _ in range(max_newton):
            G, rhs = assembler.newton_system(x, time=float(t_new))
            A = theta * G + c_over_h
            b = (theta * rhs - (1.0 - theta) * residual_prev
                 + np.einsum("bij,bj->bi", c_over_h, x_prev))
            x_new = solve_batched(A, b)
            dx = np.clip(x_new - x, -options.dv_limit, options.dv_limit)
            x = x + dx
            tol = options.reltol * np.abs(x) + options.vabstol
            if np.all(np.abs(dx) <= tol):
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"transient Newton failed at t={t_new:g}s (reduce dt?)")
        trajectory[:, step, :] = x
        G_final, rhs_final = assembler.newton_system(x, time=float(t_new))
        residual_prev = np.einsum("bij,bj->bi", G_final, x) - rhs_final
        x_prev = x

    return TransientResult(circuit, assembler, times, trajectory)
