"""Baseline flows the paper compares against."""

from .direct_mc import DirectMCConfig, DirectMCResult, run_direct_mc_optimization

__all__ = ["DirectMCConfig", "DirectMCResult", "run_direct_mc_optimization"]
