"""The conventional simulation-based flow (the paper's comparison point).

The paper positions its behavioural-model approach against "conventional
simulation based approaches" and quotes, for the OTA optimisation itself,
"a previously reported optimisation time of 7 hours for the same circuit
[HOLMES]" versus its own 4 hours.  The conventional approach this module
implements is the direct one:

* **design loop at transistor level** -- every candidate the optimiser
  visits is simulated at transistor level (no model reuse), and
* **yield inside the loop** -- each candidate's yield/variation is
  estimated by its own Monte-Carlo run, because without a variation model
  there is no other way to target yield.

That makes the cost per candidate ``1 + mc_samples`` transistor
simulations, against the proposed flow's amortised model (10,000 + K x 200
simulations *once*, then zero per use).  The benchmark for Table 5
regenerates exactly this comparison; the filter-design benchmark shows the
reuse effect, where the conventional flow pays transistor prices again
while the proposed flow pays none.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..designs.ota import OTAParameters, evaluate_ota
from ..flow.accounting import SimulationLedger
from ..mc.engine import MCConfig, monte_carlo_points
from ..mc.sampler import stream
from ..measure.specs import SpecSet
from ..moo.ga import (GAConfig, gaussian_mutation, tournament_select,
                      uniform_crossover)
from ..process import C35, ProcessKit
from ..yieldmodel.estimator import YieldEstimate, estimate_yield

__all__ = ["DirectMCConfig", "DirectMCResult", "run_direct_mc_optimization"]


@dataclass(frozen=True)
class DirectMCConfig:
    """Settings of the conventional yield-inclusive optimisation.

    ``backend``/``workers`` select the execution backend for the
    per-candidate Monte Carlo (see :mod:`repro.exec`); the default defers
    to ``REPRO_EXEC_BACKEND`` and then serial execution.  ``chunk_lanes``
    shards each generation's sweep; the default (200 lanes = 4 candidates
    at 50 samples each) splits the stock 1000-lane generation into 5
    chunks, so a pooled backend actually has work to distribute --
    remember that the chunk geometry, not the backend, fixes the random
    draw (see :class:`repro.mc.engine.MCConfig`).
    """

    population: int = 20
    generations: int = 10
    mc_samples_per_candidate: int = 50
    seed: int = 2008
    yield_weight: float = 2.0
    chunk_lanes: int = 200
    backend: str | None = None
    workers: int = 0

    def ga_config(self) -> GAConfig:
        return GAConfig(population_size=self.population,
                        generations=self.generations, seed=self.seed)


@dataclass
class DirectMCResult:
    """Outcome of the conventional flow.

    Attributes
    ----------
    best_parameters:
        Best design found (natural units).
    best_yield:
        Monte-Carlo yield estimate of the best design.
    best_performance:
        Nominal performance of the best design.
    transistor_simulations:
        Total transistor-level simulator calls spent -- the number the
        Table-5 comparison is about.
    """

    config: DirectMCConfig
    best_parameters: dict[str, float]
    best_yield: YieldEstimate
    best_performance: dict[str, float]
    transistor_simulations: int
    ledger: SimulationLedger = field(default_factory=SimulationLedger)


def run_direct_mc_optimization(specs: SpecSet,
                               config: DirectMCConfig | None = None, *,
                               pdk: ProcessKit = C35,
                               progress=None) -> DirectMCResult:
    """Run the conventional flow: GA with per-candidate Monte Carlo.

    Fitness is ``yield + yield_weight^-1-normalised spec margins``: a
    candidate must first pass its own MC yield estimate, then better
    nominal margins break ties.  Every fitness evaluation costs
    ``1 + mc_samples_per_candidate`` transistor simulations.
    """
    config = config or DirectMCConfig()
    rng = stream(config.seed, "direct-mc")
    ledger = SimulationLedger()
    say = progress or (lambda message: None)
    mc_config = MCConfig(n_samples=config.mc_samples_per_candidate,
                         seed=config.seed, chunk_lanes=config.chunk_lanes,
                         backend=config.backend, workers=config.workers)

    pop = config.population
    genes = rng.random((pop, 8))
    best: dict | None = None

    total_sims = 0
    with ledger.timed("conventional optimisation (transistor MC in loop)"):
        for generation in range(config.generations):
            params = OTAParameters.from_normalized(genes)

            # Nominal simulation of the whole population (batched).
            nominal = evaluate_ota(params, pdk=pdk)
            total_sims += pop

            # Per-candidate Monte Carlo: tile each candidate against its
            # own die samples -- the expensive inner loop the proposed
            # flow eliminates.  Routed through the chunked engine so the
            # sweep parallelises across the configured backend.
            generation_genes = genes

            def mc_evaluator(point_indices, repeats, die_sample):
                tiled = OTAParameters.from_normalized(
                    np.repeat(generation_genes[point_indices], repeats,
                              axis=0))
                return evaluate_ota(tiled, pdk=pdk, variations=die_sample)

            mc_perf = monte_carlo_points(
                mc_evaluator, pop, pdk, mc_config,
                stage=f"direct-mc-gen{generation}")
            total_sims += pop * config.mc_samples_per_candidate

            yields = np.empty(pop)
            for i in range(pop):
                candidate_perf = {name: values[i]
                                  for name, values in mc_perf.items()}
                yields[i] = specs.yield_fraction(candidate_perf)

            margins = np.zeros(pop)
            for spec in specs:
                margin = spec.margin(nominal[spec.name])
                scale = max(abs(spec.limit), 1e-9)
                margins += np.clip(margin / scale, -1.0, 1.0)
            fitness = config.yield_weight * yields + margins
            fitness = np.where(
                np.all([np.isfinite(nominal[s.name]) for s in specs], axis=0),
                fitness, -np.inf)

            gen_best = int(np.argmax(fitness))
            if best is None or fitness[gen_best] > best["fitness"]:
                best = {
                    "fitness": float(fitness[gen_best]),
                    "genes": genes[gen_best].copy(),
                    "yield": float(yields[gen_best]),
                    "nominal": {name: float(values[gen_best])
                                for name, values in nominal.items()},
                }
            say(f"generation {generation}: best yield "
                f"{yields.max():.2%}, fitness {fitness[gen_best]:.3f}")

            parents_a = genes[tournament_select(fitness, pop, 2, rng)]
            parents_b = genes[tournament_select(fitness, pop, 2, rng)]
            children = uniform_crossover(parents_a, parents_b, 0.9, rng)
            genes = gaussian_mutation(children, 0.1, 0.08, rng)
            genes[0] = best["genes"]  # elitism

    ledger.record("conventional optimisation (transistor MC in loop)",
                  total_sims, 0.0)

    # Final verification MC on the winner (same budget as the proposed
    # flow's verification, for a like-for-like yield number).
    winner = OTAParameters.from_normalized(best["genes"])
    with ledger.timed("final verification", 500):
        tiled = winner.tile(500)
        die = pdk.sample(500, stream(config.seed, "direct-mc-verify"))
        final_perf = evaluate_ota(tiled, pdk=pdk, variations=die)
        final_yield = estimate_yield(final_perf, specs)
    total_sims += 500

    values = winner.to_array()
    names = ("w1", "l1", "w2", "l2", "w3", "l3", "w4", "l4")
    return DirectMCResult(
        config=config,
        best_parameters={name: float(values[i])
                         for i, name in enumerate(names)},
        best_yield=final_yield,
        best_performance=best["nominal"],
        transistor_simulations=total_sims,
        ledger=ledger,
    )
