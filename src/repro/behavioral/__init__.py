"""Behavioural (Verilog-A-equivalent) models and code generation."""

from .codegen import generate_verilog_a, write_verilog_a_package
from .ota import BehavioralOTA, ota_transfer_function

__all__ = [
    "generate_verilog_a", "write_verilog_a_package",
    "BehavioralOTA", "ota_transfer_function",
]
