"""Behavioural OTA macromodel.

This is the Python twin of the paper's Verilog-A module::

    gain_in_v = pow(10, gain_prop/20);
    V(out) <+ V(inp)*(-gain_in_v) - I(out)*ro;

i.e. a differential voltage amplifier with open-circuit gain ``gain`` and
output resistance ``ro`` (Thevenin form).  Driving a load capacitance
produces the OTA's dominant pole at ``1/(2*pi*ro*CL)`` and a unity-gain
frequency of ``gain/(2*pi*ro*CL) = gm/(2*pi*CL)``; equivalently the model
is the Norton transconductor ``gm = gain/ro`` with output resistance
``ro`` -- the form used by the Gm-C filter of the paper's section 5.

The model is deliberately first-order: the paper notes (Figure 8) that its
behavioural response diverges from the transistor simulation above ~40 MHz
because mirror-node parasitic poles are not modelled, "although these
higher order effects ... could easily be incorporated if required".  We
incorporate them optionally via ``parasitic_pole_hz`` (an internal
unity-gain RC stage), which the Figure-8 extension benchmark exercises.
"""

from __future__ import annotations

import numpy as np

from ..circuit.netlist import Element, _param_batch
from ..errors import NetlistError
from ..units import from_db20

__all__ = ["BehavioralOTA", "ota_transfer_function"]


class BehavioralOTA(Element):
    """Table-model-driven OTA macromodel as an MNA element.

    Parameters
    ----------
    out, inp, inn:
        Output, non-inverting and inverting input nodes.  Inputs are
        ideal (no input current).
    gain:
        Open-circuit voltage gain, *linear* (use
        :func:`repro.units.from_db20` to convert the table's dB value,
        exactly like the Verilog-A ``pow(10, gain_prop/20)``).
    ro:
        Output resistance [ohm].
    parasitic_pole_hz:
        Optional second pole frequency modelling the mirror-node
        parasitics (``None`` reproduces the paper's first-order module).

    All parameters accept batch arrays.
    """

    def __init__(self, name: str, out: str, inp: str, inn: str, *,
                 gain, ro, parasitic_pole_hz=None) -> None:
        super().__init__(name, (out, inp, inn))
        self.gain = gain
        self.ro = ro
        self.parasitic_pole_hz = parasitic_pole_hz
        if np.any(np.asarray(ro, dtype=float) <= 0):
            raise NetlistError(f"behavioural OTA {name!r}: ro must be positive")
        if parasitic_pole_hz is not None and np.any(
                np.asarray(parasitic_pole_hz, dtype=float) <= 0):
            raise NetlistError(
                f"behavioural OTA {name!r}: parasitic pole must be positive")

    def aux_count(self) -> int:
        # Output branch current, plus the internal pole state when present.
        return 1 if self.parasitic_pole_hz is None else 2

    def lint_branches(self):
        """Topology-lint classification (see :mod:`repro.lint.graph`).

        The output stage is a Thevenin source, so it pins the output
        voltage (DC-conducting); the inputs are ideal sense terminals.
        Unity-feedback wiring (output tied to an input) is a legitimate
        configuration, so tied pairs produce no branch at all.
        """
        out, inp, inn = self.nodes
        return [(out, ref, "resistive") for ref in (inp, inn) if ref != out]

    def batch_size(self) -> int:
        extras = () if self.parasitic_pole_hz is None else (self.parasitic_pole_hz,)
        return _param_batch(self.gain, self.ro, *extras)

    def stamp(self, ctx) -> None:
        out, inp, inn = self._node_idx
        gain = np.asarray(self.gain, dtype=float)
        ro = np.asarray(self.ro, dtype=float)

        if self.parasitic_pole_hz is None:
            (k,) = self._aux_idx
            # KCL at the output: i_k is the current flowing from the node
            # *into* the element (same convention as VoltageSource), so
            # the current delivered to the load is -i_k.
            ctx.add_g(out, k, 1.0)
            # Branch equation (Thevenin): V(out) = gain*vd - ro*i_delivered
            #                                    = gain*vd + ro*i_k,
            # stamped as V(out) - gain*(V(inp)-V(inn)) - ro*i_k = 0.
            ctx.add_g(k, out, 1.0)
            ctx.add_g(k, inp, -gain)
            ctx.add_g(k, inn, gain)
            ctx.add_g(k, k, -ro)
            return

        k, x = self._aux_idx  # x: internal pole-node voltage (aux unknown)
        pole = np.asarray(self.parasitic_pole_hz, dtype=float)
        tau = 1.0 / (2.0 * np.pi * pole)
        # Internal stage: x + tau*dx/dt = gain*(V(inp)-V(inn)).
        ctx.add_g(x, x, 1.0)
        ctx.add_g(x, inp, -gain)
        ctx.add_g(x, inn, gain)
        ctx.add_c(x, x, tau)
        # Output stage: V(out) = x + ro*i_k (i_k flows into the element).
        ctx.add_g(out, k, 1.0)
        ctx.add_g(k, out, 1.0)
        ctx.add_g(k, x, -1.0)
        ctx.add_g(k, k, -ro)

    @property
    def gm(self) -> np.ndarray:
        """Equivalent Norton transconductance ``gain / ro``."""
        return np.asarray(self.gain, dtype=float) / np.asarray(self.ro,
                                                               dtype=float)

    @classmethod
    def from_table(cls, name: str, out: str, inp: str, inn: str, *,
                   gain_db, ro, parasitic_pole_hz=None) -> "BehavioralOTA":
        """Construct from a dB gain (the table-model output unit)."""
        gain = from_db20(np.asarray(gain_db, dtype=float))
        return cls(name, out, inp, inn, gain=gain, ro=ro,
                   parasitic_pole_hz=parasitic_pole_hz)


def ota_transfer_function(freqs, *, gain_db, ro, cl,
                          parasitic_pole_hz=None) -> np.ndarray:
    """Closed-form open-loop response of the macromodel with a capacitive
    load: ``H(f) = A / ((1 + j f/f_p1) (1 + j f/f_p2))`` where
    ``f_p1 = 1/(2*pi*ro*cl)``.

    Shapes broadcast: scalar parameters give ``(F,)``, batch parameters
    ``(B, F)``.  Used by the Figure-8 benchmark to compare the behavioural
    model against the transistor-level AC sweep without building a
    circuit.
    """
    freqs = np.asarray(freqs, dtype=float)
    gain = from_db20(np.asarray(gain_db, dtype=float))[..., None]
    ro = np.asarray(ro, dtype=float)[..., None]
    cl = np.asarray(cl, dtype=float)[..., None]
    f_p1 = 1.0 / (2.0 * np.pi * ro * cl)
    response = gain / (1.0 + 1j * freqs / f_p1)
    if parasitic_pole_hz is not None:
        f_p2 = np.asarray(parasitic_pole_hz, dtype=float)[..., None]
        response = response / (1.0 + 1j * freqs / f_p2)
    return response
