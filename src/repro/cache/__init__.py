"""Content-addressed result caching: fingerprints, atomic IO, the store.

The paper's verification workload -- 200 Monte-Carlo samples on each of
1022 Pareto points -- is exactly the kind of request a production yield
service fields millions of times with heavy overlap.  iVAMS (PAPERS.md)
shows cached polynomial metamodels standing in for the simulator
entirely; this package generalises that idea to *every* estimator in the
stack: any unit of work whose inputs can be written down canonically
(:func:`canonical_fingerprint`) can have its result stored once and
served from disk forever after, because the estimators are deterministic
functions of their fingerprinted inputs.

Three pieces:

* :func:`canonical_fingerprint` -- the keying discipline.  A fingerprint
  is canonical JSON over ``(kind, library version, evaluator identity,
  config)``: two requests share a fingerprint iff they are guaranteed to
  produce bit-identical results, and *any* input that could change the
  numbers -- the seed, the spec set, the PDK, the code version --
  changes the key.
* :func:`atomic_write_npz` / :func:`atomic_write_bytes` -- crash-safe
  persistence (unique temp file in the destination directory, then
  ``os.replace``), shared by the cache store and the streaming
  Monte-Carlo checkpoints so a killed or concurrent writer can never
  leave a truncated artefact behind.
* :class:`ResultCache` -- the fingerprint-keyed store itself: one
  ``.npz`` (arrays) + ``.json`` (metadata) pair per entry, an LRU size
  bound, and hit/miss/eviction counters.
"""

from .fingerprint import (canonical_fingerprint, canonicalize,
                          fingerprint_key, library_version)
from .store import (CachedResult, CacheStats, ResultCache,
                    atomic_write_bytes, atomic_write_npz, atomic_write_text)

__all__ = [
    "canonical_fingerprint", "canonicalize", "fingerprint_key",
    "library_version",
    "CachedResult", "CacheStats", "ResultCache",
    "atomic_write_bytes", "atomic_write_npz", "atomic_write_text",
]
