"""Canonical configuration fingerprints.

A *fingerprint* is the exact, human-readable identity of a unit of work:
canonical JSON over everything that shapes its numeric result.  The
content-addressed cache (:mod:`repro.cache.store`) keys entries by its
digest, the streaming Monte-Carlo checkpoints embed it to reject
incompatible resumes, and the service layer uses it to recognise
identical requests from different users.

The keying discipline (generalised from the checkpoint fingerprint the
streaming engine introduced in PR 5):

* **Everything that can change the numbers is in the key** -- the
  workload kind, the full canonical config (seed, sample count, chunk
  geometry, specs, PDK name, stopping rule...), the *evaluator
  identity* (a digest of the design under evaluation -- the fingerprint
  cannot see inside an opaque callable, so callers must name what it
  computes), and the library version (``repro.__version__``), so a code
  change can never serve stale numbers.
* **Nothing else is** -- notably the execution backend and worker
  count, which by the :mod:`repro.exec` determinism contract never
  affect results, so the same request parallelised differently still
  hits the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

__all__ = ["canonical_fingerprint", "canonicalize", "fingerprint_key",
           "library_version"]


def library_version() -> str:
    """The running library's version (the fingerprint's code salt)."""
    # Late import and dynamic attribute read: the version must be
    # looked up at fingerprint time, never frozen at import time.
    import repro
    return repro.__version__


def canonicalize(value):
    """Reduce a configuration value to a canonical JSON-able form.

    Handles the shapes workload configs are made of: dataclasses
    (``asdict``), mappings (string keys, sorted by JSON emission),
    sequences (tuples/lists/sets -> lists; sets are sorted), numpy
    scalars (native Python numbers) and arrays (replaced by a
    ``sha256:`` digest of shape, dtype and bytes -- large design
    matrices key the cache without being copied into it), ``None``,
    ``bool``, ``int``, ``float`` and ``str`` as themselves.  Anything
    else must provide a ``describe()`` method (e.g.
    :class:`repro.measure.specs.SpecSet`) or be pre-converted by the
    caller.

    Raises
    ------
    TypeError
        For values with no canonical form (opaque objects, callables).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; JSON emission of the float
        # itself does too (json uses repr), so floats pass through.
        return value
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes())
        return (f"sha256:{digest.hexdigest()}"
                f":{value.dtype.str}:{list(value.shape)}")
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"fingerprint mapping keys must be strings, "
                    f"got {key!r}")
            out[key] = canonicalize(item)
        return out
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    describe = getattr(value, "describe", None)
    if callable(describe):
        return describe()
    raise TypeError(f"value has no canonical fingerprint form: {value!r} "
                    f"({type(value).__name__})")


def canonical_fingerprint(kind: str, config, *, evaluator: str = "",
                          version: str | None = None) -> str:
    """The canonical fingerprint text of one unit of work.

    Parameters
    ----------
    kind:
        The workload kind (``"mc-streaming"``, ``"yield-estimate"``,
        ...): two different computations over identical configs must
        never collide.
    config:
        The full canonical configuration (see :func:`canonicalize`).
    evaluator:
        Identity of the evaluator/design under computation -- typically
        a digest of the design parameters and testbench settings.  The
        evaluator itself is an opaque callable the fingerprint cannot
        inspect; an empty string means the config already determines it.
    version:
        Library-version salt; defaults to the running
        ``repro.__version__``, so upgrading the library invalidates
        every cached result rather than serving numbers an older
        algorithm produced.

    Returns
    -------
    A deterministic, process-independent JSON string (sorted keys, no
    whitespace).  Key the cache with :func:`fingerprint_key` of it.
    """
    payload = {
        "kind": kind,
        "version": library_version() if version is None else version,
        "evaluator": evaluator,
        "config": canonicalize(config),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint_key(fingerprint: str) -> str:
    """Content-address of a fingerprint: its SHA-256 hex digest."""
    return hashlib.sha256(fingerprint.encode()).hexdigest()
