"""The fingerprint-keyed result store and its crash-safe writers.

Entries live as a ``<key>.npz`` / ``<key>.json`` pair under one cache
directory, where ``key`` is the SHA-256 of the canonical fingerprint
(:func:`repro.cache.fingerprint.fingerprint_key`).  The ``.npz`` holds
the result arrays plus the full fingerprint text (so a digest collision
or a corrupted entry can never be served); the ``.json`` sidecar holds
the human-readable metadata the service layer lists jobs from.

Every write is atomic -- a uniquely-named temp file in the destination
directory followed by ``os.replace`` -- so a killed writer leaves either
the old entry or the new one, never a truncated file, and two concurrent
writers of the same key simply race to an identical result.  The
streaming Monte-Carlo checkpoints (:mod:`repro.mc.streaming`) persist
through the same writers.

The store is bounded: :class:`ResultCache` evicts least-recently-used
entries (``.npz`` mtime, refreshed on every hit) once the configured
byte or entry budget is exceeded, and counts hits, misses, stores and
evictions for the service's operational metrics.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ReproError
from .fingerprint import fingerprint_key


def _telemetry():
    # Late import: repro.telemetry's event sink builds on this module's
    # atomic writers, so the dependency must stay one-way at import time.
    from .. import telemetry
    return telemetry

__all__ = ["CachedResult", "CacheStats", "ResultCache",
           "atomic_write_bytes", "atomic_write_npz", "atomic_write_text"]

#: Default byte budget of a :class:`ResultCache` (1 GiB).
DEFAULT_MAX_BYTES = 1 << 30

#: npz member names reserved by the store itself.
_FINGERPRINT_KEY = "__fingerprint__"

# Distinguishes temp files of concurrent writers within one process
# (the pid distinguishes processes).
_tmp_counter = itertools.count()


def _tmp_path(path: Path) -> Path:
    """A unique temp-file name in ``path``'s own directory.

    Same directory, so ``os.replace`` is an atomic rename (never a
    cross-device copy); unique per (pid, call), so concurrent writers --
    two service workers checkpointing, a killed job's successor -- can
    never clobber each other's half-written file.
    """
    return path.with_name(
        f".{path.name}.{os.getpid()}.{next(_tmp_counter)}.tmp")


def atomic_write_bytes(path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    return atomic_write_bytes(path, text.encode())


def atomic_write_npz(path, arrays: dict) -> Path:
    """Write a compressed ``.npz`` of ``arrays`` to ``path`` atomically.

    ``np.savez_compressed`` is handed an open file object, so it cannot
    append its own ``.npz`` suffix to the temp name and the final
    ``os.replace`` always targets the file actually written.
    """
    path = Path(path)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


@dataclass
class CacheStats:
    """Operational counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0

    def describe(self) -> str:
        return (f"cache: {self.hits} hit(s), {self.misses} miss(es) "
                f"({100.0 * self.hit_rate:.1f}% hit rate), "
                f"{self.stores} store(s), {self.evictions} eviction(s)")


@dataclass
class CachedResult:
    """One stored result: the fingerprint it answers, its payload."""

    fingerprint: str
    key: str
    meta: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


class ResultCache:
    """Content-addressed result store with an LRU size bound.

    Parameters
    ----------
    directory:
        The cache directory (created if needed).  Entries from earlier
        processes are served as long as their fingerprints match --
        the on-disk format *is* the cache; instances only add counters.
    max_bytes:
        Byte budget over all entries; least-recently-used entries are
        evicted after every store once it is exceeded.  ``None``
        disables the bound.
    max_entries:
        Optional entry-count bound, enforced the same way.

    Thread safety: one instance may be shared across threads (the
    :class:`repro.service.JobQueue` worker pool shares exactly one) --
    lookups, stores, eviction and the stats counters are serialised by
    an internal lock, so concurrent hits never lose counter increments
    and eviction never races a store's LRU refresh.  Cross-*process*
    safety comes from the atomic writers; only the in-memory counters
    are per-instance.
    """

    def __init__(self, directory, *, max_bytes: int | None = DEFAULT_MAX_BYTES,
                 max_entries: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ReproError("ResultCache.max_bytes must be >= 1 (or None)")
        if max_entries is not None and max_entries < 1:
            raise ReproError("ResultCache.max_entries must be >= 1 (or None)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.RLock()

    # -- lookup -----------------------------------------------------------
    def get(self, fingerprint: str) -> CachedResult | None:
        """The stored result of ``fingerprint``, or ``None`` (a miss).

        A hit refreshes the entry's LRU position.  Unreadable or
        mismatched entries (truncated by an ancient non-atomic writer,
        or a digest collision) are dropped and reported as misses --
        the cache must never serve a result it cannot vouch for.
        """
        key = fingerprint_key(fingerprint)
        npz_path = self._npz(key)
        with self._lock:
            try:
                with np.load(npz_path) as data:
                    stored = bytes(data[_FINGERPRINT_KEY]).decode("utf-8")
                    if stored != fingerprint:
                        raise ReproError("fingerprint mismatch")
                    arrays = {name: data[name].copy() for name in data.files
                              if name != _FINGERPRINT_KEY}
            except FileNotFoundError:
                self.stats.misses += 1
                _telemetry().counter_add("cache.misses")
                return None
            except Exception:
                self._remove(key)
                self.stats.misses += 1
                _telemetry().counter_add("cache.misses")
                return None
            meta = {}
            json_path = self._json(key)
            try:
                meta = json.loads(json_path.read_text()).get("meta", {})
            except (OSError, ValueError):
                pass  # arrays are intact; metadata is advisory
            now = None  # default: current time
            os.utime(npz_path, now)
            self.stats.hits += 1
            _telemetry().counter_add("cache.hits")
        return CachedResult(fingerprint=fingerprint, key=key, meta=meta,
                            arrays=arrays)

    def __contains__(self, fingerprint: str) -> bool:
        return self._npz(fingerprint_key(fingerprint)).exists()

    # -- store ------------------------------------------------------------
    def put(self, fingerprint: str, arrays: dict | None = None,
            meta: dict | None = None) -> CachedResult:
        """Store a result under its fingerprint (atomically), then evict.

        ``arrays`` maps names to numpy arrays; names starting with
        ``__`` are reserved.  ``meta`` must be JSON-serialisable.
        """
        arrays = dict(arrays or {})
        for name in arrays:
            if name.startswith("__"):
                raise ReproError(
                    f"cache array name {name!r} is reserved "
                    "(names must not start with '__')")
        meta = dict(meta or {})
        key = fingerprint_key(fingerprint)
        payload = {name: np.asarray(data) for name, data in arrays.items()}
        payload[_FINGERPRINT_KEY] = np.frombuffer(
            fingerprint.encode(), dtype=np.uint8)
        with self._lock:
            atomic_write_npz(self._npz(key), payload)
            atomic_write_text(self._json(key), json.dumps(
                {"fingerprint": fingerprint, "meta": meta}, indent=2,
                sort_keys=True))
            self.stats.stores += 1
            _telemetry().counter_add("cache.stores")
            self._evict(protect=key)
        return CachedResult(fingerprint=fingerprint, key=key, meta=meta,
                            arrays=arrays)

    # -- maintenance ------------------------------------------------------
    def keys(self) -> list[str]:
        """Stored entry keys, least-recently-used first."""
        entries = self._entries()
        return [key for key, _, _ in entries]

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        """Bytes currently occupied by all entries."""
        return sum(size for _, _, size in self._entries())

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        with self._lock:
            entries = self._entries()
            for key, _, _ in entries:
                self._remove(key)
        return len(entries)

    # -- internals --------------------------------------------------------
    def _npz(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def _json(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _remove(self, key: str) -> None:
        self._npz(key).unlink(missing_ok=True)
        self._json(key).unlink(missing_ok=True)

    def _entries(self) -> list[tuple[str, float, int]]:
        """``(key, mtime, bytes)`` per entry, oldest-access first."""
        entries = []
        for npz_path in self.directory.glob("*.npz"):
            try:
                stat = npz_path.stat()
                size = stat.st_size
                json_path = self._json(npz_path.stem)
                if json_path.exists():
                    size += json_path.stat().st_size
                entries.append((npz_path.stem, stat.st_mtime, size))
            except OSError:
                continue  # entry vanished under us (concurrent eviction)
        entries.sort(key=lambda entry: entry[1])
        return entries

    def _evict(self, protect: str | None = None) -> None:
        """Drop LRU entries until both budgets hold (sparing ``protect``).

        Callers hold :attr:`_lock` (the public entry point is
        :meth:`put`); taking it re-entrantly here keeps direct calls in
        tests safe too.
        """
        if self.max_bytes is None and self.max_entries is None:
            return
        with self._lock:
            entries = self._entries()
            total = sum(size for _, _, size in entries)
            count = len(entries)
            for key, _, size in entries:
                over_bytes = (self.max_bytes is not None
                              and total > self.max_bytes)
                over_count = (self.max_entries is not None
                              and count > self.max_entries)
                if not (over_bytes or over_count):
                    break
                if key == protect:
                    continue  # never evict the entry just stored
                self._remove(key)
                self.stats.evictions += 1
                _telemetry().counter_add("cache.evictions")
                total -= size
                count -= 1
