"""Circuit representation: netlists, elements, devices, parser."""

from .elements import (CCCS, CCVS, PWL, VCCS, VCVS, Capacitor, CurrentSource,
                       Diode, Inductor, Pulse, Resistor, Sine, VoltageSource)
from .mosfet import Mosfet, MOSModel
from .netlist import Circuit, Element, is_ground

__all__ = [
    "Circuit", "Element", "is_ground",
    "Resistor", "Capacitor", "Inductor",
    "VoltageSource", "CurrentSource",
    "VCVS", "VCCS", "CCCS", "CCVS",
    "Diode", "Pulse", "Sine", "PWL",
    "MOSModel", "Mosfet",
]
