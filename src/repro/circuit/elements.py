"""Linear and independent-source circuit elements.

Stamp conventions (standard MNA):

* A conductance ``g`` between nodes ``a`` and ``b`` stamps ``+g`` on the
  diagonal entries ``(a, a)``/``(b, b)`` and ``-g`` on ``(a, b)``/``(b, a)``.
* Elements with branch-current unknowns (voltage sources, inductors, VCVS,
  CCVS) receive auxiliary rows from :meth:`Circuit.compile`.
* Independent sources honour ``ctx.source_scale`` so the DC solver can
  perform source stepping.

All element values accept scalars or 1-D batch arrays (see
:mod:`repro.circuit.netlist`), and SPICE-style engineering strings such as
``"10u"`` (via :func:`repro.units.parse_si`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import NetlistError
from ..units import parse_si
from .netlist import Element, _param_batch

__all__ = [
    "Resistor", "Capacitor", "Inductor",
    "VoltageSource", "CurrentSource",
    "VCVS", "VCCS", "CCCS", "CCVS",
    "Diode",
    "Pulse", "Sine", "PWL",
]


def _value(x):
    """Normalise an element value: parse engineering strings, keep arrays."""
    if isinstance(x, str):
        return parse_si(x)
    arr = np.asarray(x, dtype=float)
    return float(arr) if arr.ndim == 0 else arr


# ---------------------------------------------------------------------------
# transient waveforms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Pulse:
    """SPICE PULSE waveform: ``v1 -> v2`` trapezoid, optionally periodic."""

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-9
    fall: float = 1e-9
    width: float = 1e-6
    period: float | None = None

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        t = t - self.delay
        if self.period is not None:
            t = math.fmod(t, self.period)
        if t < self.rise:
            return self.v1 + (self.v2 - self.v1) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.v2
        t -= self.width
        if t < self.fall:
            return self.v2 + (self.v1 - self.v2) * t / self.fall
        return self.v1


@dataclass(frozen=True)
class Sine:
    """SPICE SIN waveform: ``vo + va*sin(2*pi*freq*(t-td))`` after ``td``."""

    vo: float
    va: float
    freq: float
    delay: float = 0.0

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.vo
        return self.vo + self.va * math.sin(2.0 * math.pi * self.freq * (t - self.delay))


class PWL:
    """Piece-wise linear waveform through ``(time, value)`` points."""

    def __init__(self, points) -> None:
        pts = sorted((float(t), float(v)) for t, v in points)
        if len(pts) < 2:
            raise NetlistError("PWL waveform needs at least two points")
        self.times = np.array([p[0] for p in pts])
        self.values = np.array([p[1] for p in pts])

    def __call__(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))


# ---------------------------------------------------------------------------
# passive two-terminal elements
# ---------------------------------------------------------------------------

class Resistor(Element):
    """Ideal resistor between two nodes."""

    def __init__(self, name: str, a: str, b: str, resistance) -> None:
        super().__init__(name, (a, b))
        self.resistance = _value(resistance)
        if np.any(np.asarray(self.resistance) <= 0):
            raise NetlistError(f"resistor {name!r} must have positive resistance")

    def batch_size(self) -> int:
        return _param_batch(self.resistance)

    def stamp(self, ctx) -> None:
        a, b = self._node_idx
        g = 1.0 / np.asarray(self.resistance, dtype=float)
        ctx.add_g(a, a, g)
        ctx.add_g(b, b, g)
        ctx.add_g(a, b, -g)
        ctx.add_g(b, a, -g)


class Capacitor(Element):
    """Ideal capacitor between two nodes (open in DC)."""

    def __init__(self, name: str, a: str, b: str, capacitance) -> None:
        super().__init__(name, (a, b))
        self.capacitance = _value(capacitance)
        if np.any(np.asarray(self.capacitance) < 0):
            raise NetlistError(f"capacitor {name!r} must be non-negative")

    def batch_size(self) -> int:
        return _param_batch(self.capacitance)

    def stamp(self, ctx) -> None:
        a, b = self._node_idx
        c = np.asarray(self.capacitance, dtype=float)
        ctx.add_c(a, a, c)
        ctx.add_c(b, b, c)
        ctx.add_c(a, b, -c)
        ctx.add_c(b, a, -c)


class Inductor(Element):
    """Ideal inductor; carries a branch-current auxiliary unknown.

    The branch equation ``V(a) - V(b) - L di/dt = 0`` stamps ``-L`` into the
    dynamic (C) matrix at the auxiliary diagonal, which makes the inductor a
    short in DC and ``j*omega*L`` in AC without special-casing.
    """

    def __init__(self, name: str, a: str, b: str, inductance) -> None:
        super().__init__(name, (a, b))
        self.inductance = _value(inductance)
        if np.any(np.asarray(self.inductance) <= 0):
            raise NetlistError(f"inductor {name!r} must have positive inductance")

    def aux_count(self) -> int:
        return 1

    def batch_size(self) -> int:
        return _param_batch(self.inductance)

    def stamp(self, ctx) -> None:
        a, b = self._node_idx
        (k,) = self._aux_idx
        ctx.add_g(a, k, 1.0)
        ctx.add_g(b, k, -1.0)
        ctx.add_g(k, a, 1.0)
        ctx.add_g(k, b, -1.0)
        ctx.add_c(k, k, -np.asarray(self.inductance, dtype=float))


# ---------------------------------------------------------------------------
# independent sources
# ---------------------------------------------------------------------------

class VoltageSource(Element):
    """Independent voltage source with DC, AC and transient values.

    Parameters
    ----------
    dc:
        DC value (volts).
    ac_mag, ac_phase_deg:
        Small-signal excitation magnitude and phase for AC analysis.
    waveform:
        Optional callable ``t -> volts`` for transient analysis; when absent
        the DC value is used.
    """

    def __init__(self, name: str, plus: str, minus: str, dc=0.0, *,
                 ac_mag: float = 0.0, ac_phase_deg: float = 0.0,
                 waveform=None) -> None:
        super().__init__(name, (plus, minus))
        self.dc = _value(dc)
        self.ac_mag = float(ac_mag)
        self.ac_phase_deg = float(ac_phase_deg)
        self.waveform = waveform

    def aux_count(self) -> int:
        return 1

    def batch_size(self) -> int:
        return _param_batch(self.dc)

    @property
    def branch_index(self) -> int:
        """Matrix row of this source's branch current (after compile)."""
        return self._aux_idx[0]

    def stamp(self, ctx) -> None:
        a, b = self._node_idx
        (k,) = self._aux_idx
        ctx.add_g(a, k, 1.0)
        ctx.add_g(b, k, -1.0)
        ctx.add_g(k, a, 1.0)
        ctx.add_g(k, b, -1.0)
        time = getattr(ctx, "time", None)
        value = self.dc if time is None else self.value_at(time)
        ctx.add_rhs(k, np.asarray(value, dtype=float) * ctx.source_scale)

    def ac_rhs(self, ctx) -> None:
        if self.ac_mag == 0.0:
            return
        (k,) = self._aux_idx
        phase = math.radians(self.ac_phase_deg)
        ctx.add_rhs(k, self.ac_mag * complex(math.cos(phase), math.sin(phase)))

    def value_at(self, t: float):
        """Transient value at time ``t``."""
        if self.waveform is not None:
            return self.waveform(t)
        return self.dc


class CurrentSource(Element):
    """Independent current source; positive current flows ``plus -> minus``
    through the source (SPICE convention)."""

    def __init__(self, name: str, plus: str, minus: str, dc=0.0, *,
                 ac_mag: float = 0.0, ac_phase_deg: float = 0.0,
                 waveform=None) -> None:
        super().__init__(name, (plus, minus))
        self.dc = _value(dc)
        self.ac_mag = float(ac_mag)
        self.ac_phase_deg = float(ac_phase_deg)
        self.waveform = waveform

    def batch_size(self) -> int:
        return _param_batch(self.dc)

    def stamp(self, ctx) -> None:
        a, b = self._node_idx
        time = getattr(ctx, "time", None)
        value = self.dc if time is None else self.value_at(time)
        dc = np.asarray(value, dtype=float) * ctx.source_scale
        ctx.add_rhs(a, -dc)
        ctx.add_rhs(b, dc)

    def ac_rhs(self, ctx) -> None:
        if self.ac_mag == 0.0:
            return
        a, b = self._node_idx
        phase = math.radians(self.ac_phase_deg)
        excitation = self.ac_mag * complex(math.cos(phase), math.sin(phase))
        ctx.add_rhs(a, -excitation)
        ctx.add_rhs(b, excitation)

    def value_at(self, t: float):
        """Transient value at time ``t``."""
        if self.waveform is not None:
            return self.waveform(t)
        return self.dc


# ---------------------------------------------------------------------------
# controlled sources
# ---------------------------------------------------------------------------

class VCCS(Element):
    """Voltage-controlled current source (SPICE ``G`` element).

    Current ``gm * (V(cplus) - V(cminus))`` flows from ``plus`` through the
    source to ``minus``.
    """

    def __init__(self, name: str, plus: str, minus: str,
                 cplus: str, cminus: str, gm) -> None:
        super().__init__(name, (plus, minus, cplus, cminus))
        self.gm = _value(gm)

    def batch_size(self) -> int:
        return _param_batch(self.gm)

    def stamp(self, ctx) -> None:
        a, b, cp, cm = self._node_idx
        gm = np.asarray(self.gm, dtype=float)
        ctx.add_g(a, cp, gm)
        ctx.add_g(a, cm, -gm)
        ctx.add_g(b, cp, -gm)
        ctx.add_g(b, cm, gm)


class VCVS(Element):
    """Voltage-controlled voltage source (SPICE ``E`` element)."""

    def __init__(self, name: str, plus: str, minus: str,
                 cplus: str, cminus: str, gain) -> None:
        super().__init__(name, (plus, minus, cplus, cminus))
        self.gain = _value(gain)

    def aux_count(self) -> int:
        return 1

    def batch_size(self) -> int:
        return _param_batch(self.gain)

    def stamp(self, ctx) -> None:
        a, b, cp, cm = self._node_idx
        (k,) = self._aux_idx
        gain = np.asarray(self.gain, dtype=float)
        ctx.add_g(a, k, 1.0)
        ctx.add_g(b, k, -1.0)
        ctx.add_g(k, a, 1.0)
        ctx.add_g(k, b, -1.0)
        ctx.add_g(k, cp, -gain)
        ctx.add_g(k, cm, gain)


class CCCS(Element):
    """Current-controlled current source (SPICE ``F`` element).

    The controlling current is the branch current of the named
    :class:`VoltageSource` (SPICE convention).
    """

    def __init__(self, name: str, plus: str, minus: str,
                 control_source: str, gain) -> None:
        super().__init__(name, (plus, minus))
        self.control_source = control_source
        self.gain = _value(gain)
        self._control_branch: int | None = None

    def batch_size(self) -> int:
        return _param_batch(self.gain)

    def bind_control(self, branch_index: int) -> None:
        """Called by the analyses to resolve the controlling branch row."""
        self._control_branch = branch_index

    def stamp(self, ctx) -> None:
        if self._control_branch is None:
            raise NetlistError(
                f"CCCS {self.name!r}: control source {self.control_source!r} unresolved")
        a, b = self._node_idx
        gain = np.asarray(self.gain, dtype=float)
        ctx.add_g(a, self._control_branch, gain)
        ctx.add_g(b, self._control_branch, -gain)


class CCVS(Element):
    """Current-controlled voltage source (SPICE ``H`` element)."""

    def __init__(self, name: str, plus: str, minus: str,
                 control_source: str, transresistance) -> None:
        super().__init__(name, (plus, minus))
        self.control_source = control_source
        self.transresistance = _value(transresistance)
        self._control_branch: int | None = None

    def aux_count(self) -> int:
        return 1

    def batch_size(self) -> int:
        return _param_batch(self.transresistance)

    def bind_control(self, branch_index: int) -> None:
        """Called by the analyses to resolve the controlling branch row."""
        self._control_branch = branch_index

    def stamp(self, ctx) -> None:
        if self._control_branch is None:
            raise NetlistError(
                f"CCVS {self.name!r}: control source {self.control_source!r} unresolved")
        a, b = self._node_idx
        (k,) = self._aux_idx
        r = np.asarray(self.transresistance, dtype=float)
        ctx.add_g(a, k, 1.0)
        ctx.add_g(b, k, -1.0)
        ctx.add_g(k, a, 1.0)
        ctx.add_g(k, b, -1.0)
        ctx.add_g(k, self._control_branch, -r)


# ---------------------------------------------------------------------------
# diode (simplest nonlinear device; exercises the Newton machinery)
# ---------------------------------------------------------------------------

class Diode(Element):
    """Junction diode ``anode -> cathode`` with exponential I-V law.

    ``id = IS * (exp(vd / (n*vt)) - 1)``, with the exponent clamped for
    numerical safety.  Junction capacitance ``cj0`` is stamped (bias
    independent) for AC analysis.
    """

    nonlinear = True

    #: Exponent clamp: beyond this the exponential is linearised.
    _EXP_CLAMP = 40.0

    def __init__(self, name: str, anode: str, cathode: str, *,
                 i_s: float = 1e-14, n: float = 1.0, vt: float = 0.025852,
                 cj0: float = 0.0) -> None:
        super().__init__(name, (anode, cathode))
        self.i_s = float(i_s)
        self.n = float(n)
        self.vt = float(vt)
        self.cj0 = float(cj0)

    def _iv(self, vd: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Diode current and conductance with exponent clamping."""
        nvt = self.n * self.vt
        x = vd / nvt
        x_clamped = np.minimum(x, self._EXP_CLAMP)
        exp = np.exp(x_clamped)
        current = self.i_s * (exp - 1.0)
        conductance = self.i_s * exp / nvt
        # Beyond the clamp, continue linearly to keep the model monotone.
        over = x > self._EXP_CLAMP
        if np.any(over):
            i_clamp = self.i_s * (math.exp(self._EXP_CLAMP) - 1.0)
            g_clamp = self.i_s * math.exp(self._EXP_CLAMP) / nvt
            current = np.where(over, i_clamp + g_clamp * (vd - self._EXP_CLAMP * nvt),
                               current)
            conductance = np.where(over, g_clamp, conductance)
        return current, conductance + 1e-12  # tiny leakage keeps matrix regular

    def load(self, voltages: np.ndarray, ctx) -> None:
        a, b = self._node_idx
        va = voltages[..., a] if a >= 0 else 0.0
        vb = voltages[..., b] if b >= 0 else 0.0
        vd = np.asarray(va) - np.asarray(vb)
        current, conductance = self._iv(vd)
        i_eq = current - conductance * vd
        ctx.add_g(a, a, conductance)
        ctx.add_g(b, b, conductance)
        ctx.add_g(a, b, -conductance)
        ctx.add_g(b, a, -conductance)
        ctx.add_rhs(a, -i_eq)
        ctx.add_rhs(b, i_eq)

    def stamp_ac(self, op: np.ndarray, ctx) -> None:
        a, b = self._node_idx
        va = op[..., a] if a >= 0 else 0.0
        vb = op[..., b] if b >= 0 else 0.0
        _, conductance = self._iv(np.asarray(va) - np.asarray(vb))
        ctx.add_g(a, a, conductance)
        ctx.add_g(b, b, conductance)
        ctx.add_g(a, b, -conductance)
        ctx.add_g(b, a, -conductance)
        if self.cj0:
            ctx.add_c(a, a, self.cj0)
            ctx.add_c(b, b, self.cj0)
            ctx.add_c(a, b, -self.cj0)
            ctx.add_c(b, a, -self.cj0)

    def op_info(self, op: np.ndarray) -> dict[str, np.ndarray]:
        a, b = self._node_idx
        va = op[..., a] if a >= 0 else 0.0
        vb = op[..., b] if b >= 0 else 0.0
        vd = np.asarray(va) - np.asarray(vb)
        current, conductance = self._iv(vd)
        return {"vd": vd, "id": current, "gd": conductance}
