"""MOSFET device model.

The paper simulates its OTA with foundry BSim3v3 models in Spectre.  We
replace that with a smooth long-channel model -- a square-law (SPICE
level-1) core expressed in the numerically robust EKV-style form

``Id = beta/2 * (sp(Vgs - Vth)^2 - sp(Vgs - Vth - Vds)^2) * (1 + lambda*Vds)``

where ``sp`` is the soft-plus function ``n*vt*ln(1 + exp(x/(n*vt)))``.
Because ``sp(x) -> x`` for ``x >> 0`` and ``-> 0`` exponentially for
``x << 0`` this single expression reproduces

* the level-1 triode current ``beta*(Vov - Vds/2)*Vds``
  (note ``Vov^2 - (Vov-Vds)^2 = 2*Vov*Vds - Vds^2``),
* the saturation current ``beta/2*Vov^2`` with channel-length modulation,
* an exponential subthreshold tail (EKV interpolation),

and is infinitely differentiable, which keeps the batched Newton solver
honest.  Channel-length modulation scales as ``lambda = klambda / Leff`` so
longer channels yield higher intrinsic gain -- the physics behind the
paper's gain/phase-margin trade-off.  Meyer gate capacitances and
bias-dependent junction capacitances provide the non-dominant poles that
limit phase margin.

Statistical hooks
-----------------
``delta_vto`` (threshold shift, V) and ``beta_scale`` (multiplicative
current-factor error) accept batch arrays; the Monte-Carlo engine drives
them with Pelgrom-law mismatch samples (:mod:`repro.process.mismatch`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import NetlistError
from ..units import parse_si
from .netlist import Element, _param_batch

__all__ = ["MOSModel", "Mosfet"]

_THERMAL_VOLTAGE = 0.025852  # kT/q at 300 K


@dataclass(frozen=True)
class MOSModel:
    """A MOSFET model card (one per device polarity per process).

    Parameters follow SPICE level-1 conventions with two additions:
    ``klambda`` (the channel-length-modulation coefficient with
    ``lambda = klambda / Leff``) and ``n_sub`` (subthreshold slope factor
    used by the soft-plus smoothing).
    """

    name: str
    polarity: str  # 'n' or 'p'
    vto: float = 0.5          # threshold voltage [V]; negative for PMOS
    kp: float = 170e-6        # transconductance parameter [A/V^2]
    gamma: float = 0.58       # body-effect coefficient [sqrt(V)]
    phi: float = 0.7          # surface potential [V]
    klambda: float = 0.10e-6  # CLM coefficient [m/V]; lambda = klambda/Leff
    ld: float = 0.05e-6       # lateral diffusion [m]; Leff = L - 2*ld
    cox: float = 4.54e-3      # gate oxide capacitance [F/m^2]
    cgso: float = 1.2e-10     # G-S overlap capacitance [F/m]
    cgdo: float = 1.2e-10     # G-D overlap capacitance [F/m]
    cgbo: float = 1.0e-10     # G-B overlap capacitance [F/m]
    cj: float = 9.4e-4        # junction area capacitance [F/m^2]
    cjsw: float = 2.5e-10     # junction sidewall capacitance [F/m]
    pb: float = 0.69          # junction built-in potential [V]
    mj: float = 0.34          # junction grading coefficient
    mjsw: float = 0.23        # sidewall grading coefficient
    ldiff: float = 0.85e-6    # source/drain diffusion extent [m]
    n_sub: float = 1.5        # subthreshold slope factor
    kf: float = 1.0e-24       # flicker-noise coefficient [C^2/m^2-ish]
    af: float = 1.0           # flicker-noise frequency exponent
    tnom: float = 300.15      # nominal model temperature [K] (27 C)
    tcv: float = 2.0e-3       # |VT| temperature coefficient [V/K], |VT| falls with T
    bex: float = -1.5         # mobility temperature exponent, kp ~ (T/tnom)^bex

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise NetlistError(f"model {self.name!r}: polarity must be 'n' or 'p'")
        if self.kp <= 0 or self.cox <= 0:
            raise NetlistError(f"model {self.name!r}: kp and cox must be positive")

    def with_variation(self, *, dvto: float = 0.0, kp_scale: float = 1.0) -> "MOSModel":
        """A copy with global process variation applied (corner/MC).

        ``dvto`` shifts the threshold (same sign convention as ``vto``) and
        ``kp_scale`` scales the transconductance parameter.
        """
        sign = 1.0 if self.polarity == "n" else -1.0
        return replace(self, vto=self.vto + sign * dvto, kp=self.kp * kp_scale)

    def temperature_shift(self, temp_k) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane ``(dvto, kp_scale)`` equivalent of operating at ``temp_k``.

        First-order SPICE temperature model: the threshold magnitude falls
        linearly (``|VT|(T) = |VT| - tcv*(T - tnom)``) and mobility follows
        the power law ``kp(T) = kp * (T/tnom)**bex``.  Returned in the
        NMOS-frame sign convention of the :class:`Mosfet` statistical
        hooks (positive ``dvto`` = higher ``|VT|``), so temperature lanes
        stack directly onto process-variation lanes.
        """
        temp_k = np.asarray(temp_k, dtype=float)
        dvto = -self.tcv * (temp_k - self.tnom)
        kp_scale = (temp_k / self.tnom) ** self.bex
        return dvto, kp_scale


@dataclass
class _OperatingPoint:
    """Small-signal quantities of one MOSFET at a DC solution."""

    ids: np.ndarray
    gm: np.ndarray
    gds: np.ndarray
    gmb: np.ndarray
    vgs: np.ndarray
    vds: np.ndarray
    vbs: np.ndarray
    vth: np.ndarray
    vov: np.ndarray
    capacitances: dict[str, np.ndarray] = field(default_factory=dict)


def _softplus(x: np.ndarray, width: float) -> tuple[np.ndarray, np.ndarray]:
    """Soft-plus ``width*ln(1+exp(x/width))`` and its derivative (sigmoid).

    Overflow-safe: for large positive arguments the identity
    ``sp(x) = x + sp(-x)`` is used.
    """
    z = x / width
    # log1p(exp(z)) = max(z,0) + log1p(exp(-|z|)) is stable for all z.
    value = width * (np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z))))
    deriv = 0.5 * (1.0 + np.tanh(0.5 * z))  # sigmoid(z), overflow-free
    return value, deriv


class Mosfet(Element):
    """Four-terminal MOSFET ``(drain, gate, source, bulk)``.

    Parameters
    ----------
    w, l:
        Drawn width and length [m]; scalars or batch arrays.  Engineering
        strings (``"10u"``) are accepted.
    model:
        The :class:`MOSModel` card.
    m:
        Parallel-device multiplier.
    delta_vto, beta_scale:
        Per-device statistical perturbations (see module docstring).
    """

    nonlinear = True

    #: Minimum conductance added to gds; keeps matrices regular when off.
    GDS_MIN = 1e-12

    def __init__(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 model: MOSModel, w, l, *, m: float = 1.0,
                 delta_vto=0.0, beta_scale=1.0) -> None:
        super().__init__(name, (drain, gate, source, bulk))
        self.model = model
        self.w = parse_si(w) if isinstance(w, str) else w
        self.l = parse_si(l) if isinstance(l, str) else l
        self.m = m
        self.delta_vto = delta_vto
        self.beta_scale = beta_scale
        if np.any(np.asarray(self.w, dtype=float) <= 0):
            raise NetlistError(f"mosfet {name!r}: width must be positive")
        leff = np.asarray(self.l, dtype=float) - 2.0 * model.ld
        if np.any(leff <= 0):
            raise NetlistError(
                f"mosfet {name!r}: length must exceed 2*ld = {2 * model.ld:g} m")

    # -- geometry ------------------------------------------------------------
    @property
    def leff(self) -> np.ndarray:
        """Effective channel length ``L - 2*ld``."""
        return np.asarray(self.l, dtype=float) - 2.0 * self.model.ld

    @property
    def beta(self) -> np.ndarray:
        """Current factor ``kp * m * W/Leff * beta_scale``."""
        w = np.asarray(self.w, dtype=float)
        return (self.model.kp * self.m * w / self.leff
                * np.asarray(self.beta_scale, dtype=float))

    @property
    def lam(self) -> np.ndarray:
        """Channel-length modulation ``klambda / Leff`` [1/V]."""
        return self.model.klambda / self.leff

    def batch_size(self) -> int:
        return _param_batch(self.w, self.l, self.delta_vto, self.beta_scale)

    def gate_area(self) -> np.ndarray:
        """``W * Leff`` -- the area entering the Pelgrom mismatch law."""
        return np.asarray(self.w, dtype=float) * self.leff

    # -- core I-V evaluation ---------------------------------------------------
    def _threshold(self, vbs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Body-effect threshold (NMOS convention) and ``-dVth/dVbs``.

        ``vbs`` here is already polarity-normalised (NMOS convention).
        """
        model = self.model
        vto_n = abs(model.vto) + np.asarray(self.delta_vto, dtype=float)
        raw = model.phi - vbs
        clamped = raw < 1e-3  # strongly forward-biased bulk junction
        phi_minus_vbs = np.maximum(raw, 1e-3)
        sqrt_term = np.sqrt(phi_minus_vbs)
        vth = vto_n + model.gamma * (sqrt_term - np.sqrt(model.phi))
        # In the clamped region vth is constant, so its derivative must be
        # zero too -- otherwise Newton sees a slope the residual lacks.
        dvth_dvbs = np.where(clamped, 0.0,
                             -model.gamma / (2.0 * sqrt_term))
        return vth, -dvth_dvbs

    def _forward_iv(self, vgs, vds, vbs):
        """Current and partial derivatives for ``vds >= 0`` (NMOS frame).

        Returns ``(id, d/dvgs, d/dvds, d/dvbs, vth, vov)``.
        """
        model = self.model
        width = model.n_sub * _THERMAL_VOLTAGE
        vth, gmb_factor = self._threshold(vbs)
        beta = self.beta
        lam = self.lam
        a, sa = _softplus(vgs - vth, width)
        b, sb = _softplus(vgs - vth - vds, width)
        clm = np.maximum(1.0 + lam * vds, 0.05)
        core = 0.5 * beta * (a * a - b * b)
        ids = core * clm
        d_vgs = beta * (a * sa - b * sb) * clm
        d_vds = beta * b * sb * clm + core * lam
        d_vbs = d_vgs * gmb_factor
        return ids, d_vgs, d_vds, d_vbs, vth, a

    def evaluate(self, vgs, vds, vbs) -> _OperatingPoint:
        """Evaluate ``Id`` and small-signal conductances at a bias point.

        Voltages are the *physical* terminal voltages (PMOS devices receive
        negative ``vgs``/``vds`` in normal operation); polarity mirroring and
        drain/source reversal are handled internally.  All partials are with
        respect to the physical ``(vgs, vds, vbs)``.
        """
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vbs = np.asarray(vbs, dtype=float)
        sign = 1.0 if self.model.polarity == "n" else -1.0
        # Map to the NMOS frame.
        nvgs, nvds, nvbs = sign * vgs, sign * vds, sign * vbs

        reverse = nvds < 0.0
        # Forward evaluation arguments, with drain/source swapped where needed.
        e_vgs = np.where(reverse, nvgs - nvds, nvgs)
        e_vds = np.abs(nvds)
        e_vbs = np.where(reverse, nvbs - nvds, nvbs)
        ids_f, f_g, f_d, f_b, vth, vov = self._forward_iv(e_vgs, e_vds, e_vbs)

        # Chain rule back through the swap:
        #   Id = -f(vgs - vds, -vds, vbs - vds) in reverse mode, hence
        #   dId/dvgs = -f_g ; dId/dvds = f_g + f_d + f_b ; dId/dvbs = -f_b.
        ids_n = np.where(reverse, -ids_f, ids_f)
        gm_n = np.where(reverse, -f_g, f_g)
        gds_n = np.where(reverse, f_g + f_d + f_b, f_d)
        gmb_n = np.where(reverse, -f_b, f_b)

        # Map back to the physical frame: Id_phys = sign * Id_nmos and each
        # conductance is d(sign*Id)/d(sign*V) = unchanged.
        ids = sign * ids_n
        return _OperatingPoint(
            ids=ids, gm=gm_n, gds=gds_n + self.GDS_MIN, gmb=gmb_n,
            vgs=vgs, vds=vds, vbs=vbs, vth=sign * vth, vov=vov)

    # -- terminal voltage helpers ------------------------------------------------
    def _terminal_voltages(self, x: np.ndarray):
        """Extract (vgs, vds, vbs) from the unknown vector ``x`` (..., N)."""
        d, g, s, b = self._node_idx
        vd = x[..., d] if d >= 0 else np.zeros(x.shape[:-1])
        vg = x[..., g] if g >= 0 else np.zeros(x.shape[:-1])
        vs = x[..., s] if s >= 0 else np.zeros(x.shape[:-1])
        vb = x[..., b] if b >= 0 else np.zeros(x.shape[:-1])
        return vg - vs, vd - vs, vb - vs

    # -- stamping -----------------------------------------------------------------
    def _stamp_conductances(self, ctx, gm, gds, gmb) -> None:
        """Stamp the linearised transistor (drain-source current source)."""
        d, g, s, b = self._node_idx
        gsum = gm + gds + gmb
        ctx.add_g(d, g, gm)
        ctx.add_g(d, d, gds)
        ctx.add_g(d, b, gmb)
        ctx.add_g(d, s, -gsum)
        ctx.add_g(s, g, -gm)
        ctx.add_g(s, d, -gds)
        ctx.add_g(s, b, -gmb)
        ctx.add_g(s, s, gsum)

    def load(self, voltages: np.ndarray, ctx) -> None:
        vgs, vds, vbs = self._terminal_voltages(voltages)
        op = self.evaluate(vgs, vds, vbs)
        d, g, s, b = self._node_idx
        self._stamp_conductances(ctx, op.gm, op.gds, op.gmb)
        i_eq = op.ids - op.gm * vgs - op.gds * vds - op.gmb * vbs
        ctx.add_rhs(d, -i_eq)
        ctx.add_rhs(s, i_eq)

    # -- capacitances -----------------------------------------------------------
    def capacitances(self, vgs, vds, vbs) -> dict[str, np.ndarray]:
        """Meyer gate capacitances + junction capacitances at a bias point.

        Returns a dict with keys ``cgs, cgd, cgb, cdb, csb`` [F].
        """
        model = self.model
        sign = 1.0 if model.polarity == "n" else -1.0
        nvgs = sign * np.asarray(vgs, dtype=float)
        nvds = sign * np.asarray(vds, dtype=float)
        nvbs = sign * np.asarray(vbs, dtype=float)

        w = np.asarray(self.w, dtype=float) * self.m
        leff = self.leff
        cox_total = model.cox * w * leff
        width = model.n_sub * _THERMAL_VOLTAGE
        vth, _ = self._threshold(nvbs)
        vov, s_on = _softplus(nvgs - vth, width)

        # Meyer model with the drain saturation voltage clamp.
        vde = np.clip(nvds, 0.0, vov)
        denom = np.maximum(2.0 * vov - vde, 1e-9)
        cgs_i = (2.0 / 3.0) * cox_total * (1.0 - ((vov - vde) / denom) ** 2)
        cgd_i = (2.0 / 3.0) * cox_total * (1.0 - (vov / denom) ** 2)
        # Below threshold the channel disappears: fade the intrinsic parts
        # with the inversion sigmoid and hand the oxide cap to the bulk.
        cgs = cgs_i * s_on + model.cgso * w
        cgd = cgd_i * s_on + model.cgdo * w
        cgb = cox_total * (1.0 - s_on) + model.cgbo * leff

        # Junction capacitances (reverse-bias dependent, forward clamped).
        area = w * model.ldiff
        perim = 2.0 * (w + model.ldiff)

        def junction(v_junction):
            ratio = np.maximum(1.0 - v_junction / model.pb, 0.4)
            return (model.cj * area * ratio ** (-model.mj)
                    + model.cjsw * perim * ratio ** (-model.mjsw))

        vbd = nvbs - nvds
        cdb = junction(vbd)
        csb = junction(nvbs)
        return {"cgs": cgs, "cgd": cgd, "cgb": cgb, "cdb": cdb, "csb": csb}

    def stamp_ac(self, op: np.ndarray, ctx) -> None:
        vgs, vds, vbs = self._terminal_voltages(op)
        point = self.evaluate(vgs, vds, vbs)
        self._stamp_conductances(ctx, point.gm, point.gds, point.gmb)

        caps = self.capacitances(vgs, vds, vbs)
        d, g, s, b = self._node_idx
        for (na, nb), key in (((g, s), "cgs"), ((g, d), "cgd"), ((g, b), "cgb"),
                              ((d, b), "cdb"), ((s, b), "csb")):
            c = caps[key]
            ctx.add_c(na, na, c)
            ctx.add_c(nb, nb, c)
            ctx.add_c(na, nb, -c)
            ctx.add_c(nb, na, -c)

    # -- reporting -----------------------------------------------------------
    def op_info(self, op: np.ndarray) -> dict[str, np.ndarray]:
        vgs, vds, vbs = self._terminal_voltages(op)
        point = self.evaluate(vgs, vds, vbs)
        saturated = np.abs(vds) >= np.maximum(point.vov, 1e-3)
        return {
            "ids": point.ids, "gm": point.gm, "gds": point.gds,
            "gmb": point.gmb, "vgs": vgs, "vds": vds, "vbs": vbs,
            "vth": point.vth, "vov": point.vov,
            "saturated": saturated,
            "intrinsic_gain": point.gm / point.gds,
        }
