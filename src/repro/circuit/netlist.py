"""Circuit netlist representation.

A :class:`Circuit` is an ordered collection of uniquely named elements
connected by string-named nodes.  It is the common input to every analysis
in :mod:`repro.analysis` and is produced either programmatically (see
:mod:`repro.designs`) or by the SPICE-like parser in
:mod:`repro.circuit.parser`.

Design notes
------------
* Ground is any node named ``"0"`` or ``"gnd"`` (case-insensitive) and is
  excluded from the unknown vector.
* Before simulation a circuit must be *compiled* (:meth:`Circuit.compile`),
  which assigns every non-ground node a matrix row and every element that
  needs auxiliary unknowns (voltage sources, inductors, controlled sources
  with branch currents) a block of auxiliary rows.  Compilation is cheap
  and is redone automatically whenever the circuit changed.
* Element parameters may be scalars **or** 1-D ``numpy`` arrays of a common
  batch length ``B``.  A batched circuit describes ``B`` simultaneous
  circuit variants (e.g. one per Monte-Carlo sample or per GA individual)
  that the analyses solve in one stacked matrix operation.  This is the
  mechanism that makes the paper's 10,000-candidate optimisation and the
  1022x200 Monte-Carlo runs tractable in pure Python.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import NetlistError

__all__ = ["GROUND_NAMES", "is_ground", "Element", "Circuit", "CompiledTopology"]

#: Node names treated as the reference (ground) node.
GROUND_NAMES = frozenset({"0", "gnd"})


def is_ground(node: str) -> bool:
    """Return ``True`` when ``node`` names the reference node."""
    return node.lower() in GROUND_NAMES


class Element:
    """Base class for every circuit element.

    Subclasses declare their connectivity through ``nodes`` (a tuple of node
    names, order significant) and implement the stamping protocol used by
    the analyses:

    ``aux_count()``
        Number of auxiliary (branch-current) unknowns the element needs.
    ``stamp(ctx)``
        Stamp the *linear, bias-independent* part of the element into the
        MNA system: conductances into ``ctx.add_g``, capacitances into
        ``ctx.add_c``, DC source terms into ``ctx.add_rhs``.
    ``load(voltages, ctx)``
        Nonlinear elements only: stamp the Newton companion model (Jacobian
        + equivalent current) linearised at ``voltages``.
    ``stamp_ac(op, ctx)``
        Nonlinear elements only: stamp the small-signal conductances and
        capacitances at the DC operating point ``op``.
    ``ac_rhs(ctx)``
        Independent sources only: stamp the complex AC excitation.

    The base class provides no-op defaults so linear elements only override
    :meth:`stamp` and sources additionally :meth:`ac_rhs`.
    """

    #: Set by nonlinear subclasses; tells the DC solver to call ``load``.
    nonlinear: bool = False

    #: 1-based source line of the card that produced this element, when
    #: it came from a parsed netlist (set by the parser; ``None`` for
    #: programmatically built circuits).  Lint findings use it to point
    #: back into the netlist text.
    line_no: int | None = None

    def __init__(self, name: str, nodes: Iterable[str]) -> None:
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name
        self.nodes = tuple(str(n) for n in nodes)
        if not self.nodes:
            raise NetlistError(f"element {name!r} has no nodes")
        # Filled in by Circuit.compile():
        self._node_idx: tuple[int, ...] = ()
        self._aux_idx: tuple[int, ...] = ()

    # -- stamping protocol -------------------------------------------------
    def aux_count(self) -> int:
        """Number of auxiliary MNA unknowns required by this element."""
        return 0

    def stamp(self, ctx) -> None:
        """Stamp the linear part of the element (default: nothing)."""

    def load(self, voltages: np.ndarray, ctx) -> None:
        """Stamp the Newton companion model at ``voltages`` (nonlinear)."""

    def stamp_ac(self, op: np.ndarray, ctx) -> None:
        """Stamp small-signal conductances/capacitances at DC point ``op``."""

    def ac_rhs(self, ctx) -> None:
        """Stamp the complex AC excitation (independent sources only)."""

    # -- bookkeeping --------------------------------------------------------
    def batch_size(self) -> int:
        """Largest batch length among this element's parameters (1 = scalar)."""
        return 1

    def op_info(self, op: np.ndarray) -> dict[str, np.ndarray]:
        """Operating-point report for this element (empty by default)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nodes = " ".join(self.nodes)
        return f"<{type(self).__name__} {self.name} ({nodes})>"


def _param_batch(*values) -> int:
    """Return the common batch length of scalar-or-1D parameter values."""
    batch = 1
    for value in values:
        arr = np.asarray(value)
        if arr.ndim == 0:
            continue
        if arr.ndim != 1:
            raise NetlistError(
                f"element parameters must be scalars or 1-D arrays, got shape {arr.shape}")
        if batch == 1:
            batch = arr.shape[0]
        elif arr.shape[0] not in (1, batch):
            raise NetlistError(
                f"inconsistent parameter batch sizes: {arr.shape[0]} vs {batch}")
        batch = max(batch, arr.shape[0])
    return batch


class CompiledTopology:
    """Node/auxiliary index assignment for a circuit.

    Attributes
    ----------
    node_index:
        Mapping node name -> matrix row.  Ground maps to ``-1``.
    n_nodes:
        Number of non-ground nodes.
    n_unknowns:
        ``n_nodes`` plus the total auxiliary unknown count.
    batch:
        Batch length ``B`` of the circuit (1 for a plain scalar circuit).
    """

    def __init__(self, circuit: "Circuit") -> None:
        names: list[str] = []
        seen: set[str] = set()
        ground_seen = False
        for element in circuit:
            for node in element.nodes:
                if is_ground(node):
                    ground_seen = True
                    continue
                if node not in seen:
                    seen.add(node)
                    names.append(node)
        if not ground_seen:
            raise NetlistError(
                f"circuit {circuit.title!r} has no ground node "
                f"(name one node '0' or 'gnd')")
        self.node_names: tuple[str, ...] = tuple(names)
        self.node_index: dict[str, int] = {n: i for i, n in enumerate(names)}
        for g in GROUND_NAMES:
            self.node_index[g] = -1
        self.n_nodes = len(names)

        aux = self.n_nodes
        batch = 1
        for element in circuit:
            element._node_idx = tuple(
                -1 if is_ground(n) else self.node_index[n] for n in element.nodes)
            count = element.aux_count()
            element._aux_idx = tuple(range(aux, aux + count))
            aux += count
            element_batch = element.batch_size()
            if element_batch != 1 and batch != 1 and element_batch != batch:
                raise NetlistError(
                    f"element {element.name!r} has batch length "
                    f"{element_batch} but the circuit already has {batch}")
            batch = max(batch, element_batch)
        self.n_unknowns = aux
        self.batch = batch

    def index_of(self, node: str) -> int:
        """Matrix row of ``node`` (``-1`` for ground).

        Raises
        ------
        NetlistError
            If the node does not exist in the circuit.
        """
        key = node.lower() if is_ground(node) else node
        if key not in self.node_index:
            raise NetlistError(f"unknown node {node!r}")
        return self.node_index[key]


class Circuit:
    """An ordered, uniquely named collection of circuit elements."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._elements: dict[str, Element] = {}
        self._topology: CompiledTopology | None = None

    # -- construction -------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add ``element``; returns it for chaining.

        Raises
        ------
        NetlistError
            If an element with the same name already exists.
        """
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._elements[element.name] = element
        self._topology = None
        return element

    def extend(self, elements: Iterable[Element]) -> None:
        """Add several elements."""
        for element in elements:
            self.add(element)

    def remove(self, name: str) -> Element:
        """Remove and return the element called ``name``."""
        try:
            element = self._elements.pop(name)
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None
        self._topology = None
        return element

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    # -- compilation ----------------------------------------------------------
    def compile(self) -> CompiledTopology:
        """Assign matrix rows to nodes and auxiliary unknowns.

        The result is cached until the circuit is modified.
        """
        if self._topology is None:
            if not self._elements:
                raise NetlistError(f"circuit {self.title!r} is empty")
            self._topology = CompiledTopology(self)
        return self._topology

    @property
    def nodes(self) -> tuple[str, ...]:
        """Non-ground node names in first-use order."""
        return self.compile().node_names

    @property
    def batch(self) -> int:
        """Batch length of the circuit (see module docstring)."""
        return self.compile().batch

    def nonlinear_elements(self) -> list[Element]:
        """All elements that participate in Newton iteration."""
        return [e for e in self if e.nonlinear]

    def invalidate(self) -> None:
        """Force recompilation (call after mutating element parameters
        in a way that changes the batch size)."""
        self._topology = None

    def summary(self) -> str:
        """One-line-per-element human readable description."""
        lines = [f"* circuit: {self.title or '(untitled)'}"]
        for element in self:
            lines.append(repr(element))
        return "\n".join(lines)
