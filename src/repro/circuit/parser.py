"""SPICE-like netlist parser.

Supports the subset of SPICE needed to describe the paper's circuits as
plain text (the flow's "netlist generation" step, section 3.1):

* element cards: ``R``, ``C``, ``L``, ``V``, ``I``, ``E`` (VCVS), ``G``
  (VCCS), ``F`` (CCCS), ``H`` (CCVS), ``D`` (diode), ``M`` (MOSFET),
  ``X`` (subcircuit instance);
* ``.model`` cards for MOSFET model parameters (``nmos``/``pmos``);
* ``.subckt`` / ``.ends`` definitions with positional ports, flattened at
  instantiation with dotted name prefixes (``X1.node``); subcircuits may
  instantiate other subcircuits (recursive flattening, guarded by
  :attr:`NetlistParser.MAX_FLATTEN_DEPTH` against self-reference);
* ``.global`` nodes that bypass subcircuit prefixing (supply rails);
* ``.param`` for simple numeric parameters usable in later expressions;
* ``+`` continuation lines, ``*`` and ``;`` comments, engineering-notation
  values (``10u``, ``5meg``), ``key=value`` element parameters;
* sources accept ``DC <v>`` and ``AC <mag> [phase]`` specifications.

The parser produces a flat :class:`~repro.circuit.netlist.Circuit`.
Every element records the 1-based source line of its card
(``element.line_no``) so downstream diagnostics -- notably the
:mod:`repro.lint` topology checker -- can point back into the netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ParseError
from ..units import parse_si
from .elements import (CCCS, CCVS, VCCS, VCVS, Capacitor, CurrentSource,
                       Diode, Inductor, Resistor, VoltageSource)
from .mosfet import Mosfet, MOSModel
from .netlist import Circuit, is_ground

__all__ = ["parse_netlist", "NetlistParser", "SubcircuitDef"]


@dataclass
class SubcircuitDef:
    """A ``.subckt`` definition: ports plus raw element cards."""

    name: str
    ports: tuple[str, ...]
    cards: list[tuple[int, str]] = field(default_factory=list)
    #: Source line of the ``.subckt`` header (0 when built by hand).
    line_no: int = 0


@dataclass
class _Card:
    """A logical netlist line after continuation joining."""

    line_no: int
    text: str

    @property
    def tokens(self) -> list[str]:
        return self.text.split()


def _join_continuations(text: str) -> list[_Card]:
    """Strip comments, join ``+`` continuation lines into logical cards."""
    cards: list[_Card] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not cards:
                raise ParseError("continuation line with nothing to continue",
                                 line_no, raw)
            cards[-1].text += " " + stripped[1:].strip()
            continue
        cards.append(_Card(line_no, stripped))
    return cards


def _split_params(tokens: list[str]) -> tuple[list[str], dict[str, str]]:
    """Separate positional tokens from ``key=value`` parameters.

    Handles both ``key=value`` and the spaced forms ``key = value`` /
    ``key= value`` that SPICE tolerates.
    """
    joined = " ".join(tokens)
    joined = joined.replace(" =", "=").replace("= ", "=")
    positional: list[str] = []
    params: dict[str, str] = {}
    for token in joined.split():
        if "=" in token:
            key, _, value = token.partition("=")
            if not key or not value:
                raise ParseError(f"malformed parameter {token!r}")
            params[key.lower()] = value
        else:
            positional.append(token)
    return positional, params


class NetlistParser:
    """Stateful SPICE-netlist parser; use :func:`parse_netlist` normally."""

    #: Recursive subcircuit-flattening depth guard: a definition that
    #: (transitively) instantiates itself would otherwise recurse until
    #: the interpreter stack dies.  32 nesting levels is far beyond any
    #: real analogue hierarchy.
    MAX_FLATTEN_DEPTH = 32

    def __init__(self, *, models: dict[str, MOSModel] | None = None) -> None:
        #: MOSFET model cards by lower-case name; pre-seeded models allow a
        #: process card (PDK) to be injected without ``.model`` lines.
        self.models: dict[str, MOSModel] = dict(models or {})
        self.subcircuits: dict[str, SubcircuitDef] = {}
        self.parameters: dict[str, float] = {}
        #: ``.global`` nodes: never prefixed inside subcircuits.
        self.global_nodes: set[str] = set()
        #: Subcircuit names that were actually instantiated (lint:
        #: ``subckt-unused``).
        self.instantiated: set[str] = set()
        self._flatten_depth = 0

    # -- public entry point ---------------------------------------------------
    def parse(self, text: str, title: str = "") -> Circuit:
        """Parse netlist ``text`` into a flat :class:`Circuit`."""
        cards = _join_continuations(text)
        circuit = Circuit(title)
        pending_subckt: SubcircuitDef | None = None

        for card in cards:
            tokens = card.tokens
            head = tokens[0].lower()
            try:
                if head == ".subckt":
                    if pending_subckt is not None:
                        raise ParseError("nested .subckt is not supported",
                                         card.line_no, card.text)
                    if len(tokens) < 3:
                        raise ParseError(".subckt needs a name and >=1 port",
                                         card.line_no, card.text)
                    pending_subckt = SubcircuitDef(
                        name=tokens[1].lower(), ports=tuple(tokens[2:]),
                        line_no=card.line_no)
                elif head == ".ends":
                    if pending_subckt is None:
                        raise ParseError(".ends without .subckt",
                                         card.line_no, card.text)
                    self.subcircuits[pending_subckt.name] = pending_subckt
                    pending_subckt = None
                elif pending_subckt is not None:
                    pending_subckt.cards.append((card.line_no, card.text))
                elif head == ".model":
                    self._parse_model(card)
                elif head == ".param":
                    self._parse_param(card)
                elif head == ".global":
                    self._parse_global(card)
                elif head == ".end":
                    break
                elif head.startswith("."):
                    # Analysis cards (.ac/.dc/.tran/.op) are accepted and
                    # ignored: analyses are invoked through the Python API.
                    continue
                else:
                    self._parse_element(card, circuit, prefix="")
            except ParseError:
                raise
            except Exception as exc:
                raise ParseError(str(exc), card.line_no, card.text) from exc

        if pending_subckt is not None:
            raise ParseError(f".subckt {pending_subckt.name!r} never closed "
                             "with .ends")
        return circuit

    # -- directive cards ---------------------------------------------------------
    def _parse_model(self, card: _Card) -> None:
        tokens = card.tokens
        if len(tokens) < 3:
            raise ParseError(".model needs a name and a type",
                             card.line_no, card.text)
        name = tokens[1].lower()
        mtype = tokens[2].lower().strip("(")
        if mtype not in ("nmos", "pmos"):
            raise ParseError(f"unsupported model type {mtype!r} "
                             "(only nmos/pmos)", card.line_no, card.text)
        body = " ".join(tokens[3:]).strip("()")
        _, params = _split_params(body.split())
        known = {f.name for f in MOSModel.__dataclass_fields__.values()}
        kwargs = {}
        for key, value in params.items():
            field_name = {"lambda": "klambda"}.get(key, key)
            if field_name not in known:
                continue  # unknown BSIM-era parameters are tolerated
            kwargs[field_name] = parse_si(value)
        self.models[name] = MOSModel(
            name=name, polarity="n" if mtype == "nmos" else "p", **kwargs)

    def _parse_param(self, card: _Card) -> None:
        _, params = _split_params(card.tokens[1:])
        for key, value in params.items():
            self.parameters[key] = self._number(value, card)

    def _parse_global(self, card: _Card) -> None:
        if len(card.tokens) < 2:
            raise ParseError(".global needs at least one node name",
                             card.line_no, card.text)
        self.global_nodes.update(card.tokens[1:])

    def _number(self, token: str, card: _Card | None = None) -> float:
        """Resolve a numeric token, allowing ``.param`` references.

        Raises
        ------
        ParseError
            On a malformed number, carrying the card's line number --
            not the bare :class:`ValueError` of :func:`parse_si`, whose
            message cannot say *where* the bad value sits.
        """
        lowered = token.lower()
        if lowered in self.parameters:
            return self.parameters[lowered]
        try:
            return parse_si(token)
        except ValueError:
            raise ParseError(
                f"malformed numeric value {token!r} (engineering notation "
                f"or a .param name expected)",
                card.line_no if card else None,
                card.text if card else None) from None

    # -- element cards ----------------------------------------------------------
    def _parse_element(self, card: _Card, circuit: Circuit, prefix: str) -> None:
        tokens = card.tokens
        name = prefix + tokens[0]
        kind = tokens[0][0].lower()
        handler = {
            "r": self._element_r, "c": self._element_c, "l": self._element_l,
            "v": self._element_v, "i": self._element_i,
            "e": self._element_e, "g": self._element_g,
            "f": self._element_f, "h": self._element_h,
            "d": self._element_d, "m": self._element_m,
            "x": self._element_x,
        }.get(kind)
        if handler is None:
            raise ParseError(f"unknown element type {tokens[0]!r}",
                             card.line_no, card.text)
        element = handler(card, circuit, name, prefix)
        if element is not None:
            element.line_no = card.line_no

    def _map_node(self, node: str, prefix: str,
                  port_map: dict[str, str] | None) -> str:
        """Apply subcircuit port mapping / name prefixing to a node."""
        if is_ground(node) or node in self.global_nodes:
            return node
        if port_map is not None and node in port_map:
            return port_map[node]
        return prefix + node

    def _nodes(self, card: _Card, count: int, prefix: str) -> list[str]:
        tokens = card.tokens
        if len(tokens) < count + 1:
            raise ParseError(f"{tokens[0]!r} needs {count} nodes",
                             card.line_no, card.text)
        port_map = getattr(self, "_active_port_map", None)
        return [self._map_node(n, prefix, port_map) for n in tokens[1:count + 1]]

    def _element_r(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        return circuit.add(
            Resistor(name, *nodes, self._number(card.tokens[3], card)))

    def _element_c(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        return circuit.add(
            Capacitor(name, *nodes, self._number(card.tokens[3], card)))

    def _element_l(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        return circuit.add(
            Inductor(name, *nodes, self._number(card.tokens[3], card)))

    def _source_values(self, tokens: list[str], card: _Card):
        """Parse ``[DC] v [AC mag [phase]]`` source value tokens."""
        dc = 0.0
        ac_mag = 0.0
        ac_phase = 0.0
        i = 0
        seen_plain = False
        while i < len(tokens):
            token = tokens[i].lower()
            if token == "dc":
                if i + 1 >= len(tokens):
                    raise ParseError("DC keyword needs a value",
                                     card.line_no, card.text)
                dc = self._number(tokens[i + 1], card)
                i += 2
            elif token == "ac":
                if i + 1 >= len(tokens):
                    raise ParseError("AC keyword needs a magnitude",
                                     card.line_no, card.text)
                ac_mag = self._number(tokens[i + 1], card)
                i += 2
                if i < len(tokens):
                    try:
                        ac_phase = self._number(tokens[i], card)
                        i += 1
                    except ParseError:
                        pass  # not a phase value; next keyword handles it
            else:
                if seen_plain:
                    raise ParseError(f"unexpected source token {tokens[i]!r}",
                                     card.line_no, card.text)
                dc = self._number(tokens[i], card)
                seen_plain = True
                i += 1
        return dc, ac_mag, ac_phase

    def _element_v(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        dc, ac_mag, ac_phase = self._source_values(card.tokens[3:], card)
        return circuit.add(VoltageSource(name, *nodes, dc,
                                         ac_mag=ac_mag,
                                         ac_phase_deg=ac_phase))

    def _element_i(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        dc, ac_mag, ac_phase = self._source_values(card.tokens[3:], card)
        return circuit.add(CurrentSource(name, *nodes, dc,
                                         ac_mag=ac_mag,
                                         ac_phase_deg=ac_phase))

    def _element_e(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 4, prefix)
        return circuit.add(
            VCVS(name, *nodes, self._number(card.tokens[5], card)))

    def _element_g(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 4, prefix)
        return circuit.add(
            VCCS(name, *nodes, self._number(card.tokens[5], card)))

    def _element_f(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        control = prefix + card.tokens[3]
        return circuit.add(
            CCCS(name, *nodes, control, self._number(card.tokens[4], card)))

    def _element_h(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        control = prefix + card.tokens[3]
        return circuit.add(
            CCVS(name, *nodes, control, self._number(card.tokens[4], card)))

    def _element_d(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 2, prefix)
        _, params = _split_params(card.tokens[3:])
        kwargs = {}
        if "is" in params:
            kwargs["i_s"] = self._number(params["is"], card)
        if "n" in params:
            kwargs["n"] = self._number(params["n"], card)
        if "cj0" in params:
            kwargs["cj0"] = self._number(params["cj0"], card)
        return circuit.add(Diode(name, *nodes, **kwargs))

    def _element_m(self, card, circuit, name, prefix):
        nodes = self._nodes(card, 4, prefix)
        rest = card.tokens[5:]
        if len(card.tokens) < 6:
            raise ParseError("MOSFET needs 4 nodes and a model name",
                             card.line_no, card.text)
        model_name = card.tokens[5].lower()
        if model_name not in self.models:
            raise ParseError(f"undefined MOSFET model {model_name!r}",
                             card.line_no, card.text)
        _, params = _split_params(rest[1:])
        w = self._number(params.get("w", "10u"), card)
        length = self._number(params.get("l", "1u"), card)
        m = self._number(params.get("m", "1"), card)
        return circuit.add(Mosfet(name, *nodes, self.models[model_name],
                                  w, length, m=m))

    def _element_x(self, card, circuit, name, prefix):
        tokens = card.tokens
        if len(tokens) < 3:
            raise ParseError("subcircuit instance needs nodes and a name",
                             card.line_no, card.text)
        subckt_name = tokens[-1].lower()
        if subckt_name not in self.subcircuits:
            raise ParseError(f"undefined subcircuit {subckt_name!r}",
                             card.line_no, card.text)
        definition = self.subcircuits[subckt_name]
        outer_nodes = tokens[1:-1]
        if len(outer_nodes) != len(definition.ports):
            raise ParseError(
                f"subcircuit {subckt_name!r} has {len(definition.ports)} ports, "
                f"got {len(outer_nodes)} connections", card.line_no, card.text)
        port_map = getattr(self, "_active_port_map", None)
        resolved_outer = [self._map_node(n, prefix, port_map)
                          for n in outer_nodes]
        inner_map = dict(zip(definition.ports, resolved_outer, strict=True))
        self.instantiated.add(subckt_name)

        if self._flatten_depth >= self.MAX_FLATTEN_DEPTH:
            raise ParseError(
                f"subcircuit nesting deeper than {self.MAX_FLATTEN_DEPTH} "
                f"while flattening {subckt_name!r} -- recursive "
                f"instantiation?", card.line_no, card.text)
        saved_map = getattr(self, "_active_port_map", None)
        self._active_port_map = inner_map
        self._flatten_depth += 1
        inner_prefix = name + "."
        try:
            for line_no, text in definition.cards:
                self._parse_element(_Card(line_no, text), circuit, inner_prefix)
        finally:
            self._active_port_map = saved_map
            self._flatten_depth -= 1


def parse_netlist(text: str, *, title: str = "",
                  models: dict[str, MOSModel] | None = None) -> Circuit:
    """Parse a SPICE-like netlist into a flat :class:`Circuit`.

    Parameters
    ----------
    text:
        The netlist source.
    models:
        Optional pre-seeded MOSFET model cards (e.g. from a
        :mod:`repro.process` PDK), so netlists need no ``.model`` lines.

    >>> circuit = parse_netlist('''
    ... * voltage divider
    ... V1 in 0 DC 10
    ... R1 in out 1k
    ... R2 out 0 1k
    ... ''')
    >>> len(circuit)
    3
    """
    return NetlistParser(models=models).parse(text, title=title)
