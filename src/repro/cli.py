"""Command-line interface: ``repro-flow`` / ``python -m repro``.

Subcommands mirror the paper's experiments:

* ``build``   -- run the model-building flow (Figure 3) and save artefacts;
* ``target``  -- query a saved model with a specification (Table 3);
* ``filter``  -- run the filter application flow on a saved model
  (section 5);
* ``table1``  -- print the design-parameter space (Table 1);
* ``lint``    -- topology-lint netlist files without simulating them
  (exit 0 when clean, 1 on errors -- or on warnings with ``--strict``);
* ``serve``   -- run the yield-service daemon over a spool directory
  (:mod:`repro.service`);
* ``submit``  -- drop a JSON job request into a service root (optionally
  waiting for the result);
* ``jobs``    -- list job statuses under a service root, cancel a job,
  or stop the daemon;
* ``trace``   -- render a telemetry events file (``--telemetry`` /
  ``REPRO_TELEMETRY``) as an indented span tree with per-stage
  simulation counts;
* ``stats``   -- ask a running daemon for a live metrics snapshot.

Paper-scale runs take a couple of minutes; pass ``--reduced`` for a
seconds-scale smoke run.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from . import __version__
from .designs.ota import OTA_DESIGN_SPACE
from .errors import ReproError
from .exec import resolve_backend
from .flow.artifacts import rebuild_model, save_flow_artifacts
from .flow.filter_flow import FilterFlowConfig, run_filter_flow
from .flow.pipeline import (paper_scale_config, reduced_config,
                            run_model_build_flow)
from .lint import LINT_MODES, lint_file
from .measure.specs import Spec, SpecSet
from .process import C35

__all__ = ["main"]


def _backend_invalid(spec: str, workers: int = 0) -> bool:
    """Fail fast on a bad backend spec (or REPRO_EXEC_BACKEND value)
    instead of tracebacking after earlier flow stages already ran."""
    try:
        resolve_backend(spec or None, workers)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return True
    return False


def _parse_floats(spec: str, option: str) -> tuple[float, ...]:
    """Parse a comma-separated float list CLI option."""
    try:
        return tuple(float(token) for token in spec.split(",")
                     if token.strip())
    except ValueError:
        raise ReproError(
            f"{option} expects a comma-separated list of numbers, "
            f"got {spec!r}") from None


def _cmd_build(args) -> int:
    config = reduced_config(args.seed) if args.reduced \
        else paper_scale_config(args.seed)
    if args.generations:
        config = dataclasses.replace(config, generations=args.generations)
    if _backend_invalid(args.backend, args.workers):
        return 2
    if args.backend:
        config = dataclasses.replace(config, mc_backend=args.backend)
    if args.workers:
        config = dataclasses.replace(config, mc_workers=args.workers)
    if args.surrogate_budget < 0:
        print("error: --surrogate-budget must be >= 0", file=sys.stderr)
        return 2
    budget = args.surrogate_budget
    if args.surrogate and not budget:
        budget = 96  # the default seed-batch size of repro.surrogate
    if not 0.0 < args.yield_target < 1.0:
        print("error: --yield-target must lie in (0, 1)", file=sys.stderr)
        return 2
    if args.fidelity_budget < 0:
        print("error: --fidelity-budget must be >= 0", file=sys.stderr)
        return 2
    if not 0.0 <= args.adaptive_ci < 1.0:
        print("error: --adaptive-ci must lie in [0, 1) "
              "(0 disables the stage)", file=sys.stderr)
        return 2
    if args.checkpoint and not args.adaptive_ci:
        print("error: --checkpoint needs --adaptive-ci to enable the "
              "streaming verification stage", file=sys.stderr)
        return 2
    if args.high_sigma_budget < 0:
        print("error: --high-sigma-budget must be >= 0", file=sys.stderr)
        return 2
    high_sigma_budget = args.high_sigma_budget
    if args.high_sigma and not high_sigma_budget:
        high_sigma_budget = 1000  # the stage's default per-level budget
    try:
        config = dataclasses.replace(
            config, corners=args.corners,
            corner_vdds=_parse_floats(args.vdd, "--vdd"),
            corner_temps=_parse_floats(args.temp, "--temp"),
            surrogate_budget=budget,
            yield_objective=args.yield_objective,
            yield_target=args.yield_target,
            fidelity_budget=args.fidelity_budget,
            adaptive_ci=args.adaptive_ci,
            streaming_checkpoint=args.checkpoint,
            high_sigma=bool(high_sigma_budget),
            high_sigma_per_level=high_sigma_budget or 1000,
            high_sigma_final=2 * high_sigma_budget or 2000,
            lint=args.lint,
            telemetry=args.telemetry)
        config.corner_grid(C35)  # fail fast on unknown corner names
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_model_build_flow(config, progress=print)
    print()
    print(result.ledger.table())
    if result.corner_check is not None:
        print()
        print(result.corner_check.summary_table())
    written = save_flow_artifacts(result, args.output)
    print(f"\nartefacts written to {args.output}:")
    for name, path in sorted(written.items()):
        print(f"  {name}: {path}")
    return 0


def _cmd_target(args) -> int:
    model = rebuild_model(args.model_dir)
    specs = SpecSet([
        Spec("gain_db", "ge", args.gain, "dB"),
        Spec("pm_deg", "ge", args.pm, "deg"),
    ])
    design = model.design_for_specs(specs)
    print("guard-banded targets (Table 3):")
    for name, target in design.targets.items():
        print(f"  {name}: required {target.required:g}, "
              f"variation {target.variation_pct:.3f}%, "
              f"new performance {target.new_value:.4f}")
    print("nominal performance at the selected front point:")
    for name, value in design.nominal_performance.items():
        print(f"  {name} = {value:.4f}")
    print("interpolated design parameters:")
    for name, value in design.parameters.items():
        print(f"  {name} = {value * 1e6:.3f} um")
    return 0


def _cmd_filter(args) -> int:
    if _backend_invalid(""):  # the filter flow's MC honours the env var
        return 2
    model = rebuild_model(args.model_dir)
    config = FilterFlowConfig(seed=args.seed,
                              verification_samples=args.samples,
                              telemetry=args.telemetry)
    result = run_filter_flow(model, config, progress=print)
    print()
    print(result.ledger.table())
    return 0


def _cmd_lint(args) -> int:
    import json

    reports = []
    for path in args.netlists:
        try:
            reports.append(lint_file(path, models=C35.models))
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps([report.to_dict() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.render_text())
    return max(report.exit_code(strict=args.strict) for report in reports)


def _cmd_serve(args) -> int:
    from .service import serve
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    serve(args.root, workers=args.workers,
          idle_exit=args.idle_exit if args.idle_exit > 0 else None,
          max_bytes=args.cache_bytes if args.cache_bytes > 0 else None,
          progress=print)
    return 0


def _cmd_submit(args) -> int:
    import json
    import time

    from .service import read_status, submit_request
    try:
        if args.request == "-":
            request = json.load(sys.stdin)
        else:
            with open(args.request) as handle:
                request = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        job_id = submit_request(args.root, request)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"submitted {job_id}")
    if not args.wait:
        return 0
    deadline = time.monotonic() + args.timeout
    while True:
        status = read_status(args.root, job_id)
        if status["state"] in ("done", "failed", "cancelled"):
            break
        if time.monotonic() > deadline:
            print(f"error: timed out after {args.timeout:g}s "
                  f"(job {job_id} still {status['state']})",
                  file=sys.stderr)
            return 2
        time.sleep(0.2)
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if status["state"] == "done" else 1


def _cmd_jobs(args) -> int:
    from .service import job_statuses, request_cancel, request_stop
    if args.cancel:
        request_cancel(args.root, args.cancel)
        print(f"cancel requested for {args.cancel}")
        return 0
    if args.stop:
        request_stop(args.root)
        print("stop requested")
        return 0
    statuses = job_statuses(args.root)
    if not statuses:
        print("no jobs")
        return 0
    for status in statuses:
        line = (f"{status.get('id', '?'):<22} "
                f"{status.get('kind', '?'):<16} "
                f"{status.get('state', '?'):<10}")
        if status.get("cache_hit"):
            line += " (cache hit)"
        if status.get("progress"):
            done, total = status["progress"]
            line += f" {done}/{total}"
        print(line)
    return 0


def _cmd_trace(args) -> int:
    import os
    from pathlib import Path

    from .telemetry import render_trace
    # load_events treats a missing file as "no events" (it walks rotated
    # generations that may not exist), so check the primary file here --
    # a typo'd path should error, not print an empty tree.
    if not Path(args.events).exists():
        print(f"error: no such events file: {args.events}",
              file=sys.stderr)
        return 2
    try:
        print(render_trace(args.events))
    except BrokenPipeError:
        # Piped into `head`/`less` and the reader left -- exit quietly
        # like cat(1); redirect stdout so the interpreter's exit flush
        # does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_stats(args) -> int:
    import json

    from .service import request_stats
    try:
        payload = request_stats(args.root, timeout=args.timeout)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    cache = payload.get("cache", {})
    print(f"cache: {cache.get('hits', 0)} hit(s), "
          f"{cache.get('misses', 0)} miss(es), "
          f"{cache.get('stores', 0)} store(s), "
          f"{cache.get('evictions', 0)} eviction(s), "
          f"{cache.get('entries', 0)} entrie(s), "
          f"{cache.get('bytes', 0)} byte(s)")
    jobs = payload.get("jobs", {})
    print("jobs: " + ", ".join(f"{state} {count}"
                               for state, count in sorted(jobs.items())))
    metrics = payload.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        print("counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name:<28} {value}")
    gauges = metrics.get("gauges", {})
    if gauges:
        print("gauges:")
        for name, gauge in sorted(gauges.items()):
            samples = gauge.get("samples", [])
            print(f"  {name:<28} {gauge.get('value')} "
                  f"({len(samples)} sample(s))")
    return 0


def _cmd_table1(_args) -> int:
    print(f"{'Design Parameter:':<24} Range:")
    for name, rng in OTA_DESIGN_SPACE.table1_rows():
        print(f"{name:<24} {rng}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description="Combined yield+performance behavioural modelling "
                    "(reproduction of Ali et al., DATE 2008)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="run the model-building flow")
    build.add_argument("--output", default="artifacts",
                       help="artefact directory (default: ./artifacts)")
    build.add_argument("--seed", type=int, default=2008)
    build.add_argument("--reduced", action="store_true",
                       help="seconds-scale run instead of paper scale")
    build.add_argument("--generations", type=int, default=0,
                       help="override generation count")
    build.add_argument("--backend", default="",
                       help="Monte-Carlo execution backend: serial, "
                            "thread[:N], process[:N], or auto "
                            "(default: $REPRO_EXEC_BACKEND or serial)")
    build.add_argument("--workers", type=int, default=0,
                       help="worker count for pooled backends "
                            "(default: one per CPU)")
    build.add_argument("--corners", default="all",
                       help="PVT corner-verification set: 'all' (default), "
                            "a comma list of corner names (e.g. tm,ws), or "
                            "'none' to skip the stage")
    build.add_argument("--vdd", default="",
                       help="comma list of supply voltages [V] for the "
                            "corner sweep (default: nominal +/-10%%)")
    build.add_argument("--temp", default="",
                       help="comma list of temperatures [deg C] for the "
                            "corner sweep (default: -40,27,125); use the "
                            "'--temp=-40,27,125' form for lists starting "
                            "with a negative value")
    build.add_argument("--surrogate", action="store_true",
                       help="train a process-space surrogate bundle of the "
                            "mid-front design and save it with the "
                            "artefacts (surrogate_model.npz)")
    build.add_argument("--surrogate-budget", type=int, default=0,
                       help="simulator budget of the surrogate training "
                            "stage (implies --surrogate; default 96 when "
                            "--surrogate is given)")
    build.add_argument("--adaptive-ci", type=float, default=0.0,
                       help="enable the streaming adaptive yield "
                            "verification stage: stop the mid-front "
                            "verification MC once the Wilson CI on the "
                            "yield is narrower than this width (yield "
                            "fraction, e.g. 0.05; default 0 = stage "
                            "disabled)")
    build.add_argument("--checkpoint", default="",
                       help="checkpoint file of the streaming "
                            "verification; an interrupted build resumes "
                            "from it instead of restarting the stage "
                            "(needs --adaptive-ci)")
    build.add_argument("--high-sigma", action="store_true",
                       help="enable the stage-4d high-sigma verification: "
                            "a rare-event (multilevel splitting + "
                            "importance sampling) failure-probability "
                            "estimate of the mid-front design, saved as "
                            "high_sigma.txt")
    build.add_argument("--high-sigma-budget", type=int, default=0,
                       help="per-level sample budget of the high-sigma "
                            "stage (implies --high-sigma; default 1000 "
                            "when --high-sigma is given; the final "
                            "unbiased run uses twice this)")
    build.add_argument("--yield-objective", default="none",
                       choices=["none", "yield", "ksigma", "chance"],
                       help="stage-7 in-loop yield search mode: append a "
                            "yield objective, a k-sigma robustness "
                            "objective, or a chance-constraint penalty "
                            "(default: none, stage disabled)")
    build.add_argument("--yield-target", type=float, default=0.90,
                       help="target yield of the stage-7 estimator-ladder "
                            "escalation and chance penalty (default 0.90)")
    build.add_argument("--lint", default="strict", choices=list(LINT_MODES),
                       help="stage-0 pre-flight topology lint of the "
                            "testbench: strict (default) fails fast on "
                            "error findings, warn only reports, off skips "
                            "the stage")
    build.add_argument("--fidelity-budget", type=int, default=0,
                       help="simulator-call budget bounding the stage-7 "
                            "ladder's escalation per search; the corner "
                            "floor always runs and counts against it "
                            "(default 0 = unlimited)")
    build.add_argument("--telemetry", default="", metavar="EVENTS_JSONL",
                       help="record tracing spans, metrics and progress "
                            "events to this JSONL file (render with "
                            "'repro-flow trace'; default: off)")
    build.set_defaults(func=_cmd_build)

    target = sub.add_parser("target", help="yield-target a specification")
    target.add_argument("model_dir", help="directory written by 'build'")
    target.add_argument("--gain", type=float, default=50.0,
                        help="required gain [dB] (default 50)")
    target.add_argument("--pm", type=float, default=74.0,
                        help="required phase margin [deg] (default 74)")
    target.set_defaults(func=_cmd_target)

    filt = sub.add_parser("filter", help="run the filter application flow")
    filt.add_argument("model_dir", help="directory written by 'build'")
    filt.add_argument("--seed", type=int, default=2008)
    filt.add_argument("--samples", type=int, default=500,
                      help="verification MC samples (default 500)")
    filt.add_argument("--telemetry", default="", metavar="EVENTS_JSONL",
                      help="record tracing spans, metrics and progress "
                           "events to this JSONL file (render with "
                           "'repro-flow trace'; default: off)")
    filt.set_defaults(func=_cmd_filter)

    lint = sub.add_parser(
        "lint", help="topology-lint netlist files without simulating",
        description="Parse SPICE netlist files and run the topology lint "
                    "rules (repro.lint) over each.  Exit status: 0 when "
                    "every file is clean, 1 when any file has "
                    "error-severity findings (or any finding at all with "
                    "--strict), 2 when a file cannot be read.")
    lint.add_argument("netlists", nargs="+", metavar="netlist",
                      help="netlist file(s) to check")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as failures (nonzero exit)")
    lint.add_argument("--json", action="store_true",
                      help="emit one JSON array of report objects instead "
                           "of text")
    lint.set_defaults(func=_cmd_lint)

    serve = sub.add_parser(
        "serve", help="run the yield-service daemon over a spool directory",
        description="Serve job requests dropped into <root>/queue/ "
                    "(see 'repro-flow submit') through a worker pool with "
                    "a content-addressed result cache.  Runs until a stop "
                    "sentinel appears ('repro-flow jobs <root> --stop') or "
                    "the idle timeout elapses.")
    serve.add_argument("root", help="service root directory (created if "
                       "missing)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent jobs (default 2)")
    serve.add_argument("--idle-exit", type=float, default=0.0,
                       help="exit after this many idle seconds "
                            "(default: run until stopped)")
    serve.add_argument("--cache-bytes", type=int, default=0,
                       help="result-cache byte budget "
                            "(default: cache default)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a JSON job request to a service root",
        description="Validate a JSON request (kinds: estimate, lint) and "
                    "drop it into <root>/queue/ for a running daemon.")
    submit.add_argument("root", help="service root directory")
    submit.add_argument("request",
                        help="path to a JSON request file, or '-' for stdin")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print its "
                             "final status")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait timeout in seconds (default 300)")
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list, cancel, or stop jobs under a service root")
    jobs.add_argument("root", help="service root directory")
    jobs.add_argument("--cancel", metavar="JOB_ID", default="",
                      help="request cancellation of one job")
    jobs.add_argument("--stop", action="store_true",
                      help="ask the daemon to exit")
    jobs.set_defaults(func=_cmd_jobs)

    trace = sub.add_parser(
        "trace", help="render a telemetry events file as a span tree",
        description="Rebuild the hierarchical span tree from a telemetry "
                    "events JSONL file (written via --telemetry or "
                    "REPRO_TELEMETRY) and print it with cumulative/self "
                    "wall time and per-stage simulation counts, followed "
                    "by the run's simulation ledger.")
    trace.add_argument("events", help="telemetry events JSONL file")
    trace.set_defaults(func=_cmd_trace)

    stats = sub.add_parser(
        "stats", help="fetch a live metrics snapshot from a daemon",
        description="Ask the daemon serving <root> for its metrics "
                    "registry snapshot (counters, gauges with timestamped "
                    "samples, histograms), live cache figures and job "
                    "counts, over the same file-spool protocol the other "
                    "service verbs use.")
    stats.add_argument("root", help="service root directory")
    stats.add_argument("--timeout", type=float, default=10.0,
                       help="seconds to wait for the daemon's response "
                            "(default 10)")
    stats.add_argument("--json", action="store_true",
                       help="print the raw JSON payload")
    stats.set_defaults(func=_cmd_stats)

    table1 = sub.add_parser("table1", help="print the Table-1 design space")
    table1.set_defaults(func=_cmd_table1)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        # Library errors are diagnoses, not crashes: an unreachable
        # specification in `target`, say, reads as one error line.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
