"""PVT corner/scenario sweeps: deterministic worst-case verification.

The deterministic complement to :mod:`repro.mc`: instead of sampling die
realisations, enumerate the foundry's worst-case process corners crossed
with supply-voltage and temperature sets, and evaluate all of them as
extra lanes of one stacked MNA solve (see :mod:`repro.corners.sweep`).
"""

from .grid import (DEFAULT_TEMPS_C, DEFAULT_VDD_SCALES, CornerGrid, PVTPoint,
                   default_vdds)
from .report import CornerVerification, format_corner_table
from .sweep import (CornerSweepResult, corner_sweep, corner_sweep_points,
                    corner_sweep_sequential)

__all__ = [
    "CornerGrid", "PVTPoint", "DEFAULT_TEMPS_C", "DEFAULT_VDD_SCALES",
    "default_vdds",
    "CornerSweepResult", "corner_sweep", "corner_sweep_points",
    "corner_sweep_sequential",
    "CornerVerification", "format_corner_table",
]
