"""PVT grid definition: process corners x supply voltages x temperatures.

A :class:`CornerGrid` names the deterministic scenario set a design must
survive: every process corner of a :class:`~repro.process.pdk.ProcessKit`
(``tm/wp/ws/wo/wz`` for the AMS C35 kit), crossed with a supply-voltage
set (typically nominal +/-10 %) and a temperature set (typically the
industrial -40/27/125 deg C).  The grid is *declarative* -- it only
enumerates lanes; :func:`~repro.corners.sweep.corner_sweep` realises all
of them as extra batch lanes of one stacked MNA solve.

Lane order is corner-major (``itertools.product(corners, vdds, temps)``),
matching :meth:`~repro.process.pdk.ProcessKit.pvt_sample`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..process.pdk import ProcessKit, ProcessSample

__all__ = ["PVTPoint", "CornerGrid", "DEFAULT_TEMPS_C",
           "DEFAULT_VDD_SCALES", "default_vdds"]

#: Default temperature set [deg C]: the industrial qualification range.
DEFAULT_TEMPS_C = (-40.0, 27.0, 125.0)

#: Default supply set as multiples of the kit's nominal supply (+/-10 %).
DEFAULT_VDD_SCALES = (0.9, 1.0, 1.1)


def default_vdds(pdk: ProcessKit) -> tuple[float, ...]:
    """The default supply sweep for a kit: nominal +/-10 %."""
    return tuple(round(scale * pdk.supply, 6) for scale in DEFAULT_VDD_SCALES)


@dataclass(frozen=True)
class PVTPoint:
    """One lane of a PVT grid: (process corner, supply, temperature)."""

    corner: str
    vdd: float
    temp_c: float

    @property
    def label(self) -> str:
        """Compact display form, e.g. ``"ws/3.0V/125C"``."""
        return f"{self.corner}/{self.vdd:g}V/{self.temp_c:g}C"


@dataclass(frozen=True)
class CornerGrid:
    """A full PVT scenario grid (see module docstring)."""

    corners: tuple[str, ...]
    vdds: tuple[float, ...]
    temps_c: tuple[float, ...] = (27.0,)

    def __post_init__(self) -> None:
        if not self.corners:
            raise ReproError("a CornerGrid needs at least one corner")
        if not self.vdds:
            raise ReproError("a CornerGrid needs at least one supply voltage")
        if not self.temps_c:
            raise ReproError("a CornerGrid needs at least one temperature")

    @classmethod
    def full(cls, pdk: ProcessKit, vdds=None, temps_c=None) -> "CornerGrid":
        """Every corner of ``pdk`` x supplies x temperatures.

        ``vdds`` defaults to nominal +/-10 %; ``temps_c`` to the
        industrial -40/27/125 deg C set.
        """
        return cls(corners=tuple(pdk.corners),
                   vdds=tuple(vdds) if vdds else default_vdds(pdk),
                   temps_c=tuple(temps_c) if temps_c else DEFAULT_TEMPS_C)

    @classmethod
    def from_spec(cls, pdk: ProcessKit, corners: str = "all",
                  vdds: str = "", temps: str = "") -> "CornerGrid":
        """Build a grid from CLI-style comma-separated specs.

        ``corners`` is ``"all"`` or a comma list of corner names;
        ``vdds``/``temps`` are comma lists of floats (empty = defaults).
        Unknown corner names raise :class:`~repro.errors.ReproError`.
        """
        if corners.strip().lower() in ("", "all"):
            names = tuple(pdk.corners)
        else:
            names = tuple(token.strip().lower()
                          for token in corners.split(",") if token.strip())
            for name in names:
                pdk.corner_def(name)  # validate early, with a helpful error
        try:
            vdd_values = tuple(float(token) for token in vdds.split(",")
                               if token.strip())
            temp_values = tuple(float(token) for token in temps.split(",")
                                if token.strip())
        except ValueError as error:
            raise ReproError(f"bad PVT grid spec: {error}") from None
        return cls(corners=names,
                   vdds=vdd_values or default_vdds(pdk),
                   temps_c=temp_values or DEFAULT_TEMPS_C)

    @property
    def size(self) -> int:
        """Total lane count ``len(corners) * len(vdds) * len(temps_c)``."""
        return len(self.corners) * len(self.vdds) * len(self.temps_c)

    def points(self) -> list[PVTPoint]:
        """All grid points in lane (corner-major) order."""
        return [PVTPoint(corner, vdd, temp)
                for corner in self.corners
                for vdd in self.vdds
                for temp in self.temps_c]

    def labels(self) -> list[str]:
        """Display labels of every lane, in lane order."""
        return [point.label for point in self.points()]

    def realize(self, pdk: ProcessKit) -> ProcessSample:
        """The stacked deterministic :class:`ProcessSample` of the grid."""
        return pdk.pvt_sample(self.corners, self.vdds, self.temps_c)

    def describe(self) -> str:
        return (f"{len(self.corners)} corners x {len(self.vdds)} supplies "
                f"x {len(self.temps_c)} temperatures = {self.size} lanes")
