"""Corner-sweep reporting: per-corner spec-margin tables.

Two consumers:

* ad-hoc sweeps (:meth:`repro.corners.sweep.CornerSweepResult.table`)
  format one design's performance and margins per grid point;
* the model-building flow's corner-verification stage wraps the whole
  Pareto front's sweep in a :class:`CornerVerification`, whose tables
  land in the flow artefacts next to the Monte-Carlo variation model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..measure.specs import SpecSet
from ..yieldmodel.cornercheck import CornerMCCheck, compare_corners_to_mc
from .grid import CornerGrid

__all__ = ["format_corner_table", "CornerVerification"]


def format_corner_table(grid: CornerGrid,
                        performance: dict[str, np.ndarray],
                        specs: SpecSet | None = None) -> str:
    """One design's per-corner table: performance values + spec margins.

    Rows follow grid lane order; margin columns (one per spec, positive =
    pass) appear when ``specs`` is given, plus a worst-corner footer.
    """
    names = list(performance)
    headers = ["corner"] + names
    spec_list = list(specs) if specs is not None else []
    headers += [f"margin({spec.name})" for spec in spec_list]

    rows = []
    labels = grid.labels()
    margins = {spec.name: spec.margin(performance[spec.name])
               for spec in spec_list}
    for lane, label in enumerate(labels):
        row = [label]
        row += [f"{float(np.asarray(performance[name]).reshape(-1)[lane]):.4g}"
                for name in names]
        row += [f"{float(margins[spec.name][lane]):+.4g}"
                for spec in spec_list]
        rows.append(row)

    widths = [max(len(header), *(len(row[i]) for row in rows))
              for i, header in enumerate(headers)]
    lines = ["  ".join(header.ljust(widths[i])
                       for i, header in enumerate(headers))]
    lines.append("  ".join("-" * width for width in widths))
    lines += ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
              for row in rows]
    for spec in spec_list:
        worst_lane = int(np.argmin(margins[spec.name]))
        lines.append(f"worst {spec.name}: "
                     f"{float(margins[spec.name][worst_lane]):+.4g} "
                     f"at {labels[worst_lane]}")
    return "\n".join(lines)


@dataclass
class CornerVerification:
    """The flow's corner-verification stage output over a Pareto front.

    Attributes
    ----------
    grid:
        The swept PVT grid.
    samples:
        Mapping performance name -> ``(K, grid.size)`` corner-swept
        values for the ``K`` front designs (corner analogue of the MC
        sample arrays).
    specs:
        The specification the margins are measured against (the paper's
        OTA requirement by default).
    mc_check:
        Corner-vs-Monte-Carlo comparison per performance (present when
        the flow also ran its MC stage).
    """

    grid: CornerGrid
    samples: dict[str, np.ndarray]
    specs: SpecSet
    mc_check: dict[str, CornerMCCheck] = field(default_factory=dict)

    @property
    def design_count(self) -> int:
        first = next(iter(self.samples.values()))
        return int(np.atleast_2d(first).shape[0])

    def attach_mc_check(self, mc_samples: dict[str, np.ndarray], *,
                        k_sigma: float = 3.0) -> None:
        """Compute and store the corner-vs-MC comparison."""
        self.mc_check = compare_corners_to_mc(self.samples, mc_samples,
                                              k_sigma=k_sigma)

    def design_performance(self, index: int) -> dict[str, np.ndarray]:
        """One design's per-lane performance arrays, shape ``(grid.size,)``."""
        return {name: np.atleast_2d(values)[index]
                for name, values in self.samples.items()}

    def design_table(self, index: int) -> str:
        """Per-corner margin table of one front design."""
        return format_corner_table(self.grid,
                                   self.design_performance(index), self.specs)

    def pass_counts(self) -> np.ndarray:
        """Per grid point: how many front designs meet every spec there."""
        mask = None
        for spec in self.specs:
            ok = spec.satisfied(np.atleast_2d(self.samples[spec.name]))
            mask = ok if mask is None else (mask & ok)
        return np.count_nonzero(mask, axis=0)

    def best_worst_margins(self) -> dict[str, np.ndarray]:
        """Per spec, per grid point: the best margin any design achieves.

        A negative entry means *no* design on the front can meet that
        spec at that PVT point -- the model's coverage hole.
        """
        return {spec.name:
                np.max(spec.margin(np.atleast_2d(self.samples[spec.name])),
                       axis=0)
                for spec in self.specs}

    def summary_table(self) -> str:
        """The flow-artefact table: front coverage at every PVT point."""
        counts = self.pass_counts()
        best = self.best_worst_margins()
        k = self.design_count
        headers = (["corner", "designs passing"]
                   + [f"best margin({spec.name})" for spec in self.specs])
        rows = []
        for lane, label in enumerate(self.grid.labels()):
            row = [label, f"{int(counts[lane])}/{k}"]
            row += [f"{float(best[spec.name][lane]):+.4g}"
                    for spec in self.specs]
            rows.append(row)
        widths = [max(len(header), *(len(row[i]) for row in rows))
                  for i, header in enumerate(headers)]
        lines = [f"spec: {self.specs.describe()}",
                 "  ".join(header.ljust(widths[i])
                           for i, header in enumerate(headers)),
                 "  ".join("-" * width for width in widths)]
        lines += ["  ".join(cell.ljust(widths[i])
                            for i, cell in enumerate(row)) for row in rows]
        worst_lane = int(np.argmin(counts))
        lines.append(f"weakest PVT point: {self.grid.labels()[worst_lane]} "
                     f"({int(counts[worst_lane])}/{k} designs pass)")
        for check in self.mc_check.values():
            lines.append(check.describe())
        return "\n".join(lines)
