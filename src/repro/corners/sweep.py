"""Stacked PVT corner sweeps.

The whole point of this subsystem: a PVT grid is *deterministic* extra
batch lanes, so a 5-corner x 3-supply x 3-temperature grid costs one
45-lane stacked ``numpy.linalg.solve`` instead of 45 sequential circuit
builds and factorisations.  Three entry points:

* :func:`corner_sweep` -- one design across a grid, stacked (optionally
  chunked through the :mod:`repro.exec` backends for very large grids);
* :func:`corner_sweep_points` -- many design points x the grid, the
  corner analogue of :func:`repro.mc.engine.monte_carlo_points` (used by
  the flow's corner-verification stage over the whole Pareto front);
* :func:`corner_sweep_sequential` -- the one-lane-at-a-time reference
  loop.  It exists for the speedup benchmark and the bit-equivalence
  tests; never use it for real sweeps.

Determinism
-----------
Corner sweeps draw no random numbers, so results are bit-identical
across execution backends, worker counts, and chunk geometries -- a
strictly stronger guarantee than the Monte-Carlo engine's (which is
bit-stable only for a fixed ``chunk_lanes``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from ..exec import resolve_backend
from ..measure.specs import SpecSet
from ..process.pdk import ProcessKit
from .grid import CornerGrid

__all__ = ["CornerSweepResult", "corner_sweep", "corner_sweep_points",
           "corner_sweep_sequential"]


@dataclass
class CornerSweepResult:
    """Performance of one design over every lane of a PVT grid.

    Attributes
    ----------
    grid:
        The swept :class:`~repro.corners.grid.CornerGrid`.
    performance:
        Mapping performance name -> shape-``(grid.size,)`` array, in
        lane order.
    """

    grid: CornerGrid
    performance: dict[str, np.ndarray] = field(default_factory=dict)

    def margins(self, specs: SpecSet) -> dict[str, np.ndarray]:
        """Per-spec signed margins at every grid point (positive = pass)."""
        return {spec.name: spec.margin(self.performance[spec.name])
                for spec in specs}

    def worst_case(self, name: str) -> tuple[float, str, float, str]:
        """``(min, argmin label, max, argmax label)`` of a performance."""
        values = np.asarray(self.performance[name], dtype=float)
        labels = self.grid.labels()
        lo, hi = int(np.argmin(values)), int(np.argmax(values))
        return (float(values[lo]), labels[lo],
                float(values[hi]), labels[hi])

    def pass_mask(self, specs: SpecSet) -> np.ndarray:
        """All-specs-pass mask over the grid lanes."""
        return specs.pass_mask(self.performance)

    def table(self, specs: SpecSet | None = None) -> str:
        """Human-readable per-corner table (see :mod:`.report`)."""
        from .report import format_corner_table
        return format_corner_table(self.grid, self.performance, specs)


def _chunk_bounds(total: int, chunk: int) -> list[tuple[int, int]]:
    chunk = max(1, chunk)
    return [(start, min(start + chunk, total))
            for start in range(0, total, chunk)]


def corner_sweep(evaluator, pdk: ProcessKit, grid: CornerGrid, *,
                 backend=None, workers: int = 0,
                 chunk_lanes: int = 0) -> CornerSweepResult:
    """Evaluate one design across a PVT grid as stacked batch lanes.

    Parameters
    ----------
    evaluator:
        Callable ``(ProcessSample) -> dict[name, (B,) array]`` -- the
        same contract as :func:`repro.mc.engine.monte_carlo`'s evaluator,
        so any Monte-Carlo-ready design function sweeps corners for free.
    backend, workers:
        Execution backend selection (see :func:`repro.exec.resolve_backend`).
        Only relevant when the grid is split into several chunks.
    chunk_lanes:
        Upper bound on simultaneous lanes per stacked solve; ``0`` (the
        default) solves the whole grid in one stack.  Results are
        bit-identical for any value.

    Returns
    -------
    A :class:`CornerSweepResult` in grid lane order.
    """
    sample = grid.realize(pdk)
    bounds = _chunk_bounds(grid.size, chunk_lanes or grid.size)

    def run_chunk(bound):
        start, stop = bound
        performance = evaluator(sample.lanes(start, stop))
        return {name: np.asarray(values, dtype=float).reshape(-1)
                for name, values in performance.items()}

    parts = resolve_backend(backend, workers).run(run_chunk, bounds)
    performance = {name: np.concatenate([part[name] for part in parts])
                   for name in parts[0]}
    for name, values in performance.items():
        if values.size != grid.size:
            raise ReproError(
                f"corner evaluator returned {values.size} lanes for "
                f"{name!r}, expected {grid.size}")
    return CornerSweepResult(grid=grid, performance=performance)


def corner_sweep_points(evaluator, n_points: int, pdk: ProcessKit,
                        grid: CornerGrid, *, backend=None, workers: int = 0,
                        chunk_lanes: int = 0,
                        progress=None) -> dict[str, np.ndarray]:
    """Sweep every design point of a set across a PVT grid.

    The corner analogue of :func:`repro.mc.engine.monte_carlo_points`:
    design points are tiled against the grid realisation and processed in
    lane-bounded chunks the configured backend may run in parallel.

    Parameters
    ----------
    evaluator:
        Callable ``(point_indices, repeats, ProcessSample) ->
        dict[name, (len(point_indices)*repeats,) array]`` -- identical to
        the ``monte_carlo_points`` contract, with ``repeats`` always
        ``grid.size`` and the same grid lanes repeated for every point.
    chunk_lanes:
        Upper bound on simultaneous lanes (points x grid size) per
        stacked solve; ``0`` solves everything in one stack.  Each
        point's grid block is atomic, so the effective bound is
        ``max(chunk_lanes, grid.size)``.
    progress:
        Optional callback ``(points_done, n_points)``.

    Returns
    -------
    Mapping performance name -> ``(n_points, grid.size)`` array.
    """
    sample = grid.realize(pdk)
    lanes = chunk_lanes or n_points * grid.size
    points_per_chunk = max(1, lanes // grid.size)
    bounds = _chunk_bounds(n_points, points_per_chunk)

    def run_chunk(bound):
        start, stop = bound
        indices = np.arange(start, stop)
        die_sample = sample.tiled(indices.size)
        performance = evaluator(indices, grid.size, die_sample)
        return {name: np.asarray(values, dtype=float).reshape(
                    indices.size, grid.size)
                for name, values in performance.items()}

    on_done = None
    if progress is not None:
        sizes = [stop - start for start, stop in bounds]
        state = {"points": 0}

        def on_done(done, total, index):
            state["points"] += sizes[index]
            progress(state["points"], n_points)

    parts = resolve_backend(backend, workers).run(run_chunk, bounds,
                                                  progress=on_done)
    if not parts:
        return {}
    return {name: np.concatenate([part[name] for part in parts], axis=0)
            for name in parts[0]}


def corner_sweep_sequential(evaluator, pdk: ProcessKit,
                            grid: CornerGrid) -> CornerSweepResult:
    """The naive one-lane-at-a-time corner loop (benchmark baseline).

    Builds and solves a fresh single-lane circuit per grid point --
    exactly what :func:`corner_sweep` exists to avoid.  Kept as the
    reference semantics: its results must be bit-identical to the
    stacked sweep's.
    """
    parts: list[dict[str, np.ndarray]] = []
    for point in grid.points():
        sample = pdk.corner_sample(point.corner, vdd=point.vdd,
                                   temp_c=point.temp_c)
        performance = evaluator(sample)
        parts.append({name: np.asarray(values, dtype=float).reshape(-1)
                      for name, values in performance.items()})
    performance = {name: np.concatenate([part[name] for part in parts])
                   for name in parts[0]}
    return CornerSweepResult(grid=grid, performance=performance)
