"""Reference designs: the symmetrical OTA (Fig. 5) and the 2nd-order
OTA-C low-pass filter (Fig. 9), plus their optimisation problems."""

from .filter2 import (DEFAULT_FILTER_SPEC, FILTER_OBJECTIVES, FilterCaps,
                      FilterSpec, build_filter_behavioral,
                      build_filter_transistor, evaluate_filter,
                      filter_frequency_grid)
from .miller import (MILLER_DESIGN_SPACE, MillerOTAProblem,
                     MillerParameters, build_miller_ota,
                     evaluate_miller_ota)
from .ota import (OTA_DESIGN_SPACE, OTA_OBJECTIVES, OTADesignSpace,
                  OTAParameters, add_ota_devices, build_ota,
                  default_frequency_grid, evaluate_ota)
from .problems import (BehavioralFilterProblem, OTAProblem,
                       TransistorFilterProblem)

__all__ = [
    "DEFAULT_FILTER_SPEC", "FILTER_OBJECTIVES", "FilterCaps", "FilterSpec",
    "build_filter_behavioral", "build_filter_transistor", "evaluate_filter",
    "filter_frequency_grid",
    "OTA_DESIGN_SPACE", "OTA_OBJECTIVES", "OTADesignSpace", "OTAParameters",
    "add_ota_devices", "build_ota", "default_frequency_grid", "evaluate_ota",
    "BehavioralFilterProblem", "OTAProblem", "TransistorFilterProblem",
    "MILLER_DESIGN_SPACE", "MillerOTAProblem", "MillerParameters",
    "build_miller_ota", "evaluate_miller_ota",
]
