"""The paper's application example: a 2nd-order OTA-C low-pass filter.

Section 5 of the paper demonstrates the behavioural model by designing a
2nd-order low-pass (anti-aliasing) filter built from the modelled OTA
(Figure 9), with capacitors ``C1``, ``C2``, ``C3`` as the filter's own
design variables (30 individuals x 40 generations of MOO) and a
specification mask (Figure 10).

Topology
--------
The classic two-OTA Gm-C biquad with a bridging capacitor::

    vin --(+ OTA1 -)--- v1 ---(+ OTA2 -)--- v2 (= output)
               ^         |        ^          |
               |        C1        |         C2      C3 bridges v1 - v2
               +---- v2 feedback --+---- v2 feedback

    OTA1: non-inverting input vin, inverting input v2, output v1 (onto C1)
    OTA2: non-inverting input v1,  inverting input v2, output v2 (onto C2)

With ideal transconductors (``gm = gain/ro``) and ``C3 = 0`` the transfer
function is the textbook Gm-C biquad

``H(s) = gm1*gm2 / (s^2 C1 C2 + s C1 gm2 + gm1 gm2)``

giving ``w0 = sqrt(gm1 gm2 / C1 C2)`` and ``Q = sqrt(gm1 C2 / (gm2 C1))``;
``C3`` bridges the integrator nodes and provides the third degree of
freedom the paper optimises.  Unity DC gain follows from the v2 feedback.

The filter exists in two fidelities sharing one measurement path:

* **behavioural** -- two :class:`~repro.behavioral.ota.BehavioralOTA`
  macromodels whose (gain, ro) come from the combined yield model: the
  fast simulation the paper's flow enables;
* **transistor** -- two embedded 10-transistor OTA cores
  (:func:`repro.designs.ota.add_ota_devices`): the verification reference.

Specification (Figure 10 equivalent)
------------------------------------
The paper states "typical anti-aliasing filter specification" without
numbers; we fix (documented in DESIGN.md): unity passband gain with at
most 1 dB ripple up to 1 MHz, and at least 30 dB attenuation beyond
10 MHz.  The OTA requirement quoted by the paper -- open-loop gain > 50 dB
and phase margin > 60 degrees -- is applied when selecting the OTA from
the combined model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import ac_analysis, dc_operating_point, log_frequencies
from ..behavioral.ota import BehavioralOTA
from ..circuit import Capacitor, Circuit, VoltageSource
from ..errors import ReproError
from ..measure.acmeas import (dc_gain_db, f3db, passband_ripple_db,
                              stopband_attenuation_db)
from ..measure.specs import Spec, SpecSet
from ..process import C35, ProcessKit, ProcessSample
from ..units import from_db20
from .ota import OTAParameters, add_ota_devices

__all__ = ["FilterSpec", "DEFAULT_FILTER_SPEC", "FilterCaps",
           "build_filter_behavioral", "build_filter_transistor",
           "evaluate_filter", "filter_frequency_grid", "FILTER_OBJECTIVES"]

#: The filter optimisation objectives (minimise ripple, maximise rejection).
FILTER_OBJECTIVES = ("ripple_db", "atten_db")


@dataclass(frozen=True)
class FilterSpec:
    """The Figure-10 anti-aliasing mask plus the OTA requirements.

    Attributes
    ----------
    f_pass:
        Passband edge [Hz].
    max_ripple_db:
        Maximum gain deviation from DC inside the passband [dB].
    f_stop:
        Stopband edge [Hz].
    min_atten_db:
        Minimum attenuation (below DC gain) beyond ``f_stop`` [dB].
    ota_gain_db, ota_pm_deg:
        The OTA open-loop requirements of the paper's section 5
        ("50 dB and 60 degrees respectively").
    """

    f_pass: float = 1.0e6
    max_ripple_db: float = 1.0
    f_stop: float = 10.0e6
    min_atten_db: float = 30.0
    ota_gain_db: float = 50.0
    ota_pm_deg: float = 60.0

    def mask_specs(self) -> SpecSet:
        """The filter mask as a :class:`SpecSet` over filter measures."""
        return SpecSet([
            Spec("ripple_db", "le", self.max_ripple_db, "dB",
                 label="passband ripple"),
            Spec("atten_db", "ge", self.min_atten_db, "dB",
                 label="stopband attenuation"),
        ])

    def ota_specs(self) -> SpecSet:
        """The OTA requirement as a :class:`SpecSet` over OTA measures."""
        return SpecSet([
            Spec("gain_db", "ge", self.ota_gain_db, "dB",
                 label="open-loop gain"),
            Spec("pm_deg", "ge", self.ota_pm_deg, "deg",
                 label="phase margin"),
        ])

    def mask_points(self) -> list[tuple[float, float, str]]:
        """Corner points of the graphical mask (for the Figure-10 bench):
        ``(frequency, level_dB, 'upper'|'lower')`` relative to DC gain."""
        return [
            (self.f_pass, +self.max_ripple_db, "upper"),
            (self.f_pass, -self.max_ripple_db, "lower"),
            (self.f_stop, -self.min_atten_db, "upper"),
        ]


#: The specification used throughout the reproduction.
DEFAULT_FILTER_SPEC = FilterSpec()


@dataclass
class FilterCaps:
    """The filter's designable capacitors (Figure 9's C1, C2, C3).

    Values in farads; scalars or ``(B,)`` batch arrays.  The default is a
    Butterworth-ish starting point for ``gm ~ 275 uS`` OTAs.
    """

    c1: object = 60e-12
    c2: object = 30e-12
    c3: object = 2e-12

    #: MOO search range per capacitor [F] (the paper does not quote one;
    #: these are sensible design windows: the integrator capacitors span
    #: around the gm/(2*pi*f0) sizing, the bridge capacitor stays small
    #: relative to them).
    BOUNDS: tuple[tuple[float, float], ...] = (
        (5e-12, 120e-12),   # C1
        (5e-12, 120e-12),   # C2
        (0.5e-12, 10e-12),  # C3 (bridge)
    )

    @classmethod
    def from_normalized(cls, unit_values) -> "FilterCaps":
        """Map ``[0, 1]^3`` GA genes to capacitor values (log scale --
        capacitors are ratio-metric quantities)."""
        unit_values = np.asarray(unit_values, dtype=float)
        if unit_values.shape[-1] != 3:
            raise ReproError(f"expected 3 capacitor genes, got "
                             f"{unit_values.shape}")
        caps = np.empty_like(unit_values)
        for j, (lo, hi) in enumerate(cls.BOUNDS):
            log_lo, log_hi = np.log10(lo), np.log10(hi)
            caps[..., j] = 10.0 ** (log_lo + unit_values[..., j]
                                    * (log_hi - log_lo))
        if caps.ndim == 1:
            return cls(float(caps[0]), float(caps[1]), float(caps[2]))
        return cls(caps[..., 0], caps[..., 1], caps[..., 2])

    def to_array(self) -> np.ndarray:
        columns = [self.c1, self.c2, self.c3]
        batched = any(np.ndim(c) == 1 for c in columns)
        if not batched:
            return np.array([float(c) for c in columns])
        batch = max(np.size(c) for c in columns)
        return np.stack([np.broadcast_to(np.asarray(c, float), (batch,))
                         for c in columns], axis=-1)

    def scaled(self, factor) -> "FilterCaps":
        """All three capacitors scaled (process variation)."""
        return FilterCaps(self.c1 * factor, self.c2 * factor,
                          self.c3 * factor)


def filter_frequency_grid(points_per_decade: int = 20) -> np.ndarray:
    """Measurement sweep for the filter: 1 kHz to 100 MHz."""
    return log_frequencies(1e3, 1e8, points_per_decade)


def build_filter_behavioral(caps: FilterCaps, *, ota_gain_db, ota_ro,
                            parasitic_pole_hz=None) -> Circuit:
    """Build the biquad from two behavioural OTA macromodels.

    ``ota_gain_db``/``ota_ro`` may be scalars or batch arrays (e.g. one
    per Monte-Carlo sample of the OTA's modelled variation).
    """
    gain = from_db20(np.asarray(ota_gain_db, dtype=float))
    circuit = Circuit("2nd-order OTA-C low-pass filter (behavioural)")
    circuit.add(VoltageSource("VIN", "vin", "0", 0.0, ac_mag=1.0))
    circuit.add(BehavioralOTA("OTA1", "v1", "vin", "v2",
                              gain=gain, ro=ota_ro,
                              parasitic_pole_hz=parasitic_pole_hz))
    circuit.add(BehavioralOTA("OTA2", "v2", "v1", "v2",
                              gain=gain, ro=ota_ro,
                              parasitic_pole_hz=parasitic_pole_hz))
    circuit.add(Capacitor("C1", "v1", "0", caps.c1))
    circuit.add(Capacitor("C2", "v2", "0", caps.c2))
    circuit.add(Capacitor("C3", "v1", "v2", caps.c3))
    return circuit


def build_filter_transistor(caps: FilterCaps, ota_params: OTAParameters, *,
                            pdk: ProcessKit = C35,
                            variations: ProcessSample | None = None,
                            vcm: float = 1.2,
                            ibias: float = 20e-6) -> Circuit:
    """Build the biquad with two embedded transistor-level OTA cores.

    The same ``ota_params`` (typically the yield-targeted design from the
    combined model) is used for both OTAs; process ``variations`` apply
    die-consistently across the whole filter, including the capacitor
    process scale on C1-C3.
    """
    circuit = Circuit("2nd-order OTA-C low-pass filter (transistor)")
    supply = pdk.supply if variations is None or variations.vdd is None \
        else variations.vdd
    circuit.add(VoltageSource("VDD", "vdd", "0", supply))
    circuit.add(VoltageSource("VIN", "vin", "0", vcm, ac_mag=1.0))
    add_ota_devices(circuit, prefix="ota1.", inp="vin", inn="v2", out="v1",
                    vdd="vdd", params=ota_params, pdk=pdk,
                    variations=variations, ibias=ibias)
    add_ota_devices(circuit, prefix="ota2.", inp="v1", inn="v2", out="v2",
                    vdd="vdd", params=ota_params, pdk=pdk,
                    variations=variations, ibias=ibias)
    scale = 1.0 if variations is None else variations.cap_scale
    circuit.add(Capacitor("C1", "v1", "0", caps.c1 * scale))
    circuit.add(Capacitor("C2", "v2", "0", caps.c2 * scale))
    circuit.add(Capacitor("C3", "v1", "v2", caps.c3 * scale))
    return circuit


def evaluate_filter(circuit: Circuit, *,
                    spec: FilterSpec = DEFAULT_FILTER_SPEC,
                    freqs: np.ndarray | None = None,
                    out_node: str = "v2") -> dict[str, np.ndarray]:
    """Simulate a filter circuit and extract the mask measures.

    Returns shape-``(B,)`` arrays:

    * ``dcgain_db``  -- passband (DC) gain [dB],
    * ``ripple_db``  -- worst in-band deviation from DC gain [dB],
    * ``atten_db``   -- worst stopband attenuation beyond ``f_stop`` [dB],
    * ``f3db_hz``    -- -3 dB corner [Hz].
    """
    if freqs is None:
        freqs = filter_frequency_grid()
    op = dc_operating_point(circuit)
    result = ac_analysis(circuit, freqs, op=op)
    mag = result.magnitude_db(out_node)
    return {
        "dcgain_db": dc_gain_db(mag),
        "ripple_db": passband_ripple_db(freqs, mag, spec.f_pass),
        "atten_db": stopband_attenuation_db(freqs, mag, spec.f_stop),
        "f3db_hz": f3db(freqs, mag),
    }
