"""A second benchmark topology: the Miller (two-stage) OTA.

The paper demonstrates its flow on one circuit; this module provides a
second, structurally different amplifier so the library can show the flow
is topology-agnostic (the "given analogue circuit topology" of the
abstract really is a parameter):

* stage 1 -- PMOS differential pair ``M1/M2`` with NMOS mirror load
  ``M3/M4``;
* stage 2 -- NMOS common-source ``M6`` with PMOS current-source load
  ``M7``;
* ``Cc`` -- Miller compensation capacitor across stage 2;
* ``M5/M8`` -- PMOS tail / bias mirror.

Design space (6 parameters): the stage-1 pair ``W1/L1``, mirror ``W2/L2``,
and the stage-2 driver ``W3/L3``; the compensation capacitor is fixed.
Gain is two-stage (much higher than the symmetrical OTA); phase margin is
set by the Miller pole split, trading against gain through the same
channel-length mechanism.

Use with the generic flow machinery::

    problem = MillerOTAProblem()
    result = run_wbga(problem, GAConfig(...))
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import ac_analysis, dc_operating_point
from ..circuit import (Capacitor, Circuit, CurrentSource, Inductor, Mosfet,
                       VoltageSource)
from ..errors import ReproError
from ..measure.acmeas import dc_gain_db, phase_margin, unity_gain_frequency
from ..moo.problem import Objective, OptimizationProblem
from ..process import C35, ProcessKit, ProcessSample
from .ota import default_frequency_grid

__all__ = ["MILLER_DESIGN_SPACE", "MillerParameters", "build_miller_ota",
           "evaluate_miller_ota", "MillerOTAProblem"]

#: Designable-parameter names (pair W/L, mirror W/L, driver W/L) and
#: their bounds [m]; widths 5-80 um, lengths 0.35-4 um.
MILLER_DESIGN_SPACE: dict[str, tuple[float, float]] = {
    "w1": (5e-6, 80e-6), "l1": (0.35e-6, 4e-6),
    "w2": (5e-6, 80e-6), "l2": (0.35e-6, 4e-6),
    "w3": (5e-6, 80e-6), "l3": (0.35e-6, 4e-6),
}


@dataclass
class MillerParameters:
    """Designable W/L values of the Miller OTA (scalars or ``(B,)``)."""

    w1: object = 30e-6
    l1: object = 1.0e-6
    w2: object = 20e-6
    l2: object = 1.0e-6
    w3: object = 40e-6
    l3: object = 0.7e-6

    @classmethod
    def from_normalized(cls, unit_values) -> "MillerParameters":
        unit_values = np.asarray(unit_values, dtype=float)
        if unit_values.shape[-1] != 6:
            raise ReproError(f"expected 6 parameters, got {unit_values.shape}")
        columns = []
        for j, (lo, hi) in enumerate(MILLER_DESIGN_SPACE.values()):
            columns.append(lo + unit_values[..., j] * (hi - lo))
        if unit_values.ndim == 1:
            columns = [float(c) for c in columns]
        return cls(*columns)

    def to_array(self) -> np.ndarray:
        columns = [self.w1, self.l1, self.w2, self.l2, self.w3, self.l3]
        batched = any(np.ndim(c) == 1 for c in columns)
        if not batched:
            return np.array([float(c) for c in columns])
        batch = max(np.size(c) for c in columns)
        return np.stack([np.broadcast_to(np.asarray(c, float), (batch,))
                         for c in columns], axis=-1)


def build_miller_ota(params: MillerParameters, *, pdk: ProcessKit = C35,
                     variations: ProcessSample | None = None,
                     vcm: float = 1.65, ibias: float = 25e-6,
                     cc: float = 6e-12, cl: float = 10e-12) -> Circuit:
    """Build the two-stage Miller OTA open-loop testbench.

    Same testbench pattern as the symmetrical OTA: unit AC drive on the
    non-inverting input, DC servo closing unity feedback through a huge
    inductor.
    """
    nmos, pmos = pdk.nmos, pdk.pmos

    def variation(model, w, length):
        if variations is None:
            return {}
        dvto, beta_scale = variations.device_variation(model, w, length)
        return {"delta_vto": dvto, "beta_scale": beta_scale}

    c = Circuit("miller OTA testbench")
    c.add(VoltageSource("VDD", "vdd", "0", pdk.supply))
    c.add(VoltageSource("VINP", "inp", "0", vcm, ac_mag=1.0))
    c.add(CurrentSource("IBIAS", "nbias", "0", ibias))

    # Bias mirror (PMOS): diode M8 sets the gate line for M5 and M7.
    c.add(Mosfet("M8", "nbias", "nbias", "vdd", "vdd", pmos, 20e-6, 1e-6,
                 **variation(pmos, 20e-6, 1e-6)))
    c.add(Mosfet("M5", "tail", "nbias", "vdd", "vdd", pmos, 40e-6, 1e-6,
                 **variation(pmos, 40e-6, 1e-6)))
    # Stage 1: PMOS pair, NMOS mirror load.
    # M1's gate is the *inverting* input of this two-stage topology
    # (inp -> I(M1) -> mirror -> d2 -> M6 -> out flips sign twice plus the
    # mirror fold), so the DC servo closes on M1 and the AC drive sits on
    # M2's gate.
    c.add(Mosfet("M1", "d1", "inn", "tail", "vdd", pmos,
                 params.w1, params.l1,
                 **variation(pmos, params.w1, params.l1)))
    c.add(Mosfet("M2", "d2", "inp", "tail", "vdd", pmos,
                 params.w1, params.l1,
                 **variation(pmos, params.w1, params.l1)))
    c.add(Mosfet("M3", "d1", "d1", "0", "0", nmos, params.w2, params.l2,
                 **variation(nmos, params.w2, params.l2)))
    c.add(Mosfet("M4", "d2", "d1", "0", "0", nmos, params.w2, params.l2,
                 **variation(nmos, params.w2, params.l2)))
    # Stage 2: NMOS common source with PMOS current-source load.
    c.add(Mosfet("M6", "out", "d2", "0", "0", nmos, params.w3, params.l3,
                 **variation(nmos, params.w3, params.l3)))
    c.add(Mosfet("M7", "out", "nbias", "vdd", "vdd", pmos, 40e-6, 1e-6,
                 **variation(pmos, 40e-6, 1e-6)))

    scale = 1.0 if variations is None else variations.cap_scale
    c.add(Capacitor("CC", "d2", "out", cc * scale))
    c.add(Capacitor("CL", "out", "0", cl * scale))
    c.add(Inductor("LSERVO", "out", "inn", 1e6))
    c.add(Capacitor("CSERVO", "inn", "0", 1.0))
    return c


def evaluate_miller_ota(params: MillerParameters, *,
                        pdk: ProcessKit = C35,
                        variations: ProcessSample | None = None,
                        freqs: np.ndarray | None = None
                        ) -> dict[str, np.ndarray]:
    """Gain / phase margin / UGF of the Miller OTA (batched)."""
    if freqs is None:
        freqs = default_frequency_grid()
    circuit = build_miller_ota(params, pdk=pdk, variations=variations)
    op = dc_operating_point(circuit)
    result = ac_analysis(circuit, freqs, op=op)
    mag = result.magnitude_db("out")
    phase = result.phase_deg("out")
    return {
        "gain_db": dc_gain_db(mag),
        "pm_deg": phase_margin(freqs, mag, phase),
        "ugf_hz": unity_gain_frequency(freqs, mag),
    }


class MillerOTAProblem(OptimizationProblem):
    """Maximise gain and phase margin of the Miller OTA -- the same
    problem shape as :class:`repro.designs.problems.OTAProblem`, on a
    different topology."""

    parameter_names = tuple(MILLER_DESIGN_SPACE)
    objectives = (Objective("gain_db", "maximize", "dB"),
                  Objective("pm_deg", "maximize", "deg"))

    def __init__(self, *, pdk: ProcessKit = C35) -> None:
        super().__init__()
        self.pdk = pdk

    def evaluate_batch(self, unit_params: np.ndarray) -> np.ndarray:
        params = MillerParameters.from_normalized(unit_params)
        performance = evaluate_miller_ota(params, pdk=self.pdk)
        return np.stack([performance["gain_db"], performance["pm_deg"]],
                        axis=1)
