"""The paper's benchmark circuit: a symmetrical OTA (Figure 5).

Topology
--------
A classic three-current-mirror ("symmetrical") OTA on a 3.3 V supply:

* ``M1/M2``   -- NMOS differential pair (dimensions fixed, as in the paper);
* ``M3/M6``   -- left PMOS mirror: diode ``M3`` on M1's drain, output
  device ``M6`` driving ``out`` (shared ``W4/L4`` -> Table 1 pair);
* ``M4/M5``   -- right PMOS mirror: diode ``M4`` on M2's drain, output
  device ``M5`` feeding the NMOS mirror (shared ``W1/L1``);
* ``M7/M9``   -- NMOS mirror folding M5's current to ``out`` (``W2/L2``);
* ``M10/M8``  -- NMOS bias mirror setting the tail current (``W3/L3``);
* ``CL``      -- load capacitance at ``out``.

Small-signal behaviour: DC gain ``gm1/(gds6 + gds9)`` (channel-length
modulation falls with L, so *long* output devices raise gain), dominant
pole at ``out`` from ``CL``, non-dominant poles at the three mirror diodes
(``gm_diode / C_gate``; *large* gate areas lower these poles and erode
phase margin).  That opposition is exactly the gain-vs-phase-margin
trade-off the paper's Figure 7 Pareto front captures.

Table 1 design space: ``W1..W4`` in [10, 60] um and ``L1..L4`` in
[0.35, 4] um, eight designable parameters in total.

Testbench
---------
Open-loop AC gain measurement with a DC servo loop: a huge inductor closes
unity feedback from ``out`` to the inverting input so the operating point
stays biased (essential once Monte-Carlo mismatch introduces offset), while
a huge capacitor grounds the inverting input for AC.  The loop corner sits
at micro-hertz, so measured gain/phase above 1 Hz are the open-loop values.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..analysis import ac_analysis, dc_operating_point, log_frequencies
from ..circuit import (Capacitor, Circuit, CurrentSource, Inductor, Mosfet,
                       VoltageSource)
from ..errors import ReproError
from ..measure.acmeas import (dc_gain_db, f3db, phase_margin,
                              unity_gain_frequency)
from ..process import C35, ProcessKit, ProcessSample

__all__ = ["OTA_DESIGN_SPACE", "OTAParameters", "OTADesignSpace",
           "add_ota_devices", "build_ota", "evaluate_ota",
           "default_frequency_grid", "OTA_OBJECTIVES"]

#: The two performance functions the paper optimises (section 4.1).
OTA_OBJECTIVES = ("gain_db", "pm_deg")


@dataclass(frozen=True)
class OTADesignSpace:
    """Table 1: designable parameter ranges for the symmetrical OTA."""

    w_min: float = 10e-6
    w_max: float = 60e-6
    l_min: float = 0.35e-6
    l_max: float = 4e-6

    #: Parameter order matches the paper's GA string (Figure 6):
    #: W1 L1 W2 L2 W3 L3 W4 L4.
    names: tuple[str, ...] = ("w1", "l1", "w2", "l2", "w3", "l3", "w4", "l4")

    def bounds(self) -> dict[str, tuple[float, float]]:
        """Lower/upper bound for each designable parameter [m]."""
        out: dict[str, tuple[float, float]] = {}
        for name in self.names:
            if name.startswith("w"):
                out[name] = (self.w_min, self.w_max)
            else:
                out[name] = (self.l_min, self.l_max)
        return out

    def table1_rows(self) -> list[tuple[str, str]]:
        """The rows of the paper's Table 1 (parameter, range)."""
        device_of = {"1": "(M5,M4)", "2": "(M7,M9)", "3": "(M10,M8)",
                     "4": "(M3,M6)"}
        rows = []
        for name in self.names:
            kind, index = name[0], name[1]
            lo, hi = self.bounds()[name]
            rows.append((f"{kind.upper()}{index} {device_of[index]}",
                         f"{lo * 1e6:g}um - {hi * 1e6:g}um"))
        rows.append(("Wg1 (Gain weight)", "0 - 1 (normalised)"))
        rows.append(("Wg2 (Phase weight)", "0 - 1 (normalised)"))
        return rows


#: Shared design-space instance (the paper's Table 1).
OTA_DESIGN_SPACE = OTADesignSpace()


def add_ota_devices(circuit: Circuit, *, prefix: str,
                    inp: str, inn: str, out: str, vdd: str,
                    params: "OTAParameters", pdk: ProcessKit = C35,
                    variations: ProcessSample | None = None,
                    ibias: float = 20e-6,
                    diff_pair_w: float = 20e-6,
                    diff_pair_l: float = 1.0e-6) -> None:
    """Instantiate the ten OTA transistors + bias source into ``circuit``.

    The embeddable core of the OTA: internal nodes (``d1``, ``d2``,
    ``n5``, ``tail``, ``nbias``) are prefixed with ``prefix``; the signal
    ports ``inp``/``inn``/``out`` and the supply ``vdd`` attach to the
    caller's nodes.  Used both by the open-loop testbench
    (:func:`build_ota`) and by the section-5 filter, which embeds two of
    these cores.

    Devices are instantiated in fixed M1..M10 order: the
    :class:`ProcessSample` mismatch stream depends on this order
    (bit-reproducibility of Monte Carlo).
    """
    p = prefix
    nmos, pmos = pdk.nmos, pdk.pmos

    def variation(model, w, length):
        if variations is None:
            return {}
        dvto, beta_scale = variations.device_variation(model, w, length)
        return {"delta_vto": dvto, "beta_scale": beta_scale}

    circuit.add(CurrentSource(f"{p}IBIAS", vdd, f"{p}nbias", ibias))
    circuit.add(Mosfet(f"{p}M1", f"{p}d1", inp, f"{p}tail", "0",
                       nmos, diff_pair_w, diff_pair_l,
                       **variation(nmos, diff_pair_w, diff_pair_l)))
    circuit.add(Mosfet(f"{p}M2", f"{p}d2", inn, f"{p}tail", "0",
                       nmos, diff_pair_w, diff_pair_l,
                       **variation(nmos, diff_pair_w, diff_pair_l)))
    circuit.add(Mosfet(f"{p}M3", f"{p}d1", f"{p}d1", vdd, vdd,
                       pmos, params.w4, params.l4,
                       **variation(pmos, params.w4, params.l4)))
    circuit.add(Mosfet(f"{p}M4", f"{p}d2", f"{p}d2", vdd, vdd,
                       pmos, params.w1, params.l1,
                       **variation(pmos, params.w1, params.l1)))
    circuit.add(Mosfet(f"{p}M5", f"{p}n5", f"{p}d2", vdd, vdd,
                       pmos, params.w1, params.l1,
                       **variation(pmos, params.w1, params.l1)))
    circuit.add(Mosfet(f"{p}M6", out, f"{p}d1", vdd, vdd,
                       pmos, params.w4, params.l4,
                       **variation(pmos, params.w4, params.l4)))
    circuit.add(Mosfet(f"{p}M7", f"{p}n5", f"{p}n5", "0", "0",
                       nmos, params.w2, params.l2,
                       **variation(nmos, params.w2, params.l2)))
    circuit.add(Mosfet(f"{p}M9", out, f"{p}n5", "0", "0",
                       nmos, params.w2, params.l2,
                       **variation(nmos, params.w2, params.l2)))
    circuit.add(Mosfet(f"{p}M10", f"{p}nbias", f"{p}nbias", "0", "0",
                       nmos, params.w3, params.l3,
                       **variation(nmos, params.w3, params.l3)))
    circuit.add(Mosfet(f"{p}M8", f"{p}tail", f"{p}nbias", "0", "0",
                       nmos, params.w3, params.l3,
                       **variation(nmos, params.w3, params.l3)))


@dataclass
class OTAParameters:
    """One (possibly batched) point in the OTA design space.

    Each field is the shared W or L of a matched pair, in metres:
    ``w1/l1`` -> (M5, M4), ``w2/l2`` -> (M7, M9), ``w3/l3`` -> (M10, M8),
    ``w4/l4`` -> (M3, M6).  Fields accept scalars or ``(B,)`` arrays.
    """

    w1: object = 30e-6
    l1: object = 1.0e-6
    w2: object = 30e-6
    l2: object = 1.0e-6
    w3: object = 30e-6
    l3: object = 1.0e-6
    w4: object = 30e-6
    l4: object = 1.0e-6

    @classmethod
    def from_array(cls, values) -> "OTAParameters":
        """Build from an array ``(..., 8)`` ordered like the GA string."""
        values = np.asarray(values, dtype=float)
        if values.shape[-1] != 8:
            raise ReproError(f"expected 8 parameters, got {values.shape}")
        columns = [values[..., i] for i in range(8)]
        if values.ndim == 1:
            columns = [float(c) for c in columns]
        return cls(*columns)

    @classmethod
    def from_normalized(cls, unit_values,
                        space: OTADesignSpace = OTA_DESIGN_SPACE
                        ) -> "OTAParameters":
        """Build from normalised ``[0, 1]`` values (the GA encoding)."""
        unit_values = np.asarray(unit_values, dtype=float)
        if np.any(unit_values < -1e-9) or np.any(unit_values > 1 + 1e-9):
            raise ReproError("normalised parameters must lie in [0, 1]")
        bounds = space.bounds()
        scaled = np.empty_like(unit_values)
        for i, name in enumerate(space.names):
            lo, hi = bounds[name]
            scaled[..., i] = lo + unit_values[..., i] * (hi - lo)
        return cls.from_array(scaled)

    def to_array(self) -> np.ndarray:
        """Stack to ``(B, 8)`` (or ``(8,)`` for scalar parameters)."""
        columns = [getattr(self, f.name) for f in fields(self)]
        batched = any(np.ndim(c) == 1 for c in columns)
        if not batched:
            return np.array([float(c) for c in columns])
        batch = max(np.size(c) for c in columns)
        return np.stack([np.broadcast_to(np.asarray(c, float), (batch,))
                         for c in columns], axis=-1)

    def to_normalized(self, space: OTADesignSpace = OTA_DESIGN_SPACE
                      ) -> np.ndarray:
        """Inverse of :meth:`from_normalized`."""
        values = self.to_array()
        bounds = space.bounds()
        unit = np.empty_like(values)
        for i, name in enumerate(space.names):
            lo, hi = bounds[name]
            unit[..., i] = (values[..., i] - lo) / (hi - lo)
        return unit

    def batch(self) -> int:
        """Batch length across the fields (1 when all scalar)."""
        return max((np.size(getattr(self, f.name)) for f in fields(self)),
                   default=1)

    def tile(self, repeats: int) -> "OTAParameters":
        """Repeat every lane ``repeats`` times (for per-point Monte Carlo)."""
        arr = np.atleast_2d(self.to_array())
        return OTAParameters.from_array(np.repeat(arr, repeats, axis=0))


def build_ota(params: OTAParameters, *, pdk: ProcessKit = C35,
              variations: ProcessSample | None = None,
              vcm: float = 1.2, ibias: float = 20e-6, cl: float = 10e-12,
              ac_drive: bool = True,
              diff_pair_w: float = 20e-6, diff_pair_l: float = 1.0e-6,
              name_prefix: str = "") -> Circuit:
    """Build the symmetrical-OTA open-loop testbench circuit.

    Parameters
    ----------
    params:
        The designable W/L values (Table 1); may be batched.
    variations:
        Optional :class:`ProcessSample` carrying global + mismatch
        variation.  Its batch must equal / broadcast with the parameter
        batch.
    vcm:
        Input common-mode voltage.
    ibias:
        Bias reference current into the M10 diode (the tail mirrors it).
    cl:
        Load capacitance at ``out``.
    ac_drive:
        Stamp a unit AC excitation on the non-inverting input.
    diff_pair_w, diff_pair_l:
        The fixed M1/M2 dimensions (the paper fixes the pair).
    name_prefix:
        Prefix for element names/nodes (used when the OTA is embedded in a
        larger circuit such as the section-5 filter).

    Returns
    -------
    A ready-to-simulate :class:`Circuit`; batch = max(params, variations).
    """
    p = name_prefix
    circuit = Circuit(f"symmetrical OTA testbench {p}".strip())
    supply = pdk.supply if variations is None or variations.vdd is None \
        else variations.vdd
    circuit.add(VoltageSource(f"{p}VDD", f"{p}vdd", "0", supply))
    circuit.add(VoltageSource(f"{p}VINP", f"{p}inp", "0", vcm,
                              ac_mag=1.0 if ac_drive else 0.0))
    add_ota_devices(circuit, prefix=p, inp=f"{p}inp", inn=f"{p}inn",
                    out=f"{p}out", vdd=f"{p}vdd", params=params, pdk=pdk,
                    variations=variations, ibias=ibias,
                    diff_pair_w=diff_pair_w, diff_pair_l=diff_pair_l)

    cl_effective = cl if variations is None else cl * variations.cap_scale
    circuit.add(Capacitor(f"{p}CL", f"{p}out", "0", cl_effective))

    # DC servo: unity feedback through a huge inductor keeps the output
    # biased (handles Monte-Carlo offset); the huge capacitor makes the
    # inverting input an AC ground.  Loop corner ~ 1/(2*pi*sqrt(L*C)) Hz.
    circuit.add(Inductor(f"{p}LSERVO", f"{p}out", f"{p}inn", 1e6))
    circuit.add(Capacitor(f"{p}CSERVO", f"{p}inn", "0", 1.0))
    return circuit


def default_frequency_grid(points_per_decade: int = 12) -> np.ndarray:
    """The standard OTA measurement sweep: 10 Hz to 1 GHz."""
    return log_frequencies(10.0, 1e9, points_per_decade)


def evaluate_ota(params: OTAParameters, *, pdk: ProcessKit = C35,
                 variations: ProcessSample | None = None,
                 freqs: np.ndarray | None = None,
                 cl: float = 10e-12, ibias: float = 20e-6,
                 vcm: float = 1.2) -> dict[str, np.ndarray]:
    """Simulate the OTA and extract its performance functions.

    Returns a dict of shape-``(B,)`` arrays:

    * ``gain_db``  -- open-loop low-frequency gain [dB],
    * ``pm_deg``   -- phase margin [deg],
    * ``ugf_hz``   -- unity-gain frequency [Hz],
    * ``f3db_hz``  -- open-loop -3 dB bandwidth [Hz].

    This is the "testbench netlist simulation" of the paper's section 3.1,
    and the fitness evaluation inside its WBGA loop.
    """
    if freqs is None:
        freqs = default_frequency_grid()
    circuit = build_ota(params, pdk=pdk, variations=variations,
                        cl=cl, ibias=ibias, vcm=vcm)
    op = dc_operating_point(circuit)
    result = ac_analysis(circuit, freqs, op=op)
    mag = result.magnitude_db("out")
    phase = result.phase_deg("out")
    return {
        "gain_db": dc_gain_db(mag),
        "pm_deg": phase_margin(freqs, mag, phase),
        "ugf_hz": unity_gain_frequency(freqs, mag),
        "f3db_hz": f3db(freqs, mag),
    }
