"""Optimisation-problem wrappers for the paper's two designs.

These adapt the circuit evaluators to the
:class:`~repro.moo.problem.OptimizationProblem` interface consumed by the
WBGA/NSGA-II optimisers.  Both evaluate whole GA populations as single
batched circuits -- one stacked matrix solve per generation.
"""

from __future__ import annotations

import numpy as np

from ..moo.problem import Objective, OptimizationProblem
from ..process import C35, ProcessKit
from .filter2 import (DEFAULT_FILTER_SPEC, FilterCaps, FilterSpec,
                      build_filter_behavioral, build_filter_transistor,
                      evaluate_filter, filter_frequency_grid)
from .ota import OTA_DESIGN_SPACE, OTAParameters, evaluate_ota

__all__ = ["OTAProblem", "BehavioralFilterProblem",
           "TransistorFilterProblem"]


class OTAProblem(OptimizationProblem):
    """The paper's section-4 problem: maximise OTA gain and phase margin
    over the Table-1 W/L space.

    Each objective evaluation is a full transistor-level DC + AC
    simulation of the whole population batch.
    """

    parameter_names = OTA_DESIGN_SPACE.names
    objectives = (Objective("gain_db", "maximize", "dB"),
                  Objective("pm_deg", "maximize", "deg"))

    def __init__(self, *, pdk: ProcessKit = C35, cl: float = 10e-12,
                 ibias: float = 20e-6, freqs: np.ndarray | None = None) -> None:
        super().__init__()
        self.pdk = pdk
        self.cl = cl
        self.ibias = ibias
        self.freqs = freqs

    def evaluate_batch(self, unit_params: np.ndarray) -> np.ndarray:
        params = OTAParameters.from_normalized(unit_params)
        performance = evaluate_ota(params, pdk=self.pdk, cl=self.cl,
                                   ibias=self.ibias, freqs=self.freqs)
        return np.stack([performance["gain_db"], performance["pm_deg"]],
                        axis=1)


def filter_margins(performance: dict[str, np.ndarray],
                   spec: FilterSpec) -> np.ndarray:
    """Saturated specification margins of filter performance.

    The paper optimises the filter "within the filter specifications", so
    the capacitor search maximises *margin to the mask* rather than raw
    ripple/attenuation numbers:

    * ``ripple_margin = (max_ripple - ripple) / max_ripple``
    * ``atten_margin  = (atten - min_atten) / min_atten``

    both clipped to ``[-1, 1]``.  The clipping matters: raw ripple spans
    three decades across the capacitor box, and feeding that to a
    min-max-normalised weighted sum buries the feasible knee in the
    normalisation; saturated margins keep the whole landscape
    hill-climbable.  A design is mask-feasible iff both margins are
    positive.
    """
    ripple = np.asarray(performance["ripple_db"], dtype=float)
    atten = np.asarray(performance["atten_db"], dtype=float)
    ripple_margin = (spec.max_ripple_db - ripple) / spec.max_ripple_db
    atten_margin = (atten - spec.min_atten_db) / spec.min_atten_db
    margins = np.stack([ripple_margin, atten_margin], axis=1)
    margins = np.where(np.isnan(margins), -1.0, margins)
    return np.clip(margins, -1.0, 1.0)


class BehavioralFilterProblem(OptimizationProblem):
    """The paper's section-5 problem: choose C1-C3 for the anti-aliasing
    filter, simulating with the *behavioural* OTA model (this is the whole
    point of the flow -- no transistor simulation in the system-level
    loop).

    Objectives: maximise the two saturated mask margins
    (:func:`filter_margins`).
    """

    parameter_names = ("c1", "c2", "c3")
    objectives = (Objective("ripple_margin", "maximize"),
                  Objective("atten_margin", "maximize"))

    def __init__(self, *, ota_gain_db: float, ota_ro: float,
                 spec: FilterSpec = DEFAULT_FILTER_SPEC,
                 parasitic_pole_hz: float | None = None,
                 freqs: np.ndarray | None = None) -> None:
        super().__init__()
        self.ota_gain_db = ota_gain_db
        self.ota_ro = ota_ro
        self.spec = spec
        self.parasitic_pole_hz = parasitic_pole_hz
        self.freqs = freqs if freqs is not None else filter_frequency_grid()

    def evaluate_batch(self, unit_params: np.ndarray) -> np.ndarray:
        caps = FilterCaps.from_normalized(unit_params)
        batch = unit_params.shape[0]
        gain = np.full(batch, self.ota_gain_db)
        ro = np.full(batch, self.ota_ro)
        circuit = build_filter_behavioral(
            caps, ota_gain_db=gain, ota_ro=ro,
            parasitic_pole_hz=self.parasitic_pole_hz)
        performance = evaluate_filter(circuit, spec=self.spec,
                                      freqs=self.freqs)
        return filter_margins(performance, self.spec)


class TransistorFilterProblem(OptimizationProblem):
    """The *conventional* section-5 problem: the same capacitor search but
    simulating the filter at transistor level every time.  Used by the
    baseline flow (:mod:`repro.baselines.direct_mc`) for the paper's
    cost comparison.
    """

    parameter_names = ("c1", "c2", "c3")
    objectives = (Objective("ripple_margin", "maximize"),
                  Objective("atten_margin", "maximize"))

    def __init__(self, ota_params: OTAParameters, *,
                 pdk: ProcessKit = C35,
                 spec: FilterSpec = DEFAULT_FILTER_SPEC,
                 freqs: np.ndarray | None = None) -> None:
        super().__init__()
        self.ota_params = ota_params
        self.pdk = pdk
        self.spec = spec
        self.freqs = freqs if freqs is not None else filter_frequency_grid()

    def evaluate_batch(self, unit_params: np.ndarray) -> np.ndarray:
        caps = FilterCaps.from_normalized(unit_params)
        batch = unit_params.shape[0]
        ota = OTAParameters.from_array(
            np.broadcast_to(self.ota_params.to_array(), (batch, 8)))
        circuit = build_filter_transistor(caps, ota, pdk=self.pdk)
        performance = evaluate_filter(circuit, spec=self.spec,
                                      freqs=self.freqs)
        return filter_margins(performance, self.spec)
