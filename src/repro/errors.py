"""Exception taxonomy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking genuine programming
errors (``TypeError`` and friends propagate unchanged).

The hierarchy mirrors the subsystems described in ``DESIGN.md``:

* :class:`NetlistError` -- malformed circuit descriptions.
* :class:`ParseError` -- errors in the SPICE-like netlist parser, carrying
  the offending line number.
* :class:`LintError` -- misuse of the topology-lint subsystem; its
  subclass :class:`LintGateError` is the pre-flight gate verdict raised
  when a flow rejects a topologically broken circuit, carrying the full
  :class:`~repro.lint.LintReport`.
* :class:`AnalysisError` -- simulation failures; the important subclass is
  :class:`ConvergenceError` raised when the Newton-Raphson DC solver fails
  even after the homotopy fallbacks.
* :class:`WorkloadError` -- misuse of the workload/service layer; its
  subclass :class:`JobCancelled` is the cooperative-cancellation signal
  a running job raises when its cancel flag is observed.
* :class:`TableModelError` -- ``$table_model`` emulation errors, notably
  :class:`ExtrapolationError` for the ``"E"`` (error-on-extrapolation)
  control string used throughout the paper.
* :class:`OptimizationError` -- misconfigured optimisation problems.
* :class:`SpecificationError` -- malformed performance specifications.
* :class:`YieldModelError` -- failures constructing or querying the combined
  performance/variation model (the paper's core contribution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class NetlistError(ReproError):
    """A circuit description is structurally invalid.

    Examples: duplicate element names, elements referencing undeclared
    subcircuits, a ground-less circuit handed to the simulator.
    """


class ParseError(NetlistError):
    """A SPICE-like netlist file could not be parsed.

    Parameters
    ----------
    message:
        Human readable description of the problem.
    line_no:
        1-based line number in the source text, when known.
    line:
        The offending source line, when known.
    """

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None) -> None:
        self.line_no = line_no
        self.line = line
        if line_no is not None:
            message = f"line {line_no}: {message}"
        if line is not None:
            message = f"{message}\n    {line.strip()!r}"
        super().__init__(message)


class LintError(NetlistError):
    """The topology-lint subsystem was misused (unknown rule id,
    unknown lint mode, duplicate rule registration)."""


class LintGateError(LintError):
    """A pre-flight lint gate rejected the circuit.

    Raised by :func:`repro.lint.preflight_lint` in ``strict`` mode when
    error-severity findings exist, *before* any simulation budget is
    spent -- the readable replacement for the singular-matrix crash the
    broken circuit would otherwise cause.  Carries the full
    :class:`~repro.lint.LintReport` as :attr:`report`.
    """

    def __init__(self, report, stage: str = "pre-flight lint") -> None:
        self.report = report
        self.stage = stage
        super().__init__(
            f"{stage}: circuit rejected with "
            f"{report.count('error')} error(s)\n{report.render_text()}")


class AnalysisError(ReproError):
    """A circuit analysis (DC / AC / transient) failed."""


class ConvergenceError(AnalysisError):
    """The Newton-Raphson solver failed to converge.

    Raised only after every fallback strategy (gmin stepping followed by
    source stepping) has been exhausted.  Carries the per-batch convergence
    mask so vectorised callers can salvage the converged lanes.
    """

    def __init__(self, message: str, converged_mask=None) -> None:
        self.converged_mask = converged_mask
        super().__init__(message)


class SingularMatrixError(AnalysisError):
    """The MNA matrix is singular (floating node, loop of sources...).

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    lane_indices:
        Flat indices of the singular systems within the batched stack,
        when the solver identified them (``None`` otherwise).  One bad
        Monte-Carlo die or GA individual used to kill its whole chunk
        opaquely; the indices let callers name -- and repair or drop --
        exactly the offending lanes.
    """

    def __init__(self, message: str, lane_indices=None) -> None:
        self.lane_indices = (None if lane_indices is None
                             else tuple(int(i) for i in lane_indices))
        super().__init__(message)


class WorkloadError(ReproError):
    """A workload (:mod:`repro.workload`) or the service layer serving
    it (:mod:`repro.service`) is misconfigured or misused.

    Examples: a service request naming an unknown workload kind, a
    queue operation on a job id that was never submitted, caching
    requested for a workload whose identity cannot be fingerprinted.
    """


class JobCancelled(WorkloadError):
    """A running workload observed its cancellation flag and stopped.

    Raised *inside* the worker executing the job, at the first progress
    boundary after :meth:`repro.service.JobQueue.cancel` (or the
    daemon's cancel marker) was seen.  Checkpoints written before the
    boundary survive, so a cancelled job resumes rather than restarts.
    """

    def __init__(self, message: str = "job cancelled",
                 job_id: str | None = None) -> None:
        self.job_id = job_id
        if job_id is not None:
            message = f"{message} (job {job_id})"
        super().__init__(message)


class TableModelError(ReproError):
    """A ``$table_model`` table is malformed or cannot answer a query."""


class ExtrapolationError(TableModelError):
    """A query fell outside the sampled data under the ``"E"`` control.

    The paper deliberately selects the error-on-extrapolation behaviour "in
    order to avoid approximation of the data beyond the sampled data
    points" (section 3.5); this exception is that behaviour.
    """


class OptimizationError(ReproError):
    """An optimisation problem or optimiser is misconfigured."""


class SpecificationError(ReproError):
    """A performance specification is malformed or unsatisfiable."""


class YieldModelError(ReproError):
    """The combined performance/variation model failed to build or query."""


class SurrogateError(YieldModelError):
    """A surrogate metamodel is unfit for the requested estimate.

    Raised by :class:`repro.surrogate.SurrogateYieldEstimator` when the
    cross-validation error of a trained response surface exceeds the
    configured threshold: the estimator *refuses to report* a yield
    number rather than silently returning one built on a model that
    cannot predict the performances it classifies.
    """
