"""Execution backends: where and how chunked Monte-Carlo work runs.

The engine in :mod:`repro.mc.engine` splits every sweep into
independently-seeded chunks; this package supplies the pluggable
strategies (serial / thread pool / forked process pool) that execute
them.  See :mod:`repro.exec.backend` for the determinism contract.
"""

from .backend import (BACKEND_ENV_VAR, Backend, ProcessBackend,
                      SerialBackend, ThreadBackend, available_backends,
                      default_workers, resolve_backend)

__all__ = [
    "BACKEND_ENV_VAR", "Backend", "SerialBackend", "ThreadBackend",
    "ProcessBackend", "available_backends", "default_workers",
    "resolve_backend",
]
