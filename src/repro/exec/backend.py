"""Pluggable execution backends for chunked Monte-Carlo work.

The Monte-Carlo engine decomposes every sweep into independent *chunks*
(see :mod:`repro.mc.engine`): each chunk owns a private random stream, so
chunks may execute in any order, on any worker, and still produce
bit-identical results.  A :class:`Backend` is the strategy that runs
those chunk tasks:

* :class:`SerialBackend`  -- in-process loop (the reference semantics);
* :class:`ThreadBackend`  -- :class:`~concurrent.futures.ThreadPoolExecutor`;
  effective because the heavy lifting is NumPy linear algebra that
  releases the GIL;
* :class:`ProcessBackend` -- a ``fork``-started multiprocessing pool.
  Chunk closures (evaluators capture design matrices, PDKs, circuit
  builders) are *inherited* by the forked workers rather than pickled,
  so the engine's closure-based evaluator contract works unchanged.

Backends are selected by name -- ``"serial"``, ``"thread"``,
``"process"``, ``"auto"``, optionally with a worker count suffix such as
``"process:8"`` -- via :func:`resolve_backend`.  The selection cascades
``MCConfig.backend`` -> the ``REPRO_EXEC_BACKEND`` environment variable
-> ``"serial"``, so a whole pipeline can be parallelised from the shell
without touching code.

Determinism contract
--------------------
A backend never influences numeric results.  It receives fully-formed
task objects (chunk bounds + a dedicated RNG each) and must only control
*where* and *when* they run.  ``run`` returns results in task-submission
order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Protocol, runtime_checkable

from .. import telemetry
from ..errors import ReproError

__all__ = [
    "BACKEND_ENV_VAR", "Backend", "SerialBackend", "ThreadBackend",
    "ProcessBackend", "available_backends", "default_workers",
    "resolve_backend",
]

#: Environment variable consulted when no backend is selected explicitly.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"

#: Progress callback: ``(completed_count, total_count, task_index)``.
ProgressFn = Callable[[int, int, int], None]


def default_workers() -> int:
    """Default worker count: the machine's CPU count (at least 1)."""
    return os.cpu_count() or 1


@runtime_checkable
class Backend(Protocol):
    """Strategy for executing independent chunk tasks.

    Implementations must return results in task order and call
    ``progress(done, total, index)`` once per completed task (in
    completion order).  They must not reorder, duplicate, or drop tasks:
    the caller owns all randomness and result assembly.
    """

    name: str
    workers: int

    def run(self, fn: Callable, tasks: Sequence,
            progress: ProgressFn | None = None) -> list:
        """Apply ``fn`` to every task, returning results in task order."""
        ...  # pragma: no cover


def _run_serial(fn: Callable, tasks: Sequence,
                progress: ProgressFn | None) -> list:
    results = []
    total = len(tasks)
    for index, task in enumerate(tasks):
        results.append(fn(task))
        if progress is not None:
            progress(index + 1, total, index)
    return results


class SerialBackend:
    """Single-process, in-order execution (the reference backend)."""

    name = "serial"

    def __init__(self) -> None:
        self.workers = 1

    def run(self, fn: Callable, tasks: Sequence,
            progress: ProgressFn | None = None) -> list:
        tasks = list(tasks)
        with telemetry.span("exec.run", backend=self.name, workers=1,
                            tasks=len(tasks)):
            telemetry.counter_add("exec.tasks", len(tasks))
            return _run_serial(telemetry.bind_task(fn), tasks, progress)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class ThreadBackend:
    """Thread-pool execution.

    Chunk evaluation is dominated by NumPy batched linear algebra, which
    releases the GIL, so threads give real concurrency without any
    serialisation cost.  Each task carries its own
    :class:`numpy.random.Generator`, so no RNG state is shared between
    threads.
    """

    name = "thread"

    def __init__(self, workers: int = 0) -> None:
        self.workers = int(workers) if workers else default_workers()
        if self.workers < 1:
            raise ReproError("thread backend needs at least one worker")

    def run(self, fn: Callable, tasks: Sequence,
            progress: ProgressFn | None = None) -> list:
        tasks = list(tasks)
        total = len(tasks)
        workers = min(self.workers, total)
        with telemetry.span("exec.run", backend=self.name, workers=workers,
                            tasks=total):
            telemetry.counter_add("exec.tasks", total)
            # Captured *here*, inside the exec.run span: pool threads run
            # tasks in an empty contextvar context, so without this bind
            # every chunk span would become a parentless root.
            fn = telemetry.bind_task(fn)
            if workers <= 1 or total <= 1:
                return _run_serial(fn, tasks, progress)
            results: list = [None] * total
            with ThreadPoolExecutor(max_workers=workers) as pool:
                pending = {pool.submit(fn, task): index
                           for index, task in enumerate(tasks)}
                done_count = 0
                while pending:
                    finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        index = pending.pop(future)
                        results[index] = future.result()
                        done_count += 1
                        if progress is not None:
                            progress(done_count, total, index)
            return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(workers={self.workers})"


# The fork-inheritance channel of ProcessBackend: the parent stashes the
# (fn, tasks) payload here immediately before forking the pool; workers
# inherit the binding through the copied address space, so closures and
# their captured arrays never cross a pickle boundary.  Results still
# return through the normal pool pipe (plain arrays pickle fine).
# _FORK_LOCK serialises parent-side pools so two threads can't clobber
# each other's payload between assignment and fork; _FORK_OWNER records
# which process set the payload, so a forked child (different PID) can
# recognise a nested region without confusing it with a sibling pool in
# the parent (same PID), which simply waits its turn on the lock.
_FORK_PAYLOAD: tuple[Callable, list] | None = None
_FORK_OWNER = 0
_FORK_LOCK = threading.Lock()


def _invoke_inherited(index: int):
    fn, tasks = _FORK_PAYLOAD
    return index, fn(tasks[index])


class ProcessBackend:
    """Multiprocessing execution via a ``fork``-started pool.

    Falls back to :class:`ThreadBackend` where the ``fork`` start method
    is unavailable (non-POSIX platforms), and to serial execution for
    degenerate work loads (one task or one worker) where a pool would be
    pure overhead.
    """

    name = "process"

    def __init__(self, workers: int = 0) -> None:
        self.workers = int(workers) if workers else default_workers()
        if self.workers < 1:
            raise ReproError("process backend needs at least one worker")

    def run(self, fn: Callable, tasks: Sequence,
            progress: ProgressFn | None = None) -> list:
        global _FORK_PAYLOAD, _FORK_OWNER
        tasks = list(tasks)
        total = len(tasks)
        workers = min(self.workers, total)
        if "fork" not in multiprocessing.get_all_start_methods():
            return ThreadBackend(workers).run(fn, tasks, progress)
        with telemetry.span("exec.run", backend=self.name, workers=workers,
                            tasks=total):
            telemetry.counter_add("exec.tasks", total)
            # The bound callable carries a serialisable SpanContext into
            # the forked workers (closures cross the fork as inherited
            # memory), so child-side chunk spans re-parent onto this
            # exec.run span across the process boundary.
            fn = telemetry.bind_task(fn)
            if workers <= 1 or total <= 1:
                return _run_serial(fn, tasks, progress)
            if _FORK_PAYLOAD is not None and os.getpid() != _FORK_OWNER:
                # Nested parallel region: this process is itself a forked
                # worker (it inherited another pool's payload), so run the
                # inner level serially rather than oversubscribing.  A
                # sibling pool in the same process instead queues on the
                # lock below and keeps its parallelism.
                return _run_serial(fn, tasks, progress)
            context = multiprocessing.get_context("fork")
            results: list = [None] * total
            with _FORK_LOCK:
                _FORK_OWNER = os.getpid()
                _FORK_PAYLOAD = (fn, tasks)
                try:
                    with context.Pool(processes=workers) as pool:
                        done_count = 0
                        for index, value in pool.imap_unordered(
                                _invoke_inherited, range(total)):
                            results[index] = value
                            done_count += 1
                            if progress is not None:
                                progress(done_count, total, index)
                finally:
                    _FORK_PAYLOAD = None
            return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(workers={self.workers})"


def available_backends() -> dict[str, type]:
    """Name -> class mapping of the built-in backends."""
    return {"serial": SerialBackend, "thread": ThreadBackend,
            "process": ProcessBackend}


def _auto_backend(workers: int) -> "Backend":
    cpus = default_workers()
    if cpus <= 1 and not workers:
        return SerialBackend()
    if "fork" in multiprocessing.get_all_start_methods():
        return ProcessBackend(workers)
    return ThreadBackend(workers)


def resolve_backend(spec: "str | Backend | None" = None,
                    workers: int = 0) -> "Backend":
    """Resolve a backend selection to a live backend instance.

    Parameters
    ----------
    spec:
        ``None`` (consult :data:`BACKEND_ENV_VAR`, default ``"serial"``),
        an already-constructed :class:`Backend` (returned as-is), or a
        name: ``"serial"``, ``"thread"``, ``"process"``, ``"auto"``.  A
        ``":N"`` suffix pins the worker count (``"process:8"``).
    workers:
        Worker count used when the name carries no suffix; ``0`` means
        "one per CPU".

    >>> resolve_backend("serial").name
    'serial'
    >>> resolve_backend("thread:3").workers
    3
    """
    if spec is not None and not isinstance(spec, str):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "") or "serial"
    name, _, count = spec.partition(":")
    name = name.strip().lower()
    if count:
        try:
            workers = int(count)
        except ValueError:
            raise ReproError(
                f"bad worker count in backend spec {spec!r}") from None
        if workers < 1:
            raise ReproError(f"worker count must be >= 1 in {spec!r}")
    if name == "auto":
        return _auto_backend(workers)
    try:
        cls = available_backends()[name]
    except KeyError:
        known = ", ".join(sorted(available_backends()) + ["auto"])
        raise ReproError(
            f"unknown execution backend {spec!r} (known: {known})") from None
    if cls is SerialBackend:
        if count:
            raise ReproError(
                f"the serial backend takes no worker count ({spec!r}); "
                "did you mean thread or process?")
        return SerialBackend()
    return cls(workers)
