"""The paper's end-to-end flows: model building, filter application,
artefact persistence, cost accounting."""

from .accounting import SimulationLedger, StageRecord
from .artifacts import load_flow_arrays, rebuild_model, save_flow_artifacts
from .filter_flow import FilterFlowConfig, FilterFlowResult, run_filter_flow
from .pipeline import (FlowConfig, FlowResult, paper_scale_config,
                       reduced_config, run_model_build_flow)

__all__ = [
    "SimulationLedger", "StageRecord",
    "load_flow_arrays", "rebuild_model", "save_flow_artifacts",
    "FilterFlowConfig", "FilterFlowResult", "run_filter_flow",
    "FlowConfig", "FlowResult", "paper_scale_config", "reduced_config",
    "run_model_build_flow",
]
