"""Simulation-cost accounting.

The paper's efficiency claim (Table 5: 4 CPU-hours vs a previously
reported 7 hours; behavioural reuse amortising the one-time model cost) is
about *simulator work*.  :class:`SimulationLedger` records, per flow
stage, how many circuit evaluations were spent and how long they took, so
every benchmark can report the proposed-vs-conventional cost ratio on the
same footing as the paper.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .. import telemetry

__all__ = ["StageRecord", "SimulationLedger"]


@dataclass
class StageRecord:
    """Cost of one flow stage."""

    name: str
    simulations: int = 0
    wall_seconds: float = 0.0

    def add(self, simulations: int, wall_seconds: float) -> None:
        self.simulations += simulations
        self.wall_seconds += wall_seconds


@dataclass
class SimulationLedger:
    """Ordered collection of per-stage cost records."""

    stages: dict[str, StageRecord] = field(default_factory=dict)

    def record(self, stage: str, simulations: int,
               wall_seconds: float) -> None:
        """Add cost to a stage (created on first use)."""
        if stage not in self.stages:
            self.stages[stage] = StageRecord(stage)
        self.stages[stage].add(simulations, wall_seconds)

    @contextmanager
    def timed(self, stage: str, simulations: int = 0):
        """Context manager measuring the wall time of a stage.

        The simulation count may be passed up front or set afterwards via
        :meth:`record` with zero time.
        """
        start = time.perf_counter()
        try:
            with telemetry.span("flow.stage", stage=stage):
                yield
        finally:
            self.record(stage, simulations, time.perf_counter() - start)

    @property
    def total_simulations(self) -> int:
        return sum(record.simulations for record in self.stages.values())

    @property
    def total_seconds(self) -> float:
        return sum(record.wall_seconds for record in self.stages.values())

    def as_rows(self) -> list[tuple[str, int, float]]:
        """``(stage, simulations, seconds)`` rows plus a total row."""
        rows = [(record.name, record.simulations, record.wall_seconds)
                for record in self.stages.values()]
        rows.append(("TOTAL", self.total_simulations, self.total_seconds))
        return rows

    def table(self) -> str:
        """Aligned text table (the Table-5 style summary)."""
        lines = [f"{'stage':<32} {'simulations':>12} {'seconds':>10}"]
        for name, sims, seconds in self.as_rows():
            lines.append(f"{name:<32} {sims:>12d} {seconds:>10.2f}")
        return "\n".join(lines)
