"""Flow artefact persistence.

The paper's flow communicates through data files: the performance model
and variation model are "stored in a data file" (sections 3.3/3.4) and
consumed by the Verilog-A ``$table_model`` function.  This module writes
exactly that artefact set for a finished
:class:`~repro.flow.pipeline.FlowResult`:

* ``gain_delta.tbl`` / ``pm_delta.tbl`` -- the variation model;
* ``lp1_data.tbl`` ... ``lp8_data.tbl`` -- the performance model
  (design parameter vs (gain, pm));
* ``ota_yield_model.va`` -- the generated Verilog-A module;
* ``corner_margins.txt`` -- the PVT corner-verification spec-margin
  table (when the corner stage ran);
* ``surrogate_model.npz`` -- the trained process-space surrogate bundle
  of the reference design (when the surrogate stage ran), reloadable
  with :func:`repro.surrogate.load_surrogates`;
* ``yield_front.txt`` / ``filter_yield_front.txt`` -- the stage-7
  yield-annotated Pareto fronts (in-loop yield search on the OTA and
  filter2 designs) with per-fidelity ladder accounting and the
  comparison against the guard-banded reference (when stage 7 ran);
* ``streaming_verification.txt`` -- the stage-4c streaming adaptive
  yield verification report (per-performance online statistics, yield
  with Wilson interval, adaptive-stop state; when the stage ran);
* ``high_sigma.txt`` -- the stage-4d rare-event verification report
  (failure probability with CI, equivalent sigma, per-level splitting
  ledger; when the stage ran);
* ``flow_result.npz`` + ``flow_summary.json`` -- full numeric state
  (including per-corner performance arrays), so a flow run can be
  reloaded without re-simulating.

``load_flow_arrays`` restores the numpy payload and rebuilds the combined
model (the WBGA history itself is not persisted -- it is 10k rows of
intermediate state; the model is the deliverable).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..behavioral.codegen import write_verilog_a_package
from ..designs.ota import OTA_DESIGN_SPACE
from ..errors import YieldModelError
from ..surrogate import save_surrogates
from ..tablemodel.pareto_table import ParetoTableModel
from ..yieldmodel.targeting import CombinedYieldModel

__all__ = ["save_flow_artifacts", "load_flow_arrays", "rebuild_model"]


def _ota_yield_report(result, search) -> str:
    """Stage-7 OTA report: annotated front + ladder accounting + the
    comparison against the paper's guard-banded model selection."""
    from ..optimize import (format_guardband_comparison,
                            format_ladder_summary, format_yield_front)
    parts = [format_yield_front(search), "", format_ladder_summary(
        search.counts)]
    try:
        design = result.model.design_for_specs(result.config.corner_specs())
        reference = dict(design.nominal_performance)
        label = "guard-banded (model)"
    except YieldModelError:
        # Reduced fronts may not reach the paper's spec; fall back to
        # the mid-front reference design for a like-for-like row.
        mid = result.pareto_count // 2
        reference = {name: float(result.pareto_objectives[mid, j])
                     for j, name in enumerate(
                         result.model.objective_names)}
        label = "mid-front reference"
    parts += ["", format_guardband_comparison(search, label, reference)]
    return "\n".join(parts)


def _filter_yield_report(search) -> str:
    """Stage-7 filter2 report; the reference row is the search's own
    max-worst-nominal-margin point (the filter flow's selection rule)."""
    from ..optimize import (format_guardband_comparison,
                            format_ladder_summary, format_yield_front)
    objectives = search.front_objectives()
    annotations = search.front_annotations()
    base_names = tuple(obj.name for obj in search.problem.base.objectives)
    worst = objectives[:, :len(base_names)].min(axis=1)
    best = int(np.argmax(worst))
    reference = {name: float(objectives[best, j])
                 for j, name in enumerate(base_names)}
    reference_yield = float(annotations["yield"][best])
    if not np.isfinite(reference_yield):
        reference_yield = None
    return "\n".join([
        format_yield_front(search), "",
        format_ladder_summary(search.counts), "",
        format_guardband_comparison(search, "max-nominal-margin point",
                                    reference, reference_yield),
    ])


def save_flow_artifacts(result, directory) -> dict[str, Path]:
    """Write the complete artefact set of a model-building flow run.

    Parameters
    ----------
    result:
        A :class:`~repro.flow.pipeline.FlowResult`.
    directory:
        Destination directory (created if needed).

    Returns
    -------
    Mapping artefact name -> written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # Verilog-A module + .tbl tables (the paper's deliverable).
    written = write_verilog_a_package(result.model, directory)

    # Numeric state for lossless reload.
    arrays = {
        "pareto_parameters": result.pareto_parameters,
        "pareto_objectives": result.pareto_objectives,
        "ro_ohms": result.ro_ohms,
        "ugf_hz": result.ugf_hz,
    }
    for name, data in result.mc_samples.items():
        arrays[f"mc_{name}"] = data
    for name, data in result.variation.items():
        arrays[f"var_{name}"] = data
    corner_check = getattr(result, "corner_check", None)
    if corner_check is not None:
        for name, data in corner_check.samples.items():
            arrays[f"corner_{name}"] = data
        # The per-corner spec-margin table, human-readable.
        table_path = directory / "corner_margins.txt"
        table_path.write_text(corner_check.summary_table() + "\n")
        written["corner_margins"] = table_path
    surrogate = getattr(result, "surrogate", None)
    if surrogate is not None:
        written["surrogate"] = save_surrogates(
            surrogate, directory / "surrogate_model.npz")
        arrays["surrogate_reference"] = result.surrogate_reference
    searches = (("yield", getattr(result, "yield_search", None)),
                ("filter_yield", getattr(result, "filter_yield_search",
                                         None)))
    for tag, search in searches:
        if search is None:
            continue
        arrays[f"{tag}_front_parameters"] = search.front_parameters()
        arrays[f"{tag}_front_objectives"] = search.front_objectives()
        for name, values in search.front_annotations().items():
            arrays[f"{tag}_front_{name}"] = values
        report = _ota_yield_report(result, search) if tag == "yield" \
            else _filter_yield_report(search)
        report_path = directory / f"{tag}_front.txt"
        report_path.write_text(report + "\n")
        written[f"{tag}_front"] = report_path
    streaming = getattr(result, "streaming_verification", None)
    if streaming is not None:
        streaming_path = directory / "streaming_verification.txt"
        streaming_path.write_text(streaming.describe() + "\n")
        written["streaming_verification"] = streaming_path
    high_sigma = getattr(result, "high_sigma", None)
    if high_sigma is not None:
        high_sigma_path = directory / "high_sigma.txt"
        high_sigma_path.write_text(high_sigma.describe() + "\n")
        written["high_sigma"] = high_sigma_path
        arrays["high_sigma_shift"] = np.asarray(high_sigma.shift_sigma)
    npz_path = directory / "flow_result.npz"
    np.savez_compressed(npz_path, **arrays)
    written["arrays"] = npz_path

    summary = {
        "pdk": result.pdk_name,
        "config": asdict(result.config),
        "pareto_points": int(result.pareto_count),
        "total_pareto_found": int(result.total_pareto_found),
        "evaluations": int(result.wbga.evaluations),
        "ledger": [
            {"stage": stage, "simulations": sims, "seconds": seconds}
            for stage, sims, seconds in result.ledger.as_rows()
        ],
        "objective_names": list(result.model.objective_names),
        "parameter_names": list(result.model.parameter_names),
    }
    if corner_check is not None:
        summary["corners"] = {
            "grid": {"corners": list(corner_check.grid.corners),
                     "vdds": list(corner_check.grid.vdds),
                     "temps_c": list(corner_check.grid.temps_c)},
            "spec": corner_check.specs.describe(),
            "mc_bounded_fraction": {
                name: check.bounded_fraction
                for name, check in corner_check.mc_check.items()},
        }
    if surrogate is not None:
        summary["surrogate"] = {
            "kind": surrogate.kind,
            "n_train": int(surrogate.n_train),
            "cv_errors": {name: float(err)
                          for name, err in surrogate.cv_errors.items()},
            "reference_parameters": [float(v)
                                     for v in result.surrogate_reference],
        }
    for tag, search in searches:
        if search is None:
            continue
        summary[f"{tag}_search"] = {
            "mode": search.config.mode,
            "optimizer": search.config.optimizer,
            "yield_target": search.config.yield_target,
            "front_points": int(search.front_count()),
            "objective_names": list(search.objective_names),
            "ladder": {
                "resolved_per_fidelity": list(search.counts.resolved),
                "sims_per_fidelity": list(search.counts.sims),
                "budget_exhausted": bool(search.counts.budget_exhausted),
            },
        }
    if streaming is not None and streaming.counter is not None:
        confidence = streaming.confidence
        lo, hi = streaming.counter.interval(confidence)
        summary["streaming_verification"] = {
            "passed": int(streaming.counter.passed),
            "total": int(streaming.counter.total),
            "confidence": float(confidence),
            "wilson_interval": [float(lo), float(hi)],
            "samples_done": int(streaming.samples_done),
            "samples_cap": int(streaming.samples_cap),
            "stopped_early": bool(streaming.stopped_early),
            "interrupted": bool(streaming.interrupted),
        }
    if high_sigma is not None:
        lo, hi = high_sigma.interval
        summary["high_sigma"] = {
            "p_fail": float(high_sigma.p_fail),
            "sigma_level": (float(high_sigma.sigma_level)
                            if np.isfinite(high_sigma.sigma_level)
                            else None),
            "confidence": float(high_sigma.confidence),
            "interval": [float(lo), float(hi)],
            "n_levels": int(high_sigma.n_levels),
            "total_simulations": int(high_sigma.total_simulations),
            "effective_samples": float(high_sigma.effective_samples),
            "levels_converged": bool(high_sigma.levels_converged),
            "acceptance_rates": [float(rate) for rate
                                 in high_sigma.acceptance_rates],
        }
    json_path = directory / "flow_summary.json"
    json_path.write_text(json.dumps(summary, indent=2))
    written["summary"] = json_path
    return written


def load_flow_arrays(directory) -> dict[str, np.ndarray]:
    """Load the numeric payload written by :func:`save_flow_artifacts`."""
    directory = Path(directory)
    with np.load(directory / "flow_result.npz") as data:
        return {key: data[key].copy() for key in data.files}


def rebuild_model(directory) -> CombinedYieldModel:
    """Reconstruct the :class:`CombinedYieldModel` from saved artefacts.

    Only the numeric payload is needed; the ``.tbl`` files are a
    human/Verilog-A-readable projection of the same data.
    """
    arrays = load_flow_arrays(directory)
    summary = json.loads((Path(directory) / "flow_summary.json").read_text())
    parameter_names = tuple(summary["parameter_names"])
    objective_names = tuple(summary["objective_names"])

    columns: dict[str, np.ndarray] = {}
    for j, name in enumerate(OTA_DESIGN_SPACE.names):
        columns[name] = arrays["pareto_parameters"][:, j]
    for key, data in arrays.items():
        if key.startswith("var_"):
            columns[key[len("var_"):]] = data
    columns["ro_ohms"] = arrays["ro_ohms"]
    columns["ugf_hz"] = arrays["ugf_hz"]

    table = ParetoTableModel(arrays["pareto_objectives"], objective_names,
                             columns=columns)
    return CombinedYieldModel(table, parameter_names)
