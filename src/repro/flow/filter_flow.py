"""The paper's section-5 application flow: filter design on the model.

Given the combined OTA model from :mod:`repro.flow.pipeline`, this flow
reproduces the anti-aliasing-filter demonstration:

1. **OTA selection** -- yield-targeted design for the paper's OTA
   requirement (gain > 50 dB, PM > 60 deg) via the combined model: one
   table interpolation, zero transistor simulations.
2. **Filter optimisation** -- MOO over C1-C3 (paper: 30 individuals x 40
   generations) with the *behavioural* OTA macromodel in the loop.  The
   optimiser here is NSGA-II rather than the WBGA: with spec-margin
   objectives the WBGA degenerates (an individual that maximises one
   margin while carrying a matching one-sided weight vector scores a
   perfect weighted fitness, so the population splits into two extreme
   clusters and never reaches the feasible knee).  The ablation benchmark
   ``benchmarks/test_ablation_optimizer.py`` quantifies exactly this
   failure mode; the paper's text only commits to "MOO" for this stage.
3. **Capacitor selection** -- the mask-feasible Pareto point with the
   largest worst-case margin (so capacitor process spread cannot push the
   response out of the mask).
4. **Verification** -- transistor-level Monte Carlo of the complete filter
   (paper: 500 samples, "confirmed a yield of 100 %").

Every transistor-level simulation spent here belongs to *verification
only*; the design loop itself runs entirely on the behavioural model --
that separation is the paper's headline efficiency claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..designs.filter2 import (FilterCaps, FilterSpec,
                               build_filter_behavioral,
                               build_filter_transistor, evaluate_filter)
from ..designs.ota import OTAParameters
from ..designs.problems import BehavioralFilterProblem
from ..errors import YieldModelError
from ..mc.engine import MCConfig
from ..mc.sampler import stream
from ..measure.specs import Spec, SpecSet
from ..moo.ga import GAConfig
from ..moo.nsga2 import run_nsga2
from ..process import C35, ProcessKit
from ..workload import BatchYieldWorkload, LintWorkload, design_digest
from ..yieldmodel.estimator import YieldEstimate
from ..yieldmodel.targeting import CombinedYieldModel, YieldTargetedDesign
from .accounting import SimulationLedger

__all__ = ["FilterFlowConfig", "FilterFlowResult", "run_filter_flow"]


@dataclass(frozen=True)
class FilterFlowConfig:
    """Settings of the filter application flow (paper defaults)."""

    #: Paper: "A total of 30 individuals and 40 generations were used".
    individuals: int = 30
    generations: int = 40
    verification_samples: int = 500
    seed: int = 2008
    spec: FilterSpec = field(default_factory=FilterSpec)
    #: Topology lint of the chosen behavioural filter and the transistor
    #: verification testbench, run before the Monte-Carlo budget is
    #: spent: ``"strict"`` rejects error findings with
    #: :class:`~repro.errors.LintGateError`, ``"warn"`` only reports,
    #: ``"off"`` skips the checks.
    lint: str = "strict"
    #: Telemetry events file (JSONL) of this run; "" leaves telemetry in
    #: its ambient state.  Never part of any workload fingerprint.
    telemetry: str = ""

    def ga_config(self) -> GAConfig:
        return GAConfig(population_size=self.individuals,
                        generations=self.generations, seed=self.seed)


@dataclass
class FilterFlowResult:
    """Everything the filter flow produced.

    Attributes
    ----------
    ota_design:
        The yield-targeted OTA selection (guard-banded per the model).
    caps:
        The chosen filter capacitors.
    nominal_performance:
        Behavioural-model filter measures of the chosen design.
    transistor_performance:
        Transistor-level filter measures (nominal process).
    yield_estimate:
        The 500-sample transistor Monte-Carlo verification.
    """

    config: FilterFlowConfig
    ota_design: YieldTargetedDesign
    ota_parameters: OTAParameters
    caps: FilterCaps
    nominal_performance: dict[str, float]
    transistor_performance: dict[str, float]
    yield_estimate: YieldEstimate
    pareto_caps: np.ndarray
    pareto_objectives: np.ndarray
    ledger: SimulationLedger = field(default_factory=SimulationLedger)


def _parasitic_pole_from_pm(pm_deg: float, ugf_hz: float) -> float:
    """Equivalent second-pole frequency encoding the OTA's excess phase.

    At the unity-gain frequency the dominant pole contributes ~90 degrees,
    so the remaining lag ``90 - PM`` maps to a single equivalent pole at
    ``f_u / tan(90 - PM)``.  Feeding this into the behavioural macromodel
    makes the filter-level simulation reproduce the transistor OTA's
    peaking -- this is exactly the information the phase-margin column of
    the combined model carries into system-level design.
    """
    excess = np.radians(max(90.0 - pm_deg, 0.1))
    return float(ugf_hz / np.tan(excess))


def _select_capacitors(front_unit: np.ndarray, front_obj: np.ndarray, *,
                       spec: FilterSpec, ota_gain_db: float, ota_ro: float,
                       parasitic_pole_hz: float,
                       cap_corner_scale: float) -> int:
    """Pick the mask-feasible front point with the best worst margin that
    also survives the +/-3-sigma capacitor process corners.

    Objectives are the saturated mask margins
    (:func:`repro.designs.problems.filter_margins`); a design is feasible
    iff both are non-negative.  Candidates are tried best-margin-first; the
    first whose response stays inside the mask when all capacitors shift
    by ``+/-cap_corner_scale`` wins ("taking into account their
    variations", section 5).  If no candidate survives the corners the
    best nominal point is returned.
    """
    from ..designs.problems import filter_margins

    worst = np.min(front_obj, axis=1)
    order = np.argsort(worst)[::-1]
    if worst[order[0]] < 0:
        raise YieldModelError(
            "no capacitor choice on the Pareto front satisfies the filter "
            f"mask (best worst-margin {worst[order[0]]:.3f}); "
            "loosen the specification or enlarge the capacitor range")

    # Feasibility mirrors Spec.satisfied (margin >= 0): a zero worst
    # margin is on-mask, not a failure -- and must leave at least the
    # best nominal point as the corner-check fallback below.
    feasible = [int(i) for i in order if worst[i] >= 0]
    for index in feasible:
        caps = FilterCaps.from_normalized(front_unit[index])
        corners_ok = True
        for scale in (1.0 - cap_corner_scale, 1.0 + cap_corner_scale):
            circuit = build_filter_behavioral(
                caps.scaled(scale), ota_gain_db=ota_gain_db, ota_ro=ota_ro,
                parasitic_pole_hz=parasitic_pole_hz)
            margins = filter_margins(
                evaluate_filter(circuit, spec=spec), spec)
            if np.min(margins) <= 0:
                corners_ok = False
                break
        if corners_ok:
            return index
    return feasible[0]


def run_filter_flow(model: CombinedYieldModel,
                    config: FilterFlowConfig | None = None, *,
                    pdk: ProcessKit = C35,
                    progress=None) -> FilterFlowResult:
    """Design and verify the section-5 filter on a combined OTA model.

    Raises
    ------
    LintGateError
        If ``config.lint == "strict"`` and a verification circuit has
        error-severity topology findings.
    YieldModelError
        If the OTA model cannot meet the OTA spec at 100 % yield, or no
        capacitor choice satisfies the filter mask.
    """
    config = config or FilterFlowConfig()
    with telemetry.session(config.telemetry or None):
        with telemetry.span("flow.filter", individuals=config.individuals,
                            generations=config.generations,
                            seed=config.seed):
            result = _filter_flow(model, config, pdk=pdk, progress=progress)
        telemetry.emit_ledger(result.ledger)
    return result


def _filter_flow(model: CombinedYieldModel, config: FilterFlowConfig, *,
                 pdk: ProcessKit, progress) -> FilterFlowResult:
    """The flow body, run inside the telemetry session + root span."""
    spec = config.spec
    ledger = SimulationLedger()
    say = telemetry.announcer(progress)

    # Step 1: yield-targeted OTA selection (pure table interpolation).
    with ledger.timed("ota selection (behavioural)"):
        # "snap": take a real front point's parameters (robust on the
        # sparse fronts reduced-scale runs produce; see design_for_specs).
        ota_design = model.design_for_specs(SpecSet([
            Spec("gain_db", "ge", spec.ota_gain_db, "dB"),
            Spec("pm_deg", "ge", spec.ota_pm_deg, "deg"),
        ]), strategy="snap")
        ota_params = OTAParameters(**ota_design.parameters)
        ota_gain_db = ota_design.nominal_performance["gain_db"]
        ota_pm_deg = ota_design.nominal_performance["pm_deg"]
        ota_ro = model.ro_at("gain_db", ota_design.front_position)
        ota_ugf = float(model.table.lookup("gain_db",
                                           ota_design.front_position,
                                           "ugf_hz"))
        parasitic_pole = _parasitic_pole_from_pm(ota_pm_deg, ota_ugf)
    say(f"OTA selected: gain {ota_gain_db:.2f} dB "
        f"(guard-banded from {spec.ota_gain_db:g} dB), ro {ota_ro:.3g} ohm, "
        f"excess-phase pole {parasitic_pole / 1e6:.1f} MHz")

    # Step 2: capacitor MOO on the behavioural model.
    say(f"filter MOO: {config.generations} generations x "
        f"{config.individuals} individuals (behavioural OTA)")
    problem = BehavioralFilterProblem(ota_gain_db=ota_gain_db,
                                      ota_ro=ota_ro, spec=spec,
                                      parasitic_pole_hz=parasitic_pole)
    with ledger.timed("filter optimisation (behavioural)"):
        moo = run_nsga2(problem, config.ga_config(),
                        rng=stream(config.seed, "filter-nsga2"))
    ledger.record("filter optimisation (behavioural)", moo.evaluations, 0.0)

    # Step 3: capacitor selection from the filter's own Pareto front,
    # corner-checked against +/-3-sigma capacitor spread.
    cap_corner = 3.0 * pdk.global_variation.sigma_cap
    with ledger.timed("capacitor selection", 1):
        mask = moo.pareto_mask()
        front_unit = moo.all_parameters[mask]
        front_obj = moo.all_objectives[mask]
        chosen = _select_capacitors(
            front_unit, front_obj, spec=spec, ota_gain_db=ota_gain_db,
            ota_ro=ota_ro, parasitic_pole_hz=parasitic_pole,
            cap_corner_scale=cap_corner)
        caps = FilterCaps.from_normalized(front_unit[chosen])
        # Re-measure the chosen point in natural units for the report.
        chosen_circuit = build_filter_behavioral(
            caps, ota_gain_db=ota_gain_db, ota_ro=ota_ro,
            parasitic_pole_hz=parasitic_pole)
        if config.lint != "off":
            LintWorkload(chosen_circuit, config.lint,
                         stage="filter-flow lint (behavioural)").run(
                progress=progress)
        nominal = {key: float(value[0]) for key, value in
                   evaluate_filter(chosen_circuit, spec=spec).items()}
    say(f"capacitors: C1={caps.c1 * 1e12:.1f}pF C2={caps.c2 * 1e12:.1f}pF "
        f"C3={caps.c3 * 1e12:.2f}pF "
        f"(ripple {nominal['ripple_db']:.2f} dB, "
        f"attenuation {nominal['atten_db']:.1f} dB)")

    # Step 4: transistor-level verification -- nominal + Monte Carlo.
    # Lint the testbench before the Monte-Carlo budget is committed.
    with ledger.timed("transistor verification (nominal)", 1):
        nominal_circuit = build_filter_transistor(caps, ota_params, pdk=pdk)
        if config.lint != "off":
            LintWorkload(nominal_circuit, config.lint,
                         stage="filter-flow lint (transistor)").run(
                progress=progress)
        transistor = {key: float(value[0]) for key, value in
                      evaluate_filter(nominal_circuit, spec=spec).items()}

    say(f"transistor MC verification: {config.verification_samples} samples")
    mask_specs = spec.mask_specs()

    def verification_evaluator(die_sample):
        tiled = OTAParameters.from_array(
            np.broadcast_to(ota_params.to_array(), (die_sample.size, 8)))
        circuit = build_filter_transistor(caps, tiled, pdk=pdk,
                                          variations=die_sample)
        return evaluate_filter(circuit, spec=spec)

    with ledger.timed("transistor verification (monte carlo)",
                      config.verification_samples):
        yield_estimate, _ = BatchYieldWorkload(
            verification_evaluator, pdk, mask_specs,
            MCConfig(n_samples=config.verification_samples,
                     seed=config.seed),
            evaluator_id=design_digest(
                ota=ota_params.to_array(), caps=caps.to_array(),
                pdk=pdk.name)).run().value
    say(yield_estimate.describe())

    return FilterFlowResult(
        config=config,
        ota_design=ota_design,
        ota_parameters=ota_params,
        caps=caps,
        nominal_performance=nominal,
        transistor_performance=transistor,
        yield_estimate=yield_estimate,
        pareto_caps=FilterCaps.from_normalized(front_unit).to_array(),
        pareto_objectives=front_obj,
        ledger=ledger,
    )
