"""The paper's proposed algorithm, end to end (Figure 3).

``run_model_build_flow`` executes the model-building half of the paper:

0. **Pre-flight topology lint** (``config.lint``) -- the OTA testbench
   the whole flow is about to simulate thousands of times is checked by
   :mod:`repro.lint` before any simulation budget is spent; in
   ``strict`` mode a topologically broken circuit fails fast with a
   readable :class:`~repro.errors.LintGateError` carrying the full
   :class:`~repro.lint.LintReport` instead of a singular-matrix
   traceback deep inside the optimiser.
1. **Netlist / objective generation** -- the OTA problem over the Table-1
   parameter space (:class:`repro.designs.problems.OTAProblem`).
2. **Multi-objective optimisation** -- WBGA, 100 generations x 100
   individuals by default (section 4.2).
3. **Pareto front extraction** -- non-dominated filtering of all evaluated
   individuals (section 3.3; the paper finds 1022 points).
4. **Monte-Carlo variation analysis** -- ``mc_samples`` die realisations
   on *every* Pareto point (section 3.4; paper: 200).
4b. **PVT corner verification** -- every Pareto point swept across the
   full process-corner x supply x temperature grid as stacked batch
   lanes (:mod:`repro.corners`), reporting per-corner spec margins and
   checking that deterministic corners bound the Monte-Carlo spread.
4c. **Streaming adaptive yield verification** (optional,
   ``adaptive_ci > 0``) -- a streaming Monte-Carlo run
   (:mod:`repro.mc.streaming`) on the mid-front design that reduces
   chunks into online accumulators and stops as soon as the Wilson
   interval on the yield is narrower than the requested width, instead
   of burning a fixed sample count; checkpointable via
   ``streaming_checkpoint`` so an interrupted build resumes it.
5. **Table-model generation** -- performance + variation tables
   (section 3.5) assembled into a
   :class:`~repro.yieldmodel.targeting.CombinedYieldModel`.
6. **Surrogate training** (optional, ``surrogate_budget > 0``) -- a
   process-space response-surface bundle (:mod:`repro.surrogate`) of the
   mid-front reference design, trained through the same execution
   backends and persisted with the artefacts so later yield campaigns
   can run at polynomial cost.
7. **In-loop yield search** (optional, ``yield_objective != "none"``) --
   the :mod:`repro.optimize` subsystem re-optimises both seed designs
   (the OTA W/L space and the filter2 capacitor space) with yield as an
   in-loop objective, estimated per candidate by the multi-fidelity
   estimator ladder, and produces yield-annotated Pareto fronts plus a
   comparison against the paper's guard-banded selection.

Costs are tracked in a :class:`~repro.flow.accounting.SimulationLedger`
so Table 5 and the conventional-flow comparison can be regenerated.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a cycle:
    # repro.optimize depends on repro.flow.accounting at runtime)
    from ..mc.streaming import StreamingResult
    from ..optimize import YieldSearchConfig, YieldSearchResult

from .. import telemetry
from ..corners import CornerGrid, CornerVerification
from ..designs.filter2 import DEFAULT_FILTER_SPEC
from ..designs.ota import (OTA_DESIGN_SPACE, OTAParameters, build_ota,
                           evaluate_ota)
from ..designs.problems import OTAProblem, TransistorFilterProblem
from ..errors import YieldModelError
from ..mc.engine import MCConfig
from ..mc.sampler import stream
from ..mc.streaming import AdaptiveStop
from ..measure.specs import Spec, SpecSet
from ..moo.ga import GAConfig
from ..moo.wbga import WBGAResult, run_wbga
from ..process import C35, ProcessKit
from ..tablemodel.pareto_table import ParetoTableModel
from ..workload import (CornerSweepWorkload, LintWorkload, MCPointsWorkload,
                        RareEventWorkload, StreamingYieldWorkload,
                        SurrogateTrainWorkload, YieldSearchWorkload,
                        design_digest, ota_points_evaluator,
                        ota_reference_evaluator)
from ..yieldmodel.rare import RareEventConfig, RareEventResult
from ..yieldmodel.targeting import CombinedYieldModel
from ..yieldmodel.variation import DEFAULT_K_SIGMA, variation_columns
from .accounting import SimulationLedger

__all__ = ["FlowConfig", "FlowResult", "run_model_build_flow",
           "paper_scale_config", "reduced_config"]


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of the model-building flow.

    Defaults reproduce the paper's run (100x100 WBGA, 200 MC samples per
    Pareto point, 3-sigma variation).  ``reduced_config()`` gives a
    seconds-scale variant for tests and default benchmarks.
    """

    generations: int = 100
    population: int = 100
    mc_samples: int = 200
    k_sigma: float = DEFAULT_K_SIGMA
    seed: int = 2008
    #: Stage-0 pre-flight topology lint of the OTA testbench the flow is
    #: about to simulate thousands of times: ``"strict"`` rejects
    #: circuits with error findings by raising
    #: :class:`~repro.errors.LintGateError` (carrying the full
    #: :class:`~repro.lint.LintReport`), ``"warn"`` reports findings via
    #: ``progress`` but continues, ``"off"`` skips the stage.
    lint: str = "strict"
    cl: float = 10e-12
    ibias: float = 20e-6
    mc_chunk_lanes: int = 4000
    max_pareto_points: int | None = None
    mc_backend: str | None = None
    mc_workers: int = 0
    #: Corner-verification stage: "all" sweeps every kit corner, a comma
    #: list ("tm,ws") restricts it, "none" skips the stage entirely.
    corners: str = "all"
    #: Supply-voltage sweep [V]; empty means nominal +/-10 %.
    corner_vdds: tuple[float, ...] = ()
    #: Temperature sweep [deg C]; empty means -40/27/125.
    corner_temps: tuple[float, ...] = ()
    #: Spec limits the per-corner margins are measured against (the
    #: paper's section-5 OTA requirement).
    corner_spec_gain_db: float = 50.0
    corner_spec_pm_deg: float = 60.0
    #: Streaming adaptive yield verification (stage 4c): target full
    #: width of the Wilson confidence interval on the yield of the
    #: mid-front design, as a yield fraction (e.g. 0.05 = +/-2.5 %);
    #: 0 disables the stage.
    adaptive_ci: float = 0.0
    #: Sample cap of the adaptive verification run (it usually stops
    #: far earlier).
    adaptive_max_samples: int = 4000
    #: Chunk size of the adaptive verification.  Deliberately smaller
    #: than ``mc_chunk_lanes``: the adaptive stop can only fire between
    #: chunks, so the chunk size is the stopping granularity.
    adaptive_chunk_lanes: int = 256
    #: Chunks per stopping-check round of the adaptive verification
    #: (also the per-round parallelism -- set it at or above the worker
    #: count of a pooled backend to keep the pool busy).  Explicit
    #: rather than derived from the backend, so the stop point -- and
    #: the checkpoint identity -- never depends on the backend choice.
    adaptive_check_every: int = 1
    #: Checkpoint artefact of the streaming verification ("" = none).
    #: An interrupted build re-run with the same seed resumes the
    #: verification from this file instead of restarting it.
    streaming_checkpoint: str = ""
    #: Stage-4d high-sigma verification: estimate the rare-event failure
    #: probability of the mid-front design against the corner specs via
    #: multilevel splitting + adaptive importance sampling
    #: (:mod:`repro.yieldmodel.rare`) -- resolves 5-6 sigma failure
    #: rates the sampling stages cannot see.  ``False`` skips the stage.
    high_sigma: bool = False
    #: Per-splitting-level sample budget of the stage-4d estimator.
    high_sigma_per_level: int = 1000
    #: Final unbiased importance-sampling budget of stage 4d.
    high_sigma_final: int = 2000
    #: Simulator budget of the optional surrogate-training stage
    #: (stage 6); 0 disables the stage entirely.
    surrogate_budget: int = 0
    #: Surrogate model family when the stage runs
    #: (:data:`repro.surrogate.SURROGATE_KINDS`).
    surrogate_kind: str = "quadratic"
    #: In-loop yield search mode of the optional stage 7: ``"none"``
    #: disables the stage; ``"yield"`` / ``"ksigma"`` / ``"chance"``
    #: select the augmentation of :mod:`repro.optimize`.
    yield_objective: str = "none"
    #: Target yield of the stage-7 escalation logic and of the
    #: chance-constraint penalty.
    yield_target: float = 0.90
    #: Total simulator-call budget of the stage-7 estimator ladder per
    #: search (0 = unlimited).
    fidelity_budget: int = 0
    #: GA scale of the stage-7 searches (deliberately smaller than the
    #: stage-2 WBGA: every candidate pays an in-loop yield estimate).
    yield_generations: int = 12
    yield_population: int = 16
    #: Telemetry events file (JSONL) of this run; "" leaves telemetry in
    #: its ambient state (off, or whatever ``REPRO_TELEMETRY`` enabled).
    #: Never part of any workload fingerprint -- telemetry observes the
    #: computation, it does not shape it.
    telemetry: str = ""

    def ga_config(self) -> GAConfig:
        return GAConfig(population_size=self.population,
                        generations=self.generations, seed=self.seed)

    def corner_grid(self, pdk: ProcessKit) -> CornerGrid | None:
        """The PVT grid of the corner stage, or ``None`` when disabled."""
        if self.corners.strip().lower() == "none":
            return None
        grid = CornerGrid.from_spec(pdk, self.corners)
        if self.corner_vdds:
            grid = dataclasses.replace(grid, vdds=tuple(self.corner_vdds))
        if self.corner_temps:
            grid = dataclasses.replace(grid, temps_c=tuple(self.corner_temps))
        return grid

    def corner_specs(self) -> SpecSet:
        """The spec the corner margins are measured against."""
        return SpecSet([
            Spec("gain_db", "ge", self.corner_spec_gain_db, "dB"),
            Spec("pm_deg", "ge", self.corner_spec_pm_deg, "deg"),
        ])

    def yield_search_config(self) -> "YieldSearchConfig":
        """Stage-7 search settings derived from the flow configuration."""
        # Runtime import: repro.optimize itself builds on repro.flow's
        # accounting, so the dependency must stay one-way at import time.
        from ..optimize import LadderConfig, YieldSearchConfig
        ladder = LadderConfig(
            yield_target=self.yield_target,
            fidelity_budget=self.fidelity_budget,
            seed=self.seed,
            backend=self.mc_backend, workers=self.mc_workers,
            chunk_lanes=self.mc_chunk_lanes)
        return YieldSearchConfig(
            mode=self.yield_objective, yield_target=self.yield_target,
            generations=self.yield_generations,
            population=self.yield_population,
            seed=self.seed, ladder=ladder)


def paper_scale_config(seed: int = 2008) -> FlowConfig:
    """The full section-4 scale: 10,000 evaluations, 200-sample MC."""
    return FlowConfig(seed=seed)


def reduced_config(seed: int = 2008) -> FlowConfig:
    """A seconds-scale configuration for tests and quick benchmarks."""
    return FlowConfig(generations=12, population=24, mc_samples=40,
                      max_pareto_points=24, seed=seed)


@dataclass
class FlowResult:
    """Everything the model-building flow produced.

    Attributes
    ----------
    pareto_parameters:
        Natural-unit designable parameters of the front, ``(K, 8)``.
    pareto_objectives:
        Nominal (gain_db, pm_deg) of the front, ``(K, 2)``.
    mc_samples:
        Per-point Monte-Carlo populations, name -> ``(K, S)``.
    variation:
        Variation-model columns, ``"<objective>_delta_pct"`` -> ``(K,)``.
    model:
        The combined performance + variation model (the paper's
        deliverable).
    corner_check:
        Per-corner verification of the whole front
        (:class:`~repro.corners.CornerVerification`), or ``None`` when
        the stage was disabled (``config.corners == "none"``).
    surrogate:
        Trained process-space surrogate bundle of the reference design
        (:class:`repro.surrogate.SurrogateBundle`), or ``None`` when the
        stage was disabled (``config.surrogate_budget == 0``).
    surrogate_reference:
        Natural-unit design parameters the surrogate was trained at
        (the mid-front point), shape ``(8,)``; ``None`` when disabled.
    yield_search, filter_yield_search:
        Stage-7 in-loop yield-aware searches of the OTA and filter2
        designs (:class:`repro.optimize.YieldSearchResult`), or ``None``
        when the stage was disabled (``config.yield_objective == "none"``).
    streaming_verification:
        Stage-4c streaming adaptive yield verification of the mid-front
        design (:class:`repro.mc.streaming.StreamingResult`: online
        accumulators, yield counts, stop state), or ``None`` when the
        stage was disabled (``config.adaptive_ci == 0``).
    high_sigma:
        Stage-4d rare-event failure-probability estimate of the
        mid-front design (:class:`repro.yieldmodel.rare.RareEventResult`),
        or ``None`` when the stage was disabled
        (``config.high_sigma == False``).
    ledger:
        Simulation/time accounting for the Table-5 comparison.
    """

    config: FlowConfig
    pdk_name: str
    wbga: WBGAResult
    pareto_parameters: np.ndarray
    pareto_objectives: np.ndarray
    ro_ohms: np.ndarray
    ugf_hz: np.ndarray
    mc_samples: dict[str, np.ndarray]
    variation: dict[str, np.ndarray]
    model: CombinedYieldModel
    corner_check: CornerVerification | None = None
    surrogate: object | None = None
    surrogate_reference: np.ndarray | None = None
    yield_search: "YieldSearchResult | None" = None
    filter_yield_search: "YieldSearchResult | None" = None
    streaming_verification: "StreamingResult | None" = None
    high_sigma: RareEventResult | None = None
    ledger: SimulationLedger = field(default_factory=SimulationLedger)

    @property
    def pareto_count(self) -> int:
        """Number of Pareto points carried into the model."""
        return self.pareto_parameters.shape[0]

    @property
    def total_pareto_found(self) -> int:
        """Front size before any ``max_pareto_points`` subsampling (the
        paper's 1022)."""
        return self.wbga.pareto_count()

    def table2_rows(self, count: int = 10) -> list[dict[str, float]]:
        """Rows shaped like the paper's Table 2: design index, gain,
        dGain%, PM, dPM% -- sampled evenly along the front."""
        k = self.pareto_count
        indices = np.unique(np.linspace(0, k - 1, min(count, k)).astype(int))
        rows = []
        for i in indices:
            rows.append({
                "design": int(i),
                "gain_db": float(self.pareto_objectives[i, 0]),
                "dgain_pct": float(self.variation["gain_db_delta_pct"][i]),
                "pm_deg": float(self.pareto_objectives[i, 1]),
                "dpm_pct": float(self.variation["pm_deg_delta_pct"][i]),
            })
        return rows


def _subsample_front(order: np.ndarray, limit: int | None) -> np.ndarray:
    """Evenly subsample a sorted front to at most ``limit`` points."""
    if limit is None or order.size <= limit:
        return order
    picks = np.unique(np.linspace(0, order.size - 1, limit).astype(int))
    return order[picks]


def _collapse_front(objectives: np.ndarray, unit_params: np.ndarray,
                    rel_tol: float = 1e-3
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Collapse clusters of near-duplicate front points to one each.

    A converged GA revisits essentially the same design many times, so the
    raw front contains clusters of points whose objectives differ by
    floating-point dust while their *parameters* may differ arbitrarily
    (the performance->parameter map is many-to-one).  Interpolating
    through such clusters is meaningless -- and feeds the cubic-spline
    tables knots separated by ~1e-3 dB with independent Monte-Carlo noise,
    which makes them ring.  One representative (the first, i.e. the
    best-second-objective member) is kept per cluster; the cluster width
    is ``rel_tol`` of the key-objective span.

    Expects ``objectives`` sorted ascending by objective 0.
    """
    keys = objectives[:, 0]
    span = max(keys[-1] - keys[0], 1e-12)
    width = rel_tol * span
    keep = [0]
    for i in range(1, keys.size):
        if keys[i] - keys[keep[-1]] > width:
            keep.append(i)
    picks = np.asarray(keep)
    return objectives[picks], unit_params[picks]


def run_model_build_flow(config: FlowConfig | None = None, *,
                         pdk: ProcessKit = C35,
                         progress=None) -> FlowResult:
    """Execute the Figure-3 flow and return the combined model.

    Parameters
    ----------
    config:
        Flow settings (paper scale by default).
    progress:
        Optional ``callable(str)`` for stage announcements.

    Raises
    ------
    LintGateError
        If ``config.lint == "strict"`` and the stage-0 pre-flight lint
        found error-severity topology problems in the testbench.
    YieldModelError
        If the optimisation produced no usable Pareto front (e.g. a
        degenerate configuration with too few evaluations).
    """
    config = config or FlowConfig()
    with telemetry.session(config.telemetry or None):
        with telemetry.span("flow.build", generations=config.generations,
                            population=config.population,
                            mc_samples=config.mc_samples, seed=config.seed):
            result = _model_build_flow(config, pdk=pdk, progress=progress)
        telemetry.emit_ledger(result.ledger)
    return result


def _model_build_flow(config: FlowConfig, *, pdk: ProcessKit,
                      progress) -> FlowResult:
    """The flow body, run inside the telemetry session + root span."""
    ledger = SimulationLedger()
    say = telemetry.announcer(progress)

    # Stage 0: pre-flight topology lint of the testbench, before any
    # simulation budget is spent on it.
    if config.lint != "off":
        say(f"pre-flight lint ({config.lint}): OTA testbench")
        testbench = build_ota(OTAParameters(), pdk=pdk, cl=config.cl,
                              ibias=config.ibias)
        LintWorkload(testbench, config.lint,
                     stage="model-build pre-flight lint").run(
            progress=progress)

    # Stages 1+2: objective setup and WBGA optimisation.
    say(f"WBGA optimisation: {config.generations} generations x "
        f"{config.population} individuals")
    problem = OTAProblem(pdk=pdk, cl=config.cl, ibias=config.ibias)
    with ledger.timed("multi-objective optimisation"):
        wbga = run_wbga(problem, config.ga_config(),
                        rng=stream(config.seed, "wbga"))
    ledger.record("multi-objective optimisation", wbga.evaluations, 0.0)

    # Stage 3: Pareto front extraction.
    with ledger.timed("pareto extraction"):
        mask = wbga.pareto_mask()
        if np.count_nonzero(mask) < 2:
            raise YieldModelError(
                "optimisation yielded fewer than two Pareto points; "
                "increase generations/population")
        unit_params = wbga.all_parameters[mask]
        objectives = wbga.all_objectives[mask]
        order = np.argsort(objectives[:, 0])
        objectives, unit_params = _collapse_front(objectives[order],
                                                  unit_params[order])
        picks = _subsample_front(np.arange(objectives.shape[0]),
                                 config.max_pareto_points)
        objectives = objectives[picks]
        unit_params = unit_params[picks]
    say(f"Pareto front: {int(np.count_nonzero(mask))} points found, "
        f"{unit_params.shape[0]} carried into the model")

    natural_params = OTAParameters.from_normalized(unit_params).to_array()
    natural_params = np.atleast_2d(natural_params)
    k_points = natural_params.shape[0]

    # Nominal re-evaluation for the behavioural-stage columns (ro, ugf).
    with ledger.timed("nominal characterisation", k_points):
        nominal = evaluate_ota(OTAParameters.from_array(natural_params),
                               pdk=pdk, cl=config.cl, ibias=config.ibias)
    gain_lin = 10.0 ** (nominal["gain_db"] / 20.0)
    gm = 2.0 * np.pi * nominal["ugf_hz"] * config.cl
    ro_ohms = gain_lin / gm

    # Stage 4: Monte-Carlo variation analysis on every front point.
    # From here on every stage is a Workload: the same entry points with
    # the same arguments (artifacts stay bit-identical), but each unit
    # now carries a fingerprint the cache and service layer can key on.
    say(f"Monte Carlo: {config.mc_samples} samples x {k_points} points")
    mc_config = MCConfig(n_samples=config.mc_samples,
                         seed=config.seed,
                         chunk_lanes=config.mc_chunk_lanes,
                         backend=config.mc_backend,
                         workers=config.mc_workers)
    front_evaluator = ota_points_evaluator(natural_params, pdk=pdk,
                                           cl=config.cl, ibias=config.ibias)
    front_id = design_digest(points=natural_params, pdk=pdk.name,
                             cl=config.cl, ibias=config.ibias)

    with ledger.timed("monte-carlo variation analysis",
                      k_points * config.mc_samples):
        mc_samples = MCPointsWorkload(
            front_evaluator, k_points, pdk, mc_config,
            evaluator_id=front_id).run(
            progress=(lambda done, total:
                      say(f"  MC {done}/{total} points"))
            if progress else None).value

    # Stage 4b: deterministic PVT corner verification of the whole front.
    corner_check = None
    grid = config.corner_grid(pdk)
    if grid is not None:
        say(f"corner verification: {grid.describe()} x {k_points} points")
        with ledger.timed("corner verification", k_points * grid.size):
            corner_samples = CornerSweepWorkload(
                front_evaluator, k_points, pdk, grid,
                backend=config.mc_backend, workers=config.mc_workers,
                chunk_lanes=config.mc_chunk_lanes,
                evaluator_id=front_id).run().value
        corner_check = CornerVerification(grid=grid, samples=corner_samples,
                                          specs=config.corner_specs())
        corner_check.attach_mc_check(mc_samples, k_sigma=config.k_sigma)
        for check in corner_check.mc_check.values():
            say(f"  {check.describe()}")

    # Stage 4c (optional): streaming adaptive yield verification of the
    # mid-front design against the corner specs -- stops as soon as the
    # Wilson interval is narrower than the requested width instead of
    # burning a fixed sample count.
    streaming_verification = None
    if config.adaptive_ci > 0.0:
        import hashlib

        reference = natural_params[k_points // 2]
        say(f"streaming yield verification: CI width <= "
            f"{config.adaptive_ci:g} (cap {config.adaptive_max_samples} "
            f"samples) at the mid-front design")
        # The stage key binds the verified design into the checkpoint
        # fingerprint: a stale checkpoint from a build whose front (and
        # therefore mid-front reference) differs must be rejected, not
        # silently resumed as another design's yield.
        digest = hashlib.sha256(reference.tobytes()).hexdigest()[:16]
        streaming_config = MCConfig(
            n_samples=config.adaptive_max_samples, seed=config.seed,
            chunk_lanes=config.adaptive_chunk_lanes,
            backend=config.mc_backend, workers=config.mc_workers)
        with ledger.timed("streaming yield verification"):
            estimate, streaming_verification = StreamingYieldWorkload(
                ota_reference_evaluator(reference, pdk=pdk, cl=config.cl,
                                        ibias=config.ibias),
                pdk, config.corner_specs(), streaming_config,
                adaptive=AdaptiveStop(
                    metric="yield", ci_width=config.adaptive_ci,
                    check_every=config.adaptive_check_every),
                stage=f"mc-verify-{digest}",
                evaluator_id=design_digest(
                    reference=reference, pdk=pdk.name,
                    cl=config.cl, ibias=config.ibias)).run(
                checkpoint=config.streaming_checkpoint or None).value
        # Only the work this invocation simulated counts: a resumed
        # run's checkpointed samples were paid for by the earlier run.
        ledger.record("streaming yield verification",
                      streaming_verification.samples_done
                      - streaming_verification.samples_resumed, 0.0)
        for line in estimate.describe().splitlines():
            say(f"  {line}")
        if streaming_verification.stopped_early:
            say(f"  adaptive stop after "
                f"{streaming_verification.samples_done}/"
                f"{streaming_verification.samples_cap} samples")

    # Stage 4d (optional): high-sigma rare-event verification of the
    # mid-front design -- multilevel splitting + adaptive importance
    # sampling resolves failure rates far below what stages 4/4c can
    # see at their sample budgets.
    high_sigma = None
    if config.high_sigma:
        reference = natural_params[k_points // 2]
        say(f"high-sigma verification: rare-event estimate "
            f"({config.high_sigma_per_level}/level, "
            f"{config.high_sigma_final} final) at the mid-front design")
        rare_config = RareEventConfig(
            n_per_level=config.high_sigma_per_level,
            n_final=config.high_sigma_final, seed=config.seed,
            chunk_lanes=config.mc_chunk_lanes,
            backend=config.mc_backend, workers=config.mc_workers)
        with ledger.timed("high-sigma verification"):
            high_sigma = RareEventWorkload(
                ota_reference_evaluator(reference, pdk=pdk, cl=config.cl,
                                        ibias=config.ibias),
                pdk, config.corner_specs(), rare_config,
                evaluator_id=design_digest(
                    reference=reference, pdk=pdk.name,
                    cl=config.cl, ibias=config.ibias)).run().value
        ledger.record("high-sigma verification",
                      high_sigma.total_simulations, 0.0)
        for line in high_sigma.describe().splitlines():
            say(f"  {line}")

    # Stage 5: table-model generation -> the combined model.
    with ledger.timed("table model generation"):
        # Smooth the per-point variation estimates along the front: the
        # MC estimator noise (~1/sqrt(2S) relative) is independent per
        # point while the physical variation is smooth (see
        # smooth_along_front).  Window ~ 5% of the front length.
        window = max(3, k_points // 20)
        variation = variation_columns(mc_samples, k_sigma=config.k_sigma,
                                      smooth_window=window)
        columns: dict[str, np.ndarray] = dict(variation)
        for j, name in enumerate(OTA_DESIGN_SPACE.names):
            columns[name] = natural_params[:, j]
        columns["ro_ohms"] = ro_ohms
        columns["ugf_hz"] = nominal["ugf_hz"]
        table = ParetoTableModel(objectives, ("gain_db", "pm_deg"),
                                 columns=columns)
        model = CombinedYieldModel(table, OTA_DESIGN_SPACE.names)
    say("combined performance + variation model ready")

    # Stage 6 (optional): train a process-space surrogate of the
    # mid-front reference design and carry it into the artefacts.
    surrogate = None
    surrogate_reference = None
    if config.surrogate_budget > 0:
        reference = natural_params[k_points // 2]
        say(f"surrogate training: {config.surrogate_budget} samples "
            f"({config.surrogate_kind}) at the mid-front design")
        with ledger.timed("surrogate training", config.surrogate_budget):
            surrogate = SurrogateTrainWorkload(
                ota_reference_evaluator(reference, pdk=pdk, cl=config.cl,
                                        ibias=config.ibias),
                pdk, n_train=config.surrogate_budget, seed=config.seed,
                surrogate_kind=config.surrogate_kind,
                backend=config.mc_backend, workers=config.mc_workers,
                chunk_lanes=config.mc_chunk_lanes,
                evaluator_id=design_digest(
                    reference=reference, pdk=pdk.name,
                    cl=config.cl, ibias=config.ibias)).run().value
        surrogate_reference = reference
        for line in surrogate.describe().splitlines():
            say(f"  {line}")

    # Stage 7 (optional): in-loop yield-aware Pareto search on both
    # seed designs, sharing the flow's ledger for per-fidelity costs.
    yield_search = None
    filter_yield_search = None
    if config.yield_objective != "none":
        from ..optimize import filter_evaluator_factory, ota_evaluator_factory
        search_config = config.yield_search_config()
        say(f"in-loop yield search (OTA): {config.yield_generations} "
            f"generations x {config.yield_population} individuals, "
            f"mode {config.yield_objective}")
        yield_search = YieldSearchWorkload(
            OTAProblem(pdk=pdk, cl=config.cl, ibias=config.ibias),
            ota_evaluator_factory(pdk=pdk, cl=config.cl, ibias=config.ibias),
            config.corner_specs(), pdk, search_config,
            ledger=ledger).run().value
        for line in yield_search.describe().splitlines():
            say(f"  {line}")

        reference_ota = OTAParameters.from_array(
            natural_params[k_points // 2])
        filter_specs = SpecSet([
            Spec("ripple_db", "le", DEFAULT_FILTER_SPEC.max_ripple_db, "dB"),
            Spec("atten_db", "ge", DEFAULT_FILTER_SPEC.min_atten_db, "dB"),
        ])
        say("in-loop yield search (filter2) at the mid-front OTA design")
        filter_yield_search = YieldSearchWorkload(
            TransistorFilterProblem(reference_ota, pdk=pdk),
            filter_evaluator_factory(reference_ota, pdk=pdk),
            filter_specs, pdk, search_config, ledger=ledger).run().value
        for line in filter_yield_search.describe().splitlines():
            say(f"  {line}")

    return FlowResult(
        config=config,
        pdk_name=pdk.name,
        wbga=wbga,
        pareto_parameters=natural_params,
        pareto_objectives=objectives,
        ro_ohms=ro_ohms,
        ugf_hz=nominal["ugf_hz"],
        mc_samples=mc_samples,
        variation=variation,
        model=model,
        corner_check=corner_check,
        surrogate=surrogate,
        surrogate_reference=surrogate_reference,
        yield_search=yield_search,
        filter_yield_search=filter_yield_search,
        streaming_verification=streaming_verification,
        high_sigma=high_sigma,
        ledger=ledger,
    )
