"""Netlist topology lint: the flow's pre-flight validation stage.

A malformed netlist handed straight to the MNA solver dies as an opaque
singular-matrix crash after the simulation budget is already spent.
This package analyses the circuit *graph* first -- the same
structure-before-numbers gating that Abel et al.'s hierarchical
performance-equation library and iVAMS' validated Verilog-AMS front end
apply before their model pipelines -- and produces a structured,
human-readable report instead:

* :class:`CircuitGraph` converts a :class:`~repro.circuit.netlist.Circuit`
  into node/element adjacency views (hyperedges, physical branches,
  DC-conducting subgraph);
* :mod:`~repro.lint.rules` runs an ordered, extensible rule registry
  over the graph (floating nodes, islands, missing ground, capacitor /
  current-source cuts with no DC path, voltage-source loops, shorts,
  duplicate names, dangling subcircuit ports);
* :class:`LintReport` aggregates the :class:`Finding` s with text and
  JSON renderers and the CLI exit-code convention;
* :func:`preflight_lint` gates the flow entry points
  (``FlowConfig.lint = strict | warn | off``), raising
  :class:`~repro.errors.LintGateError` with the report attached.

The CLI verb is ``repro lint <netlist.cir>``; the rule catalogue lives
in ``docs/lint.md``.
"""

from .check import (LINT_MODES, lint_circuit, lint_file, lint_netlist,
                    preflight_lint)
from .graph import BRANCH_KINDS, DC_KINDS, Branch, CircuitGraph
from .report import SEVERITIES, Finding, LintReport
from .rules import LINT_RULES, LintContext, LintRule, iter_rules, rule

__all__ = [
    "SEVERITIES", "Finding", "LintReport",
    "BRANCH_KINDS", "DC_KINDS", "Branch", "CircuitGraph",
    "LINT_RULES", "LintContext", "LintRule", "iter_rules", "rule",
    "LINT_MODES", "lint_circuit", "lint_netlist", "lint_file",
    "preflight_lint",
]
