"""Lint entry points: circuits, netlist text, files, and flow gating.

Three front doors, one report type:

* :func:`lint_circuit` -- lint an in-memory :class:`Circuit` (used by
  the flow pre-flight stage on the built testbenches);
* :func:`lint_netlist` / :func:`lint_file` -- parse SPICE text and lint
  the result; parse failures become ``parse-error`` findings instead of
  exceptions, so ingestion always yields a readable report;
* :func:`preflight_lint` -- the flow gate: run the rules and, in
  ``strict`` mode, raise :class:`~repro.errors.LintGateError` carrying
  the report when any error-severity finding exists.  This is what
  turns a would-be ``numpy.linalg`` singular-matrix traceback into an
  actionable report *before* any simulation budget is spent.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..circuit.netlist import Circuit
from ..errors import LintError, LintGateError, ParseError
from .graph import CircuitGraph
from .report import Finding, LintReport
from .rules import LintContext, run_rules

__all__ = ["LINT_MODES", "lint_circuit", "lint_netlist", "lint_file",
           "preflight_lint"]

#: Flow gating modes: ``strict`` fails on errors, ``warn`` only
#: reports, ``off`` skips the stage.
LINT_MODES: tuple[str, ...] = ("strict", "warn", "off")


def lint_circuit(circuit: Circuit, *, parser=None,
                 only: Iterable[str] | None = None,
                 source: str = "") -> LintReport:
    """Run the (selected) lint rules over ``circuit``.

    Parameters
    ----------
    parser:
        The :class:`~repro.circuit.parser.NetlistParser` that produced
        the circuit, enabling the netlist-level rules (unused
        subcircuit ports/definitions).
    only:
        Optional restriction to a subset of rule ids.
    """
    report = LintReport(source=source or circuit.title or "circuit")
    ctx = LintContext(circuit=circuit, graph=CircuitGraph(circuit),
                      parser=parser)
    report.extend(run_rules(ctx, only))
    return report


def lint_netlist(text: str, *, title: str = "", models=None,
                 only: Iterable[str] | None = None,
                 source: str = "") -> LintReport:
    """Parse SPICE netlist ``text`` and lint the resulting circuit.

    A netlist that fails to parse produces a report with a single
    ``parse-error`` finding (severity error, carrying the source line)
    rather than raising, so ingestion pipelines always get a report.
    """
    # Local import: repro.circuit.parser must stay importable without
    # the lint package (layering: circuit < lint).
    from ..circuit.parser import NetlistParser
    parser = NetlistParser(models=models)
    try:
        circuit = parser.parse(text, title=title)
    except ParseError as error:
        report = LintReport(source=source or title or "netlist")
        report.add(Finding(
            "parse-error", "error", str(error), line_no=error.line_no,
            hint="the netlist must parse before topology can be checked"))
        return report
    return lint_circuit(circuit, parser=parser, only=only,
                        source=source or title or circuit.title)


def lint_file(path, *, models=None,
              only: Iterable[str] | None = None) -> LintReport:
    """Lint a netlist file; see :func:`lint_netlist`."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return lint_netlist(text, title=str(path), models=models, only=only,
                        source=str(path))


def preflight_lint(circuit: Circuit, mode: str = "strict", *,
                   parser=None, stage: str = "pre-flight lint",
                   progress=None) -> LintReport | None:
    """Gate a flow entry point on the lint rules.

    Parameters
    ----------
    mode:
        ``"strict"`` raises :class:`~repro.errors.LintGateError` when
        any error-severity finding exists; ``"warn"`` only reports;
        ``"off"`` skips linting entirely and returns ``None``.
    progress:
        Optional ``callable(str)`` receiving one line per finding plus
        the summary (the flow's ``say``).

    Raises
    ------
    LintError
        On an unknown ``mode``.
    LintGateError
        In strict mode, when the circuit has error-severity findings;
        the exception carries the full report as ``.report``.
    """
    if mode not in LINT_MODES:
        raise LintError(f"unknown lint mode {mode!r} "
                        f"(expected one of {LINT_MODES})")
    if mode == "off":
        return None
    report = lint_circuit(circuit, parser=parser, source=stage)
    if progress is not None:
        for finding in report.sorted_findings():
            progress(f"  {finding.render().splitlines()[0]}")
        progress(f"  {report.summary()}")
    if mode == "strict" and report.has_errors:
        raise LintGateError(report, stage=stage)
    return report
