"""Node/element adjacency graph of a circuit, for topology lint.

Every lint rule reasons over one of three views of the circuit:

* **hyperedge adjacency** -- two nodes are neighbours when any element
  references both (a MOSFET connects its gate to its channel nodes in
  this view).  Used for reachability-from-ground (island detection).
* **branch list** -- the physical two-terminal branches with a
  conduction *kind* (``resistive``, ``capacitive``, ``inductive``,
  ``vsource``, ``isource``, ``channel``).  Controlled-source sense
  terminals and MOSFET gate/bulk pins are *reference* attachments, not
  branches: they read a voltage but conduct nothing.
* **DC adjacency** -- branch adjacency restricted to kinds that conduct
  at DC (everything except capacitors and current sources).  Used for
  the singular-MNA rules (no DC path to ground, current-source
  cutsets).

Ground aliases (``0``/``gnd``, case-insensitive) are canonicalised to a
single node ``"0"`` so a net tied to ``GND`` and one tied to ``0`` are
recognised as connected.

Elements outside the built-in table (custom :class:`Element`
subclasses, e.g. the behavioural OTA macromodel) are classified
conservatively: all their nodes are treated as one DC-conducting
branch group, so unknown devices can never cause false positives.  An
element class may override this by providing a ``lint_branches()``
method returning ``[(node_a, node_b, kind), ...]``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from ..circuit import (CCCS, CCVS, VCCS, VCVS, Capacitor, CurrentSource,
                       Diode, Inductor, Mosfet, Resistor, VoltageSource)
from ..circuit.netlist import Circuit, Element, is_ground

__all__ = ["BRANCH_KINDS", "DC_KINDS", "Branch", "CircuitGraph"]

#: All recognised branch conduction kinds.
BRANCH_KINDS: tuple[str, ...] = ("resistive", "capacitive", "inductive",
                                 "vsource", "isource", "channel")

#: Kinds that conduct at DC (a capacitor is open, a current source
#: enforces a current but pins no voltage).
DC_KINDS: frozenset[str] = frozenset(
    {"resistive", "inductive", "vsource", "channel"})


@dataclass(frozen=True)
class Branch:
    """One physical two-terminal branch of an element."""

    element: str
    a: str
    b: str
    kind: str

    @property
    def shorted(self) -> bool:
        """Both terminals on the same node."""
        return self.a == self.b

    def conducts_dc(self) -> bool:
        return self.kind in DC_KINDS


def _canonical(node: str) -> str:
    """Collapse ground aliases onto the single name ``"0"``."""
    return "0" if is_ground(node) else node


def _classify(element: Element) -> tuple[list[tuple[str, str, str]],
                                         list[str]]:
    """Split an element into branches ``(a, b, kind)`` and reference-only
    terminal nodes."""
    override = getattr(element, "lint_branches", None)
    if override is not None:
        return list(override()), []
    n = element.nodes
    if isinstance(element, Resistor):
        return [(n[0], n[1], "resistive")], []
    if isinstance(element, Capacitor):
        return [(n[0], n[1], "capacitive")], []
    if isinstance(element, Inductor):
        return [(n[0], n[1], "inductive")], []
    if isinstance(element, VoltageSource):
        return [(n[0], n[1], "vsource")], []
    if isinstance(element, CurrentSource):
        return [(n[0], n[1], "isource")], []
    if isinstance(element, VCVS):
        return [(n[0], n[1], "vsource")], [n[2], n[3]]
    if isinstance(element, VCCS):
        return [(n[0], n[1], "isource")], [n[2], n[3]]
    if isinstance(element, CCVS):
        return [(n[0], n[1], "vsource")], []
    if isinstance(element, CCCS):
        return [(n[0], n[1], "isource")], []
    if isinstance(element, Diode):
        return [(n[0], n[1], "resistive")], []
    if isinstance(element, Mosfet):
        # Channel conducts drain-source; gate and bulk only sense.
        return [(n[0], n[2], "channel")], [n[1], n[3]]
    # Unknown element: conservatively treat every distinct node pair as
    # a DC-conducting branch so custom devices never false-positive
    # (tied-terminal pairs are skipped -- we cannot judge whether a
    # short is meaningful for a device we do not know).
    branches = [(n[i], n[j], "resistive")
                for i in range(len(n)) for j in range(i + 1, len(n))
                if _canonical(n[i]) != _canonical(n[j])]
    return branches, []


class CircuitGraph:
    """Adjacency views of a :class:`Circuit` for the lint rules.

    Attributes
    ----------
    nodes:
        All canonical node names, including ``"0"`` when grounded.
    terminal_count:
        Node -> number of element terminals referencing it.
    touching:
        Node -> names of the elements referencing it.
    branches:
        All physical :class:`Branch` es, in element order.
    adjacency, dc_adjacency:
        Node -> neighbour set over hyperedges / DC branches.
    has_ground:
        Whether any element references a ground alias.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.nodes: set[str] = set()
        self.terminal_count: Counter[str] = Counter()
        self.touching: dict[str, list[str]] = defaultdict(list)
        self.branches: list[Branch] = []
        self.adjacency: dict[str, set[str]] = defaultdict(set)
        self.dc_adjacency: dict[str, set[str]] = defaultdict(set)
        self.has_ground = False

        for element in circuit:
            canonical = [_canonical(n) for n in element.nodes]
            self.has_ground = self.has_ground or "0" in canonical
            self.nodes.update(canonical)
            for node in canonical:
                self.terminal_count[node] += 1
                if element.name not in self.touching[node]:
                    self.touching[node].append(element.name)
            # Hyperedge: every node of the element is mutually adjacent.
            distinct = sorted(set(canonical))
            for i, a in enumerate(distinct):
                for b in distinct[i + 1:]:
                    self.adjacency[a].add(b)
                    self.adjacency[b].add(a)
            branch_pairs, _ = _classify(element)
            for a, b, kind in branch_pairs:
                branch = Branch(element.name, _canonical(a), _canonical(b),
                                kind)
                self.branches.append(branch)
                if branch.conducts_dc() and not branch.shorted:
                    self.dc_adjacency[branch.a].add(branch.b)
                    self.dc_adjacency[branch.b].add(branch.a)

    # -- traversals ---------------------------------------------------------
    def _reachable(self, start: str,
                   adjacency: dict[str, set[str]]) -> set[str]:
        seen = {start}
        stack = [start]
        while stack:
            for neighbour in adjacency[stack.pop()]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen

    def reachable_from_ground(self) -> set[str]:
        """Nodes connected to ground through *any* element."""
        if not self.has_ground:
            return set()
        return self._reachable("0", self.adjacency)

    def dc_reachable_from_ground(self) -> set[str]:
        """Nodes with a DC-conducting path to ground."""
        if not self.has_ground:
            return set()
        return self._reachable("0", self.dc_adjacency)

    def components(self, nodes: set[str],
                   adjacency: dict[str, set[str]] | None = None
                   ) -> list[set[str]]:
        """Partition ``nodes`` into connected components (restricted to
        ``nodes``) under ``adjacency`` (default: hyperedge adjacency)."""
        adjacency = adjacency if adjacency is not None else self.adjacency
        remaining = set(nodes)
        out: list[set[str]] = []
        while remaining:
            start = remaining.pop()
            seen = {start}
            stack = [start]
            while stack:
                for neighbour in adjacency[stack.pop()]:
                    if neighbour in remaining:
                        remaining.discard(neighbour)
                        seen.add(neighbour)
                        stack.append(neighbour)
            out.append(seen)
        return out

    def boundary_branches(self, component: set[str]) -> list[Branch]:
        """Branches with exactly one endpoint inside ``component``."""
        return [b for b in self.branches
                if (b.a in component) != (b.b in component)]

    def line_of(self, *element_names: str) -> int | None:
        """Source line of the first named element that has one."""
        for name in element_names:
            if name in self.circuit:
                line_no = getattr(self.circuit.element(name), "line_no", None)
                if line_no is not None:
                    return line_no
        return None
