"""Structured lint findings and the report they aggregate into.

A :class:`Finding` is one diagnostic produced by a lint rule: the rule
id, a severity, the node/element locus, a human-readable message and a
fix hint.  A :class:`LintReport` collects the findings of one lint run
and renders them as text (for the CLI and flow logs) or JSON (for the
future service layer), and maps onto the process exit-code convention
used by ``repro lint``:

* no findings at all, or info only -- clean, exit 0;
* warnings -- exit 0 normally, nonzero under ``--strict``;
* errors -- always nonzero (the netlist would produce a singular MNA
  system or a meaningless simulation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["SEVERITIES", "Finding", "LintReport"]

#: Recognised severities, most severe first.
SEVERITIES: tuple[str, ...] = ("error", "warning", "info")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint rule.

    Attributes
    ----------
    rule:
        Rule identifier (e.g. ``"no-dc-path"``); see ``docs/lint.md``
        for the catalogue.
    severity:
        ``"error"`` (guaranteed-broken simulation), ``"warning"``
        (suspicious but simulable) or ``"info"`` (cosmetic).
    message:
        Human-readable, single-sentence description of the problem.
    nodes, elements:
        The locus: the node and element names the finding is about.
    line_no:
        1-based source line of the first implicated element, when the
        circuit came from a parsed netlist.
    hint:
        A short "how to fix it" suggestion.
    """

    rule: str
    severity: str
    message: str
    nodes: tuple[str, ...] = ()
    elements: tuple[str, ...] = ()
    line_no: int | None = None
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r} "
                             f"(expected one of {SEVERITIES})")

    def render(self) -> str:
        """One-line text rendering of the finding."""
        locus = ""
        if self.line_no is not None:
            locus = f" (line {self.line_no})"
        parts = [f"{self.severity}[{self.rule}]{locus}: {self.message}"]
        if self.hint:
            parts.append(f"    hint: {self.hint}")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "nodes": list(self.nodes),
            "elements": list(self.elements),
            "line": self.line_no,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """All findings of one lint run over one circuit/netlist."""

    source: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        """Append a finding."""
        self.findings.append(finding)

    def extend(self, findings) -> None:
        """Append several findings."""
        self.findings.extend(findings)

    def sorted_findings(self) -> list[Finding]:
        """Findings ordered most-severe first, then by source line."""
        return sorted(
            self.findings,
            key=lambda f: (_SEVERITY_RANK[f.severity],
                           f.line_no if f.line_no is not None else 1 << 30,
                           f.rule))

    # -- severity summary ---------------------------------------------------
    def count(self, severity: str) -> int:
        """Number of findings at ``severity``."""
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def has_errors(self) -> bool:
        return any(f.severity == "error" for f in self.findings)

    @property
    def has_warnings(self) -> bool:
        return any(f.severity == "warning" for f in self.findings)

    def ok(self, *, strict: bool = False) -> bool:
        """``True`` when the circuit passed: no errors, and no warnings
        either when ``strict``."""
        if self.has_errors:
            return False
        return not (strict and self.has_warnings)

    def exit_code(self, *, strict: bool = False) -> int:
        """Process exit code: 0 clean (warnings tolerated unless
        ``strict``), 1 otherwise."""
        return 0 if self.ok(strict=strict) else 1

    def summary(self) -> str:
        """One-line pass/fail summary."""
        label = self.source or "circuit"
        if not self.findings:
            return f"{label}: clean (no findings)"
        counts = ", ".join(
            f"{self.count(s)} {s}{'s' if self.count(s) != 1 else ''}"
            for s in SEVERITIES if self.count(s))
        return f"{label}: {counts}"

    # -- renderers ----------------------------------------------------------
    def render_text(self) -> str:
        """Multi-line human-readable report (findings + summary)."""
        lines = [f.render() for f in self.sorted_findings()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole report."""
        return {
            "source": self.source,
            "ok": self.ok(),
            "counts": {s: self.count(s) for s in SEVERITIES},
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def render_json(self, *, indent: int = 2) -> str:
        """JSON rendering of the report."""
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:
        return self.render_text()
