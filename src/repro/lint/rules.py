"""The lint rule registry and the built-in topology rules.

A rule is a generator function over a :class:`LintContext` yielding
:class:`~repro.lint.report.Finding` s, registered with the
:func:`rule` decorator.  The registry is ordered and extensible: new
checks (service-layer quota rules, PDK-specific device checks...)
register themselves the same way the built-ins do, and callers can
select subsets by id.

Built-in catalogue (see ``docs/lint.md`` for examples):

========================  ========  ==========================================
id                        severity  detects
========================  ========  ==========================================
``missing-ground``        error     no ground reference anywhere
``duplicate-element``     error     case-insensitive element-name collision
``floating-node``         warning   node referenced by fewer than two terminals
``disconnected-island``   error     component unreachable from ground
``no-dc-path``            error     node without a DC path to ground
``isource-cutset``        error     supernode fed only by current sources
``vsource-loop``          error     loop of voltage sources / inductors
``shorted-element``       error/    element with both branch terminals on
                          warning   one node
``subckt-port-unused``    warning   declared subcircuit port never connected
``subckt-unused``         info      subcircuit defined but never instantiated
========================  ========  ==========================================
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from ..circuit.netlist import Circuit
from ..errors import LintError
from .graph import CircuitGraph
from .report import SEVERITIES, Finding

__all__ = ["LintContext", "LintRule", "LINT_RULES", "rule", "iter_rules",
           "run_rules"]


@dataclass
class LintContext:
    """Everything a lint rule may inspect.

    ``parser`` is the :class:`~repro.circuit.parser.NetlistParser` that
    produced the circuit, when linting netlist text; rules that need
    parser state (subcircuit definitions) skip silently when it is
    absent (circuit built programmatically).
    """

    circuit: Circuit
    graph: CircuitGraph
    parser: object | None = None

    def line_of(self, *element_names: str) -> int | None:
        """Source line of the first named element carrying one."""
        return self.graph.line_of(*element_names)


@dataclass(frozen=True)
class LintRule:
    """A registered rule: identifier, default severity, check function."""

    rule_id: str
    severity: str
    summary: str
    check: Callable[[LintContext], Iterator[Finding]]


#: Ordered registry of every known rule, id -> :class:`LintRule`.
LINT_RULES: dict[str, LintRule] = {}


def rule(rule_id: str, severity: str, summary: str):
    """Register a lint rule; decorator over a generator of findings."""
    if severity not in SEVERITIES:
        raise LintError(f"rule {rule_id!r}: unknown severity {severity!r}")

    def decorator(check):
        if rule_id in LINT_RULES:
            raise LintError(f"duplicate lint rule id {rule_id!r}")
        LINT_RULES[rule_id] = LintRule(rule_id, severity, summary, check)
        return check
    return decorator


def iter_rules(only: Iterable[str] | None = None) -> list[LintRule]:
    """The registered rules, optionally restricted to ids in ``only``."""
    if only is None:
        return list(LINT_RULES.values())
    unknown = set(only) - set(LINT_RULES)
    if unknown:
        raise LintError(f"unknown lint rule id(s): {sorted(unknown)}")
    wanted = set(only)
    return [r for r in LINT_RULES.values() if r.rule_id in wanted]


def run_rules(ctx: LintContext,
              only: Iterable[str] | None = None) -> list[Finding]:
    """Run the (selected) rules over ``ctx`` and collect their findings."""
    findings: list[Finding] = []
    for lint_rule in iter_rules(only):
        findings.extend(lint_rule.check(ctx))
    return findings


def _name_list(names, limit: int = 6) -> str:
    """Human-readable, truncated name enumeration."""
    names = sorted(names)
    if len(names) > limit:
        shown = ", ".join(names[:limit])
        return f"{shown}, ... ({len(names)} total)"
    return ", ".join(names)


# ---------------------------------------------------------------------------
# structural rules
# ---------------------------------------------------------------------------

@rule("missing-ground", "error",
      "the circuit references no ground node at all")
def _check_missing_ground(ctx: LintContext) -> Iterator[Finding]:
    if ctx.graph.nodes and not ctx.graph.has_ground:
        yield Finding(
            "missing-ground", "error",
            "circuit has no ground reference: no element connects to a "
            "node named '0' or 'gnd'",
            hint="tie the reference net to node 0 (or gnd); MNA needs a "
                 "datum to measure node voltages against")


@rule("duplicate-element", "error",
      "two element names collide case-insensitively")
def _check_duplicate_element(ctx: LintContext) -> Iterator[Finding]:
    by_folded: dict[str, list[str]] = defaultdict(list)
    for element in ctx.circuit:
        by_folded[element.name.lower()].append(element.name)
    for folded, names in by_folded.items():
        if len(names) > 1:
            yield Finding(
                "duplicate-element", "error",
                f"element names {_name_list(names)} collide "
                f"case-insensitively (SPICE treats both as {folded!r})",
                elements=tuple(sorted(names)),
                line_no=ctx.line_of(*sorted(names)),
                hint="rename one of them; SPICE netlists are "
                     "case-insensitive, so these are one element to most "
                     "simulators")


@rule("floating-node", "warning",
      "a node is referenced by fewer than two element terminals")
def _check_floating_node(ctx: LintContext) -> Iterator[Finding]:
    for node in sorted(ctx.graph.nodes):
        if node == "0":
            continue
        if ctx.graph.terminal_count[node] < 2:
            elements = tuple(ctx.graph.touching[node])
            yield Finding(
                "floating-node", "warning",
                f"node {node!r} is referenced by only "
                f"{ctx.graph.terminal_count[node]} terminal "
                f"({_name_list(elements)}): it dangles",
                nodes=(node,), elements=elements,
                line_no=ctx.line_of(*elements),
                hint="connect the node to a second element or remove the "
                     "dangling terminal; a lone capacitor/current-source "
                     "terminal also has no DC path")


@rule("disconnected-island", "error",
      "a connected component is unreachable from ground")
def _check_disconnected_island(ctx: LintContext) -> Iterator[Finding]:
    graph = ctx.graph
    if not graph.has_ground:
        return  # missing-ground already fired; every node would repeat it.
    unreachable = graph.nodes - graph.reachable_from_ground() - {"0"}
    for component in graph.components(unreachable):
        elements: list[str] = []
        for node in component:
            for name in graph.touching[node]:
                if name not in elements:
                    elements.append(name)
        yield Finding(
            "disconnected-island", "error",
            f"nodes {_name_list(component)} form an island with no "
            f"connection to the rest of the circuit "
            f"(elements {_name_list(elements)})",
            nodes=tuple(sorted(component)), elements=tuple(elements),
            line_no=ctx.line_of(*elements),
            hint="every node must reach ground through some element; "
                 "connect the island or delete it")


@rule("no-dc-path", "error",
      "a node has no DC-conducting path to ground (capacitor cut)")
def _check_no_dc_path(ctx: LintContext) -> Iterator[Finding]:
    yield from _dc_path_findings(ctx, want_cutset=False)


@rule("isource-cutset", "error",
      "a supernode connects to the circuit only through current sources")
def _check_isource_cutset(ctx: LintContext) -> Iterator[Finding]:
    yield from _dc_path_findings(ctx, want_cutset=True)


def _dc_path_findings(ctx: LintContext, *,
                      want_cutset: bool) -> Iterator[Finding]:
    """Shared detector behind ``no-dc-path`` and ``isource-cutset``.

    Both rules flag supernodes without a DC path to ground; they differ
    in the boundary that isolates the supernode.  A boundary made of
    current sources only is the classic KCL-overdetermined cutset
    (``isource-cutset``); any other non-conducting boundary (capacitors,
    MOSFET gates) is ``no-dc-path``.
    """
    graph = ctx.graph
    if not graph.has_ground:
        return
    connected = graph.reachable_from_ground()
    dc_connected = graph.dc_reachable_from_ground()
    # Islands are already reported; only nodes attached to the circuit
    # but isolated at DC are interesting here.
    isolated = (connected - dc_connected) - {"0"}
    for component in graph.components(isolated, graph.dc_adjacency):
        boundary = graph.boundary_branches(component)
        kinds = {branch.kind for branch in boundary}
        is_cutset = bool(boundary) and kinds == {"isource"}
        if is_cutset != want_cutset:
            continue
        elements = tuple(dict.fromkeys(b.element for b in boundary))
        if want_cutset:
            message = (f"nodes {_name_list(component)} connect to the "
                       f"rest of the circuit only through current "
                       f"sources ({_name_list(elements)}): KCL is "
                       f"overdetermined and the MNA matrix is singular")
            hint = ("give the supernode a DC return path (a resistor or "
                    "a device channel); a current source pins no node "
                    "voltage")
        else:
            via = _name_list(elements) if elements else \
                "sense/gate terminals only"
            message = (f"nodes {_name_list(component)} have no DC path "
                       f"to ground (coupled through {via}): the DC "
                       f"operating point is undefined")
            hint = ("add a DC bias path -- capacitors are open and "
                    "controlled-source sense terminals conduct nothing "
                    "at DC")
        yield Finding(
            "isource-cutset" if want_cutset else "no-dc-path", "error",
            message, nodes=tuple(sorted(component)), elements=elements,
            line_no=ctx.line_of(*elements),
            hint=hint)


@rule("vsource-loop", "error",
      "voltage sources and/or inductors form a loop (KVL overdetermined)")
def _check_vsource_loop(ctx: LintContext) -> Iterator[Finding]:
    parent: dict[str, str] = {}
    members: dict[str, list[str]] = {}

    def find(node: str) -> str:
        parent.setdefault(node, node)
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    for branch in ctx.graph.branches:
        if branch.kind not in ("vsource", "inductive") or branch.shorted:
            continue  # self-loops are shorted-element findings
        root_a, root_b = find(branch.a), find(branch.b)
        if root_a == root_b:
            loop = members.get(root_a, []) + [branch.element]
            yield Finding(
                "vsource-loop", "error",
                f"{branch.element!r} closes a loop of voltage-source/"
                f"inductor branches ({_name_list(loop)}): KVL around the "
                f"loop is overdetermined and the DC MNA matrix is "
                f"singular",
                nodes=(branch.a, branch.b), elements=tuple(loop),
                line_no=ctx.line_of(branch.element),
                hint="break the loop with a resistance, or remove the "
                     "redundant source (inductors are DC shorts, so "
                     "they count)")
        else:
            parent[root_b] = root_a
            merged = members.pop(root_a, []) + members.pop(root_b, [])
            members[root_a] = merged + [branch.element]


#: Branch kinds whose shorted variant zeroes an auxiliary MNA row
#: (guaranteed singular) rather than merely stamping nothing.
_SHORT_IS_FATAL = frozenset({"vsource", "inductive"})


@rule("shorted-element", "warning",
      "both branch terminals of an element land on the same node")
def _check_shorted_element(ctx: LintContext) -> Iterator[Finding]:
    for branch in ctx.graph.branches:
        if not branch.shorted:
            continue
        fatal = branch.kind in _SHORT_IS_FATAL
        what = {"vsource": "voltage source", "isource": "current source",
                "inductive": "inductor", "capacitive": "capacitor",
                "channel": "MOSFET channel (drain = source)",
                "resistive": "element"}.get(branch.kind, "element")
        consequence = ("its branch equation degenerates to 0 = value and "
                       "the MNA matrix is singular" if fatal else
                       "it stamps nothing and is dead weight")
        yield Finding(
            "shorted-element", "error" if fatal else "warning",
            f"{what} {branch.element!r} has both terminals on node "
            f"{branch.a!r}: {consequence}",
            nodes=(branch.a,), elements=(branch.element,),
            line_no=ctx.line_of(branch.element),
            hint="check the node names on the element card; a "
                 "deliberate short should just be deleted")


# ---------------------------------------------------------------------------
# netlist-level rules (need the parser that produced the circuit)
# ---------------------------------------------------------------------------

@rule("subckt-port-unused", "warning",
      "a declared subcircuit port is never connected inside the body")
def _check_subckt_port_unused(ctx: LintContext) -> Iterator[Finding]:
    subcircuits = getattr(ctx.parser, "subcircuits", None)
    if not subcircuits:
        return
    for definition in subcircuits.values():
        used: set[str] = set()
        for _line_no, text in definition.cards:
            used.update(text.split())
        for port in definition.ports:
            if port not in used:
                yield Finding(
                    "subckt-port-unused", "warning",
                    f"port {port!r} of subcircuit {definition.name!r} is "
                    f"never connected inside the definition: every "
                    f"instance leaves that terminal dangling",
                    nodes=(port,),
                    line_no=getattr(definition, "line_no", None) or None,
                    hint="drop the port from the .subckt header or wire "
                         "it up in the body")


@rule("subckt-unused", "info",
      "a subcircuit is defined but never instantiated")
def _check_subckt_unused(ctx: LintContext) -> Iterator[Finding]:
    subcircuits = getattr(ctx.parser, "subcircuits", None)
    if not subcircuits:
        return
    instantiated = getattr(ctx.parser, "instantiated", set())
    for definition in subcircuits.values():
        if definition.name not in instantiated:
            yield Finding(
                "subckt-unused", "info",
                f"subcircuit {definition.name!r} is defined but never "
                f"instantiated",
                line_no=getattr(definition, "line_no", None) or None,
                hint="delete the dead definition or add an X instance")
