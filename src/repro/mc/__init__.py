"""Monte-Carlo machinery: seeded streams, engines, statistics."""

from .engine import MCConfig, monte_carlo, monte_carlo_points
from .sampler import child_streams, latin_hypercube_normal, stream
from .statistics import PopulationSummary, cpk, relative_spread_pct, summarize
from .streaming import (AdaptiveStop, P2Quantile, QuantileSketch,
                        StreamingAccumulator, StreamingMoments,
                        StreamingResult, YieldCounter,
                        monte_carlo_streaming)

__all__ = [
    "MCConfig", "monte_carlo", "monte_carlo_points",
    "child_streams", "latin_hypercube_normal", "stream",
    "PopulationSummary", "cpk", "relative_spread_pct", "summarize",
    "AdaptiveStop", "P2Quantile", "QuantileSketch",
    "StreamingAccumulator", "StreamingMoments", "StreamingResult",
    "YieldCounter", "monte_carlo_streaming",
]
