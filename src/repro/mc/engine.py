"""Monte-Carlo execution engine.

Two entry points:

* :func:`monte_carlo` -- MC on a single design: draw ``n`` die
  realisations, evaluate the (batched) performance function once, return
  per-performance sample arrays.  Used by the paper's 500-sample design
  verifications.
* :func:`monte_carlo_points` -- MC across a *set* of design points (the
  paper's 200 samples on each of 1022 Pareto points).  Points are tiled
  against fresh die samples and processed in lane-bounded chunks so the
  peak stacked-matrix memory stays constant regardless of how many points
  are swept.

Both consume evaluator callables rather than circuits, so the same engine
drives transistor-level OTAs, behavioural filters, plain functions in
tests -- or a trained surrogate bundle
(:meth:`repro.surrogate.SurrogateBundle.as_evaluator`), which swaps every
stacked MNA solve for a polynomial evaluation without touching the
engine.

Chunking, seeding, and parallelism
----------------------------------
Work is decomposed into chunks of at most ``chunk_lanes`` simultaneous
batch lanes.  Each chunk owns a private child random stream spawned from
``(seed, stage-key)`` (see :func:`repro.mc.sampler.child_streams`), and a
chunk's evaluation touches no state outside itself.  Consequences:

* Results are **bit-reproducible** for a fixed ``MCConfig`` -- including
  ``chunk_lanes``, which fixes the chunk geometry and therefore which die
  realisation lands on which (point, sample) lane.
* Results are **invariant to the execution backend and worker count**:
  chunks may run serially, on threads, or on forked worker processes
  (:mod:`repro.exec`) and concatenate to identical arrays, because no
  chunk ever consumes another chunk's randomness.
* Changing ``chunk_lanes`` changes the sample population (a different,
  equally-valid draw), not its statistics.

Backends are selected by :attr:`MCConfig.backend`, falling back to the
``REPRO_EXEC_BACKEND`` environment variable and then serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..errors import ReproError
from ..exec import Backend, resolve_backend
from ..process.pdk import ProcessKit
from .sampler import child_streams, stream

__all__ = ["MCConfig", "monte_carlo", "monte_carlo_points"]


@dataclass(frozen=True)
class MCConfig:
    """Monte-Carlo settings.

    Attributes
    ----------
    n_samples:
        Die realisations per design point (the paper uses 200 for model
        building, 500 for verification).
    seed:
        Root seed for this MC stage.
    include_global, include_mismatch:
        Enable the inter-die / intra-die statistical components.  The
        ablation benchmark flips these to show which dominates each
        performance's variation.
    chunk_lanes:
        Upper bound on simultaneous batch lanes (points x samples) per
        stacked solve.  This is the engine's **memory knob**: peak
        working memory is proportional to the per-chunk lane count
        (times the stacked MNA matrix size), never to the total sweep
        size.  One caveat: :func:`monte_carlo_points` treats each
        point's sample block as atomic, so when ``n_samples >
        chunk_lanes`` a chunk still holds one full point and the
        effective bound is ``max(chunk_lanes, n_samples)`` lanes
        (:func:`monte_carlo` has no such floor -- it slices a single
        design's samples directly).  ``chunk_lanes`` also fixes the
        chunk geometry, so two runs compare bit-for-bit only when their
        ``chunk_lanes`` match (see the module docstring).
    backend:
        Execution backend for the chunk sweep: ``"serial"``, ``"thread"``,
        ``"process"``, ``"auto"``, optionally with a ``":N"`` worker
        suffix, or a live :class:`repro.exec.Backend` instance.  ``None``
        defers to the ``REPRO_EXEC_BACKEND`` environment variable
        (default: serial).  The choice never affects numeric results.
    workers:
        Worker count for pooled backends when the spec carries no
        explicit count; ``0`` means one per CPU.
    """

    n_samples: int = 200
    seed: int = 2008
    include_global: bool = True
    include_mismatch: bool = True
    chunk_lanes: int = 4000
    backend: "str | Backend | None" = None
    workers: int = 0

    def __post_init__(self) -> None:
        # Validate at construction: a degenerate configuration used to
        # surface only deep inside the engine (a zero-lane chunk crashing
        # at ``parts[0]`` or inside ``pdk.sample``), far from the caller
        # that built it.
        if self.n_samples < 1:
            raise ReproError(
                f"MCConfig.n_samples must be >= 1, got {self.n_samples}")
        if self.chunk_lanes < 1:
            raise ReproError(
                f"MCConfig.chunk_lanes must be >= 1, got {self.chunk_lanes}")
        if self.workers < 0:
            raise ReproError(
                f"MCConfig.workers must be >= 0 (0 = one per CPU), "
                f"got {self.workers}")


def _plan_single_chunks(config: MCConfig, stage: str = "mc-single"):
    """Chunk plan of a single-design MC run: ``(start, stop, rng)`` bounds.

    Shared by :func:`monte_carlo` and the streaming driver
    (:func:`repro.mc.streaming.monte_carlo_streaming`), so both walk the
    *identical* chunk geometry and random streams for a given config --
    a streaming run reduces exactly the population a batch run would
    concatenate, and an adaptively-stopped run reduces a prefix of it
    (child streams are prefix-stable, see
    :func:`repro.mc.sampler.child_streams`).

    A single-chunk plan (the common verification case) uses the same
    ``(seed, stage)`` stream as ever, so historical seeds keep producing
    identical populations.
    """
    total = config.n_samples
    lanes = config.chunk_lanes
    n_chunks = max(1, (total + lanes - 1) // lanes)
    if n_chunks == 1:
        rngs = [stream(config.seed, stage)]
    else:
        rngs = child_streams(config.seed, stage, n_chunks)
    return [(i * lanes, min((i + 1) * lanes, total), rngs[i])
            for i in range(n_chunks)]


def _single_chunk_runner(evaluator, pdk: ProcessKit, config: MCConfig):
    """The per-chunk task of a single-design MC run: draw the chunk's die
    realisations from its private stream, evaluate, normalise the
    performance arrays.  Shared by the batch and streaming drivers."""

    def run_chunk(task):
        start, stop, rng = task
        with telemetry.span("mc.chunk", lanes=stop - start, start=start):
            telemetry.counter_add("mc.lanes", stop - start)
            sample = pdk.sample(stop - start, rng,
                                include_global=config.include_global,
                                include_mismatch=config.include_mismatch)
            performance = evaluator(sample)
            return {name: np.asarray(values, dtype=float).reshape(-1)
                    for name, values in performance.items()}

    return run_chunk


def _run_chunks(backend, run_chunk, chunk_bounds, progress, total_units):
    """Execute chunk tasks on ``backend``; adapt progress to work units.

    ``progress`` (if given) is called with cumulative completed units
    (points or samples) out of ``total_units``, monotonically, whatever
    order chunks finish in.
    """
    on_done = None
    if progress is not None:
        sizes = [stop - start for start, stop, _ in chunk_bounds]
        state = {"units": 0}

        def on_done(done, total, index):
            state["units"] += sizes[index]
            progress(state["units"], total_units)

    return backend.run(run_chunk, chunk_bounds, progress=on_done)


def monte_carlo(evaluator, pdk: ProcessKit,
                config: MCConfig | None = None,
                progress=None) -> dict[str, np.ndarray]:
    """Monte Carlo on one design.

    Parameters
    ----------
    evaluator:
        Callable ``(ProcessSample) -> dict[name, (S,) array]`` that builds
        and simulates the design under the given process realisations.
    progress:
        Optional callback ``(samples_done, n_samples)``.

    Returns
    -------
    Mapping performance name -> ``(n_samples,)`` sample array.

    Notes
    -----
    When ``n_samples`` exceeds ``chunk_lanes`` the population is drawn in
    independently-seeded chunks that the configured backend may evaluate
    in parallel.  A single-chunk run (the common verification case) uses
    the same ``(seed, "mc-single")`` stream as ever, so historical seeds
    keep producing identical populations.
    """
    config = config or MCConfig()
    total = config.n_samples
    bounds = _plan_single_chunks(config)
    run_chunk = _single_chunk_runner(evaluator, pdk, config)
    backend = resolve_backend(config.backend, config.workers)
    with telemetry.span("mc.single", samples=total, chunks=len(bounds)):
        parts = _run_chunks(backend, run_chunk, bounds, progress, total)
    return {name: np.concatenate([part[name] for part in parts])
            for name in parts[0]}


def monte_carlo_points(evaluator, n_points: int, pdk: ProcessKit,
                       config: MCConfig | None = None,
                       progress=None, *,
                       stage: str = "mc-points") -> dict[str, np.ndarray]:
    """Monte Carlo across many design points (section 3.4 of the paper).

    Parameters
    ----------
    evaluator:
        Callable ``(point_indices, repeats, ProcessSample) ->
        dict[name, (len(point_indices)*repeats,) array]``.  The engine
        passes a chunk of point indices; the evaluator must tile each
        point ``repeats`` times **in order** (point0 x S, point1 x S, ...)
        -- :meth:`repro.designs.ota.OTAParameters.tile` does exactly this.
    n_points:
        Total number of design points (K).
    progress:
        Optional callback ``(points_done, n_points)``.
    stage:
        Random-stream stage key.  Callers running several independent
        point sweeps from one root seed (e.g. the per-generation MC of
        the conventional baseline) pass distinct stage keys.

    Returns
    -------
    Mapping performance name -> ``(K, n_samples)`` array.
    """
    config = config or MCConfig()
    samples = config.n_samples
    points_per_chunk = max(1, config.chunk_lanes // samples)
    n_chunks = (n_points + points_per_chunk - 1) // points_per_chunk
    streams = child_streams(config.seed, stage, n_chunks)
    bounds = [(start, min(start + points_per_chunk, n_points),
               streams[index])
              for index, start in enumerate(
                  range(0, n_points, points_per_chunk))]

    def run_chunk(task):
        start, stop, rng = task
        indices = np.arange(start, stop)
        with telemetry.span("mc.chunk", lanes=indices.size * samples,
                            points=int(indices.size), start=start):
            telemetry.counter_add("mc.lanes", indices.size * samples)
            die_sample = pdk.sample(indices.size * samples, rng,
                                    include_global=config.include_global,
                                    include_mismatch=config.include_mismatch)
            performance = evaluator(indices, samples, die_sample)
            return {name: np.asarray(values, dtype=float).reshape(
                        indices.size, samples)
                    for name, values in performance.items()}

    backend = resolve_backend(config.backend, config.workers)
    with telemetry.span("mc.points", points=n_points, samples=samples,
                        stage=stage, chunks=len(bounds)):
        parts = _run_chunks(backend, run_chunk, bounds, progress, n_points)
    if not parts:
        return {}
    return {name: np.concatenate([part[name] for part in parts], axis=0)
            for name in parts[0]}
