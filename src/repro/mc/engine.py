"""Monte-Carlo execution engine.

Two entry points:

* :func:`monte_carlo` -- MC on a single design: draw ``n`` die
  realisations, evaluate the (batched) performance function once, return
  per-performance sample arrays.  Used by the paper's 500-sample design
  verifications.
* :func:`monte_carlo_points` -- MC across a *set* of design points (the
  paper's 200 samples on each of 1022 Pareto points).  Points are tiled
  against fresh die samples and processed in lane-bounded chunks so the
  peak stacked-matrix memory stays constant regardless of how many points
  are swept.

Both consume evaluator callables rather than circuits, so the same engine
drives transistor-level OTAs, behavioural filters, or plain functions in
tests.  Randomness derives from one ``(seed, stage-key)`` stream; given
the same configuration (including ``chunk_lanes``) results are
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..process.pdk import ProcessKit, ProcessSample
from .sampler import child_streams, stream

__all__ = ["MCConfig", "monte_carlo", "monte_carlo_points"]


@dataclass(frozen=True)
class MCConfig:
    """Monte-Carlo settings.

    Attributes
    ----------
    n_samples:
        Die realisations per design point (the paper uses 200 for model
        building, 500 for verification).
    seed:
        Root seed for this MC stage.
    include_global, include_mismatch:
        Enable the inter-die / intra-die statistical components.  The
        ablation benchmark flips these to show which dominates each
        performance's variation.
    chunk_lanes:
        Upper bound on simultaneous batch lanes (points x samples) per
        stacked solve.
    """

    n_samples: int = 200
    seed: int = 2008
    include_global: bool = True
    include_mismatch: bool = True
    chunk_lanes: int = 4000


def monte_carlo(evaluator, pdk: ProcessKit,
                config: MCConfig | None = None) -> dict[str, np.ndarray]:
    """Monte Carlo on one design.

    Parameters
    ----------
    evaluator:
        Callable ``(ProcessSample) -> dict[name, (S,) array]`` that builds
        and simulates the design under the given process realisations.

    Returns
    -------
    Mapping performance name -> ``(n_samples,)`` sample array.
    """
    config = config or MCConfig()
    rng = stream(config.seed, "mc-single")
    sample = pdk.sample(config.n_samples, rng,
                        include_global=config.include_global,
                        include_mismatch=config.include_mismatch)
    performance = evaluator(sample)
    return {name: np.asarray(values, dtype=float).reshape(-1)
            for name, values in performance.items()}


def monte_carlo_points(evaluator, n_points: int, pdk: ProcessKit,
                       config: MCConfig | None = None,
                       progress=None) -> dict[str, np.ndarray]:
    """Monte Carlo across many design points (section 3.4 of the paper).

    Parameters
    ----------
    evaluator:
        Callable ``(point_indices, repeats, ProcessSample) ->
        dict[name, (len(point_indices)*repeats,) array]``.  The engine
        passes a chunk of point indices; the evaluator must tile each
        point ``repeats`` times **in order** (point0 x S, point1 x S, ...)
        -- :meth:`repro.designs.ota.OTAParameters.tile` does exactly this.
    n_points:
        Total number of design points (K).
    progress:
        Optional callback ``(points_done, n_points)``.

    Returns
    -------
    Mapping performance name -> ``(K, n_samples)`` array.
    """
    config = config or MCConfig()
    samples = config.n_samples
    points_per_chunk = max(1, config.chunk_lanes // samples)
    n_chunks = (n_points + points_per_chunk - 1) // points_per_chunk
    streams = child_streams(config.seed, "mc-points", n_chunks)

    collected: dict[str, list[np.ndarray]] = {}
    done = 0
    for chunk_index in range(n_chunks):
        start = chunk_index * points_per_chunk
        stop = min(start + points_per_chunk, n_points)
        indices = np.arange(start, stop)
        lanes = indices.size * samples
        die_sample = pdk.sample(lanes, streams[chunk_index],
                                include_global=config.include_global,
                                include_mismatch=config.include_mismatch)
        performance = evaluator(indices, samples, die_sample)
        for name, values in performance.items():
            values = np.asarray(values, dtype=float).reshape(
                indices.size, samples)
            collected.setdefault(name, []).append(values)
        done = stop
        if progress is not None:
            progress(done, n_points)

    return {name: np.concatenate(parts, axis=0)
            for name, parts in collected.items()}
