"""Random-stream management and sampling plans for Monte Carlo.

Every stochastic stage of the flow draws from an explicit, hierarchically
derived random stream so that

* the whole pipeline is bit-reproducible from one root seed, and
* stages are *independently* reproducible: re-running only the Monte-Carlo
  stage produces identical samples regardless of how many random numbers
  the optimiser consumed.

Streams are derived with :class:`numpy.random.SeedSequence` spawning keyed
by stage name.  A Latin-hypercube normal sampler is provided as a
variance-reduction option for global-parameter sampling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stream", "child_streams", "latin_hypercube_normal", "erf"]


def _key_to_int(key: str) -> int:
    """Map a stage-name string to a stable 32-bit integer."""
    # FNV-1a; stable across Python runs (unlike the builtin hash()).
    value = 2166136261
    for byte in key.encode():
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value


def stream(seed: int, key: str = "") -> np.random.Generator:
    """A named random stream derived from ``seed``.

    >>> a = stream(1, "mc")
    >>> b = stream(1, "mc")
    >>> float(a.random()) == float(b.random())
    True
    >>> c = stream(1, "optimizer")
    >>> float(stream(1, "mc").random()) != float(c.random())
    True
    """
    if key:
        sequence = np.random.SeedSequence([seed, _key_to_int(key)])
    else:
        sequence = np.random.SeedSequence(seed)
    return np.random.default_rng(sequence)


def child_streams(seed: int, key: str, count: int) -> list[np.random.Generator]:
    """``count`` mutually independent streams for parallel/chunked stages.

    Chunked Monte Carlo uses one child per chunk, which makes results
    independent of *where* chunks execute: any backend, worker count, or
    completion order reassembles the identical population, because no
    chunk consumes another chunk's randomness.

    The children are **prefix-stable** -- child ``i`` is the same stream
    whether 3 or 300 children are spawned -- but the chunk *geometry*
    (``MCConfig.chunk_lanes``) decides which lanes each child feeds, so
    changing the chunk size yields a different (equally valid) sample
    population.  Bit-reproducibility therefore holds for a fixed
    configuration including ``chunk_lanes``, and across execution
    backends; not across chunk-size changes.

    >>> a = child_streams(7, "pts", 3)
    >>> b = child_streams(7, "pts", 5)
    >>> all(x.random() == y.random() for x, y in zip(a, b))
    True
    """
    sequence = np.random.SeedSequence([seed, _key_to_int(key)])
    return [np.random.default_rng(s) for s in sequence.spawn(count)]


def latin_hypercube_normal(rng: np.random.Generator, n: int,
                           dims: int) -> np.ndarray:
    """Latin-hypercube-stratified standard normal samples, shape ``(n, dims)``.

    Each dimension's n samples occupy distinct probability strata, which
    cuts the variance of mean/sigma estimates relative to plain sampling
    -- useful when estimating variation percentages from the paper's
    modest 200 samples per Pareto point.
    """
    if n < 1 or dims < 1:
        raise ValueError("n and dims must be positive")
    # Stratified uniforms: one sample per stratum, shuffled per dimension.
    strata = (np.arange(n)[:, None] + rng.random((n, dims))) / n
    for j in range(dims):
        rng.shuffle(strata[:, j])
    # Map to normal via the probit function (vectorised rational approx +
    # one Newton polish against the exact normal CDF).
    return _probit(strata)


def _probit(p: np.ndarray) -> np.ndarray:
    """Inverse standard-normal CDF (Acklam's approximation + Newton)."""
    p = np.clip(p, 1e-12, 1 - 1e-12)
    # Acklam coefficients.
    a = [-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00]

    p_low = 0.02425
    x = np.empty_like(p)

    lower = p < p_low
    upper = p > 1 - p_low
    middle = ~(lower | upper)

    if np.any(lower):
        q = np.sqrt(-2.0 * np.log(p[lower]))
        x[lower] = ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                     * q + c[5])
                    / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0))
    if np.any(upper):
        q = np.sqrt(-2.0 * np.log(1.0 - p[upper]))
        x[upper] = -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                      * q + c[5])
                     / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0))
    if np.any(middle):
        q = p[middle] - 0.5
        r = q * q
        x[middle] = ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
                      * r + a[5]) * q
                     / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                         + b[4]) * r + 1.0))

    # One Newton step against the exact CDF for ~1e-12 accuracy.  The
    # fully vectorised erf matters: this polish sits on the hot path of
    # every stratified draw, and a `np.vectorize(math.erf)` round-trip
    # through Python objects costs ~100x the rational evaluation.
    cdf = 0.5 * (1.0 + erf(x / np.sqrt(2.0)))
    pdf = np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi)
    return x - (cdf - p) / np.maximum(pdf, 1e-300)


# Cody's rational-Chebyshev erf/erfc coefficients (W. J. Cody, "Rational
# Chebyshev approximation for the error function", Math. Comp. 23, 1969)
# -- the classic scipy-free double-precision implementation.
_ERF_A = (3.16112374387056560e00, 1.13864154151050156e02,
          3.77485237685302021e02, 3.20937758913846947e03,
          1.85777706184603153e-1)
_ERF_B = (2.36012909523441209e01, 2.44024637934444173e02,
          1.28261652607737228e03, 2.84423683343917062e03)
_ERF_C = (5.64188496988670089e-1, 8.88314979438837594e00,
          6.61191906371416295e01, 2.98635138197400131e02,
          8.81952221241769090e02, 1.71204761263407058e03,
          2.05107837782607147e03, 1.23033935479799725e03,
          2.15311535474403846e-8)
_ERF_D = (1.57449261107098347e01, 1.17693950891312499e02,
          5.37181101862009858e02, 1.62138957456669019e03,
          3.29079923573345963e03, 4.36261909014324716e03,
          3.43936767414372164e03, 1.23033935480374942e03)
_ERF_P = (3.05326634961232344e-1, 3.60344899949804439e-1,
          1.25781726111229246e-1, 1.60837851487422766e-2,
          6.58749161529837803e-4, 1.63153871373020978e-2)
_ERF_Q = (2.56852019228982242e00, 1.87295284992346047e00,
          5.27905102951428412e-1, 6.05183413124413191e-2,
          2.33520497626869185e-3)

_SQRT_INV_PI = 5.6418958354775628695e-1  # 1/sqrt(pi)


def erf(x) -> np.ndarray:
    """Vectorised double-precision error function (Cody's algorithm).

    Matches :func:`math.erf` to ~1e-16 elementwise while staying inside
    NumPy (no Python-level loop) -- the building block of the sampler's
    probit polish and anything else needing normal CDFs on arrays.
    """
    x = np.asarray(x, dtype=float)
    ax = np.abs(x)
    # NaN lanes fall into none of the branch masks and must propagate.
    result = np.full_like(ax, np.nan)

    # |x| <= 0.46875: erf via the central rational approximation.
    centre = ax <= 0.46875
    if np.any(centre):
        z = ax[centre] ** 2
        num = _ERF_A[4] * z
        den = z
        for a_i, b_i in zip(_ERF_A[:3], _ERF_B[:3], strict=True):
            num = (num + a_i) * z
            den = (den + b_i) * z
        result[centre] = ax[centre] * (num + _ERF_A[3]) / (den + _ERF_B[3])

    # 0.46875 < |x| <= 4: erfc via the mid-range approximation.
    mid = (ax > 0.46875) & (ax <= 4.0)
    if np.any(mid):
        y = ax[mid]
        num = _ERF_C[8] * y
        den = y
        for c_i, d_i in zip(_ERF_C[:7], _ERF_D[:7], strict=True):
            num = (num + c_i) * y
            den = (den + d_i) * y
        erfc = np.exp(-y * y) * (num + _ERF_C[7]) / (den + _ERF_D[7])
        result[mid] = 1.0 - erfc

    # |x| > 4: erfc via the asymptotic expansion.
    tail = ax > 4.0
    if np.any(tail):
        y = ax[tail]
        z = 1.0 / (y * y)
        num = _ERF_P[5] * z
        den = z
        for p_i, q_i in zip(_ERF_P[:4], _ERF_Q[:4], strict=True):
            num = (num + p_i) * z
            den = (den + q_i) * z
        poly = z * (num + _ERF_P[4]) / (den + _ERF_Q[4])
        erfc = np.exp(-y * y) * (_SQRT_INV_PI - poly) / y
        result[tail] = 1.0 - erfc

    return np.copysign(result, x)
