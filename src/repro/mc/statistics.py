"""Monte-Carlo population statistics.

Summary reductions used by the variation model and the experiment
reports: robust descriptive statistics, sigma-based spread measures and
process-capability indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PopulationSummary", "summarize", "relative_spread_pct", "cpk"]


@dataclass(frozen=True)
class PopulationSummary:
    """Descriptive statistics of one performance population."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q01: float
    q99: float

    def describe(self, unit: str = "") -> str:
        return (f"n={self.n} mean={self.mean:.6g}{unit} "
                f"std={self.std:.3g}{unit} "
                f"range=[{self.minimum:.6g}, {self.maximum:.6g}]{unit}")


def summarize(samples) -> PopulationSummary:
    """Descriptive statistics of a 1-D sample array."""
    samples = np.asarray(samples, dtype=float).reshape(-1)
    if samples.size < 2:
        raise ValueError("need at least two samples")
    if np.any(np.isnan(samples)):
        raise ValueError("samples contain NaN; repair failed lanes first")
    return PopulationSummary(
        n=samples.size,
        mean=float(np.mean(samples)),
        std=float(np.std(samples, ddof=1)),
        minimum=float(np.min(samples)),
        maximum=float(np.max(samples)),
        median=float(np.median(samples)),
        q01=float(np.quantile(samples, 0.01)),
        q99=float(np.quantile(samples, 0.99)),
    )


def relative_spread_pct(samples, k_sigma: float = 3.0, axis: int = -1):
    """``k_sigma * std / |mean| * 100`` along ``axis`` (vectorised).

    The same definition as
    :func:`repro.yieldmodel.variation.variation_percent`, provided here for
    ad-hoc analysis of raw MC arrays.
    """
    samples = np.asarray(samples, dtype=float)
    mean = np.mean(samples, axis=axis)
    std = np.std(samples, axis=axis, ddof=1)
    return k_sigma * std / np.abs(mean) * 100.0


def cpk(samples, *, lower: float | None = None,
        upper: float | None = None) -> float:
    """Process capability index against one- or two-sided limits.

    ``Cpk = min((USL - mean), (mean - LSL)) / (3*std)``; one-sided specs
    use only their side.  Cpk >= 1 corresponds to a 3-sigma guard band --
    the paper's implicit yield criterion.

    A zero-spread (degenerate) population is judged by its mean alone:
    ``+inf`` strictly inside the limits, ``-inf`` outside (a population
    sitting wholly beyond a limit is maximally *in*capable, not
    perfectly capable), and ``0.0`` exactly on a limit.
    """
    if lower is None and upper is None:
        raise ValueError("need at least one specification limit")
    samples = np.asarray(samples, dtype=float).reshape(-1)
    mean = float(np.mean(samples))
    std = float(np.std(samples, ddof=1))
    margins = []
    if upper is not None:
        margins.append(upper - mean)
    if lower is not None:
        margins.append(mean - lower)
    worst = min(margins)
    if std == 0.0:
        if worst == 0.0:
            return 0.0
        return float("inf") if worst > 0.0 else float("-inf")
    return worst / (3.0 * std)
