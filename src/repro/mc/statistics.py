"""Monte-Carlo population statistics.

Summary reductions used by the variation model and the experiment
reports: robust descriptive statistics, sigma-based spread measures and
process-capability indices.

All reductions validate their populations the same way (at least two
samples, no NaN) so a failed simulation lane can never fake a spread or
capability number -- see :func:`_validate_population`.  The streaming
counterparts of these reductions live in :mod:`repro.mc.streaming`;
:func:`_cpk_from_moments` is shared between the batch and streaming Cpk
so the two paths can never disagree on the degenerate-population rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PopulationSummary", "summarize", "relative_spread_pct", "cpk"]


@dataclass(frozen=True)
class PopulationSummary:
    """Descriptive statistics of one performance population."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q01: float
    q99: float

    def describe(self, unit: str = "") -> str:
        return (f"n={self.n} mean={self.mean:.6g}{unit} "
                f"std={self.std:.3g}{unit} "
                f"range=[{self.minimum:.6g}, {self.maximum:.6g}]{unit}")


def _validate_population(samples) -> np.ndarray:
    """Flatten and validate a sample population (shared by every
    reduction here): at least two samples (``ddof=1`` is undefined below
    that) and no NaN (a failed lane must be repaired upstream, never
    silently averaged into a statistic)."""
    samples = np.asarray(samples, dtype=float).reshape(-1)
    if samples.size < 2:
        raise ValueError("need at least two samples")
    if np.any(np.isnan(samples)):
        raise ValueError("samples contain NaN; repair failed lanes first")
    return samples


def summarize(samples) -> PopulationSummary:
    """Descriptive statistics of a 1-D sample array."""
    samples = _validate_population(samples)
    return PopulationSummary(
        n=samples.size,
        mean=float(np.mean(samples)),
        std=float(np.std(samples, ddof=1)),
        minimum=float(np.min(samples)),
        maximum=float(np.max(samples)),
        median=float(np.median(samples)),
        q01=float(np.quantile(samples, 0.01)),
        q99=float(np.quantile(samples, 0.99)),
    )


#: Below this magnitude a population mean is treated as zero: the
#: relative spread (k-sigma std over |mean|) is undefined there.  Shared
#: by the batch and streaming spread reductions so the two paths can
#: never disagree on the degenerate-mean rule.
_DEGENERATE_MEAN = 1e-300


def _mean_is_degenerate(mean) -> bool:
    """True when any population mean is too close to zero for a
    relative-spread statistic to be defined."""
    return bool(np.any(np.abs(mean) < _DEGENERATE_MEAN))


def relative_spread_pct(samples, k_sigma: float = 3.0, axis: int = -1):
    """``k_sigma * std / |mean| * 100`` along ``axis`` (vectorised).

    The same definition as
    :func:`repro.yieldmodel.variation.variation_percent`, provided here for
    ad-hoc analysis of raw MC arrays.

    Raises
    ------
    ValueError
        If the reduced axis holds fewer than two samples (``ddof=1``
        would silently return NaN), if any sample is NaN, or if any
        population mean is zero (the relative spread would silently
        return ``+/-inf``) -- mirroring :func:`summarize`'s validation.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim == 0 or samples.shape[axis] < 2:
        raise ValueError("need at least two samples along the reduced axis")
    if np.any(np.isnan(samples)):
        raise ValueError("samples contain NaN; repair failed lanes first")
    mean = np.mean(samples, axis=axis)
    std = np.std(samples, axis=axis, ddof=1)
    if _mean_is_degenerate(mean):
        raise ValueError("population mean is zero; the relative spread "
                         "is undefined")
    return k_sigma * std / np.abs(mean) * 100.0


def _cpk_from_moments(mean: float, std: float, lower: float | None,
                      upper: float | None) -> float:
    """Cpk from a population's mean/std (shared batch/streaming core).

    ``Cpk = min((USL - mean), (mean - LSL)) / (3*std)``; one-sided specs
    use only their side.  A zero-spread (degenerate) population is judged
    by its mean alone: ``+inf`` strictly inside the limits, ``-inf``
    outside (a population sitting wholly beyond a limit is maximally
    *in*capable, not perfectly capable), and ``0.0`` exactly on a limit.
    """
    if lower is None and upper is None:
        raise ValueError("need at least one specification limit")
    margins = []
    if upper is not None:
        margins.append(upper - mean)
    if lower is not None:
        margins.append(mean - lower)
    worst = min(margins)
    if std == 0.0:
        if worst == 0.0:
            return 0.0
        return float("inf") if worst > 0.0 else float("-inf")
    return worst / (3.0 * std)


def cpk(samples, *, lower: float | None = None,
        upper: float | None = None) -> float:
    """Process capability index against one- or two-sided limits.

    ``Cpk = min((USL - mean), (mean - LSL)) / (3*std)``; one-sided specs
    use only their side.  Cpk >= 1 corresponds to a 3-sigma guard band --
    the paper's implicit yield criterion.

    A zero-spread (degenerate) population is judged by its mean alone:
    ``+inf`` strictly inside the limits, ``-inf`` outside (a population
    sitting wholly beyond a limit is maximally *in*capable, not
    perfectly capable), and ``0.0`` exactly on a limit.

    Validation is identical to :func:`summarize` (at least two samples,
    no NaN), so a failed Monte-Carlo lane can never fake a capability
    number by propagating NaN through the index.
    """
    if lower is None and upper is None:
        raise ValueError("need at least one specification limit")
    samples = _validate_population(samples)
    mean = float(np.mean(samples))
    std = float(np.std(samples, ddof=1))
    return _cpk_from_moments(mean, std, lower, upper)
