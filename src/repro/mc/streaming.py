"""Streaming Monte Carlo: online statistics, adaptive stopping, resume.

The batch engine (:func:`repro.mc.engine.monte_carlo`) materialises the
whole sample population -- ``np.concatenate`` over every chunk -- before
any statistic is computed.  That is fine at the paper's 200-500 samples
and a hard ceiling at the million-sample scale the ROADMAP targets.
This module replaces concatenation with **mergeable online
accumulators**: every chunk is reduced into constant-size state the
moment it finishes, so peak memory is bounded by the chunk size
(``MCConfig.chunk_lanes``) regardless of how many samples a run draws.

Three capabilities fall out of the accumulator design:

* **Shard merging** -- accumulators combine exactly (Chan's parallel
  Welford update), so per-chunk partials can be folded in any grouping:
  across backend workers, across checkpointed run segments, or across
  machines.  The driver folds in task-submission order, which makes the
  final accumulator state **bit-identical across execution backends**.
* **Adaptive stopping** -- instead of a fixed sample count, a run can
  terminate as soon as the yield or variation-percent confidence
  interval is narrower than a requested width (:class:`AdaptiveStop`),
  which is where the sample-efficiency win of sequential estimation
  comes from (cf. importance-sampled timing yield and rare-event
  literature in PAPERS.md).
* **Checkpoint/resume** -- accumulator state plus the chunk cursor
  serialise to one ``.npz`` artefact, so long runs survive interruption
  and can be sharded across invocations (``max_chunks``); a resumed run
  reproduces the uninterrupted run bit-for-bit.

The driver (:func:`monte_carlo_streaming`) walks the *identical* chunk
plan and random streams as :func:`repro.mc.engine.monte_carlo` for a
given :class:`~repro.mc.engine.MCConfig`, so a streaming run reduces
exactly the population the batch engine would concatenate, and an
adaptively-stopped run reduces a prefix of it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import telemetry
from ..cache import atomic_write_npz, canonical_fingerprint
from ..errors import ReproError
from ..exec import resolve_backend
from ..process.pdk import ProcessKit
from .engine import MCConfig, _plan_single_chunks, _single_chunk_runner
from .statistics import (PopulationSummary, _cpk_from_moments,
                         _mean_is_degenerate)

__all__ = [
    "StreamingMoments", "P2Quantile", "QuantileSketch",
    "StreamingAccumulator", "YieldCounter", "AdaptiveStop",
    "StreamingResult", "monte_carlo_streaming",
]

#: Default retained-sample budget of the quantile sketch.  Below this
#: population size the sketch is exact; beyond it, deterministic
#: compaction bounds the rank error by roughly ``1/capacity`` per
#: compaction generation.
DEFAULT_SKETCH_CAPACITY = 4096


class StreamingMoments:
    """Mergeable online mean/variance/min/max (Welford + Chan).

    Per-chunk updates use the batched Welford form (the chunk's own
    mean and second central moment, combined with Chan et al.'s exact
    parallel merge), so feeding one big array or many small ones gives
    the same state to float tolerance, and two accumulators merge
    *exactly* -- the merge is the same formula as the update.

    NaN samples are rejected (mirroring
    :func:`repro.mc.statistics.summarize`): a failed simulation lane
    must be repaired upstream, never silently averaged into a running
    statistic.
    """

    __slots__ = ("n", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, values) -> "StreamingMoments":
        """Fold a batch of samples into the running moments."""
        values = np.asarray(values, dtype=float).reshape(-1)
        if values.size == 0:
            return self
        if np.any(np.isnan(values)):
            raise ValueError("samples contain NaN; repair failed lanes first")
        batch_n = values.size
        batch_mean = float(np.mean(values))
        batch_m2 = float(np.sum((values - batch_mean) ** 2))
        self._combine(batch_n, batch_mean, batch_m2,
                      float(np.min(values)), float(np.max(values)))
        return self

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold another accumulator's state into this one (exact)."""
        if other.n:
            self._combine(other.n, other.mean, other.m2,
                          other.minimum, other.maximum)
        return self

    def _combine(self, n_b: int, mean_b: float, m2_b: float,
                 min_b: float, max_b: float) -> None:
        n_a = self.n
        n = n_a + n_b
        delta = mean_b - self.mean
        self.mean += delta * n_b / n
        self.m2 += m2_b + delta * delta * n_a * n_b / n
        self.n = n
        self.minimum = min(self.minimum, min_b)
        self.maximum = max(self.maximum, max_b)

    @property
    def variance(self) -> float:
        """Sample variance (``ddof=1``); needs at least two samples."""
        if self.n < 2:
            raise ValueError("need at least two samples")
        return self.m2 / (self.n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation (``ddof=1``)."""
        return math.sqrt(max(self.variance, 0.0))

    def state(self) -> np.ndarray:
        """Serialisable state vector ``[n, mean, m2, min, max]``."""
        return np.array([float(self.n), self.mean, self.m2,
                         self.minimum, self.maximum])

    @classmethod
    def from_state(cls, state) -> "StreamingMoments":
        moments = cls()
        state = np.asarray(state, dtype=float)
        moments.n = int(state[0])
        moments.mean = float(state[1])
        moments.m2 = float(state[2])
        moments.minimum = float(state[3])
        moments.maximum = float(state[4])
        return moments


class P2Quantile:
    """Single-quantile P² estimator (Jain & Chlamtac, 1985).

    The classic constant-memory online quantile: five markers whose
    heights are adjusted by a piecewise-parabolic interpolation as
    samples stream in.  Use it when one quantile of an unbounded stream
    must be tracked in O(1) memory and approximate answers suffice; the
    engine's accumulators use the *mergeable* :class:`QuantileSketch`
    instead (P² state cannot be combined across shards).

    Below five observations the estimator simply interpolates the
    sorted buffer, so small streams are exact.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increment")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                         3.0 + 2.0 * q, 5.0]
        self._increment = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def update(self, values) -> "P2Quantile":
        """Fold samples into the estimate (scalar P² marker updates)."""
        for value in np.asarray(values, dtype=float).reshape(-1):
            if math.isnan(value):
                raise ValueError(
                    "samples contain NaN; repair failed lanes first")
            self._observe(float(value))
        return self

    def _observe(self, x: float) -> None:
        h = self._heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        # Locate the cell and bump marker positions above it.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= x < h[i + 1])
        pos = self._positions
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increment[i]
        # Adjust the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or \
               (d <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic prediction left the bracket: linear
                    j = i + int(step)
                    h[i] += step * (h[j] - h[i]) / (pos[j] - pos[i])
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1]))

    @property
    def n(self) -> int:
        """Number of samples observed."""
        if len(self._heights) < 5:
            return len(self._heights)
        return int(self._positions[4])

    def value(self) -> float:
        """Current quantile estimate."""
        if not self._heights:
            raise ValueError("no samples observed")
        if len(self._heights) < 5:
            return float(np.quantile(np.array(self._heights), self.q))
        return self._heights[2]


class QuantileSketch:
    """Mergeable deterministic quantile sketch (bounded memory).

    Plays the role of a P²-style constant-memory quantile estimator in
    the streaming accumulators, generalised to support the exact
    shard-merge contract P² lacks: the sketch keeps a weighted sample
    buffer of at most ``capacity`` points; merging concatenates buffers,
    and whenever the buffer overflows it is **deterministically
    compacted** to ``capacity`` representative points at evenly-spaced
    weighted-rank positions.  Consequences:

    * below ``capacity`` total samples the sketch is *exact* -- every
      quantile query matches ``np.quantile`` (linear interpolation)
      bit-for-bit;
    * beyond it, memory stays bounded at ``2 * capacity`` floats and the
      rank error is roughly ``1/capacity`` per compaction generation;
    * compaction and merging are deterministic, so folding the same
      shards in the same order always reproduces identical state
      (the engine folds in task-submission order on every backend).
    """

    __slots__ = ("capacity", "compacted", "_values", "_weights")

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        if capacity < 8:
            raise ValueError("sketch capacity must be >= 8")
        self.capacity = int(capacity)
        self.compacted = False
        self._values = np.empty(0)
        self._weights = np.empty(0)

    def update(self, values) -> "QuantileSketch":
        """Fold a batch of samples into the sketch."""
        values = np.asarray(values, dtype=float).reshape(-1)
        if values.size == 0:
            return self
        if np.any(np.isnan(values)):
            raise ValueError("samples contain NaN; repair failed lanes first")
        self._values = np.concatenate([self._values, values])
        self._weights = np.concatenate([self._weights,
                                        np.ones(values.size)])
        self._maybe_compact()
        return self

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch's buffer into this one."""
        if other._values.size:
            self._values = np.concatenate([self._values, other._values])
            self._weights = np.concatenate([self._weights, other._weights])
            self.compacted = self.compacted or other.compacted
            self._maybe_compact()
        return self

    def _maybe_compact(self) -> None:
        if self._values.size <= self.capacity:
            return
        order = np.argsort(self._values, kind="stable")
        values = self._values[order]
        weights = self._weights[order]
        total = float(np.sum(weights))
        # Midpoint weighted rank of each retained point, and the evenly
        # spaced target ranks of the compacted representatives.
        ranks = np.cumsum(weights) - 0.5 * weights
        targets = (np.arange(self.capacity) + 0.5) / self.capacity * total
        self._values = np.interp(targets, ranks, values)
        self._weights = np.full(self.capacity, total / self.capacity)
        self.compacted = True

    @property
    def n(self) -> float:
        """Total sample weight folded into the sketch."""
        return float(np.sum(self._weights))

    def quantile(self, q: float) -> float:
        """Quantile estimate (exact while the sketch never compacted)."""
        if self._values.size == 0:
            raise ValueError("no samples observed")
        if not self.compacted:
            # Exact: every raw sample is still in the buffer.
            return float(np.quantile(self._values, q))
        order = np.argsort(self._values, kind="stable")
        values = self._values[order]
        weights = self._weights[order]
        ranks = np.cumsum(weights) - 0.5 * weights
        total = float(np.sum(weights))
        return float(np.interp(q * total, ranks, values))

    def state(self) -> dict[str, np.ndarray]:
        """Serialisable state arrays."""
        return {"values": self._values.copy(),
                "weights": self._weights.copy(),
                "meta": np.array([float(self.capacity),
                                  float(self.compacted)])}

    @classmethod
    def from_state(cls, values, weights, meta) -> "QuantileSketch":
        sketch = cls(int(np.asarray(meta, dtype=float)[0]))
        sketch._values = np.asarray(values, dtype=float).copy()
        sketch._weights = np.asarray(weights, dtype=float).copy()
        sketch.compacted = bool(np.asarray(meta, dtype=float)[1])
        return sketch


class StreamingAccumulator:
    """Per-performance streaming statistics: moments + quantile sketch.

    The streaming counterpart of one entry of a batch MC result array.
    ``summary()`` produces the same :class:`PopulationSummary` that
    :func:`repro.mc.statistics.summarize` computes from the materialised
    population (exactly, while the sketch has not compacted), and
    ``cpk()`` shares the batch implementation's degenerate-population
    rules through :func:`repro.mc.statistics._cpk_from_moments`.
    """

    def __init__(self, sketch_capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        self.moments = StreamingMoments()
        self.sketch = QuantileSketch(sketch_capacity)

    def update(self, values) -> "StreamingAccumulator":
        """Fold a batch of samples into moments and sketch."""
        self.moments.update(values)
        self.sketch.update(values)
        return self

    def merge(self, other: "StreamingAccumulator") -> "StreamingAccumulator":
        """Fold another accumulator (a shard partial) into this one."""
        self.moments.merge(other.moments)
        self.sketch.merge(other.sketch)
        return self

    @property
    def n(self) -> int:
        return self.moments.n

    def summary(self) -> PopulationSummary:
        """The population summary, shaped like :func:`summarize`'s."""
        moments = self.moments
        return PopulationSummary(
            n=moments.n,
            mean=moments.mean,
            std=moments.std,
            minimum=moments.minimum,
            maximum=moments.maximum,
            median=self.sketch.quantile(0.5),
            q01=self.sketch.quantile(0.01),
            q99=self.sketch.quantile(0.99),
        )

    def cpk(self, *, lower: float | None = None,
            upper: float | None = None) -> float:
        """Process capability index from the streaming moments (same
        semantics as :func:`repro.mc.statistics.cpk`)."""
        if self.moments.n < 2:
            raise ValueError("need at least two samples")
        return _cpk_from_moments(self.moments.mean, self.moments.std,
                                 lower, upper)

    def relative_spread_pct(self, k_sigma: float = 3.0) -> float:
        """``k_sigma * std / |mean| * 100`` from the streaming moments
        (same semantics and guards as
        :func:`repro.mc.statistics.relative_spread_pct`)."""
        if _mean_is_degenerate(self.moments.mean):
            raise ValueError("population mean is zero; the relative spread "
                             "is undefined")
        return k_sigma * self.moments.std / abs(self.moments.mean) * 100.0

    def state(self) -> dict[str, np.ndarray]:
        state = {"moments": self.moments.state()}
        for key, data in self.sketch.state().items():
            state[f"sketch_{key}"] = data
        return state

    @classmethod
    def from_state(cls, state: dict) -> "StreamingAccumulator":
        accumulator = cls.__new__(cls)
        accumulator.moments = StreamingMoments.from_state(state["moments"])
        accumulator.sketch = QuantileSketch.from_state(
            state["sketch_values"], state["sketch_weights"],
            state["sketch_meta"])
        return accumulator


class YieldCounter:
    """Streaming pass/fail counts against a spec set.

    Accumulates the overall pass count (every spec must pass for a die
    to count) and per-spec pass counts chunk by chunk, so a yield
    estimate never needs the materialised population.
    """

    def __init__(self, specs) -> None:
        self.specs = specs
        self.passed = 0
        self.total = 0
        self.per_spec = {spec.name: 0 for spec in specs}

    def update(self, performance: dict) -> "YieldCounter":
        """Fold one chunk of performance arrays into the counts."""
        mask = self.specs.pass_mask(performance)
        self.passed += int(np.count_nonzero(mask))
        self.total += int(mask.size)
        for spec in self.specs:
            values = np.asarray(performance[spec.name])
            self.per_spec[spec.name] += int(
                np.count_nonzero(spec.satisfied(values)))
        return self

    def merge(self, other: "YieldCounter") -> "YieldCounter":
        """Fold another counter's counts into this one."""
        if other.specs.describe() != self.specs.describe():
            raise ReproError("cannot merge yield counters over different "
                             "spec sets")
        self.passed += other.passed
        self.total += other.total
        for name, count in other.per_spec.items():
            self.per_spec[name] += count
        return self

    @property
    def fraction(self) -> float:
        """Point estimate of the yield."""
        if self.total == 0:
            raise ValueError("no samples observed")
        return self.passed / self.total

    def interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Wilson score interval on the true yield."""
        # Runtime import: repro.yieldmodel depends on repro.mc, so the
        # reverse edge must not exist at module-import time.
        from ..yieldmodel.estimator import wilson_interval
        return wilson_interval(self.passed, self.total, confidence)

    def state(self) -> np.ndarray:
        return np.array([float(self.passed), float(self.total)] +
                        [float(self.per_spec[s.name]) for s in self.specs])

    def load_state(self, state) -> "YieldCounter":
        state = np.asarray(state, dtype=float)
        self.passed = int(state[0])
        self.total = int(state[1])
        for index, spec in enumerate(self.specs):
            self.per_spec[spec.name] = int(state[2 + index])
        return self


@dataclass(frozen=True)
class AdaptiveStop:
    """Sequential stopping rule of a streaming MC run.

    The run terminates once the confidence interval of the watched
    metric is narrower than ``ci_width`` (and at least ``min_samples``
    were drawn); otherwise it runs to ``MCConfig.n_samples``, which acts
    as the sample *cap*.

    Attributes
    ----------
    metric:
        ``"yield"`` -- full width of the Wilson interval on the yield
        fraction (requires ``specs``); ``"variation"`` -- full width, in
        percentage points, of the normal-theory confidence interval on
        the k-sigma relative variation of *every* tracked performance.
    ci_width:
        Target full CI width (yield fraction, or variation percentage
        points).
    confidence:
        Confidence level of the interval.
    min_samples:
        Never stop before this many samples (early chunks are too noisy
        for the asymptotic intervals).
    check_every:
        Chunks between stopping checks.  This is also the number of
        chunks dispatched to the backend per round, so the stopping
        decision -- and therefore the final sample count -- is
        **independent of the backend and worker count**; set it at or
        above the worker count to keep pools busy.
    k_sigma:
        Guard-band width of the variation metric (the paper's 3-sigma).
    """

    metric: str = "yield"
    ci_width: float = 0.05
    confidence: float = 0.95
    min_samples: int = 64
    check_every: int = 1
    k_sigma: float = 3.0

    def __post_init__(self) -> None:
        if self.metric not in ("yield", "variation"):
            raise ReproError(
                f"AdaptiveStop.metric must be 'yield' or 'variation', "
                f"got {self.metric!r}")
        if not self.ci_width > 0.0:
            raise ReproError("AdaptiveStop.ci_width must be > 0")
        if not 0.0 < self.confidence < 1.0:
            raise ReproError("AdaptiveStop.confidence must lie in (0, 1)")
        if self.min_samples < 2:
            raise ReproError("AdaptiveStop.min_samples must be >= 2")
        if self.check_every < 1:
            raise ReproError("AdaptiveStop.check_every must be >= 1")


def _variation_ci_width(moments: StreamingMoments, k_sigma: float,
                        confidence: float) -> float:
    """Normal-theory CI full width of the k-sigma relative variation.

    Delta-method standard error of the coefficient of variation for a
    normal population, ``se(cv) ~= cv * sqrt(1/(2(n-1)) + cv^2/n)``,
    scaled to the variation percentage ``100 * k * cv``.  Returns
    ``inf`` while the width is undefined (fewer than two samples, or a
    mean at zero where relative variation itself is undefined).
    """
    from ..yieldmodel.estimator import z_value
    if moments.n < 2 or _mean_is_degenerate(moments.mean):
        return math.inf
    cv = moments.std / abs(moments.mean)
    se = cv * math.sqrt(1.0 / (2.0 * (moments.n - 1))
                        + cv * cv / moments.n)
    return 2.0 * z_value(confidence) * 100.0 * k_sigma * se


@dataclass
class StreamingResult:
    """Outcome of a streaming Monte-Carlo run.

    Attributes
    ----------
    accumulators:
        Per-performance streaming statistics (name ->
        :class:`StreamingAccumulator`).
    counter:
        Streaming yield counts, or ``None`` when no specs were given.
    samples_done, samples_cap:
        Samples reduced so far / the configured cap
        (``MCConfig.n_samples``).
    samples_resumed:
        Samples that were already reduced when this invocation started
        (restored from the checkpoint); ``samples_done -
        samples_resumed`` is the simulation work this invocation
        actually performed.
    chunks_done, chunks_total:
        Chunk-cursor position in the fixed chunk plan.
    stopped_early:
        The adaptive stopping rule fired before the cap.
    interrupted:
        The run hit ``max_chunks`` (or was resumed and re-interrupted)
        before completing; resume it by calling the driver again with
        the same checkpoint.
    """

    config: MCConfig
    accumulators: dict[str, StreamingAccumulator]
    counter: YieldCounter | None
    samples_done: int
    samples_cap: int
    chunks_done: int
    chunks_total: int
    samples_resumed: int = 0
    stopped_early: bool = False
    interrupted: bool = False
    adaptive: AdaptiveStop | None = None
    ci_width: float = field(default=math.inf)

    @property
    def complete(self) -> bool:
        """The run finished (adaptively or by exhausting the cap)."""
        return not self.interrupted

    @property
    def confidence(self) -> float:
        """Confidence level every reported interval uses: the adaptive
        rule's when one governed the run (the stated interval must be
        the one the run stopped on), 0.95 otherwise."""
        return (self.adaptive.confidence if self.adaptive is not None
                else 0.95)

    def summaries(self) -> dict[str, PopulationSummary]:
        """Per-performance population summaries."""
        return {name: acc.summary()
                for name, acc in self.accumulators.items()}

    def variation_percent(self, name: str, k_sigma: float = 3.0) -> float:
        """k-sigma relative variation of one performance, in percent."""
        return self.accumulators[name].relative_spread_pct(k_sigma)

    def describe(self) -> str:
        """Multi-line report: per-performance stats, yield, stop state."""
        lines = []
        for name, accumulator in sorted(self.accumulators.items()):
            summary = accumulator.summary()
            try:
                spread = f" spread(3s)={accumulator.relative_spread_pct():.3f}%"
            except ValueError:
                spread = ""
            lines.append(f"{name}: {summary.describe()}{spread}")
        if self.counter is not None and self.counter.total:
            confidence = self.confidence
            lo, hi = self.counter.interval(confidence)
            lines.append(
                f"yield {self.counter.passed}/{self.counter.total} = "
                f"{100.0 * self.counter.fraction:.2f}% "
                f"(Wilson {confidence:.0%} CI: "
                f"[{100 * lo:.2f}%, {100 * hi:.2f}%])")
        if self.interrupted:
            lines.append(f"interrupted at {self.samples_done}/"
                         f"{self.samples_cap} samples "
                         f"(chunk {self.chunks_done}/{self.chunks_total}; "
                         f"resume from the checkpoint)")
        elif self.stopped_early:
            lines.append(
                f"adaptive stop after {self.samples_done}/"
                f"{self.samples_cap} samples "
                f"({self.adaptive.metric} CI width "
                f"{self.ci_width:.4g} <= {self.adaptive.ci_width:g})")
        else:
            lines.append(f"completed {self.samples_done} samples")
        return "\n".join(lines)


def _fingerprint(config: MCConfig, pdk: ProcessKit, stage: str, specs,
                 adaptive: AdaptiveStop | None,
                 sketch_capacity: int) -> str:
    """Checkpoint compatibility key (canonical fingerprint form).

    Covers every *inspectable* input that shapes the sample population
    or the accumulator state -- the MC configuration, the process kit's
    name, the stream stage, the spec set, the stopping rule -- plus the
    library version (via :func:`repro.cache.canonical_fingerprint`, so
    a code upgrade can never silently resume an old run's state), and
    deliberately excludes the backend/worker choice, which never
    affects numeric results.  The evaluator itself is an opaque
    callable the fingerprint cannot see: callers whose evaluator can
    change between invocations (e.g. a design under iteration) must
    scope the ``stage`` key to the design, as the flow's verification
    stage does by hashing the verified design parameters into it.
    """
    payload = {
        "pdk": pdk.name,
        "n_samples": config.n_samples,
        "seed": config.seed,
        "chunk_lanes": config.chunk_lanes,
        "include_global": config.include_global,
        "include_mismatch": config.include_mismatch,
        "specs": specs.describe() if specs is not None else "",
        "adaptive": ([adaptive.metric, adaptive.ci_width,
                      adaptive.confidence, adaptive.min_samples,
                      adaptive.check_every, adaptive.k_sigma]
                     if adaptive is not None else []),
        "sketch_capacity": sketch_capacity,
    }
    return canonical_fingerprint("mc-streaming", payload, evaluator=stage)


def _write_checkpoint(path: Path, fingerprint: str, cursor: int,
                      accumulators: dict[str, StreamingAccumulator],
                      counter: YieldCounter | None) -> None:
    arrays: dict[str, np.ndarray] = {
        "cursor": np.array([cursor]),
        "fingerprint": np.frombuffer(
            fingerprint.encode(), dtype=np.uint8),
        "names": np.frombuffer(
            json.dumps(sorted(accumulators)).encode(),
            dtype=np.uint8),
    }
    for name, accumulator in accumulators.items():
        for key, data in accumulator.state().items():
            arrays[f"acc_{name}__{key}"] = data
    if counter is not None:
        arrays["yield_counts"] = counter.state()
    # Atomic and crash-safe: a kill mid-write leaves the previous
    # checkpoint intact, and concurrent jobs sharing a checkpoint path
    # get unique temp names (per pid and call) instead of clobbering
    # each other's half-written file.
    atomic_write_npz(path, arrays)


def _read_checkpoint(path: Path, fingerprint: str, specs):
    """Restore ``(cursor, accumulators, counter)`` from a checkpoint."""
    with np.load(path) as data:
        stored = bytes(data["fingerprint"]).decode("utf-8")
        if stored != fingerprint:
            raise ReproError(
                f"checkpoint {path} was written by an incompatible "
                f"configuration; delete it or match the original "
                f"config (expected {fingerprint}, found {stored})")
        names = json.loads(bytes(data["names"]).decode("utf-8"))
        accumulators = {}
        for name in names:
            state = {key[len(f"acc_{name}__"):]: data[key]
                     for key in data.files
                     if key.startswith(f"acc_{name}__")}
            accumulators[name] = StreamingAccumulator.from_state(state)
        counter = None
        if specs is not None:
            counter = YieldCounter(specs).load_state(data["yield_counts"])
        return int(data["cursor"][0]), accumulators, counter


def _ci_width_now(adaptive: AdaptiveStop,
                  accumulators: dict[str, StreamingAccumulator],
                  counter: YieldCounter | None) -> float:
    """Current full CI width of the watched metric (``inf`` = unsettled)."""
    if adaptive.metric == "yield":
        if counter is None or counter.total == 0:
            return math.inf
        lo, hi = counter.interval(adaptive.confidence)
        return hi - lo
    if not accumulators:
        return math.inf
    return max(_variation_ci_width(acc.moments, adaptive.k_sigma,
                                   adaptive.confidence)
               for acc in accumulators.values())


def monte_carlo_streaming(evaluator, pdk: ProcessKit,
                          config: MCConfig | None = None, *,
                          specs=None,
                          adaptive: AdaptiveStop | None = None,
                          checkpoint=None,
                          max_chunks: int | None = None,
                          sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
                          stage: str = "mc-single",
                          progress=None) -> StreamingResult:
    """Streaming Monte Carlo on one design.

    The streaming counterpart of :func:`repro.mc.engine.monte_carlo`:
    the same evaluator contract, the same chunk plan and random streams
    (a streaming run reduces exactly the population the batch engine
    would concatenate), but every chunk is folded into mergeable
    accumulators the moment it completes, so peak memory is bounded by
    ``chunk_lanes`` lanes plus the constant accumulator state -- never
    by ``n_samples``.

    Parameters
    ----------
    evaluator:
        Callable ``(ProcessSample) -> dict[name, (S,) array]``, exactly
        as for :func:`monte_carlo`.
    specs:
        Optional :class:`repro.measure.specs.SpecSet`; when given, a
        :class:`YieldCounter` accumulates streaming pass counts
        (required for ``adaptive.metric == "yield"``).
    adaptive:
        Optional :class:`AdaptiveStop`; ``config.n_samples`` then acts
        as the sample cap rather than an exact count.
    checkpoint:
        Optional path.  If the file exists the run **resumes** from it
        (the configuration must match); the file is rewritten atomically
        after every completed round, so an interrupted run loses at most
        one round of work.
    max_chunks:
        Stop (with ``interrupted=True``) after this many chunks *in this
        invocation* -- the sharding/interruption hook: combined with
        ``checkpoint``, a long run can be spread over many invocations,
        and the final state is bit-identical to an uninterrupted run.
    sketch_capacity:
        Retained-sample budget of each quantile sketch.
    stage:
        Random-stream stage key (matching :func:`monte_carlo`'s).
    progress:
        Optional callback ``(samples_done, samples_cap)``.

    Notes
    -----
    Chunk results are folded in task-submission order whatever the
    backend, so for a fixed configuration the final accumulator state is
    bit-identical across serial, thread, and forked-process execution --
    and adaptive runs stop at the same sample count on every backend,
    because rounds are sized by ``adaptive.check_every``, not by the
    worker count.
    """
    config = config or MCConfig()
    bounds = _plan_single_chunks(config, stage)
    run_chunk = _single_chunk_runner(evaluator, pdk, config)
    backend = resolve_backend(config.backend, config.workers)
    if adaptive is not None and adaptive.metric == "yield" and specs is None:
        raise ReproError("adaptive yield stopping needs a spec set")

    fingerprint = _fingerprint(config, pdk, stage, specs, adaptive,
                               sketch_capacity)
    checkpoint_path = Path(checkpoint) if checkpoint else None
    accumulators: dict[str, StreamingAccumulator] = {}
    counter = YieldCounter(specs) if specs is not None else None
    cursor = 0
    if checkpoint_path is not None and checkpoint_path.exists():
        cursor, accumulators, counter = _read_checkpoint(
            checkpoint_path, fingerprint, specs)
    resumed_cursor = cursor

    if adaptive is not None:
        round_size = adaptive.check_every
    else:
        # No stopping decision between rounds: size them by the worker
        # count so pooled backends stay busy while the number of chunk
        # results held in memory at once stays bounded.
        round_size = max(1, backend.workers)

    def samples_done() -> int:
        return bounds[cursor - 1][1] if cursor else 0

    def at_check_boundary() -> bool:
        # Stopping checks happen only at absolute multiples of the
        # round size (or the end of the plan), never at whatever cursor
        # a max_chunks interruption happened to land on -- so a resumed
        # run evaluates the stop rule at exactly the cursors an
        # uninterrupted run would, keeping the bit-identical-resume
        # contract for any check_every.
        return cursor % round_size == 0 or cursor == len(bounds)

    stopped_early = False
    interrupted = False
    width = _ci_width_now(adaptive, accumulators, counter) \
        if adaptive is not None else math.inf
    if adaptive is not None and cursor and at_check_boundary() and \
            samples_done() >= adaptive.min_samples and \
            width <= adaptive.ci_width:
        stopped_early = True  # a resumed run that was already settled

    chunks_this_call = 0
    with telemetry.span("mc.stream", stage=stage, cap=config.n_samples,
                        resumed=resumed_cursor) as stream_span:
        while cursor < len(bounds) and not stopped_early:
            if max_chunks is not None and chunks_this_call >= max_chunks:
                interrupted = True
                break
            # Run to the next round boundary (re-aligning after a
            # mid-round interruption), clipped by this invocation's
            # chunk budget.
            take = round_size - cursor % round_size
            if max_chunks is not None:
                take = min(take, max_chunks - chunks_this_call)
            tasks = bounds[cursor:cursor + take]
            telemetry.counter_add("mc.stream.rounds")
            parts = backend.run(run_chunk, tasks)
            # Fold in task-submission order: deterministic on every
            # backend.
            for part in parts:
                for name, values in part.items():
                    if name not in accumulators:
                        accumulators[name] = StreamingAccumulator(
                            sketch_capacity)
                    accumulators[name].update(values)
                if counter is not None:
                    counter.update(part)
            cursor += len(tasks)
            chunks_this_call += len(tasks)
            if checkpoint_path is not None:
                _write_checkpoint(checkpoint_path, fingerprint, cursor,
                                  accumulators, counter)
            if progress is not None:
                progress(samples_done(), config.n_samples)
            if adaptive is not None and at_check_boundary() and \
                    samples_done() >= adaptive.min_samples:
                width = _ci_width_now(adaptive, accumulators, counter)
                if width <= adaptive.ci_width:
                    stopped_early = True
        stream_span.set(samples=samples_done(), chunks=cursor,
                        stopped_early=stopped_early,
                        interrupted=interrupted)

    return StreamingResult(
        config=config,
        accumulators=accumulators,
        counter=counter,
        samples_done=samples_done(),
        samples_cap=config.n_samples,
        chunks_done=cursor,
        chunks_total=len(bounds),
        samples_resumed=(bounds[resumed_cursor - 1][1]
                         if resumed_cursor else 0),
        stopped_early=stopped_early,
        interrupted=interrupted,
        adaptive=adaptive,
        ci_width=width,
    )
