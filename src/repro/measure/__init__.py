"""Performance measurement: AC measures and specification objects."""

from .acmeas import (crossing_frequency, dc_gain_db, f3db, gain_margin_db,
                     passband_ripple_db, phase_margin,
                     stopband_attenuation_db, unity_gain_frequency,
                     value_at_frequency)
from .specs import Spec, SpecSet

__all__ = [
    "crossing_frequency", "dc_gain_db", "f3db", "gain_margin_db",
    "passband_ripple_db", "phase_margin", "stopband_attenuation_db",
    "unity_gain_frequency", "value_at_frequency",
    "Spec", "SpecSet",
]
