"""AC measurement extraction (batched).

Turns AC sweep data into the scalar performance numbers the paper's flow
optimises: low-frequency open-loop gain [dB], phase margin [deg],
unity-gain frequency, -3 dB bandwidth, gain margin, plus the filter-mask
measures (passband ripple, stopband attenuation) used by the section-5
application example.

All functions accept stacked arrays ``(B, F)`` (magnitude in dB, phase in
unwrapped degrees) over a shared frequency grid ``(F,)`` and return shape
``(B,)`` results, with ``nan`` marking lanes where the feature does not
exist in the sweep (e.g. gain never crosses 0 dB).  Crossings are located
by linear interpolation in ``log10(f)``, matching how designers read Bode
plots.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dc_gain_db", "unity_gain_frequency", "phase_margin", "gain_margin_db",
    "f3db", "value_at_frequency", "passband_ripple_db",
    "stopband_attenuation_db", "crossing_frequency",
]


def dc_gain_db(mag_db: np.ndarray) -> np.ndarray:
    """Low-frequency gain: the magnitude at the first sweep point [dB]."""
    mag_db = np.atleast_2d(mag_db)
    return mag_db[:, 0]


def crossing_frequency(freqs: np.ndarray, values: np.ndarray,
                       target, *, rising: bool = False) -> np.ndarray:
    """First frequency where ``values`` crosses ``target``.

    Parameters
    ----------
    values:
        Shape ``(B, F)``; monotone behaviour is not required -- the first
        crossing in sweep order is returned.
    target:
        Scalar or shape ``(B,)`` per-lane target.
    rising:
        Direction of the crossing (default: falling through the target).

    Returns
    -------
    Crossing frequencies, shape ``(B,)``; ``nan`` where no crossing occurs.
    """
    freqs = np.asarray(freqs, dtype=float)
    values = np.atleast_2d(np.asarray(values, dtype=float))
    target_arr = np.broadcast_to(np.asarray(target, dtype=float).reshape(-1, 1),
                                 (values.shape[0], 1))
    above = values > target_arr if not rising else values < target_arr
    # A crossing at index k means above[k-1] & ~above[k].
    crossed = above[:, :-1] & ~above[:, 1:]
    has_crossing = crossed.any(axis=1)
    first = np.argmax(crossed, axis=1)  # index k-1 of the bracketing pair

    result = np.full(values.shape[0], np.nan)
    lanes = np.nonzero(has_crossing)[0]
    if lanes.size == 0:
        return result
    k = first[lanes]
    v0 = values[lanes, k]
    v1 = values[lanes, k + 1]
    t = target_arr[lanes, 0]
    frac = np.where(v1 != v0, (t - v0) / (v1 - v0), 0.0)
    log_f = np.log10(freqs)
    result[lanes] = 10.0 ** (log_f[k] + frac * (log_f[k + 1] - log_f[k]))
    return result


def value_at_frequency(freqs: np.ndarray, values: np.ndarray,
                       frequency) -> np.ndarray:
    """Interpolate ``values`` (``(B, F)``) at ``frequency`` (scalar or
    ``(B,)``), linear in ``log10(f)``; ``nan`` outside the sweep."""
    freqs = np.asarray(freqs, dtype=float)
    values = np.atleast_2d(np.asarray(values, dtype=float))
    frequency = np.broadcast_to(np.asarray(frequency, dtype=float),
                                (values.shape[0],))
    log_f = np.log10(freqs)
    result = np.full(values.shape[0], np.nan)
    valid = ((frequency >= freqs[0]) & (frequency <= freqs[-1])
             & np.isfinite(frequency))
    lanes = np.nonzero(valid)[0]
    if lanes.size == 0:
        return result
    log_q = np.log10(frequency[lanes])
    k = np.clip(np.searchsorted(log_f, log_q) - 1, 0, freqs.size - 2)
    frac = (log_q - log_f[k]) / (log_f[k + 1] - log_f[k])
    result[lanes] = (values[lanes, k]
                     + frac * (values[lanes, k + 1] - values[lanes, k]))
    return result


def unity_gain_frequency(freqs: np.ndarray, mag_db: np.ndarray) -> np.ndarray:
    """Frequency where the gain falls through 0 dB [Hz]."""
    return crossing_frequency(freqs, mag_db, 0.0)


def phase_margin(freqs: np.ndarray, mag_db: np.ndarray,
                 phase_deg: np.ndarray) -> np.ndarray:
    """Phase margin: ``180 - (phase lag accumulated at unity gain)`` [deg].

    The phase lag is measured relative to the low-frequency phase so the
    result is independent of whether the amplifier is wired inverting or
    non-inverting in the testbench.
    """
    mag_db = np.atleast_2d(mag_db)
    phase_deg = np.atleast_2d(phase_deg)
    f_unity = unity_gain_frequency(freqs, mag_db)
    phase_at_unity = value_at_frequency(freqs, phase_deg, f_unity)
    lag = phase_deg[:, 0] - phase_at_unity
    return 180.0 - lag


def gain_margin_db(freqs: np.ndarray, mag_db: np.ndarray,
                   phase_deg: np.ndarray) -> np.ndarray:
    """Gain margin: ``-|H|`` dB at the 180-degree phase-lag frequency."""
    mag_db = np.atleast_2d(mag_db)
    phase_deg = np.atleast_2d(phase_deg)
    lag = phase_deg[:, :1] - phase_deg  # accumulated lag, (B, F)
    f_180 = crossing_frequency(freqs, -lag, -180.0)
    mag_at_180 = value_at_frequency(freqs, mag_db, f_180)
    return -mag_at_180


def f3db(freqs: np.ndarray, mag_db: np.ndarray) -> np.ndarray:
    """-3 dB bandwidth relative to the low-frequency gain [Hz]."""
    mag_db = np.atleast_2d(mag_db)
    return crossing_frequency(freqs, mag_db, mag_db[:, 0] - 3.0)


def passband_ripple_db(freqs: np.ndarray, mag_db: np.ndarray,
                       f_pass: float) -> np.ndarray:
    """Largest deviation from the DC gain inside the passband [dB].

    Reported as a positive number (0 = perfectly flat).
    """
    freqs = np.asarray(freqs, dtype=float)
    mag_db = np.atleast_2d(mag_db)
    in_band = freqs <= f_pass
    deviation = np.abs(mag_db[:, in_band] - mag_db[:, :1])
    return deviation.max(axis=1)


def stopband_attenuation_db(freqs: np.ndarray, mag_db: np.ndarray,
                            f_stop: float) -> np.ndarray:
    """Minimum attenuation below the DC gain beyond ``f_stop`` [dB].

    Positive numbers mean the stopband is below the passband level.
    ``nan`` when the sweep does not reach ``f_stop``.
    """
    freqs = np.asarray(freqs, dtype=float)
    mag_db = np.atleast_2d(mag_db)
    in_stop = freqs >= f_stop
    if not np.any(in_stop):
        return np.full(mag_db.shape[0], np.nan)
    worst = mag_db[:, in_stop].max(axis=1)
    return mag_db[:, 0] - worst
