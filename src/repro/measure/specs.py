"""Performance specifications and spec sets.

A :class:`Spec` is one inequality on a named performance ("gain >= 50 dB",
"phase margin >= 74 deg", "passband ripple <= 1 dB").  A :class:`SpecSet`
bundles several and evaluates pass/fail masks over batched performance
dictionaries -- the building block of every yield computation in
:mod:`repro.yieldmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecificationError

__all__ = ["Spec", "SpecSet"]

_KINDS = ("ge", "le")


@dataclass(frozen=True)
class Spec:
    """One performance inequality.

    Attributes
    ----------
    name:
        Performance key this spec constrains (e.g. ``"gain_db"``).
    kind:
        ``"ge"`` (performance must be >= limit) or ``"le"``.
    limit:
        The specification limit.
    unit:
        Unit string for reports.
    label:
        Human-readable name for reports (defaults to ``name``).
    """

    name: str
    kind: str
    limit: float
    unit: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SpecificationError(
                f"spec {self.name!r}: kind must be one of {_KINDS}")
        if not np.isfinite(self.limit):
            raise SpecificationError(f"spec {self.name!r}: limit must be finite")

    @property
    def display_name(self) -> str:
        return self.label or self.name

    def margin(self, values) -> np.ndarray:
        """Signed margin to the limit (positive = passing).

        ``nan`` performance values produce ``-inf`` margins: a measurement
        that does not exist cannot satisfy a spec.
        """
        values = np.asarray(values, dtype=float)
        margin = (values - self.limit) if self.kind == "ge" else (self.limit - values)
        return np.where(np.isnan(values), -np.inf, margin)

    def satisfied(self, values) -> np.ndarray:
        """Boolean pass mask."""
        return self.margin(values) >= 0.0

    def describe(self) -> str:
        symbol = ">=" if self.kind == "ge" else "<="
        return f"{self.display_name} {symbol} {self.limit:g} {self.unit}".rstrip()

    def tightened(self, new_limit: float) -> "Spec":
        """A copy with a different limit (used by yield guard-banding)."""
        return Spec(self.name, self.kind, float(new_limit), self.unit, self.label)


class SpecSet:
    """An ordered collection of :class:`Spec` objects."""

    def __init__(self, specs) -> None:
        self.specs: tuple[Spec, ...] = tuple(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate spec names in {names}")
        if not self.specs:
            raise SpecificationError("a SpecSet needs at least one spec")

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __getitem__(self, name: str) -> Spec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise SpecificationError(f"no spec named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    def pass_mask(self, performance: dict[str, np.ndarray]) -> np.ndarray:
        """Elementwise all-specs-pass mask over batched performance data.

        Raises
        ------
        SpecificationError
            If a spec's performance key is missing from ``performance``.
        """
        mask: np.ndarray | None = None
        for spec in self.specs:
            if spec.name not in performance:
                raise SpecificationError(
                    f"performance dict lacks {spec.name!r} "
                    f"(has {sorted(performance)})")
            ok = spec.satisfied(performance[spec.name])
            mask = ok if mask is None else (mask & ok)
        return np.atleast_1d(mask)

    def yield_fraction(self, performance: dict[str, np.ndarray]) -> float:
        """Fraction of batch lanes passing every spec."""
        mask = self.pass_mask(performance)
        return float(np.count_nonzero(mask)) / mask.size

    def worst_margins(self, performance: dict[str, np.ndarray]) -> dict[str, float]:
        """Per-spec worst (minimum) margin across the batch."""
        return {spec.name: float(np.min(spec.margin(performance[spec.name])))
                for spec in self.specs}

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.specs)
