"""Multi-objective optimisation: WBGA (the paper's optimiser), NSGA-II
baseline, Pareto utilities."""

from .ga import GAConfig
from .hypervolume import hypervolume, hypervolume_2d
from .nsga2 import NSGA2Result, run_nsga2
from .pareto import (crowding_distance, dominates, fast_non_dominated_sort,
                     non_dominated_mask, pareto_front_indices)
from .problem import FunctionProblem, Objective, OptimizationProblem
from .wbga import WBGAResult, normalise_weights, run_wbga

__all__ = [
    "GAConfig", "hypervolume", "hypervolume_2d",
    "NSGA2Result", "run_nsga2",
    "crowding_distance", "dominates", "fast_non_dominated_sort",
    "non_dominated_mask", "pareto_front_indices",
    "FunctionProblem", "Objective", "OptimizationProblem",
    "WBGAResult", "normalise_weights", "run_wbga",
]
