"""Genetic-algorithm building blocks.

Real-coded GA operators over normalised ``[0, 1]`` chromosomes, shared by
the paper's WBGA (:mod:`repro.moo.wbga`) and the NSGA-II reference
implementation (:mod:`repro.moo.nsga2`):

* binary tournament selection,
* uniform and blend (BLX-alpha) crossover,
* simulated binary crossover (SBX) and polynomial mutation (Deb's
  operators, used by NSGA-II),
* Gaussian mutation with reflection at the bounds.

All operators are vectorised over the whole mating pool and driven by an
explicit :class:`numpy.random.Generator` so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError

__all__ = ["GAConfig", "tournament_select", "uniform_crossover",
           "blend_crossover", "sbx_crossover", "gaussian_mutation",
           "polynomial_mutation", "reflect_into_bounds"]


@dataclass(frozen=True)
class GAConfig:
    """Shared GA settings (defaults follow the paper's section 4.2 run:
    100 individuals for 100 generations)."""

    population_size: int = 100
    generations: int = 100
    crossover_rate: float = 0.9
    mutation_rate: float = 0.1       # per-gene probability
    mutation_sigma: float = 0.08     # Gaussian mutation width (unit space)
    tournament_size: int = 2
    elite_count: int = 2
    seed: int = 2008                 # DATE 2008 -- the reproduction default

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError("population_size must be >= 2")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise OptimizationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise OptimizationError("mutation_rate must be in [0, 1]")
        if self.elite_count >= self.population_size:
            raise OptimizationError("elite_count must be < population_size")


def tournament_select(fitness: np.ndarray, count: int, size: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Select ``count`` parent indices by ``size``-way tournaments.

    ``fitness`` is maximised; NaN fitness always loses.
    """
    fitness = np.asarray(fitness, dtype=float)
    fitness = np.where(np.isnan(fitness), -np.inf, fitness)
    entrants = rng.integers(0, fitness.size, size=(count, size))
    winner_pos = np.argmax(fitness[entrants], axis=1)
    return entrants[np.arange(count), winner_pos]


def reflect_into_bounds(genes: np.ndarray) -> np.ndarray:
    """Reflect out-of-range unit genes back into ``[0, 1]``.

    Reflection (rather than clipping) avoids probability mass piling up on
    the bounds during long mutation-heavy runs.
    """
    reflected = np.mod(genes, 2.0)
    return np.where(reflected > 1.0, 2.0 - reflected, reflected)


def uniform_crossover(parents_a: np.ndarray, parents_b: np.ndarray,
                      rate: float, rng: np.random.Generator) -> np.ndarray:
    """Uniform crossover: each gene copied from either parent with p=0.5.

    Pairs skip crossover entirely with probability ``1 - rate`` (child =
    parent A).
    """
    take_b = rng.random(parents_a.shape) < 0.5
    children = np.where(take_b, parents_b, parents_a)
    skip = rng.random(parents_a.shape[0]) >= rate
    children[skip] = parents_a[skip]
    return children


def blend_crossover(parents_a: np.ndarray, parents_b: np.ndarray,
                    rate: float, rng: np.random.Generator,
                    alpha: float = 0.35) -> np.ndarray:
    """BLX-alpha crossover: children drawn uniformly from the per-gene
    interval stretched by ``alpha`` beyond both parents."""
    low = np.minimum(parents_a, parents_b)
    high = np.maximum(parents_a, parents_b)
    span = high - low
    samples = rng.random(parents_a.shape)
    children = low - alpha * span + samples * (1.0 + 2.0 * alpha) * span
    skip = rng.random(parents_a.shape[0]) >= rate
    children[skip] = parents_a[skip]
    return reflect_into_bounds(children)


def sbx_crossover(parents_a: np.ndarray, parents_b: np.ndarray,
                  rate: float, rng: np.random.Generator,
                  eta: float = 15.0) -> tuple[np.ndarray, np.ndarray]:
    """Simulated binary crossover (Deb & Agrawal) on unit genes.

    Returns two children per pair.
    """
    u = rng.random(parents_a.shape)
    beta = np.where(u <= 0.5,
                    (2.0 * u) ** (1.0 / (eta + 1.0)),
                    (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (eta + 1.0)))
    mean = 0.5 * (parents_a + parents_b)
    diff = 0.5 * np.abs(parents_b - parents_a)
    child_a = mean - beta * diff
    child_b = mean + beta * diff
    skip = rng.random(parents_a.shape[0]) >= rate
    child_a[skip] = parents_a[skip]
    child_b[skip] = parents_b[skip]
    return (np.clip(child_a, 0.0, 1.0), np.clip(child_b, 0.0, 1.0))


def gaussian_mutation(genes: np.ndarray, rate: float, sigma: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Per-gene Gaussian mutation with reflection at the unit bounds."""
    mutate = rng.random(genes.shape) < rate
    noise = rng.normal(0.0, sigma, genes.shape)
    return reflect_into_bounds(genes + mutate * noise)


def polynomial_mutation(genes: np.ndarray, rate: float,
                        rng: np.random.Generator,
                        eta: float = 20.0) -> np.ndarray:
    """Deb's polynomial mutation on unit genes."""
    u = rng.random(genes.shape)
    mutate = rng.random(genes.shape) < rate
    delta = np.where(
        u < 0.5,
        (2.0 * u) ** (1.0 / (eta + 1.0)) - 1.0,
        1.0 - (2.0 * (1.0 - u)) ** (1.0 / (eta + 1.0)))
    return np.clip(genes + mutate * delta, 0.0, 1.0)
