"""Hypervolume indicator for Pareto fronts of any dimension.

The hypervolume (the objective-space region dominated by a front, measured
against a reference point) is the standard scalar quality measure for
Pareto fronts; the optimiser ablation uses it to compare WBGA and NSGA-II
front quality on equal terms, and the yield-aware search
(:mod:`repro.optimize`) scores its three-objective
(performance x performance x yield) fronts with it.

Two entry points:

* :func:`hypervolume_2d` -- the two-objective ``O(N log N)`` sweep (the
  fast path, kept as the workhorse of every 2-D benchmark);
* :func:`hypervolume`   -- any objective count.  Two objectives delegate
  to the sweep; three or more use a dimension-sweep recursion: sort by
  the last objective descending and integrate, strip by strip, the
  ``(M-1)``-dimensional hypervolume of the points reaching each strip
  (the "hypervolume by slicing objectives" scheme).  ``O(N^2)`` slices
  of an ``(M-1)``-dim problem each -- comfortably fast for the
  tens-to-hundreds-point fronts the optimisers produce.

Maximisation orientation; the reference point must be dominated by every
front point (typically the nadir of the union of the fronts under
comparison).
"""

from __future__ import annotations

import numpy as np

from ..errors import OptimizationError
from .pareto import non_dominated_mask

__all__ = ["hypervolume", "hypervolume_2d"]


def hypervolume_2d(points: np.ndarray, reference: tuple[float, float]) -> float:
    """Dominated area of a two-objective point set above ``reference``.

    Parameters
    ----------
    points:
        Objective values, shape ``(N, 2)``, maximisation orientation.
        Dominated and duplicate points are filtered internally, so any
        archive can be passed directly.
    reference:
        The reference (lower-left) corner; every counted point must
        dominate it.  Points at or below the reference in either
        objective contribute nothing.

    Returns
    -------
    The dominated area (0.0 for an empty or fully-out-of-range set).

    >>> hypervolume_2d([[1.0, 1.0]], (0.0, 0.0))
    1.0
    >>> hypervolume_2d([[1.0, 2.0], [2.0, 1.0]], (0.0, 0.0))
    3.0
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[1] != 2:
        raise OptimizationError(
            f"hypervolume_2d needs (N, 2) points, got {points.shape}")
    ref_x, ref_y = float(reference[0]), float(reference[1])

    finite = np.all(np.isfinite(points), axis=1)
    above = (points[:, 0] > ref_x) & (points[:, 1] > ref_y)
    candidates = points[finite & above]
    if candidates.shape[0] == 0:
        return 0.0
    front = candidates[non_dominated_mask(candidates)]

    # Sweep in descending first objective; each point adds a rectangle of
    # width (x - ref_x) over the *fresh* strip of the second objective.
    order = np.argsort(front[:, 0])[::-1]
    area = 0.0
    covered_y = ref_y
    for x, y in front[order]:
        if y > covered_y:
            area += (x - ref_x) * (y - covered_y)
            covered_y = y
    return float(area)


def _hv_recursive(front: np.ndarray, reference: np.ndarray) -> float:
    """Dominated volume of a clean front (finite, strictly above the
    reference in every coordinate, mutually non-dominated)."""
    m = front.shape[1]
    if m == 1:
        return float(front[:, 0].max() - reference[0])
    if m == 2:
        return hypervolume_2d(front, (reference[0], reference[1]))
    # Slice along the last objective: sweep strips from the highest value
    # down to the reference; within a strip, every point whose last
    # coordinate reaches the strip contributes its (M-1)-dim projection.
    order = np.argsort(front[:, -1])[::-1]
    sorted_front = front[order]
    last = sorted_front[:, -1]
    volume = 0.0
    for k in range(sorted_front.shape[0]):
        below = last[k + 1] if k + 1 < last.size else reference[-1]
        height = last[k] - below
        if height <= 0.0:
            continue  # duplicate level: handled by the later, wider slice
        projection = sorted_front[:k + 1, :-1]
        slab = projection[non_dominated_mask(projection)]
        volume += height * _hv_recursive(slab, reference[:-1])
    return volume


def hypervolume(points: np.ndarray, reference) -> float:
    """Dominated hypervolume of a point set of any objective count.

    Parameters
    ----------
    points:
        Objective values, shape ``(N, M)``, maximisation orientation.
        Dominated, duplicate, non-finite, and out-of-range rows are
        filtered internally, so any archive can be passed directly.
    reference:
        Length-``M`` reference corner; only points strictly greater than
        it in *every* objective contribute (consistent with
        :func:`hypervolume_2d`).

    Returns
    -------
    The dominated volume (0.0 for an empty or fully-out-of-range set).

    >>> hypervolume([[1.0, 1.0, 1.0]], (0.0, 0.0, 0.0))
    1.0
    >>> hypervolume([[2.0, 1.0], [1.0, 2.0]], (0.0, 0.0))
    3.0
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    reference = np.asarray(reference, dtype=float).reshape(-1)
    if points.shape[1] != reference.size:
        raise OptimizationError(
            f"hypervolume needs (N, {reference.size}) points for a "
            f"{reference.size}-dim reference, got {points.shape}")
    if points.shape[1] == 2:
        return hypervolume_2d(points, (reference[0], reference[1]))
    finite = np.all(np.isfinite(points), axis=1)
    above = np.all(points > reference[None, :], axis=1)
    candidates = points[finite & above]
    if candidates.shape[0] == 0:
        return 0.0
    front = candidates[non_dominated_mask(candidates)]
    return float(_hv_recursive(front, reference))
