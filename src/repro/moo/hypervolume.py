"""Hypervolume indicator for two-objective fronts.

The hypervolume (the objective-space area dominated by a front, measured
against a reference point) is the standard scalar quality measure for
Pareto fronts; the optimiser ablation uses it to compare WBGA and NSGA-II
front quality on equal terms.

Maximisation orientation; the reference point must be dominated by every
front point (typically the nadir of the union of the fronts under
comparison).
"""

from __future__ import annotations

import numpy as np

from ..errors import OptimizationError
from .pareto import non_dominated_mask

__all__ = ["hypervolume_2d"]


def hypervolume_2d(points: np.ndarray, reference: tuple[float, float]) -> float:
    """Dominated area of a two-objective point set above ``reference``.

    Parameters
    ----------
    points:
        Objective values, shape ``(N, 2)``, maximisation orientation.
        Dominated and duplicate points are filtered internally, so any
        archive can be passed directly.
    reference:
        The reference (lower-left) corner; every counted point must
        dominate it.  Points at or below the reference in either
        objective contribute nothing.

    Returns
    -------
    The dominated area (0.0 for an empty or fully-out-of-range set).

    >>> hypervolume_2d([[1.0, 1.0]], (0.0, 0.0))
    1.0
    >>> hypervolume_2d([[1.0, 2.0], [2.0, 1.0]], (0.0, 0.0))
    3.0
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[1] != 2:
        raise OptimizationError(
            f"hypervolume_2d needs (N, 2) points, got {points.shape}")
    ref_x, ref_y = float(reference[0]), float(reference[1])

    finite = np.all(np.isfinite(points), axis=1)
    above = (points[:, 0] > ref_x) & (points[:, 1] > ref_y)
    candidates = points[finite & above]
    if candidates.shape[0] == 0:
        return 0.0
    front = candidates[non_dominated_mask(candidates)]

    # Sweep in descending first objective; each point adds a rectangle of
    # width (x - ref_x) over the *fresh* strip of the second objective.
    order = np.argsort(front[:, 0])[::-1]
    area = 0.0
    covered_y = ref_y
    for x, y in front[order]:
        if y > covered_y:
            area += (x - ref_x) * (y - covered_y)
            covered_y = y
    return float(area)
