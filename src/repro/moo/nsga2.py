"""NSGA-II reference optimiser.

The paper cites Deb's multi-objective optimisation textbook [8]; NSGA-II
is the canonical algorithm from that line of work and serves here as the
reference baseline against which the WBGA's Pareto front quality is
benchmarked (ablation benchmark ``benchmarks/test_ablation_optimizer.py``).

Standard implementation: fast non-dominated sorting, crowding-distance
diversity preservation, binary tournament on (rank, crowding), SBX
crossover and polynomial mutation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ga import GAConfig, polynomial_mutation, sbx_crossover
from .pareto import crowding_distance, fast_non_dominated_sort, non_dominated_mask
from .problem import OptimizationProblem

__all__ = ["NSGA2Result", "run_nsga2"]


@dataclass
class NSGA2Result:
    """Result of an NSGA-II run (same archive shape as WBGA for easy
    comparison).

    ``annotations`` is an optional per-individual side channel aligned
    with ``all_parameters`` rows -- the yield-aware search
    (:mod:`repro.optimize`) stores each individual's ladder yield
    estimate, standard error, fidelity, and simulator cost there.
    """

    problem: OptimizationProblem
    config: GAConfig
    all_parameters: np.ndarray
    all_objectives: np.ndarray
    final_parameters: np.ndarray
    final_objectives: np.ndarray
    annotations: dict[str, np.ndarray] | None = None

    @property
    def evaluations(self) -> int:
        return self.all_parameters.shape[0]

    def pareto_mask(self) -> np.ndarray:
        return non_dominated_mask(self.problem.oriented(self.all_objectives))

    def pareto_parameters(self) -> np.ndarray:
        return self.all_parameters[self.pareto_mask()]

    def pareto_objectives(self) -> np.ndarray:
        return self.all_objectives[self.pareto_mask()]

    def pareto_count(self) -> int:
        return int(np.count_nonzero(self.pareto_mask()))

    def pareto_annotations(self) -> dict[str, np.ndarray]:
        """The annotation columns restricted to the Pareto front
        (empty when no annotations were attached)."""
        if not self.annotations:
            return {}
        mask = self.pareto_mask()
        return {name: values[mask]
                for name, values in self.annotations.items()}


def _rank_and_crowding(oriented: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-individual front rank (0 = best) and crowding distance."""
    n = oriented.shape[0]
    rank = np.empty(n, dtype=int)
    crowding = np.empty(n)
    for level, front in enumerate(fast_non_dominated_sort(oriented)):
        rank[front] = level
        crowding[front] = crowding_distance(oriented[front])
    return rank, crowding


def _crowded_tournament(rank: np.ndarray, crowding: np.ndarray, count: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Binary tournament with the crowded-comparison operator."""
    a = rng.integers(0, rank.size, count)
    b = rng.integers(0, rank.size, count)
    a_wins = (rank[a] < rank[b]) | ((rank[a] == rank[b])
                                    & (crowding[a] > crowding[b]))
    return np.where(a_wins, a, b)


def run_nsga2(problem: OptimizationProblem,
              config: GAConfig | None = None,
              *, rng: np.random.Generator | None = None) -> NSGA2Result:
    """Run NSGA-II on ``problem`` with the same evaluation budget
    convention as :func:`repro.moo.wbga.run_wbga`."""
    config = config or GAConfig()
    rng = rng or np.random.default_rng(config.seed)
    pop = config.population_size
    n_params = problem.n_parameters

    parents = rng.random((pop, n_params))
    parent_obj = problem(parents)
    history_params = [parents.copy()]
    history_obj = [parent_obj.copy()]

    for _ in range(config.generations - 1):
        oriented = problem.oriented(parent_obj)
        oriented = np.where(np.isfinite(oriented), oriented, -1e300)
        rank, crowding = _rank_and_crowding(oriented)

        idx_a = _crowded_tournament(rank, crowding, pop // 2, rng)
        idx_b = _crowded_tournament(rank, crowding, pop // 2, rng)
        child_a, child_b = sbx_crossover(parents[idx_a], parents[idx_b],
                                         config.crossover_rate, rng)
        children = np.vstack([child_a, child_b])[:pop]
        children = polynomial_mutation(children, config.mutation_rate, rng)
        child_obj = problem(children)
        history_params.append(children.copy())
        history_obj.append(child_obj.copy())

        # Environmental selection over parents + children.
        merged = np.vstack([parents, children])
        merged_obj = np.vstack([parent_obj, child_obj])
        merged_oriented = problem.oriented(merged_obj)
        merged_oriented = np.where(np.isfinite(merged_oriented),
                                   merged_oriented, -1e300)
        fronts = fast_non_dominated_sort(merged_oriented)
        keep: list[int] = []
        for front in fronts:
            if len(keep) + front.size <= pop:
                keep.extend(front.tolist())
            else:
                crowd = crowding_distance(merged_oriented[front])
                order = np.argsort(crowd)[::-1]
                keep.extend(front[order[:pop - len(keep)]].tolist())
                break
        keep_arr = np.asarray(keep)
        parents = merged[keep_arr]
        parent_obj = merged_obj[keep_arr]

    return NSGA2Result(
        problem=problem,
        config=config,
        all_parameters=np.concatenate(history_params, axis=0),
        all_objectives=np.concatenate(history_obj, axis=0),
        final_parameters=parents,
        final_objectives=parent_obj,
    )
