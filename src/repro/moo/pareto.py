"""Pareto dominance utilities.

Implements the paper's section 3.3: extracting the non-dominated
("Pareto-optimal") subset of all evaluated individuals.  The two conditions
quoted there are the textbook definition:

a) any two members of the optimal set are mutually non-dominated;
b) every solution outside the set is dominated by at least one member.

All functions use **maximisation** orientation (callers map minimisation
objectives through :meth:`OptimizationProblem.oriented` first).

For the common two-objective case a sort-and-scan algorithm gives
``O(N log N)``; the general case falls back to a chunked ``O(N^2)``
vectorised comparison that comfortably handles the paper's 10,000-point
population.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dominates", "non_dominated_mask", "pareto_front_indices",
           "crowding_distance", "fast_non_dominated_sort"]


def dominates(a, b) -> bool:
    """Does point ``a`` dominate point ``b`` (maximisation)?

    ``a`` dominates ``b`` when it is no worse in every objective and
    strictly better in at least one.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a >= b) and np.any(a > b))


def _mask_two_objectives(values: np.ndarray) -> np.ndarray:
    """Sort-and-scan non-dominated mask for exactly two objectives."""
    n = values.shape[0]
    # Sort by first objective descending; tie-break second descending so
    # duplicates in objective 0 are scanned best-second-objective first.
    order = np.lexsort((-values[:, 1], -values[:, 0]))
    mask = np.zeros(n, dtype=bool)
    best_second = -np.inf
    best_first_at_best_second = -np.inf
    for idx in order:
        f0, f1 = values[idx]
        if f1 > best_second:
            mask[idx] = True
            best_second = f1
            best_first_at_best_second = f0
        elif f1 == best_second and f0 == best_first_at_best_second:
            # Exact duplicate of a front member: also non-dominated.
            mask[idx] = True
    return mask


def _mask_general(values: np.ndarray, chunk: int = 256) -> np.ndarray:
    """Chunked pairwise non-dominated mask for any objective count."""
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for start in range(0, n, chunk):
        block = values[start:start + chunk]  # (c, M)
        # dominated[i, j]: does values[j] dominate block[i]?
        no_worse = np.all(values[None, :, :] >= block[:, None, :], axis=2)
        better = np.any(values[None, :, :] > block[:, None, :], axis=2)
        dominated_by = no_worse & better
        mask[start:start + chunk] = ~dominated_by.any(axis=1)
    return mask


def non_dominated_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of ``values`` (``(N, M)``,
    maximisation orientation).  Rows containing NaN are never selected."""
    values = np.atleast_2d(np.asarray(values, dtype=float))
    finite = np.all(np.isfinite(values), axis=1)
    mask = np.zeros(values.shape[0], dtype=bool)
    if not np.any(finite):
        return mask
    subset = values[finite]
    if values.shape[1] == 2:
        sub_mask = _mask_two_objectives(subset)
    else:
        sub_mask = _mask_general(subset)
    mask[np.nonzero(finite)[0]] = sub_mask
    return mask


def pareto_front_indices(values: np.ndarray, *,
                         sort_by: int = 0) -> np.ndarray:
    """Indices of the Pareto front, sorted ascending by objective
    ``sort_by`` (handy for building monotone trade-off tables)."""
    mask = non_dominated_mask(values)
    indices = np.nonzero(mask)[0]
    order = np.argsort(np.atleast_2d(values)[indices, sort_by])
    return indices[order]


def crowding_distance(values: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row of ``values`` (``(N, M)``).

    Boundary points receive ``inf``; all distances are normalised by the
    per-objective range.
    """
    values = np.atleast_2d(np.asarray(values, dtype=float))
    n, m = values.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for j in range(m):
        order = np.argsort(values[:, j])
        column = values[order, j]
        span = column[-1] - column[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        distance[order[1:-1]] += (column[2:] - column[:-2]) / span
    return distance


def fast_non_dominated_sort(values: np.ndarray) -> list[np.ndarray]:
    """Deb's fast non-dominated sort: list of fronts (index arrays),
    best front first.  Maximisation orientation."""
    values = np.atleast_2d(np.asarray(values, dtype=float))
    n = values.shape[0]
    # Pairwise dominance matrix (N small enough inside NSGA-II populations).
    no_worse = np.all(values[:, None, :] >= values[None, :, :], axis=2)
    better = np.any(values[:, None, :] > values[None, :, :], axis=2)
    dominates_matrix = no_worse & better  # [i, j] = i dominates j

    domination_count = dominates_matrix.sum(axis=0)  # how many dominate j
    fronts: list[np.ndarray] = []
    remaining = domination_count.copy()
    assigned = np.zeros(n, dtype=bool)
    current = np.nonzero(remaining == 0)[0]
    while current.size:
        fronts.append(current)
        assigned[current] = True
        for i in current:
            remaining[dominates_matrix[i]] -= 1
        current = np.nonzero((remaining == 0) & ~assigned)[0]
    return fronts
