"""Optimisation problem abstraction.

An :class:`OptimizationProblem` is a box-bounded, batch-evaluable,
multi-objective function: optimisers hand it a whole population of
normalised parameter vectors and receive the objective matrix back.  Batch
evaluation is the contract that lets circuit-backed problems solve one
stacked MNA system per generation instead of one per individual.

Objective orientation is declared per objective (``maximize`` /
``minimize``); optimisers work internally in *maximisation* form using
:meth:`OptimizationProblem.oriented`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError

__all__ = ["Objective", "OptimizationProblem", "FunctionProblem"]


@dataclass(frozen=True)
class Objective:
    """One optimisation objective.

    Attributes
    ----------
    name:
        Performance key (e.g. ``"gain_db"``).
    goal:
        ``"maximize"`` or ``"minimize"``.
    unit:
        Unit string for reports.
    """

    name: str
    goal: str = "maximize"
    unit: str = ""

    def __post_init__(self) -> None:
        if self.goal not in ("maximize", "minimize"):
            raise OptimizationError(
                f"objective {self.name!r}: goal must be maximize/minimize")

    @property
    def sign(self) -> float:
        """Multiplier mapping the objective to maximisation form."""
        return 1.0 if self.goal == "maximize" else -1.0


class OptimizationProblem:
    """Base class for box-bounded multi-objective problems.

    Subclasses provide ``parameter_names``, ``objectives`` and implement
    :meth:`evaluate_batch` over *normalised* parameters in ``[0, 1]``.
    """

    parameter_names: tuple[str, ...] = ()
    objectives: tuple[Objective, ...] = ()

    def __init__(self) -> None:
        #: Total individuals evaluated (the paper's "evaluation samples").
        self.evaluation_count = 0

    @property
    def n_parameters(self) -> int:
        return len(self.parameter_names)

    @property
    def n_objectives(self) -> int:
        return len(self.objectives)

    def evaluate_batch(self, unit_params: np.ndarray) -> np.ndarray:
        """Evaluate a population.

        Parameters
        ----------
        unit_params:
            Normalised parameters, shape ``(B, P)`` in ``[0, 1]``.

        Returns
        -------
        Objective values in natural units, shape ``(B, M)``, ordered like
        ``self.objectives``.
        """
        raise NotImplementedError

    def __call__(self, unit_params: np.ndarray) -> np.ndarray:
        unit_params = np.atleast_2d(np.asarray(unit_params, dtype=float))
        if unit_params.shape[1] != self.n_parameters:
            raise OptimizationError(
                f"expected {self.n_parameters} parameters, "
                f"got shape {unit_params.shape}")
        if np.any(unit_params < -1e-12) or np.any(unit_params > 1 + 1e-12):
            raise OptimizationError("normalised parameters must lie in [0, 1]")
        values = np.asarray(self.evaluate_batch(unit_params), dtype=float)
        if values.shape != (unit_params.shape[0], self.n_objectives):
            raise OptimizationError(
                f"evaluate_batch returned shape {values.shape}, expected "
                f"{(unit_params.shape[0], self.n_objectives)}")
        self.evaluation_count += unit_params.shape[0]
        return values

    def oriented(self, objective_values: np.ndarray) -> np.ndarray:
        """Map objective values to maximisation orientation."""
        signs = np.array([obj.sign for obj in self.objectives])
        return np.asarray(objective_values, dtype=float) * signs

    def objective_names(self) -> tuple[str, ...]:
        return tuple(obj.name for obj in self.objectives)


class FunctionProblem(OptimizationProblem):
    """Wrap a plain vectorised function as a problem (used heavily in
    tests and by the filter-design example).

    Parameters
    ----------
    function:
        Callable ``(B, P) -> (B, M)`` over normalised parameters.
    """

    def __init__(self, function, parameter_names, objectives) -> None:
        self.parameter_names = tuple(parameter_names)
        self.objectives = tuple(objectives)
        self._function = function
        super().__init__()

    def evaluate_batch(self, unit_params: np.ndarray) -> np.ndarray:
        return self._function(unit_params)
