"""Weight-Based Genetic Algorithm (WBGA) -- the paper's optimiser.

The paper (section 3.2) optimises with a WBGA [Hajela, Lee & Lin 1993]:
each GA string carries the designable parameters *and* the objective
weights (Figure 4/6), so the genetic algorithm itself searches over weight
vectors instead of a designer fixing them -- "unlike classical weighted
optimisations which often suffer difficulties in determination of the
weight vector".

Chromosome layout (everything normalised to ``[0, 1]``)::

    [ p_1 ... p_P | w_1 ... w_M ]

Weights are normalised by equation (4), ``w_i <- w_i / sum_j w_j``, and the
fitness is the equation-(5) weighted sum of min-max normalised objectives

    O(x_i) = sum_j  w_j(i) * (f_j(x_i) - f_j_min) / (f_j_max - f_j_min)

where ``f_j_min``/``f_j_max`` are running extrema over every individual
evaluated so far (so the normalisation sharpens as the run explores).
Because different individuals carry different weight vectors, the
population spreads across the trade-off curve; the Pareto front is then
extracted from *all* evaluated individuals (section 3.3), not just the
final generation -- with the paper's 100x100 run that is the "10,000
samples" of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import OptimizationError
from .ga import (GAConfig, gaussian_mutation, tournament_select,
                 uniform_crossover)
from .pareto import non_dominated_mask
from .problem import OptimizationProblem

__all__ = ["WBGAResult", "normalise_weights", "run_wbga"]


def normalise_weights(raw_weights: np.ndarray) -> np.ndarray:
    """Equation (4): scale weight vectors to sum to one.

    Degenerate all-zero vectors fall back to equal weighting.
    """
    raw_weights = np.atleast_2d(np.asarray(raw_weights, dtype=float))
    totals = raw_weights.sum(axis=1, keepdims=True)
    m = raw_weights.shape[1]
    equal = np.full_like(raw_weights, 1.0 / m)
    with np.errstate(invalid="ignore", divide="ignore"):
        scaled = raw_weights / totals
    return np.where(totals > 1e-12, scaled, equal)


@dataclass
class WBGAResult:
    """Everything a WBGA run produced.

    Attributes
    ----------
    all_parameters:
        Normalised parameters of every evaluated individual, ``(E, P)``
        (``E = generations * population``; the paper's 10,000).
    all_objectives:
        Natural-unit objective values, ``(E, M)``.
    all_weights:
        Equation-(4)-normalised weight vectors, ``(E, M)``.
    all_fitness:
        Equation-(5) fitness of each individual, ``(E,)``.
    generation_of:
        Generation index of each evaluated individual, ``(E,)``.
    best_fitness_per_generation:
        Convergence trace, ``(G,)``.
    annotations:
        Optional per-individual side channel aligned with
        ``all_parameters`` rows (the yield-aware search stores ladder
        yield estimates, fidelities, and simulator costs here).
    """

    problem: OptimizationProblem
    config: GAConfig
    all_parameters: np.ndarray
    all_objectives: np.ndarray
    all_weights: np.ndarray
    all_fitness: np.ndarray
    generation_of: np.ndarray
    best_fitness_per_generation: np.ndarray
    objective_minima: np.ndarray = field(default=None)
    objective_maxima: np.ndarray = field(default=None)
    annotations: dict[str, np.ndarray] | None = None

    @property
    def evaluations(self) -> int:
        """Total evaluated individuals (Table 5 "Evaluation Samples")."""
        return self.all_parameters.shape[0]

    def pareto_mask(self) -> np.ndarray:
        """Non-dominated mask over all evaluated individuals."""
        return non_dominated_mask(self.problem.oriented(self.all_objectives))

    def pareto_parameters(self) -> np.ndarray:
        """Normalised parameters of the Pareto-optimal individuals."""
        return self.all_parameters[self.pareto_mask()]

    def pareto_objectives(self) -> np.ndarray:
        """Natural-unit objectives of the Pareto-optimal individuals."""
        return self.all_objectives[self.pareto_mask()]

    def pareto_count(self) -> int:
        """Number of Pareto points (the paper reports 1022)."""
        return int(np.count_nonzero(self.pareto_mask()))

    def pareto_annotations(self) -> dict[str, np.ndarray]:
        """The annotation columns restricted to the Pareto front
        (empty when no annotations were attached)."""
        if not self.annotations:
            return {}
        mask = self.pareto_mask()
        return {name: values[mask]
                for name, values in self.annotations.items()}


def _equation5_fitness(oriented: np.ndarray, weights: np.ndarray,
                       f_min: np.ndarray, f_max: np.ndarray) -> np.ndarray:
    """Equation (5): weighted sum of min-max normalised objectives."""
    span = f_max - f_min
    with np.errstate(invalid="ignore", divide="ignore"):
        normalised = (oriented - f_min) / span
    normalised = np.where(span > 1e-300, normalised, 0.5)
    return np.sum(weights * normalised, axis=1)


def run_wbga(problem: OptimizationProblem,
             config: GAConfig | None = None,
             *, rng: np.random.Generator | None = None,
             progress=None) -> WBGAResult:
    """Run the paper's WBGA on ``problem``.

    Parameters
    ----------
    problem:
        A batch-evaluable :class:`OptimizationProblem`.
    config:
        GA settings; the default replicates the paper's 100 x 100 run.
    rng:
        Source of randomness (defaults to ``default_rng(config.seed)``).
    progress:
        Optional callback ``(generation, best_fitness)`` for reporting.

    Returns
    -------
    :class:`WBGAResult` with the complete evaluation history; the Pareto
    front (section 3.3) is available via :meth:`WBGAResult.pareto_mask`.
    """
    config = config or GAConfig()
    if problem.n_objectives < 1:
        raise OptimizationError("problem has no objectives")
    rng = rng or np.random.default_rng(config.seed)

    n_params = problem.n_parameters
    n_obj = problem.n_objectives
    pop = config.population_size
    chromosome = rng.random((pop, n_params + n_obj))

    history_params, history_obj = [], []
    history_weights, history_fitness, history_gen = [], [], []
    best_trace = np.empty(config.generations)
    f_min = np.full(n_obj, np.inf)
    f_max = np.full(n_obj, -np.inf)

    for generation in range(config.generations):
        params = chromosome[:, :n_params]
        weights = normalise_weights(chromosome[:, n_params:])

        objectives = problem(params)               # (B, M) natural units
        oriented = problem.oriented(objectives)    # maximisation frame

        finite = np.isfinite(oriented)
        if np.any(finite):
            f_min = np.minimum(f_min, np.nanmin(
                np.where(finite, oriented, np.inf), axis=0))
            f_max = np.maximum(f_max, np.nanmax(
                np.where(finite, oriented, -np.inf), axis=0))
        fitness = _equation5_fitness(oriented, weights, f_min, f_max)
        fitness = np.where(np.all(finite, axis=1), fitness, -np.inf)

        history_params.append(params.copy())
        history_obj.append(objectives.copy())
        history_weights.append(weights.copy())
        history_fitness.append(fitness.copy())
        history_gen.append(np.full(pop, generation))
        best_trace[generation] = np.max(fitness)
        if progress is not None:
            progress(generation, best_trace[generation])

        if generation == config.generations - 1:
            break

        # Elitism: carry the best strings over unchanged.
        elite_idx = np.argsort(fitness)[::-1][:config.elite_count]
        elites = chromosome[elite_idx]

        # Selection -> crossover -> mutation on the full GA string
        # (parameters and weights evolve together, as in the paper).
        n_children = pop - config.elite_count
        parents_a = chromosome[tournament_select(
            fitness, n_children, config.tournament_size, rng)]
        parents_b = chromosome[tournament_select(
            fitness, n_children, config.tournament_size, rng)]
        children = uniform_crossover(parents_a, parents_b,
                                     config.crossover_rate, rng)
        children = gaussian_mutation(children, config.mutation_rate,
                                     config.mutation_sigma, rng)
        chromosome = np.vstack([elites, children])

    return WBGAResult(
        problem=problem,
        config=config,
        all_parameters=np.concatenate(history_params, axis=0),
        all_objectives=np.concatenate(history_obj, axis=0),
        all_weights=np.concatenate(history_weights, axis=0),
        all_fitness=np.concatenate(history_fitness, axis=0),
        generation_of=np.concatenate(history_gen, axis=0),
        best_fitness_per_generation=best_trace,
        objective_minima=f_min,
        objective_maxima=f_max,
    )
