"""In-loop yield optimisation: multi-fidelity, yield-aware Pareto search.

The paper combines yield and performance only *after* optimisation --
its WBGA front is performance-only and yield enters post-hoc through
variation tables and guard-banding
(:mod:`repro.yieldmodel.targeting`).  This package closes the loop:
yield (or k-sigma robustness) becomes an **objective of the search
itself**, estimated per candidate by a budget-aware multi-fidelity
ladder that composes the library's three cheap yield paths:

* :mod:`~repro.optimize.ladder`   -- the :class:`EstimatorLadder`:
  corner bounds -> surrogate classification -> importance-sampled MC,
  escalating only candidates the cheaper rung cannot confidently place
  relative to the target yield, with per-fidelity cost accounting in a
  :class:`~repro.flow.accounting.SimulationLedger`;
* :mod:`~repro.optimize.problem`  -- :class:`YieldAugmentedProblem`:
  wraps any :class:`~repro.moo.problem.OptimizationProblem` with a
  yield objective, a k-sigma robustness objective, or a
  chance-constraint penalty;
* :mod:`~repro.optimize.search`   -- :func:`run_yield_search` /
  :class:`YieldSearchResult`: NSGA-II or WBGA over the augmented
  problem, returning a yield-annotated archive scored by the
  N-objective :func:`repro.moo.hypervolume.hypervolume`;
* :mod:`~repro.optimize.adapters` -- candidate-evaluator factories for
  the paper's OTA and transistor-level filter;
* :mod:`~repro.optimize.report`   -- front / accounting / guard-band
  comparison tables (the flow's stage-7 artefacts).

See ``docs/optimization.md`` for when each fidelity fires and how the
budget semantics work.
"""

from .adapters import filter_evaluator_factory, ota_evaluator_factory
from .ladder import (FIDELITY_NAMES, EstimatorLadder, LadderBatchEstimate,
                     LadderConfig, LadderCounts)
from .problem import YIELD_MODES, YieldAugmentedProblem
from .report import (format_guardband_comparison, format_ladder_summary,
                     format_yield_front)
from .search import YieldSearchConfig, YieldSearchResult, run_yield_search

__all__ = [
    "FIDELITY_NAMES", "EstimatorLadder", "LadderBatchEstimate",
    "LadderConfig", "LadderCounts",
    "YIELD_MODES", "YieldAugmentedProblem",
    "YieldSearchConfig", "YieldSearchResult", "run_yield_search",
    "ota_evaluator_factory", "filter_evaluator_factory",
    "format_yield_front", "format_ladder_summary",
    "format_guardband_comparison",
]
