"""Candidate-evaluator factories for the paper's two designs.

The :class:`~repro.optimize.ladder.EstimatorLadder` is circuit-agnostic:
it consumes a *factory* that binds one generation's candidate parameters
and returns a :func:`repro.mc.engine.monte_carlo_points`-contract
evaluator ``(point_indices, repeats, ProcessSample) -> dict[name,
(len(point_indices) * repeats,) array]``.  This module provides the two
factories matching the seed designs:

* :func:`ota_evaluator_factory` -- the section-4 symmetrical OTA
  (candidates are normalised Table-1 W/L vectors);
* :func:`filter_evaluator_factory` -- the section-5 anti-aliasing
  filter at transistor level (candidates are normalised C1-C3 vectors,
  the embedded OTA design fixed), with die-consistent process variation
  across both OTA cores and the capacitor bank.

Both tile candidates against the die sample **in order** (candidate 0 x
repeats, candidate 1 x repeats, ...), exactly like the flow's
Monte-Carlo and corner stages, so the same stacked MNA batching applies.
"""

from __future__ import annotations

import numpy as np

from ..designs.filter2 import (DEFAULT_FILTER_SPEC, FilterCaps, FilterSpec,
                               build_filter_transistor, evaluate_filter,
                               filter_frequency_grid)
from ..designs.ota import OTAParameters, evaluate_ota
from ..process import C35, ProcessKit

__all__ = ["ota_evaluator_factory", "filter_evaluator_factory"]


def ota_evaluator_factory(*, pdk: ProcessKit = C35, cl: float = 10e-12,
                          ibias: float = 20e-6,
                          names: tuple[str, ...] = ("gain_db", "pm_deg")):
    """Factory of batched OTA evaluators over normalised W/L candidates.

    Parameters mirror :class:`repro.designs.problems.OTAProblem`;
    ``names`` selects which performance keys are returned (the spec'd
    ones are enough, and fewer keys means less result traffic through
    pooled backends).
    """

    def factory(unit_params: np.ndarray):
        natural = np.atleast_2d(
            OTAParameters.from_normalized(unit_params).to_array())

        def evaluate(point_indices, repeats, die_sample):
            tiled = OTAParameters.from_array(
                np.repeat(natural[point_indices], repeats, axis=0))
            performance = evaluate_ota(tiled, pdk=pdk,
                                       variations=die_sample,
                                       cl=cl, ibias=ibias)
            return {name: performance[name] for name in names}

        return evaluate

    return factory


def filter_evaluator_factory(ota_params: OTAParameters, *,
                             pdk: ProcessKit = C35,
                             spec: FilterSpec = DEFAULT_FILTER_SPEC,
                             freqs: np.ndarray | None = None,
                             names: tuple[str, ...] = ("ripple_db",
                                                       "atten_db")):
    """Factory of batched transistor-level filter evaluators over
    normalised C1-C3 candidates.

    ``ota_params`` is the single OTA design embedded in both cores
    (typically the flow's mid-front reference or the yield-targeted
    selection); process variation applies die-consistently to both
    cores and to the capacitor process scale.
    """
    ota_vector = np.asarray(ota_params.to_array(), dtype=float).reshape(-1)
    measure_freqs = freqs if freqs is not None else filter_frequency_grid()

    def factory(unit_params: np.ndarray):
        caps = FilterCaps.from_normalized(np.atleast_2d(unit_params))
        cap_matrix = np.stack([np.atleast_1d(caps.c1),
                               np.atleast_1d(caps.c2),
                               np.atleast_1d(caps.c3)], axis=1)

        def evaluate(point_indices, repeats, die_sample):
            lanes = cap_matrix[point_indices].repeat(repeats, axis=0)
            tiled_caps = FilterCaps(lanes[:, 0], lanes[:, 1], lanes[:, 2])
            ota = OTAParameters.from_array(
                np.broadcast_to(ota_vector, (lanes.shape[0], ota_vector.size)))
            circuit = build_filter_transistor(tiled_caps, ota, pdk=pdk,
                                              variations=die_sample)
            performance = evaluate_filter(circuit, spec=spec,
                                          freqs=measure_freqs)
            return {name: performance[name] for name in names}

        return evaluate

    return factory
