"""The multi-fidelity yield-estimator ladder.

In-loop yield optimisation needs a yield number for *every* candidate of
every generation -- thousands of estimates per run.  No single estimator
can afford that: direct/importance-sampled Monte Carlo costs hundreds of
simulator calls per candidate, while corner bounds are nearly free but
only resolve designs far from the specification limits.  The
:class:`EstimatorLadder` composes the library's three cheap yield paths
(PRs 1-3) into one budget-aware scheduler:

* **Fidelity 0 -- corner bounds** (:mod:`repro.corners`).  Every
  candidate of the generation is swept across a small deterministic
  corner grid as stacked batch lanes (one
  :func:`~repro.corners.sweep.corner_sweep_points` call through the
  :mod:`repro.exec` backends).  The kit's corners sit on the
  ``corner_k_sigma`` points of the global process model, so the corner
  spread yields a per-performance sigma estimate and hence a nominal
  spec-margin **z-score**; candidates whose every spec margin clears
  ``corner_z`` sigmas (pass or fail) are resolved here for
  ``grid.size`` simulator calls each.
* **Fidelity 1 -- surrogate classification** (:mod:`repro.surrogate`).
  Candidates near the boundary get a small per-candidate
  Latin-hypercube training batch (all escalated candidates stacked into
  lane-bounded chunks through the same backends), a per-performance
  response surface, and a calibrated classification of a large
  synthetic population -- exactly the
  :class:`~repro.surrogate.estimator.SurrogateYieldEstimator` maths,
  at ``surrogate_train`` simulator calls per candidate.  Surrogates
  whose leave-one-out CV error rivals their training spread *refuse*
  and escalate instead of reporting (the refusal contract of PR 3).
* **Fidelity 2 -- importance-sampled Monte Carlo**
  (:mod:`repro.yieldmodel.importance`).  Candidates still ambiguous
  about the target yield get the full mean-shift + likelihood-ratio
  estimator -- the most expensive rung
  (``is_pilot + is_samples`` calls) and the final word.

Escalation is **target-aware**: a candidate escalates only while the
current fidelity cannot confidently place its yield on one side of
``yield_target``.  A ``fidelity_budget`` (total simulator calls) caps
escalation -- when the budget runs dry the most ambiguous candidates are
escalated first and the rest keep their best estimate so far.

Determinism: every random stream is derived from ``(seed, candidate
uid)`` or per-chunk child streams, so batch results are bit-identical
across execution backends and worker counts for a fixed configuration --
the same contract as :mod:`repro.mc.engine`.

Per-fidelity costs are recorded in a
:class:`~repro.flow.accounting.SimulationLedger` (stages ``"yield
ladder: corner bounds"`` / ``"... surrogate classification"`` / ``"...
importance sampling"``) and accumulated in :class:`LadderCounts` for the
benchmark's speedup bookkeeping.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from ..corners.grid import CornerGrid
from ..corners.sweep import corner_sweep_points
from ..errors import OptimizationError
from ..exec import resolve_backend
from ..flow.accounting import SimulationLedger
from ..mc.sampler import (_key_to_int, child_streams, erf,
                          latin_hypercube_normal, stream)
from ..measure.specs import SpecSet
from ..process.pdk import GLOBAL_DIMS, ProcessKit
from ..surrogate.regression import SURROGATE_KINDS, fit_surrogate
from ..yieldmodel.importance import (ImportanceSamplingConfig,
                                     estimate_yield_importance)

__all__ = ["FIDELITY_NAMES", "LadderConfig", "LadderBatchEstimate",
           "LadderCounts", "EstimatorLadder"]

#: Human-readable names of the three ladder rungs, by fidelity index.
FIDELITY_NAMES = ("corner bounds", "surrogate classification",
                  "importance sampling")

#: Clamp on reported robustness z-scores (keeps optimiser arithmetic
#: finite when the corner spread of a performance collapses to zero).
_Z_CLAMP = 50.0


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + erf(np.asarray(z, dtype=float) / np.sqrt(2.0)))


def _derived_seed(seed: int, key: str) -> int:
    """Stable 31-bit seed derived from a root seed and a string key
    (the same FNV-1a hash :func:`repro.mc.sampler.stream` keys with)."""
    return _key_to_int(f"{seed}:{key}") & 0x7FFFFFFF


@dataclass(frozen=True)
class LadderConfig:
    """Settings of the multi-fidelity estimator ladder.

    Attributes
    ----------
    corners:
        Corner set of the fidelity-0 grid: ``"all"`` or a comma list of
        kit corner names.
    corner_vdds, corner_temps:
        Supply/temperature lanes of the fidelity-0 grid.  Empty means
        *nominal only* -- deliberately smaller than the flow's
        verification grid, because this grid is paid per candidate.
    corner_k_sigma:
        Sigma location of the kit's corner shifts (3.0 for C35); turns
        the corner spread into a per-performance sigma estimate.
    corner_z:
        Decisive nominal-margin z-score at fidelity 0: a candidate whose
        every spec margin exceeds ``corner_z`` estimated sigmas (clear
        pass) or falls below ``-corner_z`` (clear fail) stops here.
    surrogate_train:
        Simulator calls per candidate at fidelity 1 (the LHS training
        batch of the per-candidate response surfaces).
    surrogate_population:
        Synthetic population classified through the surrogate (costs
        polynomial evaluations only).
    surrogate_kind:
        Response-surface family (:data:`repro.surrogate.SURROGATE_KINDS`);
        ``"linear"`` by default -- 6 coefficients fit well from the small
        per-candidate batches.
    surrogate_z:
        Decisive distance from the target at fidelity 1, in standard
        errors of the surrogate estimate.
    surrogate_floor:
        Floor on the fidelity-1 standard error (guards against an
        over-confident surrogate stopping the escalation with a
        systematically wrong estimate).
    cv_threshold:
        Refusal limit on ``cv_error / std(training responses)``; a
        refusing surrogate escalates its candidate to fidelity 2.
    is_pilot, is_samples:
        Pilot / main-run sizes of the fidelity-2 importance-sampled
        estimator (cost per candidate is their sum).
    yield_target:
        The yield the escalation logic is trying to resolve candidates
        against (the chance-constraint / reporting target).
    fidelity_budget:
        Simulator-call budget gating **escalation** (rungs 1 and 2);
        ``0`` means unlimited.  The corner floor is exempt: every
        generation's corner sweep runs in full regardless -- each
        candidate needs at least one estimate -- though its cost does
        count against the budget, starving escalation sooner.  So the
        budget bounds the *escalation* spend, not the floor: total
        spend is at most ``budget + total corner-floor cost``.  When
        the budget runs dry the most ambiguous candidates are
        escalated first and the rest keep their best estimate so far.
    min_fidelity:
        Force every candidate to start at this rung; ``2`` is the
        "full-MC everywhere" reference the benchmark compares against.
    max_fidelity:
        Cap on escalation (``0`` = corner bounds only -- the k-sigma
        robustness mode of :class:`~repro.optimize.problem.YieldAugmentedProblem`).
    seed:
        Root seed; every candidate derives private streams from it.
    include_mismatch:
        Carry local (Pelgrom) mismatch in every simulator evaluation.
    confidence:
        Confidence level of downstream interval reporting.
    backend, workers, chunk_lanes:
        Execution-backend routing of every batched stage, exactly as in
        :class:`repro.mc.engine.MCConfig`.
    """

    corners: str = "all"
    corner_vdds: tuple[float, ...] = ()
    corner_temps: tuple[float, ...] = ()
    corner_k_sigma: float = 3.0
    corner_z: float = 2.0
    surrogate_train: int = 32
    surrogate_population: int = 2000
    surrogate_kind: str = "linear"
    surrogate_z: float = 2.0
    surrogate_floor: float = 0.01
    cv_threshold: float = 0.95
    is_pilot: int = 50
    is_samples: int = 200
    yield_target: float = 0.90
    fidelity_budget: int = 0
    min_fidelity: int = 0
    max_fidelity: int = 2
    seed: int = 2008
    include_mismatch: bool = True
    confidence: float = 0.95
    backend: object = None
    workers: int = 0
    chunk_lanes: int = 4000

    def __post_init__(self) -> None:
        if not 0 <= self.min_fidelity <= 2 or not 0 <= self.max_fidelity <= 2:
            raise OptimizationError("ladder fidelities must lie in [0, 2]")
        if self.min_fidelity > self.max_fidelity:
            raise OptimizationError(
                "ladder min_fidelity must not exceed max_fidelity")
        if self.surrogate_kind not in SURROGATE_KINDS:
            raise OptimizationError(
                f"unknown surrogate kind {self.surrogate_kind!r} "
                f"(known: {', '.join(SURROGATE_KINDS)})")
        if not 0.0 < self.yield_target < 1.0:
            raise OptimizationError("yield_target must lie in (0, 1)")

    def corner_grid(self, pdk: ProcessKit) -> CornerGrid:
        """The fidelity-0 grid: named corners x nominal-only V/T unless
        overridden (cheap by design -- it is paid per candidate)."""
        grid = CornerGrid.from_spec(pdk, self.corners)
        return dataclasses.replace(
            grid,
            vdds=tuple(self.corner_vdds) or (pdk.supply,),
            temps_c=tuple(self.corner_temps) or (27.0,))

    def fidelity_cost(self, fidelity: int, pdk: ProcessKit) -> int:
        """Simulator calls one candidate spends at a given rung."""
        if fidelity == 0:
            return self.corner_grid(pdk).size
        if fidelity == 1:
            return self.surrogate_train
        return self.is_pilot + self.is_samples


@dataclass
class LadderBatchEstimate:
    """Per-candidate ladder output for one generation batch.

    All arrays have one entry per candidate, in input order.

    Attributes
    ----------
    yield_estimate:
        Best available yield estimate at the candidate's final fidelity.
    std_error:
        Its standard error (the conservative tail mass
        ``min(y, 1-y)`` at fidelity 0).
    fidelity:
        Final rung of each candidate (0/1/2).
    sims:
        Simulator calls spent on each candidate, all rungs combined.
    robust_z:
        Corner-stage worst-spec nominal z-score (the k-sigma robustness
        objective); NaN when the corner stage was skipped.
    refused:
        Candidates whose fidelity-1 surrogate refused (CV error rivalled
        the training spread) and therefore escalated.
    """

    yield_estimate: np.ndarray
    std_error: np.ndarray
    fidelity: np.ndarray
    sims: np.ndarray
    robust_z: np.ndarray
    refused: np.ndarray

    @property
    def size(self) -> int:
        return self.yield_estimate.size


@dataclass
class LadderCounts:
    """Cumulative per-fidelity ladder accounting across every batch.

    ``resolved[f]`` counts candidates whose final rung was ``f``;
    ``sims[f]`` counts simulator calls spent at rung ``f`` (a candidate
    escalated to fidelity 2 contributes to ``sims[0]``, ``sims[1]``
    *and* ``sims[2]``, but only to ``resolved[2]``).
    """

    resolved: list[int] = field(default_factory=lambda: [0, 0, 0])
    sims: list[int] = field(default_factory=lambda: [0, 0, 0])
    budget_exhausted: bool = False

    @property
    def total_candidates(self) -> int:
        return sum(self.resolved)

    @property
    def total_sims(self) -> int:
        return sum(self.sims)

    @property
    def full_mc_sims(self) -> int:
        """Simulator calls spent at the full-MC rung (the benchmark's
        headline saving)."""
        return self.sims[2]

    def table(self) -> str:
        """Aligned per-fidelity accounting table."""
        lines = [f"{'fidelity':<28} {'resolved':>9} {'sim calls':>10}"]
        for f, name in enumerate(FIDELITY_NAMES):
            lines.append(f"{f}: {name:<25} {self.resolved[f]:>9d} "
                         f"{self.sims[f]:>10d}")
        lines.append(f"{'TOTAL':<28} {self.total_candidates:>9d} "
                     f"{self.total_sims:>10d}")
        if self.budget_exhausted:
            lines.append("(fidelity budget exhausted: escalation truncated)")
        return "\n".join(lines)


class EstimatorLadder:
    """Budget-aware multi-fidelity yield estimation over candidate batches.

    Parameters
    ----------
    evaluator_factory:
        Callable ``(unit_params (K, P)) -> evaluator`` where the returned
        evaluator follows the :func:`repro.mc.engine.monte_carlo_points`
        contract ``(point_indices, repeats, ProcessSample) ->
        dict[name, (len(point_indices) * repeats,) array]``.  See
        :mod:`repro.optimize.adapters` for the circuit-backed factories.
    specs:
        The pass/fail specification set the yield is measured against.
    pdk:
        The process kit supplying corners and the statistical model.
    config:
        A :class:`LadderConfig` (defaults used when ``None``).
    ledger:
        Optional :class:`~repro.flow.accounting.SimulationLedger`;
        per-fidelity cost rows are recorded into it (an internal ledger
        is created when omitted).
    """

    def __init__(self, evaluator_factory, specs: SpecSet, pdk: ProcessKit,
                 config: LadderConfig | None = None, *,
                 ledger: SimulationLedger | None = None) -> None:
        self.evaluator_factory = evaluator_factory
        self.specs = specs
        self.pdk = pdk
        self.config = config or LadderConfig()
        self.ledger = ledger if ledger is not None else SimulationLedger()
        self.counts = LadderCounts()
        self.grid = self.config.corner_grid(pdk)
        self._nominal_lane = self._find_nominal_lane()
        self._spent = 0
        self._next_uid = 0
        self._batch_no = 0

    # -- helpers -------------------------------------------------------------
    def _find_nominal_lane(self) -> int:
        """Grid lane closest to typical-process, nominal-supply, 27 C."""
        best, best_cost = 0, np.inf
        for index, point in enumerate(self.grid.points()):
            cost = ((0.0 if point.corner == "tm" else 1e6)
                    + abs(point.vdd - self.pdk.supply)
                    + 1e-3 * abs(point.temp_c - 27.0))
            if cost < best_cost:
                best, best_cost = index, cost
        return best

    def _record(self, fidelity: int, sims: int, seconds: float) -> None:
        self.ledger.record(f"yield ladder: {FIDELITY_NAMES[fidelity]}",
                           sims, seconds)
        self.counts.sims[fidelity] += sims
        self._spent += sims

    def _afford(self, candidates: np.ndarray, unit_cost: int,
                ambiguity: np.ndarray) -> np.ndarray:
        """Trim an escalation set to the remaining fidelity budget,
        keeping the most ambiguous candidates (smallest key) first."""
        budget = self.config.fidelity_budget
        if budget <= 0 or candidates.size == 0:
            return candidates
        n_afford = max(0, (budget - self._spent) // unit_cost)
        if n_afford >= candidates.size:
            return candidates
        self.counts.budget_exhausted = True
        order = np.argsort(ambiguity[candidates], kind="stable")
        return candidates[order[:n_afford]]

    def _pass_probability(self, predicted: dict[str, np.ndarray],
                          scales: dict[str, float]) -> np.ndarray:
        """Calibrated pass probability of surrogate-predicted lanes
        (independent residuals per spec -> product of per-spec CDFs)."""
        probability = np.ones(next(iter(predicted.values())).size)
        for spec in self.specs:
            z = spec.margin(predicted[spec.name]) / scales[spec.name]
            probability = probability * _normal_cdf(z)
        return probability

    # -- fidelity 0: corner bounds ------------------------------------------
    def _corner_stage(self, evaluator, n_points: int
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
        """Sweep every candidate across the grid; return
        ``(yield0, std0, robust_z, decisive)``."""
        config = self.config
        start = time.perf_counter()
        performance = corner_sweep_points(
            evaluator, n_points, self.pdk, self.grid,
            backend=config.backend, workers=config.workers,
            chunk_lanes=config.chunk_lanes)
        self._record(0, n_points * self.grid.size,
                     time.perf_counter() - start)

        z_min = np.full(n_points, np.inf)
        yield0 = np.ones(n_points)
        for spec in self.specs:
            values = np.asarray(performance[spec.name], dtype=float)
            nominal = values[:, self._nominal_lane]
            spread = values.max(axis=1) - values.min(axis=1)
            sigma = spread / (2.0 * config.corner_k_sigma)
            margin = spec.margin(nominal)
            with np.errstate(divide="ignore", invalid="ignore"):
                z = np.where(sigma > 0.0, margin / sigma,
                             np.sign(margin) * np.inf)
            z = np.where(np.isnan(z), -np.inf, z)  # margin 0, sigma 0
            z = np.clip(z, -_Z_CLAMP, _Z_CLAMP)
            z_min = np.minimum(z_min, z)
            yield0 = yield0 * _normal_cdf(z)
        std0 = np.minimum(yield0, 1.0 - yield0)
        decisive = (((z_min >= config.corner_z)
                     & (yield0 >= config.yield_target))
                    | ((z_min <= -config.corner_z)
                       & (yield0 < config.yield_target)))
        return yield0, std0, np.clip(z_min, -_Z_CLAMP, _Z_CLAMP), decisive

    # -- fidelity 1: surrogate classification -------------------------------
    def _sigma_sweep(self, evaluator, indices: np.ndarray,
                     xs: np.ndarray) -> dict[str, np.ndarray]:
        """Evaluate escalated candidates at per-candidate sigma-unit
        coordinates, stacked into lane-bounded chunks through the
        execution backends (per-chunk mismatch child streams, so results
        are backend-invariant).  ``xs`` is ``(E, T, len(GLOBAL_DIMS))``;
        returns name -> ``(E, T)``."""
        config = self.config
        n_escalated, n_train, _ = xs.shape
        per_chunk = max(1, config.chunk_lanes // n_train)
        n_chunks = (n_escalated + per_chunk - 1) // per_chunk
        rngs = child_streams(config.seed, f"ladder-train-mm-{self._batch_no}",
                             n_chunks)
        bounds = [(i * per_chunk, min((i + 1) * per_chunk, n_escalated),
                   rngs[i]) for i in range(n_chunks)]

        def run_chunk(task):
            chunk_start, chunk_stop, rng = task
            coords = xs[chunk_start:chunk_stop].reshape(-1, len(GLOBAL_DIMS))
            sample = self.pdk.sample_from_sigma(
                coords, rng=rng if config.include_mismatch else None,
                include_mismatch=config.include_mismatch)
            performance = evaluator(indices[chunk_start:chunk_stop],
                                    n_train, sample)
            return {name: np.asarray(values, dtype=float).reshape(
                        chunk_stop - chunk_start, n_train)
                    for name, values in performance.items()}

        parts = resolve_backend(config.backend, config.workers).run(
            run_chunk, bounds)
        return {name: np.concatenate([part[name] for part in parts], axis=0)
                for name in parts[0]}

    def _surrogate_stage(self, evaluator, indices: np.ndarray,
                         uids: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray]:
        """Train + classify per escalated candidate; return
        ``(yield1, std1, refused, decisive)`` aligned with ``indices``."""
        config = self.config
        start = time.perf_counter()
        dims = len(GLOBAL_DIMS)
        xs = np.stack([
            latin_hypercube_normal(
                stream(config.seed, f"ladder-train-{uids[row]}"),
                config.surrogate_train, dims)
            for row in range(indices.size)])
        responses = self._sigma_sweep(evaluator, indices, xs)

        yield1 = np.empty(indices.size)
        std1 = np.empty(indices.size)
        refused = np.zeros(indices.size, dtype=bool)
        for row in range(indices.size):
            scales: dict[str, float] = {}
            models = {}
            for spec in self.specs:
                y = responses[spec.name][row]
                model = fit_surrogate(config.surrogate_kind, xs[row], y)
                spread = float(np.std(y))
                if model.cv_error > config.cv_threshold * max(spread, 1e-300):
                    refused[row] = True
                models[spec.name] = model
                scales[spec.name] = max(model.cv_error, 1e-12)
            population = latin_hypercube_normal(
                stream(config.seed, f"ladder-pop-{uids[row]}"),
                config.surrogate_population, dims)
            predicted = {name: model.predict(population)
                         for name, model in models.items()}
            probability = self._pass_probability(predicted, scales)
            point = float(np.mean(probability))
            sampling_var = point * (1.0 - point) / config.surrogate_population
            classification_var = float(
                np.sum(probability * (1.0 - probability))
            ) / config.surrogate_population ** 2
            yield1[row] = point
            std1[row] = max(np.sqrt(sampling_var + classification_var),
                            config.surrogate_floor)
        self._record(1, indices.size * config.fidelity_cost(1, self.pdk),
                     time.perf_counter() - start)
        decisive = (~refused
                    & (np.abs(yield1 - config.yield_target)
                       >= config.surrogate_z * std1))
        return yield1, std1, refused, decisive

    # -- fidelity 2: importance-sampled Monte Carlo -------------------------
    def _importance_stage(self, evaluator, indices: np.ndarray,
                          uids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full-fidelity estimates for the remaining candidates; each
        candidate is one backend task with privately derived streams."""
        config = self.config
        start = time.perf_counter()

        def run_candidate(task):
            index, uid = task

            def single(sample):
                return evaluator(np.array([index]), sample.size, sample)

            estimate = estimate_yield_importance(
                single, self.specs, self.pdk,
                ImportanceSamplingConfig(
                    n_samples=config.is_samples,
                    pilot_samples=config.is_pilot,
                    seed=_derived_seed(config.seed, f"ladder-is-{uid}"),
                    include_mismatch=config.include_mismatch,
                    confidence=config.confidence))
            return estimate.yield_estimate, estimate.std_error

        tasks = [(int(index), int(uid)) for index, uid in zip(indices, uids, strict=True)]
        results = resolve_backend(config.backend, config.workers).run(
            run_candidate, tasks)
        self._record(2, indices.size * config.fidelity_cost(2, self.pdk),
                     time.perf_counter() - start)
        yield2 = np.array([value for value, _ in results])
        std2 = np.array([error for _, error in results])
        return np.clip(yield2, 0.0, 1.0), std2

    # -- the ladder ----------------------------------------------------------
    def estimate_batch(self, unit_params: np.ndarray) -> LadderBatchEstimate:
        """Estimate the yield of every candidate of a generation batch.

        Parameters
        ----------
        unit_params:
            Normalised candidate parameters, shape ``(K, P)`` (the same
            matrix the wrapped problem's ``evaluate_batch`` received).

        Returns
        -------
        A :class:`LadderBatchEstimate` with one entry per candidate.
        """
        config = self.config
        unit_params = np.atleast_2d(np.asarray(unit_params, dtype=float))
        n_points = unit_params.shape[0]
        evaluator = self.evaluator_factory(unit_params)
        uids = self._next_uid + np.arange(n_points)
        self._next_uid += n_points
        self._batch_no += 1

        yield_est = np.full(n_points, np.nan)
        std_err = np.full(n_points, np.nan)
        fidelity = np.zeros(n_points, dtype=int)
        sims = np.zeros(n_points, dtype=int)
        robust_z = np.full(n_points, np.nan)
        refused = np.zeros(n_points, dtype=bool)

        # Fidelity 0: stacked corner sweep of the whole batch.
        if config.min_fidelity <= 0:
            yield0, std0, robust_z, decisive = self._corner_stage(
                evaluator, n_points)
            yield_est, std_err = yield0, std0
            sims += self.grid.size
            escalate = np.flatnonzero(~decisive)
        else:
            escalate = np.arange(n_points)
        if config.max_fidelity <= 0:
            escalate = np.empty(0, dtype=int)

        # Ambiguity key for budget-constrained escalation: distance of
        # the current estimate from the target (NaN = unknown = first).
        ambiguity = np.abs(np.where(np.isnan(yield_est), config.yield_target,
                                    yield_est) - config.yield_target)

        # Fidelity 1: surrogate classification of the escalated set.
        if config.min_fidelity <= 1 and config.max_fidelity >= 1 \
                and escalate.size:
            cost = config.fidelity_cost(1, self.pdk)
            chosen = self._afford(escalate, cost, ambiguity)
            if chosen.size:
                yield1, std1, refused1, decisive1 = self._surrogate_stage(
                    evaluator, chosen, uids[chosen])
                yield_est[chosen] = yield1
                std_err[chosen] = std1
                fidelity[chosen] = 1
                sims[chosen] += cost
                refused[chosen] = refused1
                escalate = chosen[~decisive1]
            else:
                escalate = np.empty(0, dtype=int)
            ambiguity = np.abs(np.where(np.isnan(yield_est),
                                        config.yield_target, yield_est)
                               - config.yield_target)

        # Fidelity 2: importance-sampled MC for the still-ambiguous rest.
        if config.max_fidelity >= 2 and escalate.size:
            cost = config.fidelity_cost(2, self.pdk)
            chosen = self._afford(escalate, cost, ambiguity)
            if chosen.size:
                yield2, std2 = self._importance_stage(
                    evaluator, chosen, uids[chosen])
                yield_est[chosen] = yield2
                std_err[chosen] = std2
                fidelity[chosen] = 2
                sims[chosen] += cost

        for level in range(3):
            self.counts.resolved[level] += int(
                np.count_nonzero(fidelity == level))
        return LadderBatchEstimate(
            yield_estimate=yield_est, std_error=std_err, fidelity=fidelity,
            sims=sims, robust_z=robust_z, refused=refused)
