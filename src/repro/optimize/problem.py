"""Yield-augmented optimisation problems.

:class:`YieldAugmentedProblem` wraps any
:class:`~repro.moo.problem.OptimizationProblem` so that statistical
robustness enters the search *as an objective* instead of post-hoc
guard-banding (the paper's route).  Three modes:

* ``"yield"``  -- appends a maximised ``yield_frac`` objective: the
  ladder's per-candidate yield estimate.  The optimiser then trades the
  base performances against manufacturing yield directly, producing a
  three-objective front (metamodel-integrated flows in the iVAMS line do
  exactly this).
* ``"ksigma"`` -- appends a maximised ``robust_z`` objective: the
  corner-stage worst-spec nominal margin in estimated process sigmas.
  The cheapest robustness signal (one corner sweep per candidate, no
  escalation) -- pair it with ``LadderConfig(max_fidelity=0)``.
* ``"chance"`` -- keeps the base objective count and *penalises*
  candidates whose estimated yield falls below ``yield_target``: every
  oriented objective is worsened by ``penalty_weight * deficit`` in
  units of the objective's running span.  A chance-constrained search:
  the optimiser may trade performance freely on the feasible side of
  the target, while sub-target candidates fade from the front.  Two
  consequences to keep in mind: the archived objective values of
  sub-target candidates are the **penalised fitness**, not the
  design's natural performance (recover the latter by re-evaluating
  the base problem at the archived parameters), and the penalty scale
  is a *running* span -- it sharpens as the search explores, exactly
  like the WBGA's equation-(5) normalisation, so penalised values from
  different generations are comparable only approximately.

Every evaluated individual's ladder diagnostics (yield estimate,
standard error, fidelity, simulator cost, corner z) are archived in
evaluation order and exposed via :meth:`YieldAugmentedProblem.annotations`
-- the optimiser result's yield-annotated archive.
"""

from __future__ import annotations

import numpy as np

from ..errors import OptimizationError
from ..moo.problem import Objective, OptimizationProblem
from .ladder import EstimatorLadder

__all__ = ["YIELD_MODES", "YieldAugmentedProblem"]

#: The supported augmentation modes.
YIELD_MODES = ("yield", "ksigma", "chance")


class YieldAugmentedProblem(OptimizationProblem):
    """Wrap a base problem with an in-loop yield objective or constraint.

    Parameters
    ----------
    base:
        The wrapped :class:`~repro.moo.problem.OptimizationProblem`
        (its nominal evaluation still runs once per candidate and its
        ``evaluation_count`` keeps counting those).
    ladder:
        The :class:`~repro.optimize.ladder.EstimatorLadder` providing
        per-candidate yield estimates (and their cost accounting).
    mode:
        One of :data:`YIELD_MODES` (see module docstring).
    yield_target:
        Target yield of the ``"chance"`` penalty (defaults to the
        ladder's configured target).
    penalty_weight:
        Chance-mode penalty slope, in objective-span units per unit of
        yield deficit.
    """

    def __init__(self, base: OptimizationProblem, ladder: EstimatorLadder, *,
                 mode: str = "yield", yield_target: float | None = None,
                 penalty_weight: float = 2.0) -> None:
        if mode not in YIELD_MODES:
            raise OptimizationError(
                f"unknown yield mode {mode!r} (known: {', '.join(YIELD_MODES)})")
        self.base = base
        self.ladder = ladder
        self.mode = mode
        self.yield_target = float(yield_target if yield_target is not None
                                  else ladder.config.yield_target)
        self.penalty_weight = float(penalty_weight)
        self.parameter_names = base.parameter_names
        if mode == "yield":
            self.objectives = base.objectives + (
                Objective("yield_frac", "maximize", ""),)
        elif mode == "ksigma":
            self.objectives = base.objectives + (
                Objective("robust_z", "maximize", "sigma"),)
        else:
            self.objectives = base.objectives
        self._archive: dict[str, list[np.ndarray]] = {
            "yield": [], "yield_std_error": [], "fidelity": [],
            "ladder_sims": [], "robust_z": [],
        }
        # Running per-objective extrema of the base problem (the
        # chance-mode penalty scale, WBGA-style).
        self._f_min = np.full(base.n_objectives, np.inf)
        self._f_max = np.full(base.n_objectives, -np.inf)
        super().__init__()

    def annotations(self) -> dict[str, np.ndarray]:
        """Per-individual ladder diagnostics, aligned with the archive
        rows of the optimiser that evaluated this problem."""
        return {name: (np.concatenate(parts) if parts
                       else np.empty(0))
                for name, parts in self._archive.items()}

    def evaluate_batch(self, unit_params: np.ndarray) -> np.ndarray:
        base_values = self.base(unit_params)
        estimate = self.ladder.estimate_batch(unit_params)
        self._archive["yield"].append(estimate.yield_estimate.copy())
        self._archive["yield_std_error"].append(estimate.std_error.copy())
        self._archive["fidelity"].append(estimate.fidelity.astype(float))
        self._archive["ladder_sims"].append(estimate.sims.astype(float))
        self._archive["robust_z"].append(estimate.robust_z.copy())

        if self.mode == "yield":
            return np.hstack([base_values,
                              estimate.yield_estimate[:, None]])
        if self.mode == "ksigma":
            return np.hstack([base_values, estimate.robust_z[:, None]])

        # Chance-constraint mode: penalise the yield deficit in the
        # oriented (maximisation) frame, scaled by each objective's
        # running span so the penalty means the same thing for dB-scale
        # and unit-scale objectives.
        oriented = self.base.oriented(base_values)
        finite = np.isfinite(oriented)
        if np.any(finite):
            self._f_min = np.minimum(self._f_min, np.nanmin(
                np.where(finite, oriented, np.inf), axis=0))
            self._f_max = np.maximum(self._f_max, np.nanmax(
                np.where(finite, oriented, -np.inf), axis=0))
        span = self._f_max - self._f_min
        span = np.where(np.isfinite(span) & (span > 1e-12), span, 1.0)
        deficit = np.clip(self.yield_target - estimate.yield_estimate,
                          0.0, None)
        deficit = np.where(np.isnan(deficit), 0.0, deficit)
        penalised = oriented - self.penalty_weight * deficit[:, None] * span
        signs = np.array([objective.sign for objective in self.objectives])
        return penalised * signs
