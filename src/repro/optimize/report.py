"""Human-readable reports of yield-aware search results.

Three formatters feed the flow's stage-7 artefacts and the
``yield_pareto`` benchmark:

* :func:`format_yield_front`      -- the annotated front as a table
  (objectives + yield estimate + fidelity + simulator cost per point);
* :func:`format_ladder_summary`   -- the per-fidelity accounting table;
* :func:`format_guardband_comparison` -- the in-loop front next to a
  reference design (the paper's guard-banded selection, or any nominal
  design), answering "what did optimising yield *in the loop* buy".
"""

from __future__ import annotations

import numpy as np

from .ladder import LadderCounts
from .search import YieldSearchResult

__all__ = ["format_yield_front", "format_ladder_summary",
           "format_guardband_comparison"]


def _subsample(count: int, limit: int) -> np.ndarray:
    if count <= limit:
        return np.arange(count)
    return np.unique(np.linspace(0, count - 1, limit).astype(int))


def format_yield_front(result: YieldSearchResult, *,
                       max_rows: int = 16) -> str:
    """The yield-annotated Pareto front as an aligned text table,
    sorted by the first base objective (evenly subsampled past
    ``max_rows``)."""
    objectives = result.front_objectives()
    annotations = result.front_annotations()
    names = result.objective_names
    order = np.argsort(objectives[:, 0])
    picks = order[_subsample(order.size, max_rows)]

    header = "".join(f"{name:>14}" for name in names)
    header += f"{'yield':>9}{'+/-':>8}{'fid':>5}{'sims':>7}"
    lines = [f"yield-annotated Pareto front ({objectives.shape[0]} points, "
             f"{picks.size} shown)", header]
    for i in picks:
        row = "".join(f"{objectives[i, j]:>14.4g}"
                      for j in range(len(names)))
        y = annotations["yield"][i]
        err = annotations["yield_std_error"][i]
        row += (f"{100 * y:>8.2f}%" if np.isfinite(y) else f"{'n/a':>9}")
        row += (f"{100 * err:>7.2f}%" if np.isfinite(err) else f"{'n/a':>8}")
        row += f"{int(annotations['fidelity'][i]):>5d}"
        row += f"{int(annotations['ladder_sims'][i]):>7d}"
        lines.append(row)
    return "\n".join(lines)


def format_ladder_summary(counts: LadderCounts) -> str:
    """Per-fidelity candidate/cost accounting (one table)."""
    return counts.table()


def format_guardband_comparison(result: YieldSearchResult,
                                reference_label: str,
                                reference_performance: dict[str, float],
                                reference_yield: float | None = None) -> str:
    """Compare the in-loop front against a reference design.

    Parameters
    ----------
    result:
        A completed yield-aware search.
    reference_label:
        Name of the reference row (e.g. ``"guard-banded (Table 3)"``).
    reference_performance:
        Nominal performance of the reference design, keyed like the
        base objectives (missing keys print as ``n/a``).
    reference_yield:
        Optional yield estimate of the reference design (printed when
        given).

    The in-loop rows are the front points meeting the search's yield
    target: the one best in each base objective.  When no front point
    meets the target, the highest-yield point is shown instead.
    """
    objectives = result.front_objectives()
    annotations = result.front_annotations()
    base_names = tuple(obj.name for obj in result.problem.base.objectives)
    n_base = len(base_names)
    target = result.config.yield_target
    yields = annotations["yield"]

    header = f"{'design':<28}" + "".join(f"{name:>14}"
                                         for name in base_names)
    header += f"{'yield':>10}"
    lines = [f"in-loop yield front vs reference "
             f"(target yield {100 * target:.0f}%)", header]

    ref_row = f"{reference_label:<28}"
    for name in base_names:
        value = reference_performance.get(name)
        ref_row += f"{value:>14.4g}" if value is not None else f"{'n/a':>14}"
    ref_row += (f"{100 * reference_yield:>9.2f}%"
                if reference_yield is not None else f"{'n/a':>10}")
    lines.append(ref_row)

    meets = np.flatnonzero(np.nan_to_num(yields, nan=-1.0) >= target)
    oriented = result.problem.base.oriented(objectives[:, :n_base])
    if meets.size == 0:
        best = int(np.nanargmax(yields))
        row = f"{'in-loop best yield':<28}"
        row += "".join(f"{objectives[best, j]:>14.4g}"
                       for j in range(n_base))
        row += f"{100 * yields[best]:>9.2f}%"
        lines.append(row)
        lines.append("(no front point met the target yield)")
        return "\n".join(lines)
    for j, name in enumerate(base_names):
        best = meets[int(np.argmax(oriented[meets, j]))]
        row = f"{'in-loop best ' + name:<28}"
        row += "".join(f"{objectives[best, k]:>14.4g}"
                       for k in range(n_base))
        row += f"{100 * yields[best]:>9.2f}%"
        lines.append(row)
    return "\n".join(lines)
