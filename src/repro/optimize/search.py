"""The in-loop yield-aware Pareto search.

:func:`run_yield_search` assembles the subsystem: it wraps a base
problem into a :class:`~repro.optimize.problem.YieldAugmentedProblem`
backed by an :class:`~repro.optimize.ladder.EstimatorLadder`, runs
NSGA-II (default) or the paper's WBGA over the augmented objectives, and
returns a :class:`YieldSearchResult` whose archive carries every
individual's ladder diagnostics -- the yield-annotated Pareto front the
paper's post-hoc guard-banding flow never sees.

Seeding: the whole search derives from ``YieldSearchConfig.seed`` --
the optimiser stream (``"yield-search"``), every ladder stream, and
therefore the full result are bit-reproducible across execution
backends for a fixed configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..errors import OptimizationError
from ..flow.accounting import SimulationLedger
from ..mc.sampler import stream
from ..measure.specs import SpecSet
from ..moo.ga import GAConfig
from ..moo.hypervolume import hypervolume
from ..moo.nsga2 import NSGA2Result, run_nsga2
from ..moo.problem import OptimizationProblem
from ..moo.wbga import WBGAResult, run_wbga
from ..process.pdk import ProcessKit
from .ladder import EstimatorLadder, LadderConfig, LadderCounts
from .problem import YIELD_MODES, YieldAugmentedProblem

__all__ = ["YieldSearchConfig", "YieldSearchResult", "run_yield_search"]


@dataclass(frozen=True)
class YieldSearchConfig:
    """Settings of the yield-aware search.

    ``yield_target`` and ``seed`` are authoritative: they override the
    corresponding :class:`~repro.optimize.ladder.LadderConfig` fields so
    the search cannot disagree with its own estimator about either.
    ``mode="ksigma"`` also caps the ladder at fidelity 0 (the corner
    z-score objective needs no escalation).
    """

    mode: str = "yield"
    optimizer: str = "nsga2"
    yield_target: float = 0.90
    penalty_weight: float = 2.0
    generations: int = 20
    population: int = 24
    seed: int = 2008
    ladder: LadderConfig = field(default_factory=LadderConfig)

    def __post_init__(self) -> None:
        if self.mode not in YIELD_MODES:
            raise OptimizationError(
                f"unknown yield mode {self.mode!r} "
                f"(known: {', '.join(YIELD_MODES)})")
        if self.optimizer not in ("nsga2", "wbga"):
            raise OptimizationError(
                f"unknown optimizer {self.optimizer!r} (known: nsga2, wbga)")

    def ga_config(self) -> GAConfig:
        return GAConfig(population_size=self.population,
                        generations=self.generations, seed=self.seed)

    def ladder_config(self) -> LadderConfig:
        """The ladder configuration with the search-level overrides
        (target, seed, ksigma fidelity cap) applied."""
        overrides = {"yield_target": self.yield_target, "seed": self.seed}
        if self.mode == "ksigma":
            overrides["max_fidelity"] = 0
        return dataclasses.replace(self.ladder, **overrides)


@dataclass
class YieldSearchResult:
    """Everything a yield-aware search produced.

    Attributes
    ----------
    problem:
        The augmented problem (its ``base`` attribute is the wrapped
        original).
    result:
        The optimiser archive
        (:class:`~repro.moo.nsga2.NSGA2Result` or
        :class:`~repro.moo.wbga.WBGAResult`) with ladder
        ``annotations`` attached.
    counts:
        Cumulative per-fidelity ladder accounting
        (:class:`~repro.optimize.ladder.LadderCounts`).
    ledger:
        The simulation ledger the ladder recorded into.
    """

    config: YieldSearchConfig
    specs: SpecSet
    problem: YieldAugmentedProblem
    result: "NSGA2Result | WBGAResult"
    counts: LadderCounts
    ledger: SimulationLedger

    @property
    def objective_names(self) -> tuple[str, ...]:
        return self.problem.objective_names()

    def pareto_mask(self) -> np.ndarray:
        return self.result.pareto_mask()

    def front_parameters(self) -> np.ndarray:
        """Normalised parameters of the yield-annotated front."""
        return self.result.all_parameters[self.pareto_mask()]

    def front_objectives(self) -> np.ndarray:
        """Objectives of the front (base + augmentation column).

        Natural units in ``"yield"``/``"ksigma"`` mode.  In
        ``"chance"`` mode, sub-target candidates carry their
        *penalised* fitness (see
        :class:`~repro.optimize.problem.YieldAugmentedProblem`), not
        their natural performance.
        """
        return self.result.all_objectives[self.pareto_mask()]

    def front_annotations(self) -> dict[str, np.ndarray]:
        """Ladder diagnostics of every front member."""
        return self.result.pareto_annotations()

    def front_count(self) -> int:
        return int(np.count_nonzero(self.pareto_mask()))

    def hypervolume(self, reference=None, *, yield_shift: float = 0.0
                    ) -> float:
        """Dominated hypervolume of the front (maximisation frame).

        Parameters
        ----------
        reference:
            Reference corner; defaults to the front nadir minus a small
            offset (only comparable across runs when passed explicitly).
        yield_shift:
            Added to the yield/robustness column before scoring (the
            benchmark scores ``+/- z * std_error`` fronts with it to
            build a hypervolume confidence interval).  Ignored in
            ``"chance"`` mode, which has no such column.
        """
        oriented = self.problem.oriented(self.front_objectives())
        if yield_shift and self.config.mode != "chance":
            oriented = oriented.copy()
            shifted = oriented[:, -1] + yield_shift
            if self.config.mode == "yield":
                shifted = np.clip(shifted, 0.0, 1.0)
            oriented[:, -1] = shifted
        if reference is None:
            finite = oriented[np.all(np.isfinite(oriented), axis=1)]
            if finite.shape[0] == 0:
                return 0.0
            span = np.maximum(finite.max(axis=0) - finite.min(axis=0), 1.0)
            reference = finite.min(axis=0) - 1e-9 * span
        return hypervolume(oriented, reference)

    def describe(self) -> str:
        """Compact multi-line summary (front size + ladder accounting)."""
        from .report import format_ladder_summary
        lines = [f"yield-aware search ({self.config.mode} mode, "
                 f"{self.config.optimizer}): "
                 f"{self.result.evaluations} candidates evaluated, "
                 f"{self.front_count()} on the front"]
        lines.append(format_ladder_summary(self.counts))
        return "\n".join(lines)


def run_yield_search(base_problem: OptimizationProblem, evaluator_factory,
                     specs: SpecSet, pdk: ProcessKit,
                     config: YieldSearchConfig | None = None, *,
                     ledger: SimulationLedger | None = None
                     ) -> YieldSearchResult:
    """Run the yield-aware multi-objective search.

    Parameters
    ----------
    base_problem:
        The performance-only problem to augment (e.g.
        :class:`repro.designs.problems.OTAProblem`).
    evaluator_factory:
        Candidate-evaluator factory for the ladder (see
        :mod:`repro.optimize.adapters`).
    specs:
        Pass/fail specification set defining the yield.
    pdk:
        The process kit.
    config:
        Search settings (defaults used when ``None``).
    ledger:
        Optional shared ledger; ladder per-fidelity rows and a nominal-
        evaluation row are recorded into it.

    Returns
    -------
    A :class:`YieldSearchResult` with the annotated archive.
    """
    config = config or YieldSearchConfig()
    ledger = ledger if ledger is not None else SimulationLedger()
    nominal_before = base_problem.evaluation_count

    ladder = EstimatorLadder(evaluator_factory, specs, pdk,
                             config.ladder_config(), ledger=ledger)
    problem = YieldAugmentedProblem(
        base_problem, ladder, mode=config.mode,
        yield_target=config.yield_target,
        penalty_weight=config.penalty_weight)

    rng = stream(config.seed, "yield-search")
    if config.optimizer == "wbga":
        result = run_wbga(problem, config.ga_config(), rng=rng)
    else:
        result = run_nsga2(problem, config.ga_config(), rng=rng)
    result.annotations = problem.annotations()
    ledger.record("yield search: nominal evaluations",
                  base_problem.evaluation_count - nominal_before, 0.0)

    return YieldSearchResult(
        config=config, specs=specs, problem=problem, result=result,
        counts=ladder.counts, ledger=ledger)
