"""Process design kits: model cards, corners, statistical variation."""

from .c35 import C35, make_c35
from .mismatch import MismatchModel
from .pdk import (GLOBAL_DIMS, CornerDef, GlobalVariation, ProcessKit,
                  ProcessSample)

__all__ = [
    "C35", "make_c35",
    "MismatchModel",
    "GLOBAL_DIMS", "CornerDef", "GlobalVariation", "ProcessKit",
    "ProcessSample",
]
