"""An AMS-0.35-um-class process kit ("C35").

The paper simulates with "foundry level BSim3v3 transistor models from a
standard 0.35 um AMS process (C35B4)".  This module provides our
equivalent: nominal level-1/EKV model cards whose headline figures (VT,
KP, tox-derived Cox, junction capacitances, Pelgrom coefficients) match
published AMS C35 data, plus the standard digital corner set:

========  =======================  ==============================
corner    name                     device shifts
========  =======================  ==============================
``tm``    typical mean             none
``wp``    worst power (fast/fast)  -3 sigma VT, +3 sigma KP (both)
``ws``    worst speed (slow/slow)  +3 sigma VT, -3 sigma KP (both)
``wo``    worst one (fast N/slow P)
``wz``    worst zero (slow N/fast P)
========  =======================  ==============================

The statistical spreads are chosen so the corner shifts are the 3-sigma
points of the global model, keeping corners and Monte Carlo consistent.
"""

from __future__ import annotations

from ..circuit.mosfet import MOSModel
from .mismatch import MismatchModel
from .pdk import CornerDef, GlobalVariation, ProcessKit

__all__ = ["C35", "make_c35"]

# Global (inter-die) 1-sigma spreads.
_SIGMA_VTO_N = 0.020   # V
_SIGMA_VTO_P = 0.025   # V
_SIGMA_KP = 0.022      # relative
_SIGMA_CAP = 0.040     # relative (poly capacitor)


def make_c35() -> ProcessKit:
    """Build a fresh C35 process kit (use the shared :data:`C35` normally)."""
    nmos = MOSModel(
        name="nmos", polarity="n",
        vto=0.50, kp=170e-6, gamma=0.58, phi=0.70,
        klambda=0.10e-6, ld=0.05e-6,
        cox=4.54e-3, cgso=1.2e-10, cgdo=1.2e-10, cgbo=1.1e-10,
        cj=9.4e-4, cjsw=2.5e-10, pb=0.69, mj=0.34, mjsw=0.23,
        ldiff=0.85e-6, n_sub=1.5)
    pmos = MOSModel(
        name="pmos", polarity="p",
        vto=-0.65, kp=58e-6, gamma=0.40, phi=0.70,
        klambda=0.14e-6, ld=0.05e-6,
        cox=4.54e-3, cgso=8.6e-11, cgdo=8.6e-11, cgbo=1.1e-10,
        cj=1.36e-3, cjsw=3.2e-10, pb=1.02, mj=0.56, mjsw=0.44,
        ldiff=0.85e-6, n_sub=1.6)

    three_sigma_n = 3.0 * _SIGMA_VTO_N
    three_sigma_p = 3.0 * _SIGMA_VTO_P
    kp_fast = 1.0 + 3.0 * _SIGMA_KP
    kp_slow = 1.0 - 3.0 * _SIGMA_KP
    corners = {
        "tm": CornerDef("tm", "typical mean", 0.0, 1.0, 0.0, 1.0),
        "wp": CornerDef("wp", "worst power (fast N, fast P)",
                        -three_sigma_n, kp_fast, -three_sigma_p, kp_fast),
        "ws": CornerDef("ws", "worst speed (slow N, slow P)",
                        +three_sigma_n, kp_slow, +three_sigma_p, kp_slow),
        "wo": CornerDef("wo", "worst one (fast N, slow P)",
                        -three_sigma_n, kp_fast, +three_sigma_p, kp_slow),
        "wz": CornerDef("wz", "worst zero (slow N, fast P)",
                        +three_sigma_n, kp_slow, -three_sigma_p, kp_fast),
    }

    return ProcessKit(
        name="c35",
        nmos=nmos,
        pmos=pmos,
        supply=3.3,
        global_variation=GlobalVariation(
            sigma_vto_n=_SIGMA_VTO_N, sigma_kp_n=_SIGMA_KP,
            sigma_vto_p=_SIGMA_VTO_P, sigma_kp_p=_SIGMA_KP,
            sigma_cap=_SIGMA_CAP),
        mismatch=MismatchModel(
            avt_n=7.0e-9, abeta_n=0.015e-6,
            avt_p=10.0e-9, abeta_p=0.018e-6),
        corners=corners)


#: The shared C35 process kit instance used throughout the library.
C35 = make_c35()
