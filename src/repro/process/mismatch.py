"""Pelgrom-law local (intra-die) mismatch model.

Pelgrom's law states that the standard deviation of the *difference* of a
matched parameter between two identically drawn, adjacent devices scales
inversely with the square root of gate area:

``sigma(dVT)      = A_VT   / sqrt(W * L)``
``sigma(dBeta)/B  = A_beta / sqrt(W * L)``

Foundry matching reports quote ``A_VT`` in mV*um; the AMS 0.35 um process
the paper uses is in the ~9.5 mV*um (NMOS) / ~14.5 mV*um (PMOS) class.

Per-device sampling convention
------------------------------
Monte-Carlo engines perturb *individual* devices, not pairs.  If each
device receives an independent deviation with sigma ``A/sqrt(2*W*L)``, the
difference between two matched devices has exactly the Pelgrom sigma
``A/sqrt(W*L)``.  That ``1/sqrt(2)`` convention (also used by foundry
statistical decks) is what :meth:`MismatchModel.draw` implements.

This mismatch is the physical origin of the paper's Table 2 trend: Pareto
points with larger gate area (longer channels, which also raise gain) show
*smaller* relative gain variation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

__all__ = ["MismatchModel"]


@dataclass(frozen=True)
class MismatchModel:
    """Pelgrom mismatch coefficients for one process.

    Attributes
    ----------
    avt_n, avt_p:
        Threshold matching coefficients [V*m] (so 9.5 mV*um = 9.5e-9 V*m).
    abeta_n, abeta_p:
        Relative current-factor matching coefficients [m]
        (1.9 %*um = 0.019e-6 m).
    """

    avt_n: float = 9.5e-9
    abeta_n: float = 0.019e-6
    avt_p: float = 14.5e-9
    abeta_p: float = 0.022e-6

    def coefficients(self, polarity: str) -> tuple[float, float]:
        """``(A_VT, A_beta)`` for a polarity."""
        if polarity == "n":
            return self.avt_n, self.abeta_n
        if polarity == "p":
            return self.avt_p, self.abeta_p
        raise ReproError(f"unknown polarity {polarity!r}")

    def sigma_vt_pair(self, polarity: str, area) -> np.ndarray:
        """Pelgrom sigma of the VT *difference* of a matched pair [V]."""
        avt, _ = self.coefficients(polarity)
        return avt / np.sqrt(np.asarray(area, dtype=float))

    def sigma_vt_device(self, polarity: str, area) -> np.ndarray:
        """Per-device VT sigma (pair sigma divided by sqrt(2)) [V]."""
        return self.sigma_vt_pair(polarity, area) / np.sqrt(2.0)

    def sigma_beta_device(self, polarity: str, area) -> np.ndarray:
        """Per-device relative current-factor sigma."""
        _, abeta = self.coefficients(polarity)
        return abeta / np.sqrt(2.0 * np.asarray(area, dtype=float))

    def draw(self, polarity: str, area, size: int,
             rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw per-device ``(delta_vt, delta_beta_rel)`` samples.

        Parameters
        ----------
        area:
            Gate area ``W*Leff`` [m^2]; scalar or shape-``(size,)`` array
            (the latter when the device geometry itself is batched).
        size:
            Number of samples ``B``.

        Returns
        -------
        ``(delta_vt, delta_beta_rel)`` arrays of shape ``(size,)``.
        """
        area = np.asarray(area, dtype=float)
        if np.any(area <= 0):
            raise ReproError("gate area must be positive")
        sigma_vt = self.sigma_vt_device(polarity, area)
        sigma_beta = self.sigma_beta_device(polarity, area)
        delta_vt = rng.normal(0.0, 1.0, size) * sigma_vt
        delta_beta = rng.normal(0.0, 1.0, size) * sigma_beta
        return delta_vt, delta_beta
