"""Process design kit (PDK) abstraction.

A :class:`ProcessKit` bundles everything the flow needs from a foundry:

* nominal MOSFET model cards (one per polarity),
* process **corners** (deterministic worst-case shifts, e.g. WP/WS),
* the **global** (inter-die) statistical model -- threshold and
  current-factor spreads shared by every device of a polarity on a die,
* the **local mismatch** model (Pelgrom law) -- per-device random
  deviations that shrink with gate area.

The paper runs its Monte Carlo with "foundry process variation and
mismatch models" on an AMS 0.35 um process (C35B4); our equivalent kit is
:data:`repro.process.c35.C35`.

Sampled variation is delivered as a :class:`ProcessSample`: a batch of
``n`` die realisations.  Circuit builders ask it for per-device
``(delta_vto, beta_scale)`` arrays; those plug straight into the
:class:`~repro.circuit.mosfet.Mosfet` statistical hooks, giving one batched
circuit that carries the entire Monte-Carlo population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.mosfet import MOSModel
from ..errors import ReproError
from .mismatch import MismatchModel

__all__ = ["GLOBAL_DIMS", "CornerDef", "GlobalVariation", "ProcessSample",
           "ProcessKit"]

#: Canonical order of the global (inter-die) statistical dimensions in
#: every sigma-unit coordinate vector (:meth:`ProcessKit.sample_from_sigma`,
#: :meth:`ProcessKit.sigma_coordinates`, the importance-sampling shift
#: vectors, and the surrogate feature space all share it).
GLOBAL_DIMS = ("dvto_n", "kp_n", "dvto_p", "kp_p", "cap")

#: 0 degrees Celsius in Kelvin (temperatures cross the API in Celsius).
_ZERO_CELSIUS_K = 273.15


@dataclass(frozen=True)
class CornerDef:
    """A deterministic process corner.

    Shifts are expressed in the NMOS-frame convention of
    :class:`~repro.circuit.mosfet.Mosfet`: positive ``dvto`` increases
    ``|VT|`` (slower device); ``kp_scale`` multiplies the current factor.
    """

    name: str
    description: str
    dvto_n: float
    kp_scale_n: float
    dvto_p: float
    kp_scale_p: float
    cap_scale: float = 1.0


@dataclass(frozen=True)
class GlobalVariation:
    """Inter-die (global) statistical model.

    Attributes
    ----------
    sigma_vto_n, sigma_vto_p:
        1-sigma threshold spread [V] (NMOS-frame sign convention).
    sigma_kp_n, sigma_kp_p:
        1-sigma *relative* current-factor spread.
    sigma_cap:
        1-sigma *relative* capacitance spread (poly/MIM capacitor process
        variation).  Capacitors on one die track, so this is a single
        per-die scale factor; it moves pole frequencies (and hence phase
        margin and filter corners) without touching DC gain.
    """

    sigma_vto_n: float = 0.020
    sigma_kp_n: float = 0.03
    sigma_vto_p: float = 0.025
    sigma_kp_p: float = 0.03
    sigma_cap: float = 0.04


class ProcessSample:
    """A batch of sampled die realisations.

    Parameters
    ----------
    size:
        Number of Monte-Carlo samples ``B``.
    dvto_n, kp_scale_n, dvto_p, kp_scale_p:
        Global per-die parameter arrays, shape ``(B,)``.
    mismatch:
        The local mismatch model, or ``None`` to disable mismatch.
    rng:
        Generator used for the per-device mismatch draws.  Each call to
        :meth:`device_variation` consumes fresh randoms, so circuit
        builders must instantiate devices in a deterministic order for
        bit-reproducibility (all builders in :mod:`repro.designs` do).
    vdd:
        Optional per-lane supply voltage [V].  ``None`` (the default)
        means "use the kit's nominal supply"; circuit builders consult
        this when stamping their supply sources, which is how a PVT sweep
        batches several VDD values into one stacked solve.
    temp_k:
        Optional per-lane junction temperature [K].  ``None`` means the
        model cards' nominal temperature; otherwise
        :meth:`device_variation` folds the first-order temperature model
        (:meth:`~repro.circuit.mosfet.MOSModel.temperature_shift`) into
        every device's ``(delta_vto, beta_scale)``.
    """

    def __init__(self, size: int, *, dvto_n, kp_scale_n, dvto_p, kp_scale_p,
                 cap_scale=1.0,
                 mismatch: MismatchModel | None = None,
                 rng: np.random.Generator | None = None,
                 vdd=None, temp_k=None) -> None:
        self.size = int(size)
        self.dvto_n = np.broadcast_to(np.asarray(dvto_n, float), (size,))
        self.kp_scale_n = np.broadcast_to(np.asarray(kp_scale_n, float), (size,))
        self.dvto_p = np.broadcast_to(np.asarray(dvto_p, float), (size,))
        self.kp_scale_p = np.broadcast_to(np.asarray(kp_scale_p, float), (size,))
        self.cap_scale = np.broadcast_to(np.asarray(cap_scale, float), (size,))
        self.vdd = None if vdd is None else \
            np.broadcast_to(np.asarray(vdd, float), (size,))
        self.temp_k = None if temp_k is None else \
            np.broadcast_to(np.asarray(temp_k, float), (size,))
        self.mismatch = mismatch
        self.rng = rng
        if mismatch is not None and rng is None:
            raise ReproError("mismatch sampling requires an rng")

    @classmethod
    def nominal(cls, size: int = 1) -> "ProcessSample":
        """A no-variation sample (typical-mean die)."""
        zeros = np.zeros(size)
        ones = np.ones(size)
        return cls(size, dvto_n=zeros, kp_scale_n=ones,
                   dvto_p=zeros, kp_scale_p=ones)

    def _rebuild(self, size: int, transform) -> "ProcessSample":
        """A derived deterministic sample with every lane array mapped
        through ``transform`` (mismatch streams cannot be re-sliced)."""
        if self.mismatch is not None:
            raise ReproError(
                "cannot derive lanes from a sample with live mismatch "
                "(the per-device stream is not sliceable)")
        optional = {
            "vdd": None if self.vdd is None else transform(self.vdd),
            "temp_k": None if self.temp_k is None else transform(self.temp_k),
        }
        return ProcessSample(
            size,
            dvto_n=transform(self.dvto_n), kp_scale_n=transform(self.kp_scale_n),
            dvto_p=transform(self.dvto_p), kp_scale_p=transform(self.kp_scale_p),
            cap_scale=transform(self.cap_scale), **optional)

    def lanes(self, start: int, stop: int) -> "ProcessSample":
        """The deterministic sub-sample of lanes ``[start, stop)``
        (chunked corner sweeps slice one grid realisation this way)."""
        return self._rebuild(stop - start, lambda a: a[start:stop])

    def tiled(self, repeats: int) -> "ProcessSample":
        """The whole lane block repeated ``repeats`` times
        (grid x design-point sweeps tile one realisation per point)."""
        return self._rebuild(self.size * repeats,
                             lambda a: np.tile(a, repeats))

    def device_variation(self, model: MOSModel, w, l
                         ) -> tuple[np.ndarray, np.ndarray]:
        """Per-device ``(delta_vto, beta_scale)`` arrays of shape ``(B,)``.

        Combines the die-level global shift (shared by all devices of the
        polarity) with the lane's temperature shift (when ``temp_k`` is
        set) and a fresh Pelgrom mismatch draw for this device's gate
        area.
        """
        if model.polarity == "n":
            dvto = self.dvto_n.copy()
            beta_scale = self.kp_scale_n.copy()
        else:
            dvto = self.dvto_p.copy()
            beta_scale = self.kp_scale_p.copy()
        if self.temp_k is not None:
            dvt_temp, kp_temp = model.temperature_shift(self.temp_k)
            dvto = dvto + dvt_temp
            beta_scale = beta_scale * kp_temp
        if self.mismatch is not None:
            leff = np.asarray(l, float) - 2.0 * model.ld
            area = np.asarray(w, float) * leff
            dvt_local, dbeta_local = self.mismatch.draw(
                model.polarity, area, self.size, self.rng)
            dvto = dvto + dvt_local
            beta_scale = beta_scale * (1.0 + dbeta_local)
        return dvto, beta_scale


@dataclass
class ProcessKit:
    """A complete process description (see module docstring)."""

    name: str
    nmos: MOSModel
    pmos: MOSModel
    supply: float = 3.3
    global_variation: GlobalVariation = field(default_factory=GlobalVariation)
    mismatch: MismatchModel = field(default_factory=MismatchModel)
    corners: dict[str, CornerDef] = field(default_factory=dict)

    def model(self, polarity: str) -> MOSModel:
        """Nominal model card for ``polarity`` (``'n'`` or ``'p'``)."""
        if polarity == "n":
            return self.nmos
        if polarity == "p":
            return self.pmos
        raise ReproError(f"unknown polarity {polarity!r}")

    @property
    def models(self) -> dict[str, MOSModel]:
        """Model cards keyed by SPICE model name (for the parser)."""
        return {self.nmos.name: self.nmos, self.pmos.name: self.pmos}

    def corner_def(self, corner: str) -> CornerDef:
        """Look up a :class:`CornerDef` by (case-insensitive) name."""
        try:
            return self.corners[corner.lower()]
        except KeyError:
            known = ", ".join(sorted(self.corners))
            raise ReproError(
                f"unknown corner {corner!r} (known: {known})") from None

    def corner_sample(self, corner: str, *, vdd: float | None = None,
                      temp_c: float | None = None) -> ProcessSample:
        """The deterministic :class:`ProcessSample` of a named corner.

        ``vdd`` and ``temp_c`` optionally pin the environmental axes of
        the PVT space (supply voltage [V], temperature [deg C]); left as
        ``None`` they mean "nominal supply / model-card temperature".
        """
        c = self.corner_def(corner)
        return ProcessSample(
            1, dvto_n=c.dvto_n, kp_scale_n=c.kp_scale_n,
            dvto_p=c.dvto_p, kp_scale_p=c.kp_scale_p,
            cap_scale=c.cap_scale, vdd=vdd,
            temp_k=None if temp_c is None else temp_c + _ZERO_CELSIUS_K)

    def pvt_sample(self, corners, vdds=None, temps_c=None) -> ProcessSample:
        """One stacked :class:`ProcessSample` covering a full PVT grid.

        Lanes enumerate ``corners x vdds x temps_c`` in corner-major
        (``itertools.product``) order, so a grid of 5 corners, 3 supplies
        and 3 temperatures yields a 45-lane sample that one batched MNA
        solve evaluates in a single stacked factorisation.

        Parameters
        ----------
        corners:
            Iterable of corner names (see :attr:`corners`).
        vdds:
            Supply voltages [V]; ``None`` or empty means the nominal
            :attr:`supply` only.
        temps_c:
            Junction temperatures [deg C]; ``None`` or empty means the
            model cards' nominal temperature only.
        """
        corners = list(corners)
        if not corners:
            raise ReproError("pvt_sample needs at least one corner")
        defs = [self.corner_def(name) for name in corners]
        vdds = [float(v) for v in (vdds or [self.supply])]
        temps_c = [float(t) for t in temps_c] if temps_c else [None]
        n_env = len(vdds) * len(temps_c)
        size = len(defs) * n_env

        def per_corner(attr):
            return np.repeat([getattr(c, attr) for c in defs], n_env)

        vdd_lane = np.tile(np.repeat(vdds, len(temps_c)), len(defs))
        if temps_c == [None]:
            temp_lane = None
        else:
            temp_lane = np.tile(np.asarray(temps_c, float) + _ZERO_CELSIUS_K,
                                len(defs) * len(vdds))
        return ProcessSample(
            size,
            dvto_n=per_corner("dvto_n"), kp_scale_n=per_corner("kp_scale_n"),
            dvto_p=per_corner("dvto_p"), kp_scale_p=per_corner("kp_scale_p"),
            cap_scale=per_corner("cap_scale"),
            vdd=vdd_lane, temp_k=temp_lane)

    def global_sigmas(self) -> np.ndarray:
        """1-sigma scales of the global parameters, :data:`GLOBAL_DIMS` order."""
        gv = self.global_variation
        return np.array([gv.sigma_vto_n, gv.sigma_kp_n, gv.sigma_vto_p,
                         gv.sigma_kp_p, gv.sigma_cap])

    def sample_from_sigma(self, x, *, rng: np.random.Generator | None = None,
                          include_mismatch: bool = False) -> ProcessSample:
        """Die realisations at explicit sigma-unit global coordinates.

        The deterministic counterpart of :meth:`sample`: instead of
        drawing the global parameters internally, the caller supplies
        them as standard-normal-frame coordinates ``x`` of shape
        ``(B, len(GLOBAL_DIMS))`` (:data:`GLOBAL_DIMS` order).  This is
        the entry point of every estimator that *controls* the sampling
        plan -- the importance sampler's shifted proposal, the surrogate
        trainer's Latin-hypercube seed batch -- while sharing one
        definition of the sigma -> natural-unit map, including the
        -4-sigma positivity clip on the relative current-factor and
        capacitance deviates.

        Parameters
        ----------
        x:
            Sigma-unit coordinates, shape ``(B, 5)`` (a single ``(5,)``
            vector is promoted to one lane).
        rng, include_mismatch:
            As in :meth:`sample`; local (Pelgrom) mismatch stays an
            internal draw because it is per-device, not per-die.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != len(GLOBAL_DIMS):
            raise ReproError(
                f"sigma coordinates must have shape (B, {len(GLOBAL_DIMS)}), "
                f"got {x.shape}")
        sig = self.global_sigmas()
        return ProcessSample(
            x.shape[0],
            dvto_n=x[:, 0] * sig[0],
            kp_scale_n=1.0 + np.clip(x[:, 1] * sig[1], -4.0 * sig[1], None),
            dvto_p=x[:, 2] * sig[2],
            kp_scale_p=1.0 + np.clip(x[:, 3] * sig[3], -4.0 * sig[3], None),
            cap_scale=1.0 + np.clip(x[:, 4] * sig[4], -4.0 * sig[4], None),
            mismatch=self.mismatch if include_mismatch else None,
            rng=rng if include_mismatch else None)

    def sigma_coordinates(self, sample: ProcessSample) -> np.ndarray:
        """Sigma-unit global coordinates of a sample, shape ``(B, 5)``.

        Inverse of :meth:`sample_from_sigma` (and of the global part of
        :meth:`sample`) up to the -4-sigma positivity clip: a relative
        deviate that was clipped (probability ~3e-5 per dimension) maps
        back to exactly -4, not to its pre-clip value.  Mismatch is
        per-device state and has no die-level coordinate; it simply does
        not appear.
        """
        sig = self.global_sigmas()
        return np.stack([
            sample.dvto_n / sig[0],
            (sample.kp_scale_n - 1.0) / sig[1],
            sample.dvto_p / sig[2],
            (sample.kp_scale_p - 1.0) / sig[3],
            (sample.cap_scale - 1.0) / sig[4],
        ], axis=1)

    def sample(self, size: int, rng: np.random.Generator, *,
               include_global: bool = True,
               include_mismatch: bool = True) -> ProcessSample:
        """Draw ``size`` Monte-Carlo die realisations.

        Global parameters are normal; current factors are applied as
        ``1 + N(0, sigma)`` (clipped at -4 sigma to stay positive).
        """
        gv = self.global_variation
        if include_global:
            dvto_n = rng.normal(0.0, gv.sigma_vto_n, size)
            kp_n = 1.0 + np.clip(rng.normal(0.0, gv.sigma_kp_n, size),
                                 -4.0 * gv.sigma_kp_n, None)
            dvto_p = rng.normal(0.0, gv.sigma_vto_p, size)
            kp_p = 1.0 + np.clip(rng.normal(0.0, gv.sigma_kp_p, size),
                                 -4.0 * gv.sigma_kp_p, None)
            cap = 1.0 + np.clip(rng.normal(0.0, gv.sigma_cap, size),
                                -4.0 * gv.sigma_cap, None)
        else:
            dvto_n = dvto_p = np.zeros(size)
            kp_n = kp_p = np.ones(size)
            cap = np.ones(size)
        return ProcessSample(
            size, dvto_n=dvto_n, kp_scale_n=kp_n,
            dvto_p=dvto_p, kp_scale_p=kp_p, cap_scale=cap,
            mismatch=self.mismatch if include_mismatch else None,
            rng=rng if include_mismatch else None)
