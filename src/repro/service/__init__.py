"""Yield-as-a-service: queue workloads, serve cached results.

The ROADMAP's north star is a production-scale system serving many
users; this package is the serving layer over the workload abstraction
(:mod:`repro.workload`) and the content-addressed result cache
(:mod:`repro.cache`):

* :mod:`~repro.service.queue` -- an in-process :class:`JobQueue`:
  submit/status/result/cancel over a worker-thread pool (the numeric
  kernels release the GIL inside LAPACK), cache-first execution, per-job
  checkpointing, cooperative cancellation at checkpoint boundaries;
* :mod:`~repro.service.requests` -- plain-JSON request -> live workload
  (``estimate`` and ``lint`` kinds), so identical requests from
  different users fingerprint identically and share one cached result;
* :mod:`~repro.service.daemon` -- a file-spool daemon over a service
  root directory (``repro serve``), with ``repro submit`` /
  ``repro jobs`` as clients: requests are dropped into ``queue/``,
  statuses appear in ``jobs/``, cancellation is a marker file, shutdown
  is a ``stop`` sentinel.

See ``docs/service.md`` for the job lifecycle and operational knobs.
"""

from .daemon import (job_statuses, read_status, request_cancel, request_stats,
                     request_stop, serve, submit_request)
from .queue import JOB_STATES, Job, JobQueue
from .requests import REQUEST_KINDS, workload_from_request

__all__ = [
    "Job", "JobQueue", "JOB_STATES",
    "workload_from_request", "REQUEST_KINDS",
    "serve", "submit_request", "job_statuses", "read_status",
    "request_cancel", "request_stats", "request_stop",
]
