"""File-spool daemon: ``repro serve`` over a service root directory.

The wire protocol is the filesystem -- no sockets, no serialisation
framework, and atomic by construction (every file appears via the
cache layer's temp-file + rename writers):

.. code-block:: text

    <root>/
      queue/<id>.json    requests awaiting pickup (written by clients)
      jobs/<id>.json     status snapshots (written by the daemon)
      cancel/<id>        cancellation markers (written by clients)
      stats/<n>.request  metrics-snapshot requests (written by clients)
      stats/<n>.json     metrics-snapshot responses (written by the daemon)
      stop               shutdown sentinel (written by clients)
      cache/             the content-addressed result cache
      checkpoints/       per-job resumable state

Clients (:func:`submit_request`, :func:`job_statuses`,
:func:`request_cancel`, :func:`request_stats`, :func:`request_stop` --
or the ``repro submit`` / ``repro jobs`` / ``repro stats`` CLI verbs)
only ever touch ``queue/``, ``cancel/``, ``stats/*.request`` and
``stop``; the daemon owns ``jobs/`` and consumes the rest.  A request's
results live in the cache under the workload's content-address (the
``key`` field of its status), so resubmitting the same request -- even
after the daemon restarts -- is a cache hit.
"""

from __future__ import annotations

import json
import time
import uuid
from pathlib import Path

from .. import telemetry
from ..cache import ResultCache, atomic_write_text
from ..errors import WorkloadError
from .queue import JobQueue
from .requests import workload_from_request

__all__ = ["serve", "submit_request", "job_statuses", "read_status",
           "request_cancel", "request_stats", "request_stop"]

#: How often [s] the daemon samples the cache-size gauges while serving.
STATS_SAMPLE_INTERVAL = 1.0


def _dirs(root) -> dict[str, Path]:
    root = Path(root)
    return {"root": root, "queue": root / "queue", "jobs": root / "jobs",
            "cancel": root / "cancel", "cache": root / "cache",
            "checkpoints": root / "checkpoints", "stats": root / "stats",
            "stop": root / "stop"}


def _ensure_layout(root) -> dict[str, Path]:
    layout = _dirs(root)
    for name in ("queue", "jobs", "cancel", "stats"):
        layout[name].mkdir(parents=True, exist_ok=True)
    return layout


def _write_status(layout: dict, job_id: str, snapshot: dict) -> None:
    atomic_write_text(layout["jobs"] / f"{job_id}.json",
                      json.dumps(snapshot, indent=2, sort_keys=True))


# -- client side ----------------------------------------------------------
def submit_request(root, request: dict, *, job_id: str | None = None) -> str:
    """Drop a request into the service root's queue; returns the job id.

    The request is validated client-side (built into a workload and
    discarded), so malformed submissions fail here with a readable
    :class:`~repro.errors.WorkloadError` instead of as a failed job.
    """
    workload = workload_from_request(request)
    layout = _ensure_layout(root)
    if job_id is None:
        job_id = f"job-{uuid.uuid4().hex[:12]}"
    _write_status(layout, job_id, {
        "id": job_id, "kind": workload.kind, "key": workload.key(),
        "state": "queued", "cache_hit": False})
    atomic_write_text(layout["queue"] / f"{job_id}.json",
                      json.dumps(request, indent=2, sort_keys=True))
    return job_id


def read_status(root, job_id: str) -> dict:
    """The current status snapshot of one job."""
    path = _dirs(root)["jobs"] / f"{job_id}.json"
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise WorkloadError(f"unknown job id {job_id!r}") from None


def job_statuses(root) -> list[dict]:
    """Status snapshots of every job under the root, oldest first."""
    jobs_dir = _dirs(root)["jobs"]
    if not jobs_dir.is_dir():
        return []
    entries = []
    for path in jobs_dir.glob("*.json"):
        try:
            entries.append((path.stat().st_mtime, path.stem,
                            json.loads(path.read_text())))
        except (OSError, ValueError):
            continue  # being rewritten; the next listing will see it
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return [snapshot for _, _, snapshot in entries]


def request_cancel(root, job_id: str) -> None:
    """Ask the daemon to cancel a job (cooperative; may land too late)."""
    layout = _ensure_layout(root)
    (layout["cancel"] / job_id).touch()


def request_stop(root) -> None:
    """Ask the daemon to finish running jobs and exit."""
    _dirs(root)["stop"].touch()


def request_stats(root, *, timeout: float = 10.0,
                  poll: float = 0.05) -> dict:
    """Ask a running daemon for a metrics snapshot (blocking).

    Drops a ``stats/<nonce>.request`` marker; the daemon answers with an
    atomically-written ``stats/<nonce>.json`` carrying its metrics
    registry snapshot (counters, gauges with timestamped samples,
    histograms), live cache figures and per-state job counts.

    Raises
    ------
    WorkloadError
        No response within ``timeout`` seconds (daemon not running, or
        stalled).
    """
    layout = _ensure_layout(root)
    nonce = uuid.uuid4().hex[:12]
    response = layout["stats"] / f"{nonce}.json"
    (layout["stats"] / f"{nonce}.request").touch()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            payload = json.loads(response.read_text())
        except (FileNotFoundError, ValueError):
            time.sleep(poll)
            continue
        response.unlink(missing_ok=True)
        return payload
    raise WorkloadError(
        f"no stats response from {layout['root']} within {timeout:g}s "
        "(is the daemon running?)")


# -- daemon side ----------------------------------------------------------
def _stats_payload(cache: ResultCache, jobs: JobQueue) -> dict:
    """The daemon's answer to one stats request."""
    return {
        "t": time.time(),
        "metrics": telemetry.snapshot(),
        "cache": {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "stores": cache.stats.stores,
            "evictions": cache.stats.evictions,
            "bytes": cache.total_bytes(),
            "entries": len(cache),
        },
        "jobs": jobs.counts(),
    }


def serve(root, *, workers: int = 2, poll: float = 0.05,
          idle_exit: float | None = None, max_bytes: int | None = None,
          sample_every: float = STATS_SAMPLE_INTERVAL,
          progress=None) -> int:
    """Run the service daemon over ``root`` until stopped.

    Parameters
    ----------
    workers:
        Concurrent jobs (the underlying :class:`JobQueue`'s pool size).
    poll:
        Spool scan interval [s].
    idle_exit:
        Exit after this many seconds with no queued or running work
        (``None`` = run until the ``stop`` sentinel appears).
    max_bytes:
        Byte budget of the result cache (``None`` = the cache default).
    sample_every:
        Interval [s] between cache-size gauge samples
        (``cache.bytes`` / ``cache.entries`` in the metrics registry --
        what :func:`request_stats` reports as timestamped history).
    progress:
        Optional ``callable(str)`` for lifecycle announcements.

    Returns the number of jobs processed.  The ``stop`` sentinel is
    consumed on exit so the next ``serve`` starts clean.
    """
    layout = _ensure_layout(root)
    say = telemetry.announcer(progress)
    cache = ResultCache(layout["cache"], **(
        {"max_bytes": max_bytes} if max_bytes is not None else {}))
    processed = 0
    active: dict[str, object] = {}
    last_activity = time.monotonic()
    last_sample = float("-inf")
    say(f"serving {layout['root']} ({workers} worker(s))")
    with JobQueue(workers=workers, cache=cache,
                  checkpoint_dir=layout["checkpoints"]) as jobs:
        while True:
            if layout["stop"].exists():
                say("stop requested")
                break

            # Sample the cache-size gauges on a fixed cadence, so the
            # registry carries a timestamped history (``repro stats``).
            if time.monotonic() - last_sample >= sample_every:
                telemetry.gauge_set("cache.bytes", cache.total_bytes())
                telemetry.gauge_set("cache.entries", len(cache))
                last_sample = time.monotonic()

            # Answer metrics-snapshot requests.
            for marker in layout["stats"].glob("*.request"):
                atomic_write_text(
                    marker.with_suffix(".json"),
                    json.dumps(_stats_payload(cache, jobs), indent=2,
                               sort_keys=True))
                marker.unlink(missing_ok=True)

            # Pick up new requests.
            for path in sorted(layout["queue"].glob("*.json")):
                job_id = path.stem
                try:
                    request = json.loads(path.read_text())
                    workload = workload_from_request(request)
                    jobs.submit(workload, job_id=job_id)
                except (OSError, ValueError, WorkloadError) as exc:
                    _write_status(layout, job_id, {
                        "id": job_id, "state": "failed",
                        "error": str(exc)})
                    say(f"{job_id}: rejected ({exc})")
                else:
                    active[job_id] = workload
                    _write_status(layout, job_id, jobs.status(job_id))
                    say(f"{job_id}: queued ({workload.kind})")
                path.unlink(missing_ok=True)
                last_activity = time.monotonic()

            # Relay cancellation markers.
            for marker in layout["cancel"].iterdir():
                if marker.name in active:
                    jobs.cancel(marker.name)
                    say(f"{marker.name}: cancel requested")
                marker.unlink(missing_ok=True)

            # Publish progress and reap finished jobs.
            for job_id in list(active):
                snapshot = jobs.status(job_id)
                _write_status(layout, job_id, snapshot)
                if snapshot["state"] in ("done", "failed", "cancelled"):
                    say(f"{job_id}: {snapshot['state']}"
                        + (" (cache hit)" if snapshot["cache_hit"] else ""))
                    del active[job_id]
                    processed += 1
                    last_activity = time.monotonic()

            if active:
                last_activity = time.monotonic()
            elif idle_exit is not None and \
                    time.monotonic() - last_activity > idle_exit:
                say(f"idle for {idle_exit:g}s, exiting")
                break
            time.sleep(poll)

        # Drain: mark whatever is still active as cancelled-by-shutdown.
        for job_id in active:
            jobs.cancel(job_id)
    for job_id in active:
        _write_status(layout, job_id, jobs.status(job_id))
        processed += 1
    layout["stop"].unlink(missing_ok=True)
    say(f"served {processed} job(s); {cache.stats.describe()}")
    return processed
