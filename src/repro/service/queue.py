"""The in-process job queue: workloads over a worker-thread pool.

Threads, not processes: the heavy lifting inside every workload is
stacked LAPACK solves, which release the GIL, so a thread pool reaches
real parallelism without pickling evaluator closures.  (The engines'
*own* ``backend``/``workers`` knobs still apply inside each job; the
queue's workers set how many jobs run concurrently.)

Execution is cache-first when a :class:`repro.cache.ResultCache` is
attached: a job whose fingerprint is already stored completes without
simulating.  With a checkpoint directory, resumable workloads write
their checkpoint under their own content-address, so a cancelled or
crashed job's successor -- even from a different queue instance --
resumes instead of restarting.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from .. import telemetry
from ..errors import JobCancelled, WorkloadError
from ..workload import WorkloadResult

__all__ = ["Job", "JobQueue", "JOB_STATES"]

#: Lifecycle of a job:
#: ``queued -> running -> done | failed | cancelled``
#: (a queued job can also move straight to ``cancelled``).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted workload and its lifecycle state."""

    id: str
    workload: object
    state: str = "queued"
    result: WorkloadResult | None = None
    error: str = ""
    cache_hit: bool = False
    submitted: float = field(default_factory=time.monotonic)
    started: float | None = None
    finished: float | None = None
    progress_done: int = 0
    progress_total: int = 0
    _cancel: threading.Event = field(default_factory=threading.Event,
                                     repr=False)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def snapshot(self) -> dict:
        """JSON-able status view (what the daemon writes to ``jobs/``)."""
        out = {
            "id": self.id,
            "kind": self.workload.kind,
            "key": self.workload.key(),
            "state": self.state,
            "cache_hit": self.cache_hit,
        }
        if self.progress_total:
            out["progress"] = [self.progress_done, self.progress_total]
        if self.error:
            out["error"] = self.error
        if self.state == "done" and self.result is not None:
            out["meta"] = self.result.meta
        return out


class JobQueue:
    """Submit/status/result/cancel over a pool of worker threads.

    Parameters
    ----------
    workers:
        Concurrent jobs (worker threads).
    cache:
        Optional :class:`repro.cache.ResultCache` for cache-first
        execution; its counters double as the queue's hit metrics.
    checkpoint_dir:
        Optional directory for per-job checkpoints, named by each
        workload's content-address so identical resubmissions resume.

    Usable as a context manager (``with JobQueue(...) as jobs:``);
    exit shuts the pool down after draining queued work.
    """

    def __init__(self, *, workers: int = 2, cache=None,
                 checkpoint_dir=None) -> None:
        if workers < 1:
            raise WorkloadError("JobQueue.workers must be >= 1")
        self.cache = cache
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._inflight: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._todo: _queue.Queue = _queue.Queue()
        self._counter = 0
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{index}")
            for index in range(workers)]
        for thread in self._threads:
            thread.start()

    # -- submission -------------------------------------------------------
    def submit(self, workload, *, job_id: str | None = None) -> str:
        """Enqueue a workload; returns its job id."""
        with self._lock:
            if self._shutdown:
                raise WorkloadError("queue is shut down")
            if job_id is None:
                self._counter += 1
                job_id = f"job-{self._counter:06d}"
            if job_id in self._jobs:
                raise WorkloadError(f"duplicate job id {job_id!r}")
            job = Job(id=job_id, workload=workload)
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._todo.put(job)
        return job_id

    # -- inspection -------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise WorkloadError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> dict:
        """Status snapshot of one job."""
        return self._job(job_id).snapshot()

    def jobs(self) -> list[dict]:
        """Status snapshots of every job, in submission order."""
        with self._lock:
            ordered = [self._jobs[job_id] for job_id in self._order]
        return [job.snapshot() for job in ordered]

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state."""
        out = dict.fromkeys(JOB_STATES, 0)
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            out[job.state] += 1
        return out

    # -- results ----------------------------------------------------------
    def result(self, job_id: str, timeout: float | None = None
               ) -> WorkloadResult:
        """Block until a job finishes; return (or re-raise) its outcome.

        Raises
        ------
        WorkloadError
            Unknown id, timeout, or the job failed (carrying the
            worker-side traceback text).
        JobCancelled
            The job was cancelled before completing.
        """
        job = self._job(job_id)
        if not job._done.wait(timeout):
            raise WorkloadError(f"timed out waiting for job {job_id!r}")
        if job.state == "cancelled":
            raise JobCancelled(job_id=job_id)
        if job.state == "failed":
            raise WorkloadError(
                f"job {job_id!r} failed:\n{job.error}")
        assert job.result is not None
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; ``True`` unless the job already finished.

        A queued job is cancelled before it starts; a running job stops
        cooperatively at its next checkpoint/progress boundary.
        """
        job = self._job(job_id)
        if job._done.is_set():
            return False
        job._cancel.set()
        return True

    # -- lifecycle --------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (after draining the queue when ``wait``)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._todo.put(None)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- worker loop ------------------------------------------------------
    def _checkpoint_for(self, job: Job):
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"{job.workload.key()}.npz"

    def _worker(self) -> None:
        while True:
            job = self._todo.get()
            if job is None:
                return
            if job.cancel_requested:
                self._finish(job, "cancelled")
                continue
            job.state = "running"
            job.started = time.monotonic()

            def progress(done=0, total=0, *, _job=job):
                # Engine progress signatures vary; only the numeric
                # (done, total) form is recorded.
                if isinstance(done, (int, float)) and total:
                    _job.progress_done = int(done)
                    _job.progress_total = int(total)

            workload = job.workload
            # Single-flight: when an identical cacheable workload is
            # already running, wait for it instead of recomputing -- the
            # follower's run_cached then serves the leader's stored
            # result.  (Concurrent identical submissions are exactly the
            # many-users case the cache exists for.)
            key = leader = None
            if self.cache is not None and workload.cacheable:
                key = workload.key()
                with self._lock:
                    leader = self._inflight.get(key)
                    if leader is None:
                        self._inflight[key] = job
            try:
                with telemetry.span("job.run", id=job.id,
                                    kind=workload.kind):
                    if leader is not None:
                        while not leader._done.wait(0.05):
                            if job.cancel_requested:
                                raise JobCancelled(job_id=job.id)
                    kwargs = {"checkpoint": self._checkpoint_for(job),
                              "progress": progress,
                              "cancel": job._cancel.is_set}
                    if self.cache is not None:
                        result = workload.run_cached(self.cache, **kwargs)
                    else:
                        result = workload.run(**kwargs)
                job.result = result
                job.cache_hit = result.cache_hit
                self._finish(job, "done")
            except JobCancelled:
                self._finish(job, "cancelled")
            except Exception:
                job.error = traceback.format_exc()
                self._finish(job, "failed")
            finally:
                if key is not None and leader is None:
                    with self._lock:
                        self._inflight.pop(key, None)

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished = time.monotonic()
        telemetry.counter_add(f"jobs.{state}")
        job._done.set()
