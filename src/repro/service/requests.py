"""Plain-JSON service requests -> live workloads.

The service boundary speaks JSON only: a request is a dict with a
``kind`` field naming the workload family, plus that family's
parameters.  Everything identity-relevant ends up in the workload's
fingerprint, so two users submitting the same request -- from different
processes, machines, or days -- address the same cache entry.

Request kinds
-------------
``estimate``
    Streaming Monte-Carlo yield estimate of one OTA design::

        {"kind": "estimate",
         "design": {"w1": 3e-05, "l1": 1e-06, ..., "w4": ..., "l4": ...},
         "n_samples": 500, "seed": 2008, "chunk_lanes": 256,
         "specs": [["gain_db", "ge", 50.0, "dB"],
                   ["pm_deg", "ge", 60.0, "deg"]],
         "adaptive_ci": 0.05}

    ``design`` may also be a flat 8-list (W1 L1 ... W4 L4).  All fields
    but ``design`` are optional; ``specs`` defaults to the paper's OTA
    requirement, ``adaptive_ci`` of 0 runs the exact sample count.

``lint``
    Topology lint of netlist source text::

        {"kind": "lint", "netlist": "...", "mode": "warn"}

    ``mode`` defaults to ``"warn"`` at the service boundary (report,
    don't raise): a strict gate turns findings into a *failed* job,
    which is also supported but rarely what a lint client wants.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..workload import (Workload, lint_workload_from_source,
                        ota_estimate_workload)

__all__ = ["workload_from_request", "REQUEST_KINDS"]

#: Request kinds the service understands.
REQUEST_KINDS = ("estimate", "lint")

_ESTIMATE_FIELDS = ("n_samples", "seed", "chunk_lanes", "specs",
                    "adaptive_ci", "check_every", "pdk", "cl", "ibias")


def workload_from_request(request: dict) -> Workload:
    """Build the workload a JSON request describes.

    Raises
    ------
    WorkloadError
        Unknown kind, missing required fields, or malformed parameters
        -- raised *here*, at the submission boundary, so a bad request
        never occupies a worker.
    """
    if not isinstance(request, dict):
        raise WorkloadError(f"request must be a JSON object, "
                            f"got {type(request).__name__}")
    kind = request.get("kind")
    if kind == "estimate":
        if "design" not in request:
            raise WorkloadError("estimate request needs a 'design' field")
        unknown = set(request) - {"kind", "design", *_ESTIMATE_FIELDS}
        if unknown:
            raise WorkloadError(
                f"unknown estimate field(s): {', '.join(sorted(unknown))}")
        options = {name: request[name] for name in _ESTIMATE_FIELDS
                   if name in request}
        return ota_estimate_workload(request["design"], **options)
    if kind == "lint":
        if "netlist" not in request:
            raise WorkloadError("lint request needs a 'netlist' field")
        return lint_workload_from_source(
            str(request["netlist"]), str(request.get("mode", "warn")),
            title=str(request.get("title", "")))
    raise WorkloadError(
        f"unknown request kind {kind!r} "
        f"(known: {', '.join(REQUEST_KINDS)})")
