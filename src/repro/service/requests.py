"""Plain-JSON service requests -> live workloads.

The service boundary speaks JSON only: a request is a dict with a
``kind`` field naming the workload family, plus that family's
parameters.  Everything identity-relevant ends up in the workload's
fingerprint, so two users submitting the same request -- from different
processes, machines, or days -- address the same cache entry.

Request kinds
-------------
``estimate``
    Streaming Monte-Carlo yield estimate of one OTA design::

        {"kind": "estimate",
         "design": {"w1": 3e-05, "l1": 1e-06, ..., "w4": ..., "l4": ...},
         "n_samples": 500, "seed": 2008, "chunk_lanes": 256,
         "specs": [["gain_db", "ge", 50.0, "dB"],
                   ["pm_deg", "ge", 60.0, "deg"]],
         "adaptive_ci": 0.05}

    ``design`` may also be a flat 8-list (W1 L1 ... W4 L4).  All fields
    but ``design`` are optional; ``specs`` defaults to the paper's OTA
    requirement, ``adaptive_ci`` of 0 runs the exact sample count.

``lint``
    Topology lint of netlist source text::

        {"kind": "lint", "netlist": "...", "mode": "warn"}

    ``mode`` defaults to ``"warn"`` at the service boundary (report,
    don't raise): a strict gate turns findings into a *failed* job,
    which is also supported but rarely what a lint client wants.

``rare``
    High-sigma rare-event failure estimate of one OTA design
    (:func:`repro.yieldmodel.rare.estimate_yield_rare`)::

        {"kind": "rare", "design": {...},
         "n_per_level": 2000, "n_final": 4000, "seed": 2008,
         "specs": [["gain_db", "ge", 50.0, "dB"]]}

    Same ``design``/``specs`` conventions as ``estimate``; the other
    fields mirror :class:`~repro.yieldmodel.rare.RareEventConfig`.

``corners``
    Deterministic PVT corner sweep of one OTA design::

        {"kind": "corners", "design": {...},
         "corners": "ws,wp", "vdds": "3.0,3.3,3.6", "temps": "-40,27,125"}

    Grid specs are the CLI's comma-separated strings; all optional
    (``corners`` defaults to every kit corner, empty supply/temperature
    lists mean the kit defaults).

``surrogate``
    Process-space surrogate training for one OTA design::

        {"kind": "surrogate", "design": {...},
         "n_train": 96, "surrogate_kind": "quadratic", "seed": 2008}
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..workload import (Workload, lint_workload_from_source,
                        ota_corner_workload, ota_estimate_workload,
                        ota_rare_workload, ota_surrogate_workload)

__all__ = ["workload_from_request", "REQUEST_KINDS"]

#: Request kinds the service understands.
REQUEST_KINDS = ("estimate", "lint", "rare", "corners", "surrogate")

_ESTIMATE_FIELDS = ("n_samples", "seed", "chunk_lanes", "specs",
                    "adaptive_ci", "check_every", "pdk", "cl", "ibias")

_RARE_FIELDS = ("n_per_level", "max_levels", "level_quantile", "n_final",
                "seed", "chunk_lanes", "specs", "max_shift_sigma",
                "include_mismatch", "confidence", "pdk", "cl", "ibias")

_CORNERS_FIELDS = ("corners", "vdds", "temps", "pdk", "cl", "ibias",
                   "chunk_lanes")

_SURROGATE_FIELDS = ("n_train", "seed", "surrogate_kind",
                     "include_mismatch", "chunk_lanes", "pdk", "cl",
                     "ibias")

_DESIGN_KINDS = {
    "estimate": (_ESTIMATE_FIELDS, ota_estimate_workload),
    "rare": (_RARE_FIELDS, ota_rare_workload),
    "corners": (_CORNERS_FIELDS, ota_corner_workload),
    "surrogate": (_SURROGATE_FIELDS, ota_surrogate_workload),
}


def workload_from_request(request: dict) -> Workload:
    """Build the workload a JSON request describes.

    Raises
    ------
    WorkloadError
        Unknown kind, missing required fields, or malformed parameters
        -- raised *here*, at the submission boundary, so a bad request
        never occupies a worker.
    """
    if not isinstance(request, dict):
        raise WorkloadError(f"request must be a JSON object, "
                            f"got {type(request).__name__}")
    kind = request.get("kind")
    if kind in _DESIGN_KINDS:
        fields, constructor = _DESIGN_KINDS[kind]
        if "design" not in request:
            raise WorkloadError(f"{kind} request needs a 'design' field")
        unknown = set(request) - {"kind", "design", *fields}
        if unknown:
            raise WorkloadError(
                f"unknown {kind} field(s): {', '.join(sorted(unknown))}")
        options = {name: request[name] for name in fields
                   if name in request}
        return constructor(request["design"], **options)
    if kind == "lint":
        if "netlist" not in request:
            raise WorkloadError("lint request needs a 'netlist' field")
        return lint_workload_from_source(
            str(request["netlist"]), str(request.get("mode", "warn")),
            title=str(request.get("title", "")))
    raise WorkloadError(
        f"unknown request kind {kind!r} "
        f"(known: {', '.join(REQUEST_KINDS)})")
