"""Surrogate metamodels: regression stand-ins for circuit evaluation.

The paper replaces transistor-level simulation with behavioural models
over *design* parameters; this package applies the same move to the
*process* axis: train polynomial / RBF response surfaces of each
performance measure over the sigma-unit global-parameter space
(:data:`repro.process.GLOBAL_DIMS`), then run yield campaigns through
the surfaces at polynomial-evaluation cost.

Layers:

* :mod:`~repro.surrogate.regression` -- the model families
  (:class:`PolynomialSurrogate`, :class:`RBFSurrogate`) with
  closed-form leave-one-out cross-validation errors;
* :mod:`~repro.surrogate.train` -- Latin-hypercube seed batches routed
  through the :mod:`repro.exec` backends, the :class:`SurrogateBundle`
  (a drop-in :func:`repro.mc.engine.monte_carlo` evaluator), and
  ``.npz`` persistence;
* :mod:`~repro.surrogate.estimator` -- the
  :class:`SurrogateYieldEstimator`: calibrated classification, adaptive
  refinement of ambiguous lanes, a CV-error refusal gate, and a
  direct-MC control cross-check.

See ``docs/estimators.md`` for how this path compares to direct MC,
importance sampling, and corner bounding.
"""

from .estimator import (SurrogateConfig, SurrogateYieldEstimate,
                        SurrogateYieldEstimator, estimate_yield_surrogate)
from .regression import (SURROGATE_KINDS, PolynomialSurrogate, RBFSurrogate,
                         fit_surrogate)
from .train import (SurrogateBundle, evaluate_sigma_batch, load_surrogates,
                    save_surrogates, surrogate_arrays, surrogates_from_arrays,
                    train_surrogates)

__all__ = [
    "PolynomialSurrogate", "RBFSurrogate", "SURROGATE_KINDS", "fit_surrogate",
    "SurrogateBundle", "train_surrogates", "evaluate_sigma_batch",
    "save_surrogates", "load_surrogates",
    "surrogate_arrays", "surrogates_from_arrays",
    "SurrogateConfig", "SurrogateYieldEstimate", "SurrogateYieldEstimator",
    "estimate_yield_surrogate",
]
