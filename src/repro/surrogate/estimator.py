"""Surrogate-accelerated yield estimation.

The fourth yield path of the library (after direct Monte Carlo,
importance sampling, and corner bounding): train cheap response surfaces
of each performance over the global process parameters, then classify a
*large* Monte-Carlo population through the surrogates instead of the
circuit simulator.  Surrogate-guided sampling is the standard route to
cheap high-sigma yield (Jonsson & Lelong, 2021); the estimator here
keeps itself honest three ways:

1. **Calibrated classification.**  A lane is not hard-classified from
   its predicted margin; each spec contributes a pass *probability*
   ``Phi(margin / cv_error)`` using the surrogate's leave-one-out CV
   error as the residual scale.  Lanes far from every limit collapse to
   0/1; lanes near a limit carry their genuine uncertainty (including
   the local-mismatch spread the features cannot see, which lives in
   the CV error) into the estimate and its interval.
2. **Adaptive refinement.**  The most ambiguous lanes -- predicted spec
   margin inside the CV error band -- are evaluated with the real
   simulator (up to a budget), their exact pass/fail replaces the
   probabilistic guess, and the new samples are folded back into the
   training set for a refit.  The simulator budget concentrates exactly
   where the surrogate is least trustworthy.
3. **Refusal + control.**  If, after refinement, any performance's CV
   error is still comparable to that performance's own training spread
   (ratio above :attr:`SurrogateConfig.cv_threshold`), the estimator
   raises :class:`~repro.errors.SurrogateError` instead of reporting.
   Otherwise it runs a small direct-MC **control batch** through
   :func:`repro.mc.engine.monte_carlo` and records whether the two
   confidence intervals overlap.

Total simulator cost is ``n_train + refined lanes + control_samples``
against ``n_mc`` for the direct estimate of the same sampling error --
the ``benchmarks/test_surrogate_speedup.py`` measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SurrogateError
from ..mc.engine import MCConfig, monte_carlo
from ..mc.sampler import erf, latin_hypercube_normal, stream
from ..measure.specs import SpecSet
from ..process.pdk import GLOBAL_DIMS, ProcessKit
from ..yieldmodel.estimator import (YieldEstimate, estimate_yield,
                                    normal_interval)
from .train import SurrogateBundle, evaluate_sigma_batch, train_surrogates

__all__ = ["SurrogateConfig", "SurrogateYieldEstimate",
           "SurrogateYieldEstimator", "estimate_yield_surrogate"]


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + erf(np.asarray(z, float) / np.sqrt(2.0)))


@dataclass(frozen=True)
class SurrogateConfig:
    """Settings of the surrogate yield estimator.

    Attributes
    ----------
    n_train:
        Latin-hypercube seed-batch size (simulator calls) of the initial
        fit.
    n_mc:
        Monte-Carlo population classified through the surrogate.  This
        sets the *sampling* error exactly as ``n_samples`` does for
        direct MC -- but each lane costs a polynomial evaluation, not an
        MNA solve.
    control_samples:
        Direct-MC control batch cross-checked against the surrogate
        estimate (0 disables the control run).
    seed:
        Root seed; training, refinement, population, and control stages
        use independent derived streams.
    kind:
        Surrogate family: ``"linear"``, ``"quadratic"`` (default), or
        ``"rbf"``.
    refine_rounds, refine_budget:
        Adaptive refinement: up to ``refine_budget`` total ambiguous
        lanes are simulator-evaluated across ``refine_rounds``
        retrain rounds.
    band_sigma:
        Half-width of the ambiguity band in CV-error units: a lane is
        refinement-eligible when some spec's predicted margin satisfies
        ``|margin| <= band_sigma * cv_error``.
    cv_threshold:
        Refusal limit on ``cv_error / std(training responses)`` per
        performance.  At 1.0 the surrogate predicts no better than the
        population mean; the default refuses a little before that.
    include_mismatch:
        Carry local mismatch in training/refinement/control evaluations
        (keep on for honest CV errors; see the module docstring).
    confidence:
        Level of the reported interval.
    backend, workers, chunk_lanes:
        Execution-backend routing for every simulator batch (training,
        refinement, control), exactly as in
        :class:`repro.mc.engine.MCConfig`.
    """

    n_train: int = 96
    n_mc: int = 4000
    control_samples: int = 100
    seed: int = 2008
    kind: str = "quadratic"
    refine_rounds: int = 2
    refine_budget: int = 128
    band_sigma: float = 2.0
    cv_threshold: float = 0.95
    include_mismatch: bool = True
    confidence: float = 0.95
    backend: object = None
    workers: int = 0
    chunk_lanes: int = 4000


@dataclass
class SurrogateYieldEstimate:
    """A surrogate-accelerated yield measurement with its diagnostics.

    Attributes
    ----------
    yield_estimate:
        Point estimate: exact pass fraction over the simulator-resolved
        lanes plus calibrated pass probabilities over the rest.
    std_error:
        Standard error combining the binomial sampling term with the
        surrogate classification-uncertainty term.
    n_mc:
        Population size classified through the surrogate.
    n_train, n_refined:
        Simulator calls spent on the seed batch and on ambiguous-lane
        refinement.
    cv_errors, cv_ratios:
        Per-performance LOO CV RMSE and its ratio to the training
        response spread (the refusal metric).
    control:
        Direct-MC control estimate (``None`` when disabled).
    consistent_with_control:
        Do the surrogate and control confidence intervals overlap?
    simulator_evals:
        Total circuit-level evaluations spent
        (``n_train + n_refined + control``).
    """

    yield_estimate: float
    std_error: float
    n_mc: int
    n_train: int
    n_refined: int
    cv_errors: dict[str, float]
    cv_ratios: dict[str, float]
    control: YieldEstimate | None = None
    consistent_with_control: bool = True
    confidence: float = 0.95
    simulator_evals: int = 0
    ambiguous_lanes: int = field(default=0)

    @property
    def interval(self) -> tuple[float, float]:
        """Normal-approximation confidence interval on the true yield."""
        return normal_interval(self.yield_estimate, self.std_error,
                               self.confidence)

    @property
    def percent(self) -> float:
        """The yield estimate in percent."""
        return 100.0 * self.yield_estimate

    def consistent_with(self, direct: YieldEstimate) -> bool:
        """Interval-overlap agreement with a direct-MC estimate."""
        lo, hi = self.interval
        lo_mc, hi_mc = direct.interval
        return lo <= hi_mc and lo_mc <= hi

    def describe(self) -> str:
        """Multi-line human-readable report of the estimate."""
        lo, hi = self.interval
        cv = ", ".join(f"{name}={err:.3g} ({self.cv_ratios[name]:.0%} of "
                       f"spread)" for name, err in self.cv_errors.items())
        lines = [
            f"surrogate yield {self.percent:.2f}% "
            f"({self.confidence:.0%} CI: [{100 * lo:.2f}%, {100 * hi:.2f}%])",
            f"  population {self.n_mc} lanes, {self.ambiguous_lanes} "
            f"ambiguous, {self.n_refined} simulator-refined",
            f"  simulator evaluations: {self.simulator_evals} "
            f"(train {self.n_train} + refine {self.n_refined} + control "
            f"{self.simulator_evals - self.n_train - self.n_refined})",
            f"  CV error: {cv}",
        ]
        if self.control is not None:
            agree = "overlap" if self.consistent_with_control else "DISJOINT"
            c_lo, c_hi = self.control.interval
            lines.append(
                f"  control MC: {self.control.percent:.2f}% "
                f"[{100 * c_lo:.2f}%, {100 * c_hi:.2f}%] ({agree})")
        return "\n".join(lines)


class SurrogateYieldEstimator:
    """Drives the train -> refine -> classify -> cross-check pipeline.

    Parameters
    ----------
    evaluator:
        Circuit-level evaluator, :func:`repro.mc.engine.monte_carlo`
        contract: ``(ProcessSample) -> dict[name, (S,) array]``.
    specs:
        The pass/fail specification set.
    pdk:
        The process kit whose global parameters span the surrogate's
        feature space.
    config:
        A :class:`SurrogateConfig` (defaults used when ``None``).

    After :meth:`estimate` (or :meth:`train`), the fitted
    :attr:`bundle` is available for reuse -- e.g. as a drop-in MC-engine
    evaluator or for persistence via
    :func:`repro.surrogate.save_surrogates`.
    """

    def __init__(self, evaluator, specs: SpecSet, pdk: ProcessKit,
                 config: SurrogateConfig | None = None) -> None:
        self.evaluator = evaluator
        self.specs = specs
        self.pdk = pdk
        self.config = config or SurrogateConfig()
        self.bundle: SurrogateBundle | None = None

    # -- training ------------------------------------------------------------
    def train(self) -> SurrogateBundle:
        """Fit the initial seed-batch surrogates (no refinement yet)."""
        config = self.config
        self.bundle = train_surrogates(
            self.evaluator, self.pdk, n_train=config.n_train,
            seed=config.seed, kind=config.kind,
            include_mismatch=config.include_mismatch,
            backend=config.backend, workers=config.workers,
            chunk_lanes=config.chunk_lanes)
        return self.bundle

    def _spec_scales(self, bundle: SurrogateBundle) -> dict[str, float]:
        """Residual scale per spec'd performance: the CV error, floored
        away from zero so probabilities stay defined."""
        scales = {}
        for spec in self.specs:
            if spec.name not in bundle.models:
                raise SurrogateError(
                    f"surrogate bundle lacks performance {spec.name!r} "
                    f"(has {sorted(bundle.models)})")
            scales[spec.name] = max(bundle.models[spec.name].cv_error, 1e-12)
        return scales

    def _ambiguity(self, predicted: dict[str, np.ndarray],
                   bundle: SurrogateBundle) -> np.ndarray:
        """Per-lane ambiguity: the smallest ``|margin| / cv_error`` over
        the specs.  Small = close to a limit relative to what the model
        can resolve."""
        scales = self._spec_scales(bundle)
        worst: np.ndarray | None = None
        for spec in self.specs:
            z = np.abs(spec.margin(predicted[spec.name])) / scales[spec.name]
            worst = z if worst is None else np.minimum(worst, z)
        return worst

    def _pass_probability(self, predicted: dict[str, np.ndarray],
                          bundle: SurrogateBundle) -> np.ndarray:
        """Calibrated per-lane pass probability (independent residuals
        per spec, so the joint probability is the product)."""
        scales = self._spec_scales(bundle)
        probability = np.ones(next(iter(predicted.values())).size)
        for spec in self.specs:
            z = spec.margin(predicted[spec.name]) / scales[spec.name]
            probability = probability * _normal_cdf(z)
        return probability

    # -- the pipeline --------------------------------------------------------
    def estimate(self) -> SurrogateYieldEstimate:
        """Run the full pipeline and return the cross-checked estimate.

        Raises
        ------
        SurrogateError
            When, after refinement, a spec'd performance's CV error
            exceeds ``cv_threshold`` times its training spread -- the
            refusal contract: no number is better than a wrong number.
        """
        config = self.config
        bundle = self.bundle or self.train()

        # The classified population: stratified standard-normal lanes.
        xs = latin_hypercube_normal(stream(config.seed, "surrogate-mc"),
                                    config.n_mc, len(GLOBAL_DIMS))

        # Adaptive refinement on the most ambiguous population lanes.
        resolved_index: list[int] = []
        resolved_pass: list[np.ndarray] = []
        rounds = max(0, config.refine_rounds)
        per_round = (config.refine_budget // rounds) if rounds else 0
        taken = np.zeros(config.n_mc, dtype=bool)
        for round_no in range(rounds):
            if per_round <= 0:
                break
            predicted = bundle.predict(xs)
            ambiguity = self._ambiguity(predicted, bundle)
            ambiguity[taken] = np.inf
            eligible = np.flatnonzero(ambiguity <= config.band_sigma)
            if eligible.size == 0:
                break
            picks = eligible[np.argsort(ambiguity[eligible],
                                        kind="stable")][:per_round]
            taken[picks] = True
            truth = evaluate_sigma_batch(
                self.evaluator, self.pdk, xs[picks], seed=config.seed,
                stage=f"surrogate-refine{round_no}",
                include_mismatch=config.include_mismatch,
                backend=config.backend, workers=config.workers,
                chunk_lanes=config.chunk_lanes)
            resolved_index.extend(int(i) for i in picks)
            resolved_pass.append(self.specs.pass_mask(truth))
            bundle = bundle.augmented(xs[picks], truth)
        self.bundle = bundle
        n_refined = int(np.count_nonzero(taken))

        # Refusal gate: a surrogate that cannot beat the raw spread of
        # its own training responses must not report a yield.
        cv_ratios = {}
        for spec in self.specs:
            spread = float(np.std(bundle.y_train[spec.name]))
            ratio = bundle.models[spec.name].cv_error / max(spread, 1e-300)
            cv_ratios[spec.name] = ratio
            if ratio > config.cv_threshold:
                raise SurrogateError(
                    f"refusing to report: surrogate CV error for "
                    f"{spec.name!r} is {ratio:.0%} of the training spread "
                    f"(threshold {config.cv_threshold:.0%}); increase "
                    f"n_train/refine_budget or choose another model kind")

        # Final classification of the population.
        predicted = bundle.predict(xs)
        probability = self._pass_probability(predicted, bundle)
        ambiguity = self._ambiguity(predicted, bundle)
        if resolved_index:
            probability[np.asarray(resolved_index)] = \
                np.concatenate(resolved_pass).astype(float)
        ambiguous = int(np.count_nonzero(
            (ambiguity <= config.band_sigma) & ~taken))

        point = float(np.mean(probability))
        sampling_var = point * (1.0 - point) / config.n_mc
        classification_var = float(
            np.sum(probability * (1.0 - probability))) / config.n_mc ** 2
        std_error = float(np.sqrt(sampling_var + classification_var))

        # Direct-MC control batch (the cross-check).
        control = None
        consistent = True
        if config.control_samples > 0:
            control_perf = monte_carlo(
                self.evaluator, self.pdk,
                MCConfig(n_samples=config.control_samples, seed=config.seed,
                         include_mismatch=config.include_mismatch,
                         chunk_lanes=config.chunk_lanes,
                         backend=config.backend, workers=config.workers))
            control = estimate_yield(control_perf, self.specs,
                                     confidence=config.confidence)

        estimate = SurrogateYieldEstimate(
            yield_estimate=point,
            std_error=std_error,
            n_mc=config.n_mc,
            n_train=config.n_train,
            n_refined=n_refined,
            cv_errors={s.name: bundle.models[s.name].cv_error
                       for s in self.specs},
            cv_ratios=cv_ratios,
            control=control,
            confidence=config.confidence,
            simulator_evals=(config.n_train + n_refined
                             + max(0, config.control_samples)),
            ambiguous_lanes=ambiguous,
        )
        if control is not None:
            consistent = estimate.consistent_with(control)
        estimate.consistent_with_control = consistent
        return estimate


def estimate_yield_surrogate(evaluator, specs: SpecSet, pdk: ProcessKit,
                             config: SurrogateConfig | None = None
                             ) -> SurrogateYieldEstimate:
    """One-call convenience wrapper around :class:`SurrogateYieldEstimator`.

    Same evaluator contract as :func:`repro.mc.engine.monte_carlo`;
    returns the cross-checked :class:`SurrogateYieldEstimate`.
    """
    return SurrogateYieldEstimator(evaluator, specs, pdk, config).estimate()
