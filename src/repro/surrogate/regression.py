"""Regression metamodels (response surfaces) for performance measures.

The paper's central economics -- replace expensive circuit-level
evaluation with a cheap behavioural stand-in -- applied one level down:
instead of a table model over *design* parameters, a regression model of
one performance measure as a function of the **process-sample
coordinates** (the sigma-unit global-parameter vector of
:data:`repro.process.GLOBAL_DIMS`).  iVAMS-style polynomial metamodels
(Mohanty & Kougianos, 2019) are the classic instance; a Gaussian RBF
(kernel-ridge) variant handles responses a quadratic cannot bend around.

Two model families, one contract:

* :class:`PolynomialSurrogate` -- ordinary least squares on a degree-1
  (linear) or degree-2 (full quadratic, cross terms included) feature
  expansion.  Five process dimensions make the quadratic 21 coefficients
  -- tiny, fast, and surprisingly accurate for mildly nonlinear analogue
  responses.
* :class:`RBFSurrogate` -- Gaussian kernel ridge regression with a
  median-distance length-scale heuristic.

Every fit reports a **leave-one-out cross-validation RMSE** computed in
closed form (no refits): for a linear smoother with hat matrix ``H``,
the LOO residual is ``r_i / (1 - H_ii)``.  That number is the model's
honest noise floor -- it includes both model-form error *and* whatever
the features cannot explain (local mismatch appears here as irreducible
noise) -- and everything downstream (ambiguity bands, refusal
thresholds, classification probabilities) is calibrated against it.

Models serialise to plain arrays (:meth:`to_arrays` /
:meth:`from_arrays`) so a trained surrogate can be persisted inside a
flow's artefact directory and reloaded without retraining.
"""

from __future__ import annotations

import numpy as np

from ..errors import SurrogateError

__all__ = ["PolynomialSurrogate", "RBFSurrogate", "fit_surrogate",
           "SURROGATE_KINDS"]

#: Model-family names accepted by :func:`fit_surrogate`.
SURROGATE_KINDS = ("linear", "quadratic", "rbf")


def _as_2d(x) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[None, :]
    if x.ndim != 2:
        raise SurrogateError(f"inputs must have shape (N, D), got {x.shape}")
    return x


def _polynomial_features(x: np.ndarray, degree: int) -> np.ndarray:
    """Feature expansion ``[1, x_i, (x_i x_j)_{i<=j}]`` up to ``degree``."""
    n, d = x.shape
    columns = [np.ones(n)]
    columns.extend(x[:, i] for i in range(d))
    if degree >= 2:
        for i in range(d):
            for j in range(i, d):
                columns.append(x[:, i] * x[:, j])
    return np.stack(columns, axis=1)


class PolynomialSurrogate:
    """A least-squares polynomial response surface.

    Build with :meth:`fit`; query with :meth:`predict`.  ``cv_error``
    holds the leave-one-out RMSE of the fit (see the module docstring).

    Attributes
    ----------
    degree:
        1 (linear) or 2 (full quadratic with cross terms).
    coefficients:
        Feature-space coefficient vector, :func:`_polynomial_features`
        order.
    cv_error:
        Leave-one-out cross-validation RMSE.
    n_train:
        Training-sample count.
    """

    kind = "polynomial"

    def __init__(self, dims: int, degree: int, coefficients: np.ndarray,
                 cv_error: float, n_train: int) -> None:
        self.dims = int(dims)
        self.degree = int(degree)
        self.coefficients = np.asarray(coefficients, dtype=float)
        self.cv_error = float(cv_error)
        self.n_train = int(n_train)

    @classmethod
    def fit(cls, x, y, *, degree: int = 2,
            ridge: float = 1e-9) -> "PolynomialSurrogate":
        """Fit a polynomial surface to ``(x, y)`` training data.

        Parameters
        ----------
        x:
            Sigma-unit inputs, shape ``(N, D)``.
        y:
            Response values, shape ``(N,)``.
        degree:
            Polynomial degree (1 or 2).
        ridge:
            Tiny Tikhonov term keeping the normal equations
            well-conditioned when training points nearly repeat.

        Raises
        ------
        SurrogateError
            If the training set is smaller than the coefficient count
            (the LOO error would be meaningless noise).
        """
        if degree not in (1, 2):
            raise SurrogateError(f"polynomial degree must be 1 or 2, "
                                 f"got {degree}")
        x = _as_2d(x)
        y = np.asarray(y, dtype=float).reshape(-1)
        if y.size != x.shape[0]:
            raise SurrogateError(
                f"{x.shape[0]} inputs vs {y.size} responses")
        features = _polynomial_features(x, degree)
        n, p = features.shape
        if n < p + 2:
            raise SurrogateError(
                f"need at least {p + 2} training samples for a degree-"
                f"{degree} surface over {x.shape[1]} dims, got {n}")
        gram = features.T @ features + ridge * np.eye(p)
        gram_inv = np.linalg.inv(gram)
        beta = gram_inv @ (features.T @ y)
        # Closed-form LOO: hat diagonal of the linear smoother.
        hat = np.einsum("ij,jk,ik->i", features, gram_inv, features)
        residuals = y - features @ beta
        loo = residuals / np.maximum(1.0 - hat, 1e-9)
        cv_error = float(np.sqrt(np.mean(loo ** 2)))
        return cls(x.shape[1], degree, beta, cv_error, n)

    def predict(self, x) -> np.ndarray:
        """Evaluate the surface at ``x`` (shape ``(M, D)``) -> ``(M,)``."""
        x = _as_2d(x)
        if x.shape[1] != self.dims:
            raise SurrogateError(
                f"expected {self.dims}-dim inputs, got {x.shape[1]}")
        return _polynomial_features(x, self.degree) @ self.coefficients

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Serialisable array payload (inverse of :meth:`from_arrays`)."""
        return {
            "meta": np.array([self.dims, self.degree, self.n_train], float),
            "coefficients": self.coefficients,
            "cv_error": np.array([self.cv_error]),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "PolynomialSurrogate":
        """Rebuild a surrogate from :meth:`to_arrays` output."""
        dims, degree, n_train = (int(v) for v in arrays["meta"])
        return cls(dims, degree, arrays["coefficients"],
                   float(arrays["cv_error"][0]), n_train)


class RBFSurrogate:
    """A Gaussian radial-basis-function (kernel ridge) response surface.

    The kernel is ``exp(-|x - c|^2 / (2 l^2))`` over the training
    centres; the length scale ``l`` defaults to the median pairwise
    training distance (the standard heuristic), and a ridge term
    regularises the kernel system.  ``cv_error`` is the closed-form
    kernel-ridge LOO RMSE ``alpha_i / (K + lambda I)^{-1}_{ii}``.
    """

    kind = "rbf"

    def __init__(self, centers: np.ndarray, weights: np.ndarray,
                 length_scale: float, mean: float, cv_error: float) -> None:
        self.centers = np.asarray(centers, dtype=float)
        self.weights = np.asarray(weights, dtype=float)
        self.length_scale = float(length_scale)
        self.mean = float(mean)
        self.cv_error = float(cv_error)
        self.n_train = self.centers.shape[0]
        self.dims = self.centers.shape[1]

    @staticmethod
    def _sq_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (np.sum(a * a, axis=1)[:, None]
                + np.sum(b * b, axis=1)[None, :] - 2.0 * (a @ b.T))

    @classmethod
    def fit(cls, x, y, *, length_scale: float | None = None,
            ridge: float = 1e-6) -> "RBFSurrogate":
        """Fit a Gaussian-kernel ridge model to ``(x, y)``.

        Parameters
        ----------
        length_scale:
            Kernel width; ``None`` selects the median pairwise distance
            of the training inputs.
        ridge:
            Kernel-ridge regularisation ``lambda``.
        """
        x = _as_2d(x)
        y = np.asarray(y, dtype=float).reshape(-1)
        if y.size != x.shape[0]:
            raise SurrogateError(f"{x.shape[0]} inputs vs {y.size} responses")
        if x.shape[0] < 4:
            raise SurrogateError("RBF surrogate needs at least 4 samples")
        sq = np.maximum(cls._sq_distances(x, x), 0.0)
        if length_scale is None:
            off_diagonal = sq[~np.eye(x.shape[0], dtype=bool)]
            length_scale = float(np.sqrt(np.median(off_diagonal)))
            length_scale = max(length_scale, 1e-6)
        kernel = np.exp(-sq / (2.0 * length_scale ** 2))
        mean = float(np.mean(y))
        system_inv = np.linalg.inv(kernel + ridge * np.eye(x.shape[0]))
        weights = system_inv @ (y - mean)
        # Closed-form kernel-ridge LOO residuals.
        loo = weights / np.maximum(np.diag(system_inv), 1e-300)
        cv_error = float(np.sqrt(np.mean(loo ** 2)))
        return cls(x, weights, length_scale, mean, cv_error)

    def predict(self, x) -> np.ndarray:
        """Evaluate the surface at ``x`` (shape ``(M, D)``) -> ``(M,)``."""
        x = _as_2d(x)
        if x.shape[1] != self.dims:
            raise SurrogateError(
                f"expected {self.dims}-dim inputs, got {x.shape[1]}")
        sq = np.maximum(self._sq_distances(x, self.centers), 0.0)
        kernel = np.exp(-sq / (2.0 * self.length_scale ** 2))
        return self.mean + kernel @ self.weights

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Serialisable array payload (inverse of :meth:`from_arrays`)."""
        return {
            "centers": self.centers,
            "weights": self.weights,
            "meta": np.array([self.length_scale, self.mean, self.cv_error]),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "RBFSurrogate":
        """Rebuild a surrogate from :meth:`to_arrays` output."""
        length_scale, mean, cv_error = (float(v) for v in arrays["meta"])
        return cls(arrays["centers"], arrays["weights"], length_scale,
                   mean, cv_error)


def fit_surrogate(kind: str, x, y):
    """Fit a surrogate of family ``kind`` (see :data:`SURROGATE_KINDS`).

    ``"linear"`` and ``"quadratic"`` map to :class:`PolynomialSurrogate`
    of degree 1/2, ``"rbf"`` to :class:`RBFSurrogate`.
    """
    if kind == "linear":
        return PolynomialSurrogate.fit(x, y, degree=1)
    if kind == "quadratic":
        return PolynomialSurrogate.fit(x, y, degree=2)
    if kind == "rbf":
        return RBFSurrogate.fit(x, y)
    raise SurrogateError(
        f"unknown surrogate kind {kind!r} (known: {', '.join(SURROGATE_KINDS)})")
