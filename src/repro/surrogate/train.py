"""Surrogate training: seed batches, backends, persistence.

Training a surrogate is itself a (small) Monte-Carlo campaign, so it
reuses the library's whole sampling stack:

* the seed batch is a **Latin-hypercube-stratified normal** draw
  (:func:`repro.mc.sampler.latin_hypercube_normal`) over the sigma-unit
  global-parameter space -- stratification buys the regression maximum
  information per simulator call;
* the batch is realised as die samples by
  :meth:`repro.process.ProcessKit.sample_from_sigma` and evaluated in
  lane-bounded chunks through the :mod:`repro.exec` backends, with one
  child random stream per chunk for the mismatch draws -- the same
  bit-reproducibility contract as :mod:`repro.mc.engine` (fixed
  configuration including ``chunk_lanes`` => identical training data on
  any backend);
* the fitted :class:`SurrogateBundle` exposes
  :meth:`~SurrogateBundle.as_evaluator`, which satisfies the
  ``(ProcessSample) -> dict[name, (S,) array]`` evaluator contract of
  :func:`repro.mc.engine.monte_carlo` -- a trained bundle is a drop-in
  replacement for the transistor-level evaluator anywhere the MC engine
  is used -- and serialises to a single ``.npz`` via
  :func:`save_surrogates` / :func:`load_surrogates` so the flow pipeline
  can persist trained models into its artefact directory.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .. import telemetry
from ..errors import SurrogateError
from ..exec import resolve_backend
from ..mc.sampler import child_streams, latin_hypercube_normal, stream
from ..process.pdk import GLOBAL_DIMS, ProcessKit
from .regression import (SURROGATE_KINDS, PolynomialSurrogate, RBFSurrogate,
                         fit_surrogate)

__all__ = ["SurrogateBundle", "train_surrogates", "evaluate_sigma_batch",
           "save_surrogates", "load_surrogates"]


def evaluate_sigma_batch(evaluator, pdk: ProcessKit, x: np.ndarray, *,
                         seed: int = 2008, stage: str = "surrogate-train",
                         include_mismatch: bool = True,
                         backend=None, workers: int = 0,
                         chunk_lanes: int = 4000) -> dict[str, np.ndarray]:
    """Evaluate a design at explicit sigma-unit process coordinates.

    Parameters
    ----------
    evaluator:
        Same contract as :func:`repro.mc.engine.monte_carlo`: callable
        ``(ProcessSample) -> dict[name, (S,) array]``.
    x:
        Sigma-unit coordinates, shape ``(N, len(GLOBAL_DIMS))``.
    seed, stage:
        Root seed and stage key of the per-chunk mismatch streams
        (unused randomness when ``include_mismatch`` is false, but the
        chunk geometry is identical either way).
    backend, workers, chunk_lanes:
        Chunking and execution exactly as in
        :class:`repro.mc.engine.MCConfig`.

    Returns
    -------
    Mapping performance name -> ``(N,)`` array, in input-row order.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2 or x.shape[1] != len(GLOBAL_DIMS):
        raise SurrogateError(
            f"sigma batch must have shape (N, {len(GLOBAL_DIMS)}), "
            f"got {x.shape}")
    total = x.shape[0]
    lanes = max(1, chunk_lanes)
    n_chunks = max(1, (total + lanes - 1) // lanes)
    rngs = child_streams(seed, stage, n_chunks)
    bounds = [(i * lanes, min((i + 1) * lanes, total), rngs[i])
              for i in range(n_chunks)]

    def run_chunk(task):
        start, stop, rng = task
        sample = pdk.sample_from_sigma(
            x[start:stop], rng=rng if include_mismatch else None,
            include_mismatch=include_mismatch)
        performance = evaluator(sample)
        return {name: np.asarray(values, dtype=float).reshape(-1)
                for name, values in performance.items()}

    with telemetry.span("surrogate.batch", stage=stage, samples=total,
                        chunks=len(bounds)):
        telemetry.counter_add("surrogate.evaluations", total)
        parts = resolve_backend(backend, workers).run(run_chunk, bounds)
    return {name: np.concatenate([part[name] for part in parts])
            for name in parts[0]}


class SurrogateBundle:
    """Trained surrogates of every performance measure of one design.

    Parameters
    ----------
    models:
        Mapping performance name -> fitted surrogate
        (:class:`~repro.surrogate.regression.PolynomialSurrogate` or
        :class:`~repro.surrogate.regression.RBFSurrogate`).
    kind:
        The model family the bundle was trained as
        (:data:`~repro.surrogate.regression.SURROGATE_KINDS`).
    x_train, y_train:
        The training data (sigma-unit inputs and per-performance
        responses), retained so adaptive refinement can append new
        samples and refit.
    pdk_name:
        Name of the :class:`~repro.process.ProcessKit` the coordinates
        refer to (a bundle is meaningless against a different kit).
    """

    def __init__(self, models: dict, kind: str, x_train: np.ndarray,
                 y_train: dict[str, np.ndarray], pdk_name: str) -> None:
        self.models = dict(models)
        self.kind = str(kind)
        self.x_train = np.asarray(x_train, dtype=float)
        self.y_train = {name: np.asarray(y, dtype=float)
                        for name, y in y_train.items()}
        self.pdk_name = str(pdk_name)

    @property
    def names(self) -> tuple[str, ...]:
        """The modelled performance names."""
        return tuple(self.models)

    @property
    def n_train(self) -> int:
        """Training-sample count behind the current fit."""
        return self.x_train.shape[0]

    @property
    def cv_errors(self) -> dict[str, float]:
        """Leave-one-out CV RMSE per performance (the noise floor every
        downstream ambiguity band and refusal check is scaled by)."""
        return {name: model.cv_error for name, model in self.models.items()}

    def predict(self, x) -> dict[str, np.ndarray]:
        """Predict every performance at sigma-unit coordinates ``x``."""
        return {name: model.predict(x) for name, model in self.models.items()}

    def as_evaluator(self, pdk: ProcessKit):
        """A drop-in :func:`~repro.mc.engine.monte_carlo` evaluator.

        The returned callable maps an incoming :class:`ProcessSample` to
        sigma coordinates (:meth:`ProcessKit.sigma_coordinates`) and
        predicts -- so ``monte_carlo(bundle.as_evaluator(pdk), pdk, ...)``
        runs a full MC campaign without a single MNA solve.  Predictions
        are the *conditional mean* given the die's global parameters:
        per-device mismatch has no die-level coordinate, so its spread is
        absent from the predicted population (it lives in
        :attr:`cv_errors` instead).
        """
        if pdk.name != self.pdk_name:
            raise SurrogateError(
                f"bundle was trained on kit {self.pdk_name!r}, "
                f"asked to evaluate under {pdk.name!r}")

        def evaluator(sample):
            return self.predict(pdk.sigma_coordinates(sample))

        return evaluator

    def augmented(self, x_new: np.ndarray,
                  y_new: dict[str, np.ndarray]) -> "SurrogateBundle":
        """A new bundle refitted with extra training samples appended.

        The adaptive-refinement step: ``x_new`` are the sigma
        coordinates whose predicted spec margins fell inside the CV
        error band, ``y_new`` their true (simulated) responses.
        """
        x_new = np.asarray(x_new, dtype=float)
        if x_new.size == 0:
            return self
        x_all = np.concatenate([self.x_train, x_new], axis=0)
        y_all = {name: np.concatenate([self.y_train[name],
                                       np.asarray(y_new[name], float)])
                 for name in self.y_train}
        models = {name: fit_surrogate(self.kind, x_all, y_all[name])
                  for name in y_all}
        return SurrogateBundle(models, self.kind, x_all, y_all, self.pdk_name)

    def describe(self) -> str:
        """One-line-per-performance training summary."""
        lines = [f"surrogate bundle ({self.kind}, {self.n_train} training "
                 f"samples, kit {self.pdk_name})"]
        for name, model in self.models.items():
            lines.append(f"  {name}: LOO CV RMSE {model.cv_error:.4g}")
        return "\n".join(lines)


def train_surrogates(evaluator, pdk: ProcessKit, *, n_train: int = 96,
                     seed: int = 2008, kind: str = "quadratic",
                     include_mismatch: bool = True,
                     backend=None, workers: int = 0,
                     chunk_lanes: int = 4000) -> SurrogateBundle:
    """Train surrogates for every performance an evaluator produces.

    Draws an ``n_train``-sample Latin-hypercube seed batch over the
    sigma-unit global-parameter space (stream ``(seed,
    "surrogate-lhs")``), evaluates it through the configured execution
    backend, and fits one ``kind`` surrogate per returned performance.

    Parameters
    ----------
    evaluator:
        ``(ProcessSample) -> dict[name, (S,) array]`` -- the same
        callable :func:`repro.mc.engine.monte_carlo` consumes.
    n_train:
        Seed-batch size (the simulator budget of the initial fit).
    include_mismatch:
        Carry local mismatch in the training evaluations.  Keep it on
        when the surrogate will be cross-checked against full MC: the
        mismatch spread then shows up honestly in the CV error.
    """
    if kind not in SURROGATE_KINDS:
        raise SurrogateError(f"unknown surrogate kind {kind!r} "
                             f"(known: {', '.join(SURROGATE_KINDS)})")
    with telemetry.span("surrogate.train", n_train=n_train, kind=kind):
        x = latin_hypercube_normal(stream(seed, "surrogate-lhs"), n_train,
                                   len(GLOBAL_DIMS))
        y = evaluate_sigma_batch(evaluator, pdk, x, seed=seed,
                                 stage="surrogate-train",
                                 include_mismatch=include_mismatch,
                                 backend=backend, workers=workers,
                                 chunk_lanes=chunk_lanes)
        models = {name: fit_surrogate(kind, x, values)
                  for name, values in y.items()}
    return SurrogateBundle(models, kind, x, y, pdk.name)


def surrogate_arrays(bundle: SurrogateBundle) -> dict[str, np.ndarray]:
    """A trained bundle as a flat name -> array mapping.

    The payload is pure arrays plus string metadata -- no pickling -- so
    it can be written to an ``.npz`` artefact (:func:`save_surrogates`)
    or stored in the content-addressed result cache
    (:mod:`repro.cache`) and reconstructed bit-identically with
    :func:`surrogates_from_arrays`.
    """
    arrays: dict[str, np.ndarray] = {
        "kind": np.array(bundle.kind),
        "pdk_name": np.array(bundle.pdk_name),
        "names": np.array(list(bundle.names)),
        "x_train": bundle.x_train,
    }
    for name in bundle.names:
        arrays[f"y::{name}"] = bundle.y_train[name]
        model = bundle.models[name]
        arrays[f"family::{name}"] = np.array(model.kind)
        for key, value in model.to_arrays().items():
            arrays[f"model::{name}::{key}"] = value
    return arrays


def surrogates_from_arrays(data) -> SurrogateBundle:
    """Rebuild a bundle from :func:`surrogate_arrays`' flat mapping.

    ``data`` may be a plain dict or an open ``np.load`` handle.
    """
    families = {"polynomial": PolynomialSurrogate, "rbf": RBFSurrogate}
    files = list(getattr(data, "files", None) or data.keys())
    names = [str(name) for name in np.asarray(data["names"])]
    models = {}
    y_train = {}
    for name in names:
        family = str(np.asarray(data[f"family::{name}"]))
        if family not in families:
            raise SurrogateError(
                f"unknown surrogate family {family!r} in bundle payload")
        prefix = f"model::{name}::"
        payload = {key[len(prefix):]: np.asarray(data[key]).copy()
                   for key in files if key.startswith(prefix)}
        models[name] = families[family].from_arrays(payload)
        y_train[name] = np.asarray(data[f"y::{name}"]).copy()
    return SurrogateBundle(models, str(np.asarray(data["kind"])),
                           np.asarray(data["x_train"]).copy(), y_train,
                           str(np.asarray(data["pdk_name"])))


def save_surrogates(bundle: SurrogateBundle, path) -> Path:
    """Persist a trained bundle to one ``.npz`` file.

    The payload is pure arrays plus string metadata -- no pickling -- so
    saved surrogates are portable artefacts like the flow's ``.tbl``
    tables.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **surrogate_arrays(bundle))
    return path


def load_surrogates(path) -> SurrogateBundle:
    """Reload a bundle written by :func:`save_surrogates`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return surrogates_from_arrays(data)
