"""Verilog-A ``$table_model`` emulation: splines, .tbl files, tables."""

from .datafile import read_table, write_table
from .pareto_table import ParetoTableModel
from .spline import (LinearInterpolator, NaturalCubicSpline, QuadraticSpline,
                     make_interpolator)
from .table import ControlSpec, TableModel, parse_control_string

__all__ = [
    "read_table", "write_table",
    "ParetoTableModel",
    "LinearInterpolator", "NaturalCubicSpline", "QuadraticSpline",
    "make_interpolator",
    "ControlSpec", "TableModel", "parse_control_string",
]
