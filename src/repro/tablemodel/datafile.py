""".tbl data files -- the interchange format of the paper's flow.

Each step of the paper's algorithm persists its results as plain-text
table files that the Verilog-A ``$table_model()`` function later consumes
(``gain_delta.tbl``, ``lp1_data.tbl``, ...).  The format is the standard
Verilog-A one: whitespace-separated columns, one sample per line, the last
column being the model output and the preceding columns its coordinates;
``#`` and ``*`` start comments.

:func:`write_table` / :func:`read_table` round-trip that format with full
double precision (``%.17g``), so a table written by the Python flow feeds
both our :class:`~repro.tablemodel.table.TableModel` emulation and a real
Verilog-A simulator unchanged.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..errors import TableModelError

__all__ = ["read_table", "write_table"]

_COMMENT_PREFIXES = ("#", "*", "//")


def read_table(source) -> tuple[np.ndarray, np.ndarray]:
    """Read a ``.tbl`` file.

    Parameters
    ----------
    source:
        Path, file object, or the text itself (anything with newlines).

    Returns
    -------
    ``(coordinates, values)`` where coordinates has shape ``(N, D)`` and
    values ``(N,)``.

    Raises
    ------
    TableModelError
        On ragged rows, non-numeric fields or an empty table.
    """
    if isinstance(source, io.IOBase):
        text = source.read()
    elif isinstance(source, (str, Path)) and "\n" not in str(source):
        text = Path(source).read_text()
    else:
        text = str(source)

    rows: list[list[float]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or any(line.startswith(p) for p in _COMMENT_PREFIXES):
            continue
        try:
            row = [float(token) for token in line.split()]
        except ValueError as exc:
            raise TableModelError(
                f"line {line_no}: non-numeric field in {line!r}") from exc
        if len(row) < 2:
            raise TableModelError(
                f"line {line_no}: need at least one coordinate and a value")
        if rows and len(row) != len(rows[0]):
            raise TableModelError(
                f"line {line_no}: expected {len(rows[0])} columns, "
                f"got {len(row)}")
        rows.append(row)
    if not rows:
        raise TableModelError("table file contains no data rows")

    data = np.asarray(rows, dtype=float)
    return data[:, :-1], data[:, -1]


def write_table(path, coordinates, values, *, header: str = "") -> Path:
    """Write a ``.tbl`` file.

    Parameters
    ----------
    path:
        Destination file path (parent directories are created).
    coordinates:
        Shape ``(N,)`` or ``(N, D)`` input coordinates.
    values:
        Shape ``(N,)`` model outputs.
    header:
        Optional comment block written at the top (``#``-prefixed).

    Returns
    -------
    The resolved :class:`~pathlib.Path` written.
    """
    coordinates = np.asarray(coordinates, dtype=float)
    if coordinates.ndim == 1:
        coordinates = coordinates[:, None]
    values = np.asarray(values, dtype=float).reshape(-1)
    if coordinates.shape[0] != values.size:
        raise TableModelError(
            f"coordinate rows ({coordinates.shape[0]}) != "
            f"value count ({values.size})")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for line in header.splitlines():
            handle.write(f"# {line}\n")
        for row, value in zip(coordinates, values, strict=True):
            fields = [f"{c:.17g}" for c in row] + [f"{value:.17g}"]
            handle.write(" ".join(fields) + "\n")
    return path
