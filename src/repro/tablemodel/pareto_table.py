"""Table models over Pareto-front data.

The paper's performance and variation tables are sampled *along the Pareto
front*: a one-dimensional curve in the (gain, phase-margin) plane, not a
rectangular grid.  Its 2-input ``$table_model`` calls
(``lp1 = $table_model(gain_prop, pm_prop, "lp1_data.tbl", "3E,3E")``)
therefore key into a curve: because a two-objective front is *monotone*
(more gain always costs phase margin), either objective uniquely indexes a
front position, and any attached quantity -- the other objective, a design
parameter ``lpN``, a variation percentage -- can be interpolated against it.

:class:`ParetoTableModel` captures exactly that structure:

* front rows sorted by the first objective, with monotonicity validated;
* arbitrary attached data columns (design parameters, variations);
* cubic-spline interpolation of any column keyed on any objective, with
  the paper's no-extrapolation ("E") behaviour by default;
* 2-D queries ``lookup2(obj0_value, obj1_value)`` reproducing the paper's
  two-input ``$table_model`` calls: each objective proposes a front
  position and the two are blended, so slightly inconsistent
  (off-the-front) queries still resolve sensibly;
* ``.tbl`` round-tripping so the same files drive real Verilog-A.
"""

from __future__ import annotations

import numpy as np

from ..errors import TableModelError
from .datafile import write_table
from .spline import make_interpolator
from .table import _dedupe_knots

__all__ = ["ParetoTableModel"]


class ParetoTableModel:
    """Interpolation over a two-objective Pareto front (see module doc).

    Parameters
    ----------
    objectives:
        Front points, shape ``(K, 2)``, in *natural* units.
    objective_names:
        The two objective names, e.g. ``("gain_db", "pm_deg")``.
    columns:
        Attached per-point data: mapping name -> shape-``(K,)`` array
        (design parameters, variation percentages, ...).
    directions:
        Optimisation direction per objective (``+1`` maximise, ``-1``
        minimise); used only for dominance validation.
    validate:
        Check the points actually form a mutually non-dominated monotone
        set (default on).
    """

    def __init__(self, objectives, objective_names=("f1", "f2"), *,
                 columns: dict | None = None,
                 directions=(1.0, 1.0), validate: bool = True) -> None:
        objectives = np.asarray(objectives, dtype=float)
        if objectives.ndim != 2 or objectives.shape[1] != 2:
            raise TableModelError(
                f"need (K, 2) objective data, got {objectives.shape}")
        if objectives.shape[0] < 2:
            raise TableModelError("a Pareto table needs at least two points")
        self.objective_names = tuple(objective_names)
        self.directions = tuple(float(d) for d in directions)

        order = np.argsort(objectives[:, 0])
        self.objectives = objectives[order]
        self.columns: dict[str, np.ndarray] = {}
        for name, data in (columns or {}).items():
            data = np.asarray(data, dtype=float).reshape(-1)
            if data.size != objectives.shape[0]:
                raise TableModelError(
                    f"column {name!r} has {data.size} entries, "
                    f"expected {objectives.shape[0]}")
            self.columns[name] = data[order]

        if validate:
            self._validate_front()

    def _validate_front(self) -> None:
        """A sorted two-objective front must trade off monotonically."""
        f0 = self.directions[0] * self.objectives[:, 0]
        f1 = self.directions[1] * self.objectives[:, 1]
        order = np.argsort(f0)
        f1_sorted = f1[order]
        # As oriented-f0 increases, oriented-f1 must not increase
        # (otherwise some point dominates another).
        violations = np.diff(f1_sorted) > 1e-9 * max(1.0, np.abs(f1).max())
        if np.any(violations):
            raise TableModelError(
                "points do not form a Pareto front: objective "
                f"{self.objective_names[1]!r} improves together with "
                f"{self.objective_names[0]!r} at "
                f"{int(np.count_nonzero(violations))} transition(s)")

    # -- helpers ---------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of front points."""
        return self.objectives.shape[0]

    def _axis_index(self, objective) -> int:
        if isinstance(objective, (int, np.integer)):
            if objective not in (0, 1):
                raise TableModelError("objective index must be 0 or 1")
            return int(objective)
        try:
            return self.objective_names.index(objective)
        except ValueError:
            raise TableModelError(
                f"unknown objective {objective!r} "
                f"(have {self.objective_names})") from None

    def _column(self, name: str) -> np.ndarray:
        if name in self.columns:
            return self.columns[name]
        axis = self._axis_index(name) if name in self.objective_names else None
        if axis is not None:
            return self.objectives[:, axis]
        raise TableModelError(
            f"unknown column {name!r} (have {sorted(self.columns)} and "
            f"objectives {self.objective_names})")

    def key_range(self, objective) -> tuple[float, float]:
        """Sampled range of an objective (for range checks / reports)."""
        axis = self._axis_index(objective)
        column = self.objectives[:, axis]
        return float(column.min()), float(column.max())

    # -- interpolation -------------------------------------------------------------
    def lookup(self, key_objective, key_value, column: str, *,
               degree: str = "3", extrapolation: str = "E"):
        """Interpolate ``column`` at a front position keyed by an objective.

        This is the paper's one-input ``$table_model`` call: e.g.
        ``lookup("gain_db", 50.0, "gain_delta_pct")`` reads the variation
        table at a 50 dB gain (section 4.4's interpolation between design
        points 24 and 25).
        """
        axis = self._axis_index(key_objective)
        key = self.objectives[:, axis]
        data = self._column(column)
        order = np.argsort(key)
        x, y = _dedupe_knots(key[order], data[order])
        if x.size < 2:
            raise TableModelError(
                f"objective {key_objective!r} is constant along the front; "
                "cannot key on it")
        kernel = make_interpolator(degree, x, y)
        return kernel(key_value, extrapolation)

    def lookup2(self, value0, value1, column: str, *,
                degree: str = "3", extrapolation: str = "E"):
        """Two-input lookup reproducing ``$table_model(f1, f2, ..., "3E,3E")``.

        Each objective value independently indexes a front position; the
        two answers are averaged.  For queries lying exactly on the front
        the two agree and this equals either 1-D lookup.
        """
        from_0 = self.lookup(0, value0, column, degree=degree,
                             extrapolation=extrapolation)
        from_1 = self.lookup(1, value1, column, degree=degree,
                             extrapolation=extrapolation)
        return 0.5 * (from_0 + from_1)

    def trade_off(self, key_objective, key_value, *,
                  degree: str = "3", extrapolation: str = "E"):
        """The other objective's value at a front position."""
        axis = self._axis_index(key_objective)
        other = self.objective_names[1 - axis]
        return self.lookup(key_objective, key_value, other,
                           degree=degree, extrapolation=extrapolation)

    # -- persistence ---------------------------------------------------------------
    def write_tbl(self, path, column: str, *, key_objective=0,
                  header: str = "") -> None:
        """Write one column keyed by one objective as a ``.tbl`` file
        (e.g. ``gain_delta.tbl``)."""
        axis = self._axis_index(key_objective)
        key = self.objectives[:, axis]
        data = self._column(column)
        order = np.argsort(key)
        write_table(path, key[order], data[order], header=header)

    def write_tbl2(self, path, column: str, header: str = "") -> None:
        """Write one column against *both* objectives (the paper's
        ``lpN_data.tbl`` layout: ``gain pm value`` rows)."""
        write_table(path, self.objectives, self._column(column),
                    header=header)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ParetoTableModel {self.size} points "
                f"{self.objective_names} columns={sorted(self.columns)}>")
