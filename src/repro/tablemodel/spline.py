"""Interpolation kernels: linear, quadratic and natural cubic splines.

Verilog-A's ``$table_model`` offers three interpolation degrees per
dimension (control-string digits ``1``, ``2``, ``3``); the paper uses
degree 3 ("cubic spline interpolation has been employed in this work to
maximise accuracy", section 2.2).  These kernels are written from scratch
(tridiagonal Thomas solve for the cubic) so the library has no behavioural
dependence on scipy's spline internals, and they evaluate vectorised over
query arrays.

Each kernel interpolates ``y`` over strictly increasing knots ``x`` and
supports three out-of-range policies matching the ``$table_model``
extrapolation letters:

* ``"E"`` -- raise :class:`~repro.errors.ExtrapolationError` (the paper's
  choice: "no extrapolation method is used, in order to avoid
  approximation of the data beyond the sampled data points");
* ``"C"`` -- clamp to the boundary value;
* ``"L"`` -- extend linearly with the boundary slope.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExtrapolationError, TableModelError

__all__ = ["Interpolator1D", "LinearInterpolator", "QuadraticSpline",
           "NaturalCubicSpline", "make_interpolator", "EXTRAPOLATION_MODES"]

EXTRAPOLATION_MODES = ("E", "C", "L")

#: Relative slack applied to the range check before "E" raises, so queries
#: that are at a boundary up to floating-point noise still succeed.
_RANGE_RTOL = 1e-9


class Interpolator1D:
    """Base class: knot validation, range handling, extrapolation policy."""

    def __init__(self, x, y) -> None:
        x = np.asarray(x, dtype=float).reshape(-1)
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.size != y.size:
            raise TableModelError(
                f"x and y must have equal length ({x.size} vs {y.size})")
        if x.size < 2:
            raise TableModelError("need at least two data points")
        if not np.all(np.diff(x) > 0):
            raise TableModelError("knots must be strictly increasing")
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
            raise TableModelError("knots and values must be finite")
        self.x = x
        self.y = y

    # -- subclass hooks -------------------------------------------------------
    def _evaluate_inside(self, q: np.ndarray) -> np.ndarray:
        """Evaluate at in-range query points (subclass responsibility)."""
        raise NotImplementedError

    def _boundary_slope(self, left: bool) -> float:
        """Slope at the boundary for 'L' extrapolation (subclass)."""
        raise NotImplementedError

    # -- public API --------------------------------------------------------------
    def __call__(self, query, extrapolation: str = "E") -> np.ndarray:
        """Evaluate the interpolant at ``query`` (scalar or array).

        Raises
        ------
        ExtrapolationError
            Under policy ``"E"`` when any query is out of range.
        """
        if extrapolation not in EXTRAPOLATION_MODES:
            raise TableModelError(
                f"unknown extrapolation mode {extrapolation!r} "
                f"(expected one of {EXTRAPOLATION_MODES})")
        q = np.asarray(query, dtype=float)
        scalar = q.ndim == 0
        q = np.atleast_1d(q)

        lo, hi = self.x[0], self.x[-1]
        slack = _RANGE_RTOL * max(abs(lo), abs(hi), 1.0)
        below = q < lo - slack
        above = q > hi + slack
        if extrapolation == "E" and (np.any(below) or np.any(above)):
            bad = q[below | above]
            raise ExtrapolationError(
                f"query value(s) {bad[:5]} outside the sampled range "
                f"[{lo:g}, {hi:g}] and extrapolation is disabled ('E')")

        clamped = np.clip(q, lo, hi)
        result = self._evaluate_inside(clamped)

        if extrapolation == "L":
            slope_lo = self._boundary_slope(left=True)
            slope_hi = self._boundary_slope(left=False)
            result = np.where(below, self.y[0] + slope_lo * (q - lo), result)
            result = np.where(above, self.y[-1] + slope_hi * (q - hi), result)
        # 'C' (clamp) is already what evaluating at the clipped query gives.

        return result[0] if scalar else result

    def _segments(self, q: np.ndarray) -> np.ndarray:
        """Index of the knot interval containing each query point."""
        return np.clip(np.searchsorted(self.x, q, side="right") - 1,
                       0, self.x.size - 2)


class LinearInterpolator(Interpolator1D):
    """Degree-1 piecewise-linear interpolation (control digit ``1``)."""

    def _evaluate_inside(self, q: np.ndarray) -> np.ndarray:
        return np.interp(q, self.x, self.y)

    def _boundary_slope(self, left: bool) -> float:
        if left:
            return (self.y[1] - self.y[0]) / (self.x[1] - self.x[0])
        return (self.y[-1] - self.y[-2]) / (self.x[-1] - self.x[-2])


class QuadraticSpline(Interpolator1D):
    """Degree-2 spline (control digit ``2``).

    Piecewise quadratics with continuous value and first derivative,
    built by the forward sweep ``z[i+1] = 2*slope[i] - z[i]``.  The free
    condition is the three-point derivative estimate at the first knot,
    which makes the spline exact for globally quadratic data.
    """

    def __init__(self, x, y) -> None:
        super().__init__(x, y)
        n = self.x.size
        h = np.diff(self.x)
        slope = np.diff(self.y) / h
        z = np.empty(n)
        if n > 2:
            # f'(x0) for a parabola through the first three points.
            z[0] = slope[0] - h[0] * (slope[1] - slope[0]) / (self.x[2]
                                                              - self.x[0])
        else:
            z[0] = slope[0]
        for i in range(n - 1):
            z[i + 1] = 2.0 * slope[i] - z[i]
        self._z = z
        self._h = h
        self._slope = slope

    def _evaluate_inside(self, q: np.ndarray) -> np.ndarray:
        k = self._segments(q)
        t = q - self.x[k]
        z0 = self._z[k]
        z1 = self._z[k + 1]
        # y = y_k + z_k t + (z_{k+1} - z_k) t^2 / (2 h_k)
        return self.y[k] + z0 * t + (z1 - z0) * t * t / (2.0 * self._h[k])

    def _boundary_slope(self, left: bool) -> float:
        return float(self._z[0] if left else self._z[-1])


class NaturalCubicSpline(Interpolator1D):
    """Degree-3 natural cubic spline (control digit ``3``; the paper's
    "3E" tables).

    C2-continuous piecewise cubics with zero second derivative at both
    ends.  The tridiagonal moment system is solved with the Thomas
    algorithm.
    """

    def __init__(self, x, y) -> None:
        super().__init__(x, y)
        n = self.x.size
        h = np.diff(self.x)
        self._h = h
        # Second-derivative (moment) vector m, natural end conditions.
        m = np.zeros(n)
        if n > 2:
            # Tridiagonal system for interior moments.
            lower = h[:-1].copy()                 # sub-diagonal
            diag = 2.0 * (h[:-1] + h[1:])
            upper = h[1:].copy()                  # super-diagonal
            rhs = 6.0 * (np.diff(self.y[1:]) / h[1:]
                         - np.diff(self.y[:-1]) / h[:-1])
            # Thomas forward sweep.
            size = diag.size
            for i in range(1, size):
                factor = lower[i - 1] / diag[i - 1]
                diag[i] -= factor * upper[i - 1]
                rhs[i] -= factor * rhs[i - 1]
            interior = np.empty(size)
            interior[-1] = rhs[-1] / diag[-1]
            for i in range(size - 2, -1, -1):
                interior[i] = (rhs[i] - upper[i] * interior[i + 1]) / diag[i]
            m[1:-1] = interior
        self._m = m

    def _evaluate_inside(self, q: np.ndarray) -> np.ndarray:
        k = self._segments(q)
        h = self._h[k]
        t = q - self.x[k]
        m0 = self._m[k]
        m1 = self._m[k + 1]
        y0 = self.y[k]
        y1 = self.y[k + 1]
        # Standard moment form of the cubic segment.
        a = (m1 - m0) / (6.0 * h)
        b = m0 / 2.0
        c = (y1 - y0) / h - h * (2.0 * m0 + m1) / 6.0
        return y0 + t * (c + t * (b + t * a))

    def derivative(self, query) -> np.ndarray:
        """First derivative of the spline at in-range query points."""
        q = np.atleast_1d(np.asarray(query, dtype=float))
        q = np.clip(q, self.x[0], self.x[-1])
        k = self._segments(q)
        h = self._h[k]
        t = q - self.x[k]
        m0 = self._m[k]
        m1 = self._m[k + 1]
        c = (self.y[k + 1] - self.y[k]) / h - h * (2.0 * m0 + m1) / 6.0
        return c + t * m0 + t * t * (m1 - m0) / (2.0 * h)

    def _boundary_slope(self, left: bool) -> float:
        if left:
            return float(self.derivative(self.x[0]))
        return float(self.derivative(self.x[-1]))


_KERNELS = {"1": LinearInterpolator, "2": QuadraticSpline,
            "3": NaturalCubicSpline}


def make_interpolator(degree: str, x, y) -> Interpolator1D:
    """Construct the kernel for a control-string degree digit.

    >>> spline = make_interpolator("3", [0, 1, 2], [0, 1, 4])
    >>> float(round(spline(1.5), 3))
    2.375
    """
    try:
        kernel = _KERNELS[str(degree)]
    except KeyError:
        raise TableModelError(
            f"unknown interpolation degree {degree!r} (expected 1, 2 or 3)"
        ) from None
    return kernel(x, y)
