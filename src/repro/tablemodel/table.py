"""``$table_model`` emulation.

The paper's behavioural model is driven by Verilog-A look-up tables::

    gain_delta = $table_model(gain, "gain_delta.tbl", "3E");
    lp1 = $table_model(gain_prop, pm_prop, "lp1_data.tbl", "3E,3E");

:class:`TableModel` reproduces those semantics in Python:

* data comes from a ``.tbl`` file (:mod:`repro.tablemodel.datafile`) or
  in-memory arrays;
* the control string selects, per input dimension, the interpolation
  degree (``1`` linear, ``2`` quadratic, ``3`` cubic spline) and the
  extrapolation policy (``C`` clamp, ``L`` linear, ``E`` error -- the
  paper's choice);
* one-dimensional tables interpolate directly; multi-dimensional tables
  must form a full regular grid and are evaluated by tensor-product
  interpolation (interpolate the innermost axis first, then outward).

Scattered multi-dimensional data -- such as points along a Pareto front --
is *not* a grid; use :class:`repro.tablemodel.pareto_table.ParetoTableModel`
for that case (it exploits the front's monotone structure, which is how
the paper's 2-input tables are actually laid out).
"""

from __future__ import annotations

import numpy as np

from ..errors import TableModelError
from .datafile import read_table
from .spline import EXTRAPOLATION_MODES, make_interpolator

__all__ = ["ControlSpec", "parse_control_string", "TableModel"]


class ControlSpec:
    """Parsed per-dimension control: interpolation degree + extrapolation."""

    def __init__(self, degree: str, extrapolation: str) -> None:
        if degree not in ("1", "2", "3"):
            raise TableModelError(f"control degree must be 1/2/3, got {degree!r}")
        if extrapolation not in EXTRAPOLATION_MODES:
            raise TableModelError(
                f"extrapolation must be one of {EXTRAPOLATION_MODES}, "
                f"got {extrapolation!r}")
        self.degree = degree
        self.extrapolation = extrapolation

    def __repr__(self) -> str:
        return f"{self.degree}{self.extrapolation}"


def parse_control_string(control: str, dimensions: int) -> list[ControlSpec]:
    """Parse a ``$table_model`` control string like ``"3E"`` or ``"3E,3E"``.

    A single spec is broadcast across all dimensions; otherwise one
    comma-separated spec per dimension is required.  An omitted
    extrapolation letter defaults to ``E`` (no extrapolation), matching
    the paper's conservative usage.
    """
    parts = [p.strip() for p in control.split(",") if p.strip()]
    if not parts:
        raise TableModelError("empty control string")
    if len(parts) == 1 and dimensions > 1:
        parts = parts * dimensions
    if len(parts) != dimensions:
        raise TableModelError(
            f"control string {control!r} has {len(parts)} specs for "
            f"{dimensions} input dimensions")
    specs = []
    for part in parts:
        if len(part) == 1:
            specs.append(ControlSpec(part, "E"))
        elif len(part) == 2:
            specs.append(ControlSpec(part[0], part[1].upper()))
        else:
            raise TableModelError(f"malformed control spec {part!r}")
    return specs


class TableModel:
    """A Verilog-A style look-up table model (see module docstring).

    >>> tm = TableModel.from_data([0.0, 1.0, 2.0], [0.0, 1.0, 4.0], "3E")
    >>> float(round(tm(1.5), 3))
    2.375
    """

    def __init__(self, coordinates: np.ndarray, values: np.ndarray,
                 control: str = "3E") -> None:
        coordinates = np.asarray(coordinates, dtype=float)
        if coordinates.ndim == 1:
            coordinates = coordinates[:, None]
        values = np.asarray(values, dtype=float).reshape(-1)
        if coordinates.shape[0] != values.size:
            raise TableModelError("coordinate/value count mismatch")
        self.dimensions = coordinates.shape[1]
        self.controls = parse_control_string(control, self.dimensions)
        self.control_string = control

        if self.dimensions == 1:
            order = np.argsort(coordinates[:, 0])
            x = coordinates[order, 0]
            y = values[order]
            x, y = _dedupe_knots(x, y)
            self._axes = [x]
            self._grid = y
        else:
            self._axes, self._grid = _build_grid(coordinates, values)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_file(cls, path, control: str = "3E") -> "TableModel":
        """Load a ``.tbl`` file (the paper's ``$table_model`` file read)."""
        coordinates, values = read_table(path)
        return cls(coordinates, values, control)

    @classmethod
    def from_data(cls, coordinates, values, control: str = "3E") -> "TableModel":
        """Build directly from arrays."""
        return cls(np.asarray(coordinates, dtype=float),
                   np.asarray(values, dtype=float), control)

    # -- evaluation --------------------------------------------------------------
    def __call__(self, *queries):
        """Evaluate the table at query coordinates (one arg per dimension).

        Scalars broadcast against arrays; the result matches the broadcast
        shape (scalar in, scalar out).
        """
        if len(queries) != self.dimensions:
            raise TableModelError(
                f"table has {self.dimensions} inputs, got {len(queries)}")
        broadcast = np.broadcast_arrays(
            *[np.asarray(q, dtype=float) for q in queries])
        scalar = broadcast[0].ndim == 0
        points = np.stack([np.atleast_1d(b).ravel() for b in broadcast],
                          axis=-1)  # (Q, D)
        flat = np.array([self._evaluate_point(p) for p in points])
        if scalar:
            return float(flat[0])
        return flat.reshape(np.atleast_1d(broadcast[0]).shape)

    def _evaluate_point(self, point: np.ndarray) -> float:
        """Tensor-product interpolation of a single query point."""
        return float(self._reduce(self._grid, 0, point))

    def _reduce(self, grid: np.ndarray, axis: int, point: np.ndarray):
        """Recursively interpolate ``grid`` along its first axis at
        ``point[axis]``, innermost axes first."""
        x = self._axes[axis]
        spec = self.controls[axis]
        if grid.ndim == 1:
            kernel = make_interpolator(spec.degree, x, grid)
            return kernel(point[axis], spec.extrapolation)
        # Reduce each sub-slice first, then interpolate along this axis.
        reduced = np.array([self._reduce(grid[i], axis + 1, point)
                            for i in range(grid.shape[0])])
        kernel = make_interpolator(spec.degree, x, reduced)
        return kernel(point[axis], spec.extrapolation)

    # -- introspection ------------------------------------------------------------
    @property
    def bounds(self) -> list[tuple[float, float]]:
        """Per-dimension ``(min, max)`` of the sampled coordinates."""
        return [(float(axis[0]), float(axis[-1])) for axis in self._axes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "x".join(str(len(a)) for a in self._axes)
        return f"<TableModel {shape} control={self.control_string!r}>"


def _dedupe_knots(x: np.ndarray, y: np.ndarray,
                  rtol: float = 1e-12) -> tuple[np.ndarray, np.ndarray]:
    """Merge (average) samples whose coordinates coincide within ``rtol``."""
    if x.size == 0:
        return x, y
    scale = max(abs(x[0]), abs(x[-1]), 1.0)
    keep_x = [x[0]]
    groups = [[y[0]]]
    for xi, yi in zip(x[1:], y[1:], strict=True):
        if xi - keep_x[-1] <= rtol * scale:
            groups[-1].append(yi)
        else:
            keep_x.append(xi)
            groups.append([yi])
    return (np.asarray(keep_x),
            np.asarray([float(np.mean(g)) for g in groups]))


def _build_grid(coordinates: np.ndarray,
                values: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
    """Validate that scattered rows form a full regular grid and reshape.

    Raises
    ------
    TableModelError
        If the points do not cover a complete Cartesian grid (with a hint
        pointing at :class:`ParetoTableModel` for front-shaped data).
    """
    n, d = coordinates.shape
    axes = [np.unique(coordinates[:, j]) for j in range(d)]
    expected = int(np.prod([a.size for a in axes]))
    if expected != n:
        raise TableModelError(
            f"{n} samples do not form a full {d}-D grid "
            f"(a complete grid over the observed axis values needs "
            f"{expected}); for Pareto-front data use ParetoTableModel")
    # Map each row into the grid.
    grid = np.full([a.size for a in axes], np.nan)
    indices = tuple(
        np.searchsorted(axes[j], coordinates[:, j]) for j in range(d))
    grid[indices] = values
    if np.any(np.isnan(grid)):
        raise TableModelError(
            "duplicate grid points leave holes in the table "
            "(some cells were never assigned)")
    return axes, grid
