"""Unified telemetry: tracing spans, a metrics registry, a JSONL sink.

One subsystem sees every layer end to end:

* **Spans** (:mod:`.tracer`) -- hierarchical timed regions
  (``telemetry.span("mc.chunk", lanes=...)``) that nest via contextvars
  across serial and threaded execution and re-parent across the forked
  process backend through a serialisable :class:`~.tracer.SpanContext`
  handoff (:func:`bind_task`).
* **Metrics** (:mod:`.metrics`) -- process-wide counters, gauges and
  fixed-edge histograms behind one :func:`snapshot`, absorbing the
  one-off counters (``CacheStats``, ``JobQueue.counts()``, chunk/lane
  tallies, estimator sim counts) into a single namespace.  The registry
  is always on; it never affects numeric results.
* **Events** (:mod:`.events`) -- an opt-in JSONL sink recording span
  open/close, metric deltas, progress announcements and periodic gauge
  samples; crash-safe single-write appends with size-capped rotation.
* **Renderers** (:mod:`.render`) -- ``repro trace`` rebuilds the span
  tree with self/cumulative time and the flow ledger's exact per-stage
  simulation counts; ``repro stats`` asks a live daemon for a snapshot.

Off by default and near-free when disabled: :func:`span` returns a
shared no-op, :func:`bind_task` returns its argument unchanged, and no
sink is ever allocated (``benchmarks/test_telemetry_overhead.py`` gates
the disabled-path overhead).  Enable via the ``REPRO_TELEMETRY``
environment variable (a JSONL path), ``FlowConfig.telemetry``, or
``repro ... --telemetry events.jsonl``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .events import DEFAULT_MAX_BYTES, EventSink, load_events
from .metrics import (DEFAULT_BUCKET_EDGES, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .render import ledger_rows, render_trace, span_tree
from .tracer import NULL_SPAN, Span, SpanContext, Tracer

__all__ = [
    "TELEMETRY_ENV_VAR", "REGISTRY", "configure", "shutdown", "enabled",
    "session", "span", "current_context", "bind_task", "emit",
    "counter_add", "gauge_set", "histogram_observe", "snapshot",
    "emit_ledger", "announcer",
    # submodule surface
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "EventSink",
    "load_events", "Span", "SpanContext", "Tracer", "NULL_SPAN",
    "render_trace", "span_tree", "ledger_rows",
    "DEFAULT_BUCKET_EDGES", "DEFAULT_MAX_BYTES",
]

#: Environment variable enabling telemetry process-wide: its value is
#: the JSONL events path.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: The process-wide metrics registry (always on).
REGISTRY = MetricsRegistry()

_SINK: EventSink | None = None
_TRACER: Tracer | None = None


# -- lifecycle ------------------------------------------------------------
def configure(path, *, max_bytes: int | None = DEFAULT_MAX_BYTES,
              fresh: bool = True) -> None:
    """Enable telemetry: open a JSONL sink at ``path`` and start tracing.

    ``fresh=True`` truncates the file, so one run's trace is one file.
    """
    global _SINK, _TRACER
    sink = EventSink(path, max_bytes=max_bytes, fresh=fresh)
    _SINK = sink
    _TRACER = Tracer(sink.emit)


def shutdown() -> None:
    """Disable telemetry (the registry keeps its counts)."""
    global _SINK, _TRACER
    sink = _SINK
    _SINK = None
    _TRACER = None
    if sink is not None:
        sink.close()


def enabled() -> bool:
    """Whether spans and events are being recorded."""
    return _TRACER is not None


@contextmanager
def session(path=None, *, fresh: bool = True):
    """Scoped enablement: configure for the block, then restore.

    With a falsy ``path`` the ambient state (e.g. env-enabled
    telemetry) is left untouched -- the flows pass
    ``config.telemetry`` straight in.
    """
    if not path:
        yield
        return
    previous = (_SINK, _TRACER)
    configure(path, fresh=fresh)
    try:
        yield
    finally:
        _restore(previous)


def _restore(previous) -> None:
    global _SINK, _TRACER
    _SINK, _TRACER = previous


# -- tracing --------------------------------------------------------------
def span(name: str, **attributes):
    """An open span context manager (a shared no-op when disabled)."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, attributes)


def current_context() -> SpanContext | None:
    """The ambient span context, serialisable across process forks."""
    tracer = _TRACER
    return tracer.current_context() if tracer is not None else None


def bind_task(fn):
    """Wrap a task callable so spans it opens parent onto the caller.

    The identity function when telemetry is disabled or no span is
    open; otherwise the current :class:`SpanContext` is captured *now*
    (at submission) and re-attached around every invocation -- exactly
    what thread pools (empty worker context) and forked workers
    (cross-process events) need for correct nesting.
    """
    tracer = _TRACER
    if tracer is None:
        return fn
    context = tracer.current_context()
    if context is None:
        return fn

    def bound(task):
        with tracer.attach(context):
            return fn(task)

    return bound


# -- events ---------------------------------------------------------------
def emit(event_type: str, **fields) -> None:
    """Record one free-form event (dropped when disabled)."""
    sink = _SINK
    if sink is not None:
        fields["type"] = event_type
        fields.setdefault("t", time.time())
        sink.emit(fields)


def emit_ledger(ledger) -> None:
    """Record a flow ledger's final rows (including the TOTAL row).

    ``repro trace`` rebuilds the exact :meth:`~repro.flow.accounting.
    SimulationLedger.table` from these events, making the ledger a
    projection of the event stream.
    """
    if _SINK is None:
        return
    for stage, simulations, seconds in ledger.as_rows():
        emit("ledger", stage=stage, simulations=int(simulations),
             seconds=float(seconds))


def announcer(progress):
    """A ``say(message)`` callable: forward to ``progress`` + record.

    The printed output is byte-identical to the old
    ``progress or (lambda message: None)`` plumbing; when telemetry is
    enabled each announcement is additionally recorded as a
    ``progress`` event.
    """

    def say(message):
        if progress is not None:
            progress(message)
        sink = _SINK
        if sink is not None:
            sink.emit({"type": "progress", "t": time.time(),
                       "message": str(message)})

    return say


# -- metrics --------------------------------------------------------------
def counter_add(name: str, amount: int = 1) -> None:
    """Bump a registry counter; record the delta when a sink is open."""
    REGISTRY.counter_add(name, amount)
    sink = _SINK
    if sink is not None:
        sink.emit({"type": "metric", "t": time.time(), "name": name,
                   "delta": int(amount)})


def gauge_set(name: str, value: float) -> None:
    """Set a registry gauge; record the sample when a sink is open."""
    REGISTRY.gauge_set(name, value)
    sink = _SINK
    if sink is not None:
        sink.emit({"type": "gauge", "t": time.time(), "name": name,
                   "value": float(value)})


def histogram_observe(name: str, value: float,
                      edges: tuple | None = None) -> None:
    """Observe a value into a fixed-edge registry histogram."""
    REGISTRY.histogram_observe(name, value, edges)


def snapshot() -> dict:
    """The registry's full counters/gauges/histograms snapshot."""
    return REGISTRY.snapshot()


def _init_from_environment() -> None:
    import os

    path = os.environ.get(TELEMETRY_ENV_VAR, "").strip()
    if path:
        # Appending (fresh=False) rather than truncating: every process
        # of a pipeline run under one REPRO_TELEMETRY shares the file.
        configure(path, fresh=False)


_init_from_environment()
