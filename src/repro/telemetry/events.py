"""The JSONL event sink: crash-safe, size-capped, fork-tolerant.

Events are written as one JSON object per line, each line landing in a
single ``O_APPEND`` ``write`` -- the same "a reader never sees a torn
record" stance as the cache layer's atomic writers
(:mod:`repro.cache.store`), which this module reuses directly for file
initialisation; rotation uses the identical ``os.replace`` primitive.
A crash mid-run therefore loses at most the final partial line, and
:func:`load_events` skips malformed lines instead of failing.

Fork behaviour: a forked worker (the process backend) inherits the open
sink object.  Because every emit is a self-contained append to the same
path, parent and children interleave whole lines without coordination
-- no buffers to duplicate, no flushing protocol.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from ..cache.store import atomic_write_text

__all__ = ["EventSink", "load_events", "DEFAULT_MAX_BYTES"]

#: Default rotation threshold of one events file (16 MiB).
DEFAULT_MAX_BYTES = 16 << 20


class EventSink:
    """Append JSON events to a ``.jsonl`` file, rotating by size.

    Parameters
    ----------
    path:
        The events file.  ``fresh=True`` (the default) truncates it
        atomically, so one run's trace is one file's content.
    max_bytes:
        Rotate (``os.replace`` the live file to ``<path>.1``) once it
        exceeds this size; ``None`` disables rotation.
    """

    def __init__(self, path, *, max_bytes: int | None = DEFAULT_MAX_BYTES,
                 fresh: bool = True) -> None:
        self.path = Path(path)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        if self.path.parent and not self.path.parent.is_dir():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if fresh:
            atomic_write_text(self.path, "")
        self._approx_bytes = (self.path.stat().st_size
                              if self.path.exists() else 0)

    def emit(self, event: dict) -> None:
        """Append one event (a JSON-serialisable mapping) as one line."""
        line = (json.dumps(event, separators=(",", ":"), sort_keys=True)
                + "\n").encode()
        with self._lock:
            if (self.max_bytes is not None
                    and self._approx_bytes + len(line) > self.max_bytes):
                self._rotate()
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
            self._approx_bytes += len(line)

    def _rotate(self) -> None:
        # Same atomic primitive as the cache writers: the rotated file
        # appears whole under its new name, the live path starts empty.
        if self.path.exists():
            os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        self._approx_bytes = 0

    def close(self) -> None:
        """No-op (every emit is already durable); kept for symmetry."""


def load_events(path) -> list[dict]:
    """Parse a JSONL events file, skipping malformed (torn) lines.

    A missing file reads as no events -- renderers walk rotated
    generations (``<path>.1``) that may not exist.
    """
    events = []
    try:
        handle = open(path, encoding="utf-8", errors="replace")
    except FileNotFoundError:
        return events
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn final line of a crashed run
            if isinstance(event, dict):
                events.append(event)
    return events
