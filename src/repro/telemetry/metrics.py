"""Thread-safe counters, gauges and histograms behind one ``snapshot()``.

The registry absorbs the one-off operational counters that used to live
in unrelated corners of the codebase -- ``CacheStats``,
``JobQueue.counts()``, backend chunk/lane tallies, estimator
simulation-call counts -- into a single process-wide namespace.  It is
always on (an increment is a dict lookup plus an integer add under one
lock, far below the cost of the array work it counts), while the event
*sink* (:mod:`repro.telemetry.events`) stays strictly opt-in.

Histograms use **fixed bucket edges** chosen at first observation (or
passed explicitly), never adaptive ones, so two runs of the same
workload produce structurally identical snapshots -- the same
determinism stance the engines take for numeric results.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKET_EDGES", "GAUGE_HISTORY"]

#: Default histogram bucket edges [s] -- wall-time oriented, spanning
#: sub-millisecond chunk solves to minutes-long flow stages.
DEFAULT_BUCKET_EDGES = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                        1.0, 5.0, 10.0, 60.0, 300.0)

#: Timestamped samples retained per gauge (a bounded ring, so a
#: long-lived daemon's registry never grows without bound).
GAUGE_HISTORY = 512


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value with a bounded timestamped history.

    Every :meth:`set` appends a ``(unix_time, value)`` sample to the
    ring, so a periodically-sampled gauge (the daemon's cache size, the
    queue's per-state counts) carries its recent trajectory -- the
    ROADMAP's "cache-size telemetry over time" -- not just the latest
    reading.
    """

    __slots__ = ("name", "value", "updated", "samples")

    def __init__(self, name: str, history: int = GAUGE_HISTORY) -> None:
        self.name = name
        self.value = 0.0
        self.updated = 0.0
        self.samples: deque = deque(maxlen=history)

    def set(self, value: float) -> None:
        now = time.time()
        self.value = float(value)
        self.updated = now
        self.samples.append((now, float(value)))


class Histogram:
    """Fixed-edge bucketed distribution of observed values.

    ``counts[i]`` counts observations ``<= edges[i]``; the final slot
    counts overflows.  Edges are frozen at construction for
    deterministic snapshot structure.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str,
                 edges: tuple = DEFAULT_BUCKET_EDGES) -> None:
        self.name = name
        self.edges = tuple(float(edge) for edge in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value


class MetricsRegistry:
    """Named counters/gauges/histograms behind one lock and snapshot.

    All mutation goes through :meth:`counter_add` / :meth:`gauge_set` /
    :meth:`histogram_observe`, which create instruments on first use --
    call sites never pre-register anything.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- mutation ---------------------------------------------------------
    def counter_add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.add(amount)

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            gauge.set(value)

    def histogram_observe(self, name: str, value: float,
                          edges: tuple | None = None) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    name, edges if edges is not None else
                    DEFAULT_BUCKET_EDGES)
            histogram.observe(value)

    # -- inspection -------------------------------------------------------
    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def gauge_samples(self, name: str) -> list[tuple[float, float]]:
        with self._lock:
            gauge = self._gauges.get(name)
            return list(gauge.samples) if gauge is not None else []

    def snapshot(self) -> dict:
        """One JSON-able view of every instrument.

        ``{"counters": {name: int},
           "gauges": {name: {"value", "updated", "samples"}},
           "histograms": {name: {"edges", "counts", "total", "sum"}}}``
        """
        with self._lock:
            return {
                "counters": {name: counter.value
                             for name, counter in
                             sorted(self._counters.items())},
                "gauges": {name: {"value": gauge.value,
                                  "updated": gauge.updated,
                                  "samples": [list(sample) for sample
                                              in gauge.samples]}
                           for name, gauge in sorted(self._gauges.items())},
                "histograms": {name: {"edges": list(histogram.edges),
                                      "counts": list(histogram.counts),
                                      "total": histogram.total,
                                      "sum": histogram.sum}
                               for name, histogram in
                               sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
