"""Render a recorded event stream: the ``repro trace`` projection.

The span tree is rebuilt purely from ``span_open``/``span_close``
events (ids and parent links), so it is insensitive to line order --
forked workers append their events whenever they run, and spans that
never closed (a crashed run) still render, marked open.

Per-stage simulation counts come from the ``ledger`` events the flows
emit at completion -- one per :class:`~repro.flow.accounting.
SimulationLedger` row -- so the rendered counts are *exactly* the
ledger table's numbers: the ledger becomes a projection of the event
stream rather than a parallel bookkeeping system.
"""

from __future__ import annotations

from .events import load_events

__all__ = ["SpanNode", "span_tree", "render_trace", "ledger_rows"]


class SpanNode:
    """One span in the reconstructed tree."""

    __slots__ = ("span_id", "name", "parent_id", "attrs", "opened",
                 "elapsed", "status", "children")

    def __init__(self, span_id: str, name: str, parent_id: str | None,
                 attrs: dict, opened: float) -> None:
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.attrs = dict(attrs)
        self.opened = opened
        self.elapsed: float | None = None  # None = never closed
        self.status = "open"
        self.children: list[SpanNode] = []

    @property
    def cumulative(self) -> float:
        return self.elapsed if self.elapsed is not None else 0.0

    @property
    def self_time(self) -> float:
        return max(0.0, self.cumulative
                   - sum(child.cumulative for child in self.children))


def span_tree(events: list[dict]) -> list[SpanNode]:
    """Root spans (open-order) reconstructed from an event list."""
    nodes: dict[str, SpanNode] = {}
    order: list[str] = []
    for event in events:
        kind = event.get("type")
        span_id = event.get("span")
        if not span_id:
            continue
        if kind == "span_open":
            nodes[span_id] = SpanNode(
                span_id, str(event.get("name", "?")), event.get("parent"),
                event.get("attrs") or {}, float(event.get("t", 0.0)))
            order.append(span_id)
        elif kind == "span_close":
            node = nodes.get(span_id)
            if node is None:  # close without open (rotated-away prefix)
                node = nodes[span_id] = SpanNode(
                    span_id, str(event.get("name", "?")),
                    event.get("parent"), event.get("attrs") or {},
                    float(event.get("t", 0.0)))
                order.append(span_id)
            node.elapsed = float(event.get("elapsed", 0.0))
            node.status = str(event.get("status", "ok"))
            node.attrs.update(event.get("attrs") or {})
    roots = []
    for span_id in order:
        node = nodes[span_id]
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def ledger_rows(events: list[dict]) -> list[tuple[str, int, float]]:
    """The flow's final ledger rows (stage, simulations, seconds)."""
    rows: dict[str, tuple[str, int, float]] = {}
    for event in events:
        if event.get("type") == "ledger":
            stage = str(event.get("stage", "?"))
            rows[stage] = (stage, int(event.get("simulations", 0)),
                           float(event.get("seconds", 0.0)))
    return list(rows.values())


def _label(node: SpanNode) -> str:
    stage = node.attrs.get("stage")
    return f"{node.name}: {stage}" if stage else node.name


def render_trace(path) -> str:
    """The ``repro trace`` text: indented span tree + ledger table."""
    events = load_events(path)
    roots = span_tree(events)
    sims_by_stage = {stage: sims for stage, sims, _ in ledger_rows(events)}
    lines = [f"{'span':<54} {'cum [s]':>10} {'self [s]':>10} {'sims':>12}"]

    def walk(node: SpanNode, depth: int) -> None:
        label = "  " * depth + _label(node)
        if node.status == "open":
            label += " (open)"
        elif node.status == "error":
            label += " (error)"
        sims = node.attrs.get("simulations")
        if sims is None:
            sims = sims_by_stage.get(node.attrs.get("stage"))
        sims_text = f"{int(sims):>12d}" if sims is not None else " " * 12
        lines.append(f"{label:<54} {node.cumulative:>10.3f} "
                     f"{node.self_time:>10.3f} {sims_text}")
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    rows = ledger_rows(events)
    if rows:
        lines.append("")
        lines.append(f"{'stage':<32} {'simulations':>12} {'seconds':>10}")
        for stage, sims, seconds in rows:
            lines.append(f"{stage:<32} {sims:>12d} {seconds:>10.2f}")
    if not roots and not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
