"""Hierarchical tracing spans over :mod:`contextvars`.

A span is a timed region with a name, attached attributes, and a parent
link.  The *current* span lives in a :class:`contextvars.ContextVar`, so
``with span("flow.stage"): with span("mc.chunk"): ...`` nests correctly
in straight-line code and in any asynchronous context that copies the
contextvar context.

Two execution models need explicit help:

* **Thread pools** -- :class:`concurrent.futures.ThreadPoolExecutor`
  runs callables in the *worker's* (empty) context, so a chunk span
  opened inside a pool task would become a root.  The backends wrap the
  task callable via :func:`repro.telemetry.bind_task`, which captures
  the submitting context's :class:`SpanContext` and re-attaches it
  around every invocation.
* **Forked processes** -- a forked worker inherits the parent's memory
  (including the contextvar), but its span *events* must still link to
  the parent's ids across the process boundary.  :class:`SpanContext`
  is a plain serialisable pair ``(trace_id, span_id)``: the same
  ``bind_task`` wrapper carries it through the fork, and the child's
  spans re-parent onto it exactly as a thread's would.

Span open/close events are emitted through a callable handed to the
:class:`Tracer` (the JSONL sink when telemetry is enabled), never
buffered in the tracer itself.
"""

from __future__ import annotations

import itertools
import os
import time
from collections.abc import Callable
from contextlib import contextmanager
from contextvars import ContextVar
from typing import NamedTuple

__all__ = ["Span", "SpanContext", "Tracer", "NULL_SPAN"]

#: The ambient span context of the calling code path.
_CURRENT: ContextVar["SpanContext | None"] = ContextVar(
    "repro-telemetry-span", default=None)

#: Per-process span-id counter (combined with the pid for uniqueness
#: across forked workers).
_ids = itertools.count(1)


class SpanContext(NamedTuple):
    """Serializable identity of a span: what children parent onto.

    A plain tuple of strings, so it crosses pickle/fork/JSON boundaries
    without carrying any live tracer state.
    """

    trace_id: str
    span_id: str


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


class Span:
    """One open traced region (also its own context manager)."""

    __slots__ = ("name", "context", "parent_id", "attributes",
                 "_tracer", "_token", "_start", "_wall")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict) -> None:
        parent = _CURRENT.get()
        span_id = _new_span_id()
        self.name = name
        self.context = SpanContext(
            parent.trace_id if parent is not None else span_id, span_id)
        self.parent_id = parent.span_id if parent is not None else None
        self.attributes = attributes
        self._tracer = tracer
        self._token = None
        self._start = 0.0
        self._wall = 0.0

    def set(self, **attributes) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self.context)
        self._wall = time.time()
        self._start = time.monotonic()
        self._tracer.emit({
            "type": "span_open", "t": self._wall, "name": self.name,
            "span": self.context.span_id, "trace": self.context.trace_id,
            "parent": self.parent_id, "pid": os.getpid(),
            "attrs": dict(self.attributes)})
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.monotonic() - self._start
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tracer.emit({
            "type": "span_close", "t": time.time(), "name": self.name,
            "span": self.context.span_id, "trace": self.context.trace_id,
            "elapsed": elapsed,
            "status": "error" if exc_type is not None else "ok",
            "attrs": dict(self.attributes)})


class _NullSpan:
    """The disabled-path span: one shared, allocation-free no-op.

    ``telemetry.span(...)`` returns this singleton whenever telemetry is
    off, so the instrumented hot paths pay only a flag check and a
    (kwargs) dict that the interpreter builds anyway.
    """

    __slots__ = ()

    def set(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared no-op span (identity-comparable in tests).
NULL_SPAN = _NullSpan()


class Tracer:
    """Factory of spans wired to one event-emitting callable."""

    def __init__(self, emit: Callable[[dict], None]) -> None:
        self.emit = emit

    def span(self, name: str, attributes: dict | None = None) -> Span:
        return Span(self, name, dict(attributes or {}))

    def current_context(self) -> SpanContext | None:
        """The ambient span context (``None`` outside any span)."""
        return _CURRENT.get()

    @contextmanager
    def attach(self, context: SpanContext):
        """Re-parent subsequent spans onto a handed-over context.

        Used by :func:`repro.telemetry.bind_task` to carry the
        submitting span across thread-pool and forked-process
        boundaries.
        """
        token = _CURRENT.set(context)
        try:
            yield
        finally:
            _CURRENT.reset(token)
