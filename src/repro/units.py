"""Engineering-unit helpers: SI suffix parsing/formatting and dB maths.

Analogue design data is exchanged in SPICE-style engineering notation
(``10u``, ``0.35u``, ``5meg``, ``2.2k``) and performance numbers in
decibels.  This module centralises those conversions so netlists, process
cards, table files and reports all agree on one dialect.

The dialect follows SPICE conventions:

* suffixes are case-insensitive;
* ``m`` is milli and ``meg`` (or ``x``) is mega -- the classic trap;
* ``mil`` is a thousandth of an inch (25.4 um), the SPICE legacy
  geometry unit;
* a trailing unit name after the suffix is ignored (``10uF`` == ``10u``),
  matching how SPICE reads ``100pF`` or ``0.35um``.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "parse_si",
    "format_si",
    "db20",
    "db10",
    "from_db20",
    "from_db10",
    "SI_SUFFIXES",
]

#: Mapping of SPICE engineering suffixes to multipliers.  Order matters for
#: the regular expression below only in that the multi-letter ``meg`` and
#: ``mil`` must be matched before the single-letter ``m``.
SI_SUFFIXES: dict[str, float] = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "mil": 25.4e-6,
    "m": 1e-3,
    "u": 1e-6,
    "µ": 1e-6,   # U+00B5 micro sign
    "μ": 1e-6,   # U+03BC Greek mu -- what "µ".upper().lower() becomes,
                 # and what Greek keyboard layouts type

    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_NUMBER_RE = re.compile(
    r"""^\s*
    (?P<num>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
    (?P<suffix>(?:meg|mil|[tgxkmunpfaµμ]))?
    (?P<unit>[a-zµμΩ°%]*)
    \s*$""",
    re.IGNORECASE | re.VERBOSE,
)

# Suffix multipliers for pretty-printing, largest first.
_FORMAT_STEPS: tuple[tuple[float, str], ...] = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
)


def parse_si(text: str | float | int) -> float:
    """Parse a SPICE-style engineering-notation number into a float.

    Numeric inputs pass through unchanged, so call sites can accept either
    ``10e-6`` or ``"10u"`` for the same parameter.

    >>> parse_si("10u")
    1e-05
    >>> parse_si("0.35um")
    3.5e-07
    >>> parse_si("5meg")
    5000000.0
    >>> parse_si("2.2k")
    2200.0
    >>> parse_si("1mil")
    2.54e-05
    >>> parse_si(42)
    42.0

    Raises
    ------
    ValueError
        If ``text`` is not a valid engineering-notation number.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if match is None:
        raise ValueError(f"not an engineering-notation number: {text!r}")
    value = float(match.group("num"))
    suffix = match.group("suffix")
    if suffix:
        value *= SI_SUFFIXES[suffix.lower()]
    return value


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an engineering suffix.

    >>> format_si(1e-5, 'F')
    '10uF'
    >>> format_si(3.5e-07, 'm')
    '350nm'
    >>> format_si(0.0, 'V')
    '0V'
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    magnitude = abs(value)
    for step, suffix in _FORMAT_STEPS:
        if magnitude >= step:
            scaled = value / step
            text = f"{scaled:.{digits}g}"
            return f"{text}{suffix}{unit}"
    # Smaller than atto: fall back to scientific notation.
    return f"{value:.{digits}g}{unit}"


def db20(ratio: float) -> float:
    """Amplitude ratio -> decibels (``20*log10``).

    >>> round(db20(10.0), 1)
    20.0
    """
    return 20.0 * math.log10(ratio)


def db10(ratio: float) -> float:
    """Power ratio -> decibels (``10*log10``)."""
    return 10.0 * math.log10(ratio)


def from_db20(db: float) -> float:
    """Decibels -> amplitude ratio; inverse of :func:`db20`.

    This is the paper's ``gain_in_v = pow(10, gain_prop/20)`` conversion
    used inside the Verilog-A behavioural model.
    """
    return 10.0 ** (db / 20.0)


def from_db10(db: float) -> float:
    """Decibels -> power ratio; inverse of :func:`db10`."""
    return 10.0 ** (db / 10.0)
