"""Workloads: the flow's stages as first-class, fingerprintable units.

The model-build and filter flows (:mod:`repro.flow`) grew as monoliths:
each stage body built its configuration, called an engine entry point
(:func:`repro.mc.engine.monte_carlo_points`,
:func:`repro.corners.corner_sweep_points`,
:func:`repro.yieldmodel.estimator.estimate_yield_streaming`, ...), and
interpreted the result inline.  That shape cannot be cached, queued, or
served: the unit of work has no name, no identity, and no serialisable
result.

This package carves each stage into a :class:`Workload` object with a
canonical contract:

* ``config()`` -- the complete canonical configuration of the unit
  (everything that shapes its numbers; never the execution backend or
  worker count, which the :mod:`repro.exec` determinism contract keeps
  out of results);
* ``fingerprint()`` -- the unit's exact identity
  (:func:`repro.cache.canonical_fingerprint` over kind + config +
  evaluator identity + library version), keying the content-addressed
  result cache (:mod:`repro.cache`) and checkpoint compatibility;
* ``run()`` -- execute through the existing engine entry points,
  producing a :class:`WorkloadResult` whose ``arrays``/``meta`` payload
  round-trips through the cache bit-identically;
* ``run_cached()`` -- cache-first execution: serve a hit, or run and
  store.

The flows compose these workloads (their artifacts are bit-identical to
the pre-refactor stage bodies, enforced by the flow tests), and the
service layer (:mod:`repro.service`) queues them.
"""

from .base import Workload, WorkloadResult, guarded_progress
from .designs import (design_digest, lint_workload_from_source,
                      ota_corner_workload, ota_estimate_workload,
                      ota_points_evaluator, ota_rare_workload,
                      ota_reference_evaluator, ota_surrogate_workload)
from .units import (BatchYieldWorkload, CornerSweepWorkload, LintWorkload,
                    MCPointsWorkload, RareEventWorkload,
                    StreamingYieldWorkload, SurrogateTrainWorkload,
                    YieldSearchWorkload)

__all__ = [
    "Workload", "WorkloadResult", "guarded_progress",
    "LintWorkload", "MCPointsWorkload", "CornerSweepWorkload",
    "StreamingYieldWorkload", "BatchYieldWorkload", "RareEventWorkload",
    "SurrogateTrainWorkload", "YieldSearchWorkload",
    "design_digest", "ota_reference_evaluator", "ota_points_evaluator",
    "ota_estimate_workload", "ota_rare_workload", "ota_corner_workload",
    "ota_surrogate_workload", "lint_workload_from_source",
]
