"""The :class:`Workload` contract and its serialisable result."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from .. import telemetry
from ..cache import canonical_fingerprint, fingerprint_key
from ..errors import JobCancelled

__all__ = ["Workload", "WorkloadResult", "guarded_progress"]


def guarded_progress(progress, cancel, job_id: str | None = None):
    """Wrap a progress callback with a cooperative cancellation check.

    The returned callable raises :class:`~repro.errors.JobCancelled` as
    soon as ``cancel()`` is true, then forwards to ``progress`` (when
    given).  Engines call progress *after* writing their checkpoint, so
    a job cancelled here is resumable from its last completed round.
    ``None`` is returned when there is nothing to wrap.
    """
    if cancel is None:
        return progress

    def guarded(*args):
        if cancel():
            raise JobCancelled(job_id=job_id)
        if progress is not None:
            progress(*args)

    return guarded


@dataclass
class WorkloadResult:
    """Outcome of one workload run.

    Attributes
    ----------
    kind, fingerprint:
        The workload's kind and exact identity (what the cache is keyed
        by).
    meta:
        JSON-serialisable summary (counts, describe text, spec names);
        stored in the cache's ``.json`` sidecar and listed by the
        service layer.
    arrays:
        The numeric payload, name -> array; this is what the cache
        stores, and reconstructing ``value`` from it must be
        bit-identical to a fresh run.
    value:
        The rich in-memory object the flows consume (a
        :class:`~repro.yieldmodel.estimator.YieldEstimate`, a
        :class:`~repro.surrogate.SurrogateBundle`, a samples dict...).
        Never serialised directly -- always rebuilt from ``arrays`` +
        ``meta`` on a cache hit.
    cache_hit:
        ``True`` when this result was served from the cache.
    """

    kind: str
    fingerprint: str
    meta: dict = field(default_factory=dict)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    value: object = None
    cache_hit: bool = False

    @property
    def key(self) -> str:
        """Content-address of the result (the cache entry name)."""
        return fingerprint_key(self.fingerprint)


class Workload(ABC):
    """One fingerprintable, runnable, cacheable unit of work.

    Subclasses set :attr:`kind`, implement :meth:`config` and
    :meth:`_execute`, and (when cacheable) :meth:`_value_from_arrays`
    so cache hits rebuild the same rich ``value`` a fresh run returns.
    """

    #: The workload kind -- first field of the fingerprint, so two
    #: different computations over identical configs never collide.
    kind: ClassVar[str] = ""

    #: Whether results round-trip through the result cache.  Workloads
    #: whose value cannot be rebuilt from arrays (e.g. a yield search
    #: carrying a whole GA history) run uncached.
    cacheable: ClassVar[bool] = True

    #: Identity of the evaluator/design under computation (a digest of
    #: the design parameters -- the evaluator callable itself is opaque
    #: to the fingerprint).  Set by the subclass constructor.
    evaluator_id: str = ""

    @abstractmethod
    def config(self) -> dict:
        """The canonical configuration (see :func:`repro.cache.canonicalize`).

        Must cover everything that shapes the numeric result and nothing
        that does not -- in particular never the execution backend or
        worker count.
        """

    def fingerprint(self) -> str:
        """The workload's exact identity (canonical JSON text)."""
        return canonical_fingerprint(self.kind, self.config(),
                                     evaluator=self.evaluator_id)

    def key(self) -> str:
        """Content-address of the workload (SHA-256 of the fingerprint)."""
        return fingerprint_key(self.fingerprint())

    # -- execution --------------------------------------------------------
    def run(self, *, checkpoint=None, progress=None,
            cancel=None) -> WorkloadResult:
        """Execute the workload through the existing engine entry points.

        Parameters
        ----------
        checkpoint:
            Optional checkpoint path for workloads that support
            resumable execution (ignored by the others).
        progress:
            Optional progress callback (signature is the wrapped engine
            entry point's).
        cancel:
            Optional ``callable() -> bool``; checked at every progress
            boundary, raising :class:`~repro.errors.JobCancelled` when
            true.  Checkpoints written before the boundary survive, so
            cancelled jobs resume rather than restart.
        """
        attrs = {"kind": self.kind}
        if telemetry.enabled():
            # key() hashes the canonical fingerprint -- only pay for it
            # when a sink is actually recording.
            attrs["key"] = self.key()
        with telemetry.span(f"workload.{self.kind or 'anonymous'}", **attrs):
            return self._execute(checkpoint=checkpoint,
                                 progress=guarded_progress(progress, cancel))

    @abstractmethod
    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        """Subclass hook: run with an already-guarded progress callback."""

    def run_cached(self, cache, *, checkpoint=None, progress=None,
                   cancel=None) -> WorkloadResult:
        """Cache-first execution: serve a hit, or run and store.

        ``cache`` is a :class:`repro.cache.ResultCache`.  Uncacheable
        workloads simply run.
        """
        if not self.cacheable:
            return self.run(checkpoint=checkpoint, progress=progress,
                            cancel=cancel)
        fingerprint = self.fingerprint()
        hit = cache.get(fingerprint)
        if hit is not None:
            telemetry.emit("workload_cache", kind=self.kind, hit=True,
                           key=fingerprint_key(fingerprint))
            return WorkloadResult(
                kind=self.kind, fingerprint=fingerprint, meta=hit.meta,
                arrays=hit.arrays,
                value=self._value_from_arrays(hit.arrays, hit.meta),
                cache_hit=True)
        telemetry.emit("workload_cache", kind=self.kind, hit=False,
                       key=fingerprint_key(fingerprint))
        result = self.run(checkpoint=checkpoint, progress=progress,
                          cancel=cancel)
        cache.put(fingerprint, result.arrays, meta=result.meta)
        return result

    def _value_from_arrays(self, arrays: dict, meta: dict):
        """Rebuild the rich ``value`` from a cached payload.

        Must be bit-identical to the value a fresh run produces.  The
        default returns the arrays dict itself (right for workloads
        whose value *is* a name -> array mapping).
        """
        return dict(arrays)

    def _result(self, *, meta=None, arrays=None, value=None) -> WorkloadResult:
        """Convenience constructor stamping kind + fingerprint."""
        return WorkloadResult(kind=self.kind, fingerprint=self.fingerprint(),
                              meta=dict(meta or {}), arrays=dict(arrays or {}),
                              value=value)
