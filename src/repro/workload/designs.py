"""JSON-constructible workloads over the paper's designs.

The service layer (:mod:`repro.service`) receives plain-JSON requests;
this module turns them into live workloads.  The interesting part is
evaluator identity: a service request names a *design* (the OTA's eight
W/L parameters), so the evaluator closure built here is digested from
those parameters -- two users submitting the same design and config get
the same fingerprint, and therefore share one cached result.
"""

from __future__ import annotations

import numpy as np

from ..cache import canonicalize, fingerprint_key
from ..errors import ReproError, WorkloadError, YieldModelError
from ..mc.engine import MCConfig
from ..mc.streaming import AdaptiveStop
from ..measure.specs import Spec, SpecSet
from ..process import C35
from ..yieldmodel.rare import RareEventConfig
from .units import (CornerSweepWorkload, LintWorkload, RareEventWorkload,
                    StreamingYieldWorkload, SurrogateTrainWorkload)

__all__ = ["design_digest", "ota_reference_evaluator",
           "ota_estimate_workload", "ota_rare_workload",
           "ota_corner_workload", "ota_surrogate_workload",
           "lint_workload_from_source", "DEFAULT_OTA_SPECS"]

#: The paper's section-5 OTA requirement -- the default spec set of a
#: service ``estimate`` request.
DEFAULT_OTA_SPECS = (("gain_db", "ge", 50.0, "dB"),
                     ("pm_deg", "ge", 60.0, "deg"))

_KITS = {"c35": C35}


def design_digest(**parts) -> str:
    """Canonical digest of a design's identifying parts.

    Accepts anything :func:`repro.cache.canonicalize` handles (floats,
    arrays, strings); the digest is what workload constructors take as
    ``evaluator_id``.
    """
    import json
    payload = json.dumps(canonicalize(parts), sort_keys=True,
                         separators=(",", ":"))
    return f"design:{fingerprint_key(payload)}"


def resolve_pdk(name: str):
    """The process kit registered under ``name`` (case-insensitive)."""
    try:
        return _KITS[name.strip().lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown process kit {name!r} "
            f"(known: {', '.join(sorted(_KITS))})") from None


def ota_reference_evaluator(reference, *, pdk=C35, cl: float = 10e-12,
                            ibias: float = 20e-6,
                            names=("gain_db", "pm_deg")):
    """Streaming-MC evaluator of one OTA design point.

    ``reference`` is the natural-unit parameter vector ``(8,)``
    (W1 L1 ... W4 L4).  The returned callable follows the
    :func:`repro.mc.engine.monte_carlo` contract; the flow's stage-4c /
    stage-6 closures and the service's ``estimate`` jobs share it.
    """
    from ..designs.ota import OTAParameters, evaluate_ota
    reference = np.asarray(reference, dtype=float)

    def evaluator(die_sample):
        tiled = OTAParameters.from_array(
            np.repeat(reference[None, :], die_sample.size, axis=0))
        performance = evaluate_ota(tiled, pdk=pdk, variations=die_sample,
                                   cl=cl, ibias=ibias)
        return {name: performance[name] for name in names}

    return evaluator


def ota_points_evaluator(natural_params, *, pdk=C35, cl: float = 10e-12,
                         ibias: float = 20e-6,
                         names=("gain_db", "pm_deg")):
    """Chunked many-points evaluator over a ``(K, 8)`` parameter stack.

    Follows the :func:`repro.mc.engine.monte_carlo_points` contract
    (``(point_indices, repeats, die_sample) -> dict``); the same
    callable also serves :func:`repro.corners.corner_sweep_points`,
    which is why the flow's MC and corner stages share one closure.
    """
    from ..designs.ota import OTAParameters, evaluate_ota
    natural_params = np.asarray(natural_params, dtype=float)

    def evaluator(point_indices, repeats, die_sample):
        tiled = OTAParameters.from_array(
            np.repeat(natural_params[point_indices], repeats, axis=0))
        performance = evaluate_ota(tiled, pdk=pdk, variations=die_sample,
                                   cl=cl, ibias=ibias)
        return {name: performance[name] for name in names}

    return evaluator


def _specs_from_request(entries) -> SpecSet:
    specs = []
    for entry in entries:
        if not 3 <= len(entry) <= 4:
            raise WorkloadError(
                f"spec entry must be [name, op, limit(, unit)], "
                f"got {entry!r}")
        name, op, limit = entry[0], entry[1], float(entry[2])
        unit = entry[3] if len(entry) == 4 else ""
        specs.append(Spec(str(name), str(op), limit, str(unit)))
    return SpecSet(specs)


def _reference_from_design(design) -> np.ndarray:
    """The natural-unit ``(8,)`` parameter vector a request's ``design``
    field describes (mapping keyed by the OTA design-space names, or a
    flat 8-sequence in W1 L1 ... W4 L4 order)."""
    from ..designs.ota import OTA_DESIGN_SPACE
    if isinstance(design, dict):
        try:
            reference = np.array([float(design[name])
                                  for name in OTA_DESIGN_SPACE.names])
        except KeyError as missing:
            raise WorkloadError(
                f"design is missing parameter {missing}") from None
    else:
        reference = np.asarray(design, dtype=float)
    if reference.shape != (8,):
        raise WorkloadError(
            f"design must have exactly 8 parameters, got {reference.shape}")
    return reference


def ota_estimate_workload(design, *, n_samples: int = 500, seed: int = 2008,
                          chunk_lanes: int = 256, specs=None,
                          adaptive_ci: float = 0.0, check_every: int = 1,
                          pdk: str = "c35", cl: float = 10e-12,
                          ibias: float = 20e-6) -> StreamingYieldWorkload:
    """A streaming yield estimate of one OTA design, from plain JSON.

    Parameters
    ----------
    design:
        The eight natural-unit W/L parameters: a mapping with keys
        ``w1, l1, ..., w4, l4`` or a flat 8-sequence in that order.
    specs:
        Spec entries ``[name, op, limit(, unit)]``; defaults to the
        paper's OTA requirement (:data:`DEFAULT_OTA_SPECS`).
    adaptive_ci:
        Target Wilson-interval full width; 0 runs the exact
        ``n_samples`` count.
    """
    reference = _reference_from_design(design)
    kit = resolve_pdk(pdk)
    spec_set = _specs_from_request(specs if specs is not None
                                   else DEFAULT_OTA_SPECS)
    config = MCConfig(n_samples=int(n_samples), seed=int(seed),
                      chunk_lanes=int(chunk_lanes))
    adaptive = (AdaptiveStop(metric="yield", ci_width=float(adaptive_ci),
                             check_every=int(check_every))
                if adaptive_ci else None)
    return StreamingYieldWorkload(
        ota_reference_evaluator(reference, pdk=kit, cl=cl, ibias=ibias),
        kit, spec_set, config, adaptive=adaptive,
        evaluator_id=design_digest(reference=reference, pdk=kit.name,
                                   cl=cl, ibias=ibias))


def ota_rare_workload(design, *, n_per_level: int = 2000,
                      max_levels: int = 12, level_quantile: float = 0.25,
                      n_final: int = 4000, seed: int = 2008,
                      chunk_lanes: int = 4000, specs=None,
                      max_shift_sigma: float = 6.0,
                      include_mismatch: bool = True,
                      confidence: float = 0.95, pdk: str = "c35",
                      cl: float = 10e-12,
                      ibias: float = 20e-6) -> RareEventWorkload:
    """A high-sigma rare-event failure estimate of one OTA design, from
    plain JSON (:func:`repro.yieldmodel.rare.estimate_yield_rare`).

    Same ``design``/``specs`` conventions as
    :func:`ota_estimate_workload`; the remaining knobs mirror
    :class:`~repro.yieldmodel.rare.RareEventConfig`.
    """
    reference = _reference_from_design(design)
    kit = resolve_pdk(pdk)
    spec_set = _specs_from_request(specs if specs is not None
                                   else DEFAULT_OTA_SPECS)
    try:
        config = RareEventConfig(
            n_per_level=int(n_per_level), max_levels=int(max_levels),
            level_quantile=float(level_quantile), n_final=int(n_final),
            seed=int(seed), max_shift_sigma=float(max_shift_sigma),
            include_mismatch=bool(include_mismatch),
            confidence=float(confidence), chunk_lanes=int(chunk_lanes))
    except YieldModelError as error:
        # Config bounds are request errors: surface them at the
        # submission boundary like every other malformed field.
        raise WorkloadError(str(error)) from None
    return RareEventWorkload(
        ota_reference_evaluator(reference, pdk=kit, cl=cl, ibias=ibias),
        kit, spec_set, config,
        evaluator_id=design_digest(reference=reference, pdk=kit.name,
                                   cl=cl, ibias=ibias))


def ota_corner_workload(design, *, corners: str = "all", vdds: str = "",
                        temps: str = "", pdk: str = "c35",
                        cl: float = 10e-12, ibias: float = 20e-6,
                        chunk_lanes: int = 0) -> CornerSweepWorkload:
    """A deterministic PVT corner sweep of one OTA design, from plain
    JSON (:func:`repro.corners.corner_sweep_points`).

    ``corners``/``vdds``/``temps`` are the CLI-style comma-separated
    specs of :meth:`repro.corners.CornerGrid.from_spec` (``corners``
    defaults to every kit corner, empty ``vdds``/``temps`` mean the
    default supply/temperature sets).
    """
    from ..corners.grid import CornerGrid
    reference = _reference_from_design(design)
    kit = resolve_pdk(pdk)
    try:
        grid = CornerGrid.from_spec(kit, str(corners), str(vdds),
                                    str(temps))
    except ReproError as error:
        # Bad grid specs are request errors: surface them at the
        # submission boundary like every other malformed field.
        raise WorkloadError(str(error)) from None
    return CornerSweepWorkload(
        ota_points_evaluator(reference[None, :], pdk=kit, cl=cl,
                             ibias=ibias),
        1, kit, grid, chunk_lanes=int(chunk_lanes),
        evaluator_id=design_digest(reference=reference, pdk=kit.name,
                                   cl=cl, ibias=ibias))


def ota_surrogate_workload(design, *, n_train: int = 96, seed: int = 2008,
                           surrogate_kind: str = "quadratic",
                           include_mismatch: bool = True,
                           chunk_lanes: int = 4000, pdk: str = "c35",
                           cl: float = 10e-12,
                           ibias: float = 20e-6) -> SurrogateTrainWorkload:
    """A process-space surrogate training run for one OTA design, from
    plain JSON (:func:`repro.surrogate.train_surrogates`)."""
    from ..surrogate.regression import SURROGATE_KINDS
    reference = _reference_from_design(design)
    kit = resolve_pdk(pdk)
    surrogate_kind = str(surrogate_kind).strip().lower()
    if surrogate_kind not in SURROGATE_KINDS:
        raise WorkloadError(
            f"unknown surrogate kind {surrogate_kind!r} "
            f"(known: {', '.join(sorted(SURROGATE_KINDS))})")
    if int(n_train) < 2:
        raise WorkloadError("n_train must be >= 2")
    return SurrogateTrainWorkload(
        ota_reference_evaluator(reference, pdk=kit, cl=cl, ibias=ibias),
        kit, n_train=int(n_train), seed=int(seed),
        surrogate_kind=surrogate_kind,
        include_mismatch=bool(include_mismatch),
        chunk_lanes=int(chunk_lanes),
        evaluator_id=design_digest(reference=reference, pdk=kit.name,
                                   cl=cl, ibias=ibias))


def lint_workload_from_source(source: str, mode: str = "strict", *,
                              stage: str = "service lint",
                              title: str = "") -> LintWorkload:
    """A topology-lint workload over netlist source text.

    The text is parsed here (parse errors surface at submission, not
    inside a worker) and digested into the evaluator identity, so
    identical netlists share one cached verdict.
    """
    from ..circuit.parser import parse_netlist
    circuit = parse_netlist(source, title=title)
    return LintWorkload(circuit, mode, stage=stage, source=source)
