"""Concrete workloads wrapping the engine entry points.

Each class binds one existing entry point -- nothing here re-implements
numerics.  ``run()`` delegates with exactly the arguments the flow
stages used to pass, which is what keeps the refactored flows'
artifacts bit-identical to the monolithic stage bodies they replaced.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from ..corners.sweep import corner_sweep_points
from ..lint import preflight_lint
from ..mc.engine import MCConfig, monte_carlo, monte_carlo_points
from ..surrogate import (surrogate_arrays, surrogates_from_arrays,
                         train_surrogates)
from ..yieldmodel.estimator import (YieldEstimate, estimate_yield,
                                    estimate_yield_streaming)
from ..yieldmodel.rare import (RareEventConfig, RareEventResult, RareLevel,
                               estimate_yield_rare)
from .base import Workload, WorkloadResult

__all__ = ["LintWorkload", "MCPointsWorkload", "CornerSweepWorkload",
           "StreamingYieldWorkload", "BatchYieldWorkload",
           "RareEventWorkload", "SurrogateTrainWorkload",
           "YieldSearchWorkload"]


def _mc_config_payload(config: MCConfig) -> dict:
    """The fingerprint-relevant fields of an :class:`MCConfig`.

    Deliberately excludes ``backend``/``workers`` (the :mod:`repro.exec`
    determinism contract keeps them out of results) while keeping
    ``chunk_lanes``, which fixes the chunk geometry and therefore the
    per-chunk random streams.
    """
    return {
        "n_samples": config.n_samples,
        "seed": config.seed,
        "include_global": config.include_global,
        "include_mismatch": config.include_mismatch,
        "chunk_lanes": config.chunk_lanes,
    }


def _yield_arrays(estimate: YieldEstimate) -> tuple[dict, dict]:
    """Serialise a :class:`YieldEstimate` to cacheable arrays + meta."""
    spec_names = list(estimate.per_spec_pass)
    arrays = {
        "yield_counts": np.array([estimate.passed, estimate.total],
                                 dtype=np.int64),
        "spec_pass": np.array([estimate.per_spec_pass[name]
                               for name in spec_names], dtype=np.int64),
    }
    meta = {
        "spec_names": spec_names,
        "confidence": estimate.confidence,
        "percent": estimate.percent,
        "describe": estimate.describe(),
    }
    return arrays, meta


def _yield_from_arrays(arrays: dict, meta: dict) -> YieldEstimate:
    """Rebuild the exact :class:`YieldEstimate` a fresh run produced."""
    counts = np.asarray(arrays["yield_counts"])
    spec_pass = np.asarray(arrays["spec_pass"])
    return YieldEstimate(
        passed=int(counts[0]), total=int(counts[1]),
        per_spec_pass={name: int(spec_pass[index])
                       for index, name in enumerate(meta["spec_names"])},
        confidence=float(meta["confidence"]))


class LintWorkload(Workload):
    """Pre-flight topology lint of one circuit (:mod:`repro.lint`).

    ``run()`` raises :class:`~repro.errors.LintGateError` in ``strict``
    mode exactly as :func:`~repro.lint.preflight_lint` does -- the gate
    semantics belong to the workload, not to its caller.  Cacheable only
    when ``source`` (the netlist text, digested into the evaluator
    identity) is given: a live :class:`~repro.circuit.Circuit` object is
    opaque to the fingerprint.
    """

    kind: ClassVar[str] = "lint"

    def __init__(self, circuit, mode: str = "strict", *,
                 stage: str = "pre-flight lint", source: str = "") -> None:
        from ..cache import fingerprint_key
        # reprolint: disable=fingerprint-completeness -- circuit is opaque to the fingerprint; identity comes from the digested `source` text via evaluator_id, and cacheable is False without it
        self.circuit = circuit
        self.mode = mode
        self.stage = stage
        self.source = source
        self.evaluator_id = (f"netlist:{fingerprint_key(source)}"
                             if source else "")
        self.cacheable = bool(source)

    def config(self) -> dict:
        return {"mode": self.mode, "stage": self.stage}

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        report = preflight_lint(self.circuit, self.mode, stage=self.stage,
                                progress=progress)
        meta: dict = {"mode": self.mode, "stage": self.stage}
        if report is not None:
            meta.update({
                "errors": report.count("error"),
                "warnings": report.count("warning"),
                "ok": report.ok(),
                "findings": [
                    {"rule": finding.rule, "severity": finding.severity,
                     "message": finding.message}
                    for finding in report.sorted_findings()],
            })
        return self._result(meta=meta, value=report)

    def _value_from_arrays(self, arrays: dict, meta: dict):
        return None  # the verdict lives in meta; the report object does not


class MCPointsWorkload(Workload):
    """Monte-Carlo variation analysis across many design points
    (stage 4 of the model-build flow;
    :func:`repro.mc.engine.monte_carlo_points`)."""

    kind: ClassVar[str] = "mc-points"

    def __init__(self, evaluator, n_points: int, pdk, config: MCConfig, *,
                 stage: str = "mc-points", evaluator_id: str = "") -> None:
        self.evaluator = evaluator
        self.n_points = n_points
        self.pdk = pdk
        self.mc_config = config
        self.stage = stage
        self.evaluator_id = evaluator_id

    def config(self) -> dict:
        payload = _mc_config_payload(self.mc_config)
        payload.update({"pdk": self.pdk.name, "n_points": self.n_points,
                        "stage": self.stage})
        return payload

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        samples = monte_carlo_points(self.evaluator, self.n_points, self.pdk,
                                     self.mc_config, progress=progress,
                                     stage=self.stage)
        meta = {"n_points": self.n_points,
                "n_samples": self.mc_config.n_samples,
                "names": sorted(samples)}
        return self._result(meta=meta, arrays=samples, value=samples)


class CornerSweepWorkload(Workload):
    """Deterministic PVT corner sweep of many design points
    (stage 4b; :func:`repro.corners.corner_sweep_points`).

    ``chunk_lanes`` stays out of the fingerprint: the sweep draws no
    random streams, so chunk geometry cannot change its numbers.
    """

    kind: ClassVar[str] = "corner-sweep"

    def __init__(self, evaluator, n_points: int, pdk, grid, *,
                 backend=None, workers: int = 0, chunk_lanes: int = 0,
                 evaluator_id: str = "") -> None:
        self.evaluator = evaluator
        self.n_points = n_points
        self.pdk = pdk
        self.grid = grid
        self.backend = backend
        self.workers = workers
        # reprolint: disable=fingerprint-completeness -- the sweep draws no random streams, so chunk geometry provably cannot change its numbers (see class docstring)
        self.chunk_lanes = chunk_lanes
        self.evaluator_id = evaluator_id

    def config(self) -> dict:
        return {"pdk": self.pdk.name, "n_points": self.n_points,
                "grid": self.grid.describe()}

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        samples = corner_sweep_points(
            self.evaluator, self.n_points, self.pdk, self.grid,
            backend=self.backend, workers=self.workers,
            chunk_lanes=self.chunk_lanes, progress=progress)
        meta = {"n_points": self.n_points, "grid": self.grid.describe(),
                "names": sorted(samples)}
        return self._result(meta=meta, arrays=samples, value=samples)


class StreamingYieldWorkload(Workload):
    """Streaming (optionally adaptive) Monte-Carlo yield estimation
    (stage 4c, and the service layer's ``estimate`` jobs;
    :func:`repro.yieldmodel.estimator.estimate_yield_streaming`).

    ``run()`` returns ``value = (estimate, streaming)``; a cache hit
    rebuilds the exact :class:`~repro.yieldmodel.estimator.YieldEstimate`
    but returns ``None`` for the streaming state (accumulator internals
    are checkpoint material, not result material).
    """

    kind: ClassVar[str] = "yield-streaming"

    def __init__(self, evaluator, pdk, specs, config: MCConfig, *,
                 adaptive=None, sketch_capacity: int | None = None,
                 confidence: float | None = None, stage: str = "mc-single",
                 evaluator_id: str = "") -> None:
        self.evaluator = evaluator
        self.pdk = pdk
        self.specs = specs
        self.mc_config = config
        self.adaptive = adaptive
        self.sketch_capacity = sketch_capacity
        self.confidence = confidence
        self.stage = stage
        self.evaluator_id = evaluator_id

    def config(self) -> dict:
        adaptive = self.adaptive
        payload = _mc_config_payload(self.mc_config)
        payload.update({
            "pdk": self.pdk.name,
            "stage": self.stage,
            "specs": self.specs.describe(),
            "adaptive": ([adaptive.metric, adaptive.ci_width,
                          adaptive.confidence, adaptive.min_samples,
                          adaptive.check_every, adaptive.k_sigma]
                         if adaptive is not None else []),
            "sketch_capacity": self.sketch_capacity,
            "confidence": self.confidence,
        })
        return payload

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        estimate, streaming = estimate_yield_streaming(
            self.evaluator, self.pdk, self.specs, self.mc_config,
            adaptive=self.adaptive, checkpoint=checkpoint,
            sketch_capacity=self.sketch_capacity,
            confidence=self.confidence, stage=self.stage, progress=progress)
        arrays, meta = _yield_arrays(estimate)
        meta.update({
            "samples_done": streaming.samples_done,
            "samples_cap": streaming.samples_cap,
            "stopped_early": streaming.stopped_early,
        })
        return self._result(meta=meta, arrays=arrays,
                            value=(estimate, streaming))

    def _value_from_arrays(self, arrays: dict, meta: dict):
        return _yield_from_arrays(arrays, meta), None


class BatchYieldWorkload(Workload):
    """Fixed-count Monte-Carlo yield verification (the filter flow's
    transistor-level verification; :func:`repro.mc.engine.monte_carlo`
    + :func:`repro.yieldmodel.estimator.estimate_yield`).

    ``value = (estimate, population)``; cache hits rebuild the estimate
    and return ``None`` for the population (it is re-derivable and
    large).
    """

    kind: ClassVar[str] = "yield-batch"

    def __init__(self, evaluator, pdk, specs, config: MCConfig, *,
                 confidence: float = 0.95, evaluator_id: str = "") -> None:
        self.evaluator = evaluator
        self.pdk = pdk
        self.specs = specs
        self.mc_config = config
        self.confidence = confidence
        self.evaluator_id = evaluator_id

    def config(self) -> dict:
        payload = _mc_config_payload(self.mc_config)
        payload.update({"pdk": self.pdk.name,
                        "specs": self.specs.describe(),
                        "confidence": self.confidence})
        return payload

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        population = monte_carlo(self.evaluator, self.pdk, self.mc_config,
                                 progress)
        estimate = estimate_yield(population, self.specs,
                                  confidence=self.confidence)
        arrays, meta = _yield_arrays(estimate)
        return self._result(meta=meta, arrays=arrays,
                            value=(estimate, population))

    def _value_from_arrays(self, arrays: dict, meta: dict):
        return _yield_from_arrays(arrays, meta), None


class RareEventWorkload(Workload):
    """High-sigma rare-event failure-probability estimation
    (:func:`repro.yieldmodel.rare.estimate_yield_rare`).

    Fully cacheable: a :class:`~repro.yieldmodel.rare.RareEventResult`
    round-trips losslessly through flat arrays (scalars, the final
    proposal shift, and the per-level ledger), so a cache hit rebuilds
    the exact result a fresh run produced -- including every level's
    acceptance rate and threshold.  ``backend``/``workers`` stay out of
    the fingerprint (determinism contract); ``chunk_lanes`` stays *in*
    because it fixes the per-chunk mismatch streams.
    """

    kind: ClassVar[str] = "yield-rare"

    def __init__(self, evaluator, pdk, specs, config: RareEventConfig, *,
                 stage: str = "high-sigma", evaluator_id: str = "") -> None:
        self.evaluator = evaluator
        self.pdk = pdk
        self.specs = specs
        self.rare_config = config
        self.stage = stage
        self.evaluator_id = evaluator_id

    def config(self) -> dict:
        rare = self.rare_config
        return {
            "pdk": self.pdk.name,
            "specs": self.specs.describe(),
            "stage": self.stage,
            "n_per_level": rare.n_per_level,
            "max_levels": rare.max_levels,
            "level_quantile": rare.level_quantile,
            "n_final": rare.n_final,
            "seed": rare.seed,
            "max_shift_sigma": rare.max_shift_sigma,
            "include_mismatch": rare.include_mismatch,
            "confidence": rare.confidence,
            "chunk_lanes": rare.chunk_lanes,
        }

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        result = estimate_yield_rare(self.evaluator, self.specs, self.pdk,
                                     self.rare_config, progress=progress)
        arrays = {
            "rare_scalars": np.array([result.p_fail, result.std_error,
                                      result.effective_samples,
                                      result.confidence], dtype=np.float64),
            "rare_shift": np.asarray(result.shift_sigma, dtype=np.float64),
            # Per-level ledger: index, n_samples, threshold, acceptance,
            # failure_fraction -- one row per splitting level.
            "level_table": np.array(
                [[level.index, level.n_samples, level.threshold,
                  level.acceptance, level.failure_fraction]
                 for level in result.levels],
                dtype=np.float64).reshape(len(result.levels), 5),
            "level_shifts": np.array(
                [level.shift_sigma for level in result.levels],
                dtype=np.float64).reshape(len(result.levels), -1),
        }
        meta = {
            "n_final": result.n_final,
            "levels_converged": result.levels_converged,
            "p_fail": result.p_fail,
            "sigma_level": result.sigma_level,
            "total_simulations": result.total_simulations,
            "describe": result.describe(),
        }
        return self._result(meta=meta, arrays=arrays, value=result)

    def _value_from_arrays(self, arrays: dict, meta: dict) -> RareEventResult:
        scalars = np.asarray(arrays["rare_scalars"], dtype=np.float64)
        table = np.asarray(arrays["level_table"], dtype=np.float64)
        shifts = np.asarray(arrays["level_shifts"], dtype=np.float64)
        levels = [RareLevel(index=int(row[0]), n_samples=int(row[1]),
                            threshold=float(row[2]),
                            acceptance=float(row[3]),
                            failure_fraction=float(row[4]),
                            shift_sigma=shifts[number])
                  for number, row in enumerate(table)]
        return RareEventResult(
            p_fail=float(scalars[0]), std_error=float(scalars[1]),
            levels=levels,
            shift_sigma=np.asarray(arrays["rare_shift"], dtype=np.float64),
            n_final=int(meta["n_final"]),
            effective_samples=float(scalars[2]),
            levels_converged=bool(meta["levels_converged"]),
            confidence=float(scalars[3]))


class SurrogateTrainWorkload(Workload):
    """Process-space surrogate training (stage 6;
    :func:`repro.surrogate.train_surrogates`).

    The trained bundle serialises losslessly through
    :func:`repro.surrogate.surrogate_arrays`, so a cache hit rebuilds a
    bundle whose predictions are bit-identical to the fresh fit's.
    """

    kind: ClassVar[str] = "surrogate-train"

    def __init__(self, evaluator, pdk, *, n_train: int, seed: int,
                 surrogate_kind: str = "quadratic",
                 include_mismatch: bool = True, backend=None,
                 workers: int = 0, chunk_lanes: int = 4000,
                 evaluator_id: str = "") -> None:
        self.evaluator = evaluator
        self.pdk = pdk
        self.n_train = n_train
        self.seed = seed
        self.surrogate_kind = surrogate_kind
        self.include_mismatch = include_mismatch
        self.backend = backend
        self.workers = workers
        self.chunk_lanes = chunk_lanes
        self.evaluator_id = evaluator_id

    def config(self) -> dict:
        # chunk_lanes is fingerprint-relevant here (unlike the corner
        # sweep): mismatch draws come from per-chunk child streams, so
        # chunk geometry shapes the training data.
        return {"pdk": self.pdk.name, "n_train": self.n_train,
                "seed": self.seed, "surrogate_kind": self.surrogate_kind,
                "include_mismatch": self.include_mismatch,
                "chunk_lanes": self.chunk_lanes}

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        bundle = train_surrogates(
            self.evaluator, self.pdk, n_train=self.n_train, seed=self.seed,
            kind=self.surrogate_kind, include_mismatch=self.include_mismatch,
            backend=self.backend, workers=self.workers,
            chunk_lanes=self.chunk_lanes)
        meta = {"surrogate_kind": self.surrogate_kind,
                "n_train": self.n_train, "names": list(bundle.names)}
        return self._result(meta=meta, arrays=surrogate_arrays(bundle),
                            value=bundle)

    def _value_from_arrays(self, arrays: dict, meta: dict):
        return surrogates_from_arrays(arrays)


class YieldSearchWorkload(Workload):
    """In-loop yield-aware Pareto search (stage 7;
    :func:`repro.optimize.run_yield_search`).

    Uncacheable: the result carries a full GA history and per-fidelity
    ledger that cannot be rebuilt from flat arrays.  The workload still
    fingerprints (for job identity in the service layer), keyed by the
    search configuration and the problem's name.
    """

    kind: ClassVar[str] = "yield-search"
    cacheable: ClassVar[bool] = False

    def __init__(self, problem, evaluator_factory, specs, pdk,
                 search_config, *, ledger=None,
                 evaluator_id: str = "") -> None:
        self.problem = problem
        self.evaluator_factory = evaluator_factory
        self.specs = specs
        self.pdk = pdk
        self.search_config = search_config
        self.ledger = ledger
        self.evaluator_id = (evaluator_id
                             or f"problem:{type(problem).__name__}")

    def config(self) -> dict:
        search = self.search_config
        ladder = search.ladder
        return {
            "pdk": self.pdk.name,
            "specs": self.specs.describe(),
            "mode": search.mode, "optimizer": search.optimizer,
            "yield_target": search.yield_target,
            "penalty_weight": search.penalty_weight,
            "generations": search.generations,
            "population": search.population,
            "seed": search.seed,
            # Ladder knobs minus its backend/workers execution fields.
            "fidelity_budget": ladder.fidelity_budget,
            "chunk_lanes": ladder.chunk_lanes,
        }

    def _execute(self, *, checkpoint, progress) -> WorkloadResult:
        # Runtime import: repro.optimize builds on repro.flow.accounting,
        # and the flow package imports this module -- the dependency must
        # stay one-way at import time (mirrors flow/pipeline.py).
        from ..optimize import run_yield_search
        result = run_yield_search(self.problem, self.evaluator_factory,
                                  self.specs, self.pdk, self.search_config,
                                  ledger=self.ledger)
        return self._result(meta={"mode": self.search_config.mode},
                            value=result)
