"""The paper's combined performance + variation yield model."""

from .estimator import YieldEstimate, estimate_yield, wilson_interval
from .targeting import CombinedYieldModel, GuardBandedTarget, YieldTargetedDesign
from .variation import (DEFAULT_K_SIGMA, smooth_along_front,
                        variation_columns, variation_percent)

__all__ = [
    "YieldEstimate", "estimate_yield", "wilson_interval",
    "CombinedYieldModel", "GuardBandedTarget", "YieldTargetedDesign",
    "DEFAULT_K_SIGMA", "smooth_along_front", "variation_columns",
    "variation_percent",
]
