"""The paper's combined performance + variation yield model."""

from .cornercheck import CornerMCCheck, compare_corners_to_mc
from .estimator import (YieldEstimate, estimate_yield,
                        estimate_yield_streaming, normal_interval,
                        wilson_interval, z_value)
from .importance import (ImportanceSamplingConfig, ImportanceSamplingEstimate,
                         estimate_yield_importance, global_sigmas,
                         shifted_sample)
from .rare import (RareEventConfig, RareEventResult, RareLevel,
                   direct_mc_samples_for_halfwidth, equivalent_sigma,
                   estimate_yield_rare)
from .targeting import CombinedYieldModel, GuardBandedTarget, YieldTargetedDesign
from .variation import (DEFAULT_K_SIGMA, smooth_along_front,
                        variation_columns, variation_percent)

__all__ = [
    "CornerMCCheck", "compare_corners_to_mc",
    "YieldEstimate", "estimate_yield", "estimate_yield_streaming",
    "wilson_interval", "normal_interval", "z_value",
    "ImportanceSamplingConfig", "ImportanceSamplingEstimate",
    "estimate_yield_importance", "global_sigmas", "shifted_sample",
    "RareEventConfig", "RareEventResult", "RareLevel",
    "estimate_yield_rare", "equivalent_sigma",
    "direct_mc_samples_for_halfwidth",
    "CombinedYieldModel", "GuardBandedTarget", "YieldTargetedDesign",
    "DEFAULT_K_SIGMA", "smooth_along_front", "variation_columns",
    "variation_percent",
]
