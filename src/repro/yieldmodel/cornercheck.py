"""Corner-vs-Monte-Carlo consistency check.

Deterministic worst-case corners and sampled statistical variation are
two views of the same process spread; designers routinely assume the
corner extremes *bound* the +/-3-sigma Monte-Carlo spread.  That
assumption is exactly what the C35 kit promises (corner shifts sit on
the 3-sigma points of the global model) -- but it does not automatically
survive the nonlinear parameter->performance map: a performance can peak
*inside* the corner box, or mismatch (which corners do not model) can
widen the sampled spread past the corner extremes.

:func:`compare_corners_to_mc` quantifies this per performance and per
design point: does the corner-swept interval ``[min, max]`` contain the
Monte-Carlo ``mean +/- k*sigma`` interval?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import YieldModelError

__all__ = ["CornerMCCheck", "compare_corners_to_mc"]


@dataclass(frozen=True)
class CornerMCCheck:
    """Corner-vs-MC comparison of one performance over ``K`` designs.

    Attributes
    ----------
    corner_lo, corner_hi:
        Extremes over the PVT grid, shape ``(K,)``.
    mc_lo, mc_hi:
        Monte-Carlo ``mean -/+ k_sigma * std``, shape ``(K,)``.
    bounded:
        Per-design flag: corner interval contains the MC interval.
    k_sigma:
        Spread width the MC interval was built with.
    """

    name: str
    corner_lo: np.ndarray
    corner_hi: np.ndarray
    mc_lo: np.ndarray
    mc_hi: np.ndarray
    bounded: np.ndarray
    k_sigma: float

    @property
    def bounded_fraction(self) -> float:
        """Fraction of design points whose corner box bounds the spread."""
        return float(np.count_nonzero(self.bounded)) / self.bounded.size

    def describe(self) -> str:
        """One-line bounded-fraction summary for reports."""
        return (f"{self.name}: corners bound the {self.k_sigma:g}-sigma MC "
                f"spread on {np.count_nonzero(self.bounded)}/"
                f"{self.bounded.size} designs "
                f"({100.0 * self.bounded_fraction:.1f}%)")


def compare_corners_to_mc(corner_samples: dict[str, np.ndarray],
                          mc_samples: dict[str, np.ndarray], *,
                          k_sigma: float = 3.0
                          ) -> dict[str, CornerMCCheck]:
    """Check whether corner extremes bound the Monte-Carlo spread.

    Parameters
    ----------
    corner_samples:
        Mapping performance name -> corner-swept values, shape ``(K, B)``
        (``B`` grid lanes per design) or ``(B,)`` for a single design.
    mc_samples:
        Mapping performance name -> Monte-Carlo populations, shape
        ``(K, S)`` or ``(S,)``; only names present in *both* mappings are
        compared.
    k_sigma:
        Width of the MC interval ``mean +/- k_sigma * std``.

    Returns
    -------
    Mapping performance name -> :class:`CornerMCCheck`.
    """
    shared = [name for name in corner_samples if name in mc_samples]
    if not shared:
        raise YieldModelError(
            "corner and Monte-Carlo results share no performance names")
    checks: dict[str, CornerMCCheck] = {}
    for name in shared:
        corners = np.atleast_2d(np.asarray(corner_samples[name], dtype=float))
        mc = np.atleast_2d(np.asarray(mc_samples[name], dtype=float))
        if corners.shape[0] != mc.shape[0]:
            raise YieldModelError(
                f"{name!r}: corner sweep covers {corners.shape[0]} designs "
                f"but Monte Carlo covers {mc.shape[0]}")
        corner_lo = corners.min(axis=1)
        corner_hi = corners.max(axis=1)
        mean = mc.mean(axis=1)
        std = mc.std(axis=1, ddof=1)
        mc_lo = mean - k_sigma * std
        mc_hi = mean + k_sigma * std
        checks[name] = CornerMCCheck(
            name=name, corner_lo=corner_lo, corner_hi=corner_hi,
            mc_lo=mc_lo, mc_hi=mc_hi,
            bounded=(corner_lo <= mc_lo) & (corner_hi >= mc_hi),
            k_sigma=float(k_sigma))
    return checks
