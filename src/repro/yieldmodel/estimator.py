"""Monte-Carlo yield estimation (the paper's verification step).

The paper verifies its guard-banded designs with 500-sample Monte Carlo
runs that "confirmed a yield of 100 %".  This module computes the yield
estimate properly: the pass fraction together with a Wilson score
confidence interval, because "500/500 passed" only bounds the true yield
from below (at 95 % confidence, 500/500 means yield >= 99.26 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..measure.specs import SpecSet

__all__ = ["z_value", "wilson_interval", "normal_interval", "YieldEstimate",
           "estimate_yield", "estimate_yield_streaming"]


def z_value(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level.

    >>> round(z_value(0.95), 3)
    1.96
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    return math.sqrt(2.0) * _erfinv(confidence)


def normal_interval(estimate: float, std_error: float,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Normal-approximation confidence interval clipped to ``[0, 1]``.

    Used for estimators that are weighted means rather than binomial
    counts (e.g. importance-sampled yield, where the Wilson interval does
    not apply).
    """
    half = z_value(confidence) * std_error
    return max(0.0, estimate - half), min(1.0, estimate + half)


def wilson_interval(passed: int, total: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the boundaries (0 or 100 % observed yield), unlike the
    normal approximation.

    >>> lo, hi = wilson_interval(500, 500)
    >>> 0.99 < lo < 1.0 and hi == 1.0
    True
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= passed <= total:
        raise ValueError("passed must lie in [0, total]")
    # Two-sided z for the requested confidence (0.95 -> 1.95996...).
    z = z_value(confidence)
    p_hat = passed / total
    denom = 1.0 + z * z / total
    centre = (p_hat + z * z / (2 * total)) / denom
    half = (z / denom) * math.sqrt(
        p_hat * (1 - p_hat) / total + z * z / (4 * total * total))
    return max(0.0, centre - half), min(1.0, centre + half)


def _erfinv(x: float) -> float:
    """Inverse error function (scipy-free, Newton-refined Winitzki seed)."""
    if not -1.0 < x < 1.0:
        raise ValueError("erfinv argument must be in (-1, 1)")
    # Winitzki's approximation as the seed...
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    value = math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), x)
    # ...then two Newton steps on erf(value) - x = 0 for full precision.
    for _ in range(2):
        error = math.erf(value) - x
        value -= error / (2.0 / math.sqrt(math.pi) * math.exp(-value * value))
    return value


@dataclass
class YieldEstimate:
    """A Monte-Carlo yield measurement.

    Attributes
    ----------
    passed, total:
        Raw pass count over the sample population.
    per_spec_pass:
        Pass counts for each individual spec (diagnoses *which*
        requirement limits yield).
    confidence:
        Confidence level of the Wilson interval.
    """

    passed: int
    total: int
    per_spec_pass: dict[str, int] = field(default_factory=dict)
    confidence: float = 0.95

    @property
    def fraction(self) -> float:
        """Point estimate of the yield."""
        return self.passed / self.total

    @property
    def percent(self) -> float:
        """Point estimate of the yield in percent."""
        return 100.0 * self.fraction

    @property
    def interval(self) -> tuple[float, float]:
        """Wilson confidence interval on the true yield."""
        return wilson_interval(self.passed, self.total, self.confidence)

    def describe(self) -> str:
        """Multi-line report: overall yield, CI, per-spec pass counts."""
        lo, hi = self.interval
        parts = [f"yield {self.passed}/{self.total} = {self.percent:.2f}% "
                 f"(Wilson {self.confidence:.0%} CI: "
                 f"[{100 * lo:.2f}%, {100 * hi:.2f}%])"]
        for name, count in self.per_spec_pass.items():
            parts.append(f"  {name}: {count}/{self.total}")
        return "\n".join(parts)


def estimate_yield(performance: dict[str, np.ndarray],
                   specs: SpecSet, *, confidence: float = 0.95) -> YieldEstimate:
    """Estimate yield of a Monte-Carlo performance population.

    Parameters
    ----------
    performance:
        Mapping performance name -> shape-``(S,)`` sample array (one entry
        per Monte-Carlo die).
    specs:
        The specification set (all specs must pass for a die to count).
    """
    mask = specs.pass_mask(performance)
    per_spec = {
        spec.name: int(np.count_nonzero(
            spec.satisfied(np.asarray(performance[spec.name]))))
        for spec in specs
    }
    return YieldEstimate(
        passed=int(np.count_nonzero(mask)),
        total=int(mask.size),
        per_spec_pass=per_spec,
        confidence=confidence,
    )


def estimate_yield_streaming(evaluator, pdk, specs: SpecSet,
                             config=None, *, adaptive=None,
                             checkpoint=None, max_chunks=None,
                             sketch_capacity: int | None = None,
                             confidence: float | None = None,
                             stage: str = "mc-single", progress=None):
    """Streaming (optionally adaptive) Monte-Carlo yield estimation.

    Drives :func:`repro.mc.streaming.monte_carlo_streaming` with a
    :class:`~repro.mc.streaming.YieldCounter` and converts the streaming
    pass counts into the same :class:`YieldEstimate` that
    :func:`estimate_yield` builds from a materialised population --
    without ever holding that population in memory.  With an
    :class:`~repro.mc.streaming.AdaptiveStop` the run terminates as soon
    as the Wilson interval is narrower than the requested width, which
    is how a verification reaches a stated precision with the fewest
    simulated lanes.

    Parameters
    ----------
    evaluator:
        Callable ``(ProcessSample) -> dict[name, (S,) array]`` (the
        :func:`repro.mc.engine.monte_carlo` contract).
    specs:
        The specification set (all specs must pass for a die to count).
    config:
        :class:`repro.mc.engine.MCConfig`; ``n_samples`` is the exact
        count, or the cap when ``adaptive`` is given.
    adaptive, checkpoint, max_chunks, stage, progress:
        Forwarded to :func:`monte_carlo_streaming` (adaptive stopping,
        checkpoint/resume, invocation sharding, stream stage key).
    confidence:
        Confidence level of the returned estimate's Wilson interval.
        ``None`` (the default) follows ``adaptive.confidence`` when an
        adaptive rule is given -- the reported interval must be the one
        the run actually stopped on -- and 0.95 otherwise.

    Returns
    -------
    ``(estimate, streaming)`` -- the :class:`YieldEstimate` and the full
    :class:`~repro.mc.streaming.StreamingResult` (per-performance
    accumulators, stop state, chunk cursor).
    """
    # Runtime import: repro.mc must stay importable without repro.yieldmodel,
    # and this keeps the one-way module-level dependency explicit.
    from ..mc.streaming import DEFAULT_SKETCH_CAPACITY, monte_carlo_streaming
    with telemetry.span("yield.streaming", stage=stage) as estimate_span:
        streaming = monte_carlo_streaming(
            evaluator, pdk, config, specs=specs, adaptive=adaptive,
            checkpoint=checkpoint, max_chunks=max_chunks,
            sketch_capacity=(sketch_capacity if sketch_capacity is not None
                             else DEFAULT_SKETCH_CAPACITY),
            stage=stage, progress=progress)
        simulated = streaming.samples_done - streaming.samples_resumed
        telemetry.counter_add("estimator.simulations", simulated)
        estimate_span.set(simulations=simulated,
                          samples=streaming.samples_done)
    if confidence is None:
        confidence = streaming.confidence
    counter = streaming.counter
    estimate = YieldEstimate(
        passed=counter.passed,
        total=counter.total,
        per_spec_pass=dict(counter.per_spec),
        confidence=confidence,
    )
    return estimate, streaming
