"""Importance-sampled yield estimation (mean-shift + likelihood ratio).

Plain Monte-Carlo yield estimation needs ``O(1 / (1 - Y))`` samples to see
even one failing die of a high-yield design -- the paper's 500-sample
verification of a "100 %" design bounds the yield only down to 99.26 %.
Mean-shift importance sampling (cf. Bayrakci et al., *Fast Monte Carlo
Estimation of Timing Yield: ISLE*; Jonsson & Lelong, *Rare event
simulation for electronic circuit design*) attacks exactly this: draw die
realisations from a proposal distribution shifted **toward the failure
region**, then undo the bias with per-sample likelihood ratios.  Failures
become common under the proposal, so the failure-probability estimate
converges with far fewer simulator calls.

The stochastic space here is the PDK's **global (inter-die) parameter
vector** -- ``(dVto_n, dKp_n, dVto_p, dKp_p, dCap)``, independent normals
under :meth:`repro.process.pdk.ProcessKit.sample`.  The proposal keeps the
unit covariance and shifts the mean:

1. **Pilot run** (plain MC, small): locate the failure region.  The shift
   is the centroid of the failing pilot samples in sigma units; if the
   pilot saw no failures (the expected case for a guard-banded design),
   the centroid of the *most marginal* pilot tail -- the samples with the
   smallest aggregate spec margin -- is used instead.
2. **Main run**: sample globals from ``N(shift, I)`` (sigma units), keep
   local mismatch at its nominal distribution (its likelihood ratio is
   then exactly 1), and weight each sample by
   ``w = N(x; 0, I) / N(x; shift, I)``.

The estimator ``1 - mean(w * fail)`` is unbiased for the true yield; its
standard error and effective sample size (ESS) come from the weighted
population, and :meth:`ImportanceSamplingEstimate.consistent_with` cross-
checks the result against a plain-MC :class:`YieldEstimate` by confidence-
interval overlap (the yield-verification benchmark runs both).

Caveat: :meth:`ProcessKit.sample` clips the relative current-factor and
capacitance deviates at -4 sigma to keep them positive; the proposal
applies the same clip, so the likelihood ratio is exact everywhere except
that (probability ~3e-5) tail, a bias far below the estimator's noise
floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..mc.sampler import stream
from ..measure.specs import SpecSet
from ..process.pdk import GLOBAL_DIMS, ProcessKit, ProcessSample
from .estimator import YieldEstimate, normal_interval

__all__ = ["ImportanceSamplingConfig", "ImportanceSamplingEstimate",
           "estimate_yield_importance", "global_sigmas", "shifted_sample"]


def global_sigmas(pdk: ProcessKit) -> np.ndarray:
    """1-sigma scales of the PDK's global parameters, :data:`GLOBAL_DIMS`
    order (alias of :meth:`repro.process.ProcessKit.global_sigmas`)."""
    return pdk.global_sigmas()


@dataclass(frozen=True)
class ImportanceSamplingConfig:
    """Settings of the importance-sampled yield estimator.

    Attributes
    ----------
    n_samples:
        Main-run die realisations (drawn from the shifted proposal).
    pilot_samples:
        Plain-MC pilot realisations used to construct the mean shift.
    seed:
        Root seed; pilot and main runs use independent derived streams
        (``"is-pilot"`` / ``"is-main"``).
    max_shift_sigma:
        Elementwise clamp on the mean shift, in sigma units.  Guards
        against a wild pilot centroid degrading the proposal (a too-far
        shift explodes the weight variance).
    pilot_quantile:
        When the pilot run sees no failures, the shift is built from this
        fraction of the pilot population with the smallest aggregate
        margin.
    include_mismatch:
        Carry local (Pelgrom) mismatch in both runs.  Mismatch stays at
        its nominal distribution, so it contributes no likelihood ratio.
    confidence:
        Level of the reported normal-approximation interval.
    """

    n_samples: int = 500
    pilot_samples: int = 100
    seed: int = 2008
    max_shift_sigma: float = 3.0
    pilot_quantile: float = 0.10
    include_mismatch: bool = True
    confidence: float = 0.95


@dataclass
class ImportanceSamplingEstimate:
    """An importance-sampled yield measurement with its diagnostics.

    Attributes
    ----------
    yield_estimate:
        Unbiased estimate ``1 - mean(w * fail)`` of the true yield.
    std_error:
        Standard error of the estimate (sample variance of ``w * fail``).
    n_samples, pilot_samples:
        Main-run / pilot-run sizes (total simulator cost is their sum).
    shift_sigma:
        The proposal mean shift, sigma units, :data:`GLOBAL_DIMS` order.
    effective_samples:
        Kish effective sample size ``(sum w)^2 / sum w^2`` of the main
        run -- a proposal-quality diagnostic (close to ``n_samples`` is
        healthy; tiny means the shift overshot).
    pilot_failures:
        Failing dies observed in the pilot (0 is normal for guard-banded
        designs; the marginal-tail fallback then builds the shift).
    weighted_failure:
        The raw weighted failure probability ``mean(w * fail)``.
    """

    yield_estimate: float
    std_error: float
    n_samples: int
    pilot_samples: int
    shift_sigma: np.ndarray
    effective_samples: float
    pilot_failures: int
    weighted_failure: float
    confidence: float = 0.95

    @property
    def interval(self) -> tuple[float, float]:
        """Normal-approximation confidence interval on the true yield."""
        return normal_interval(self.yield_estimate, self.std_error,
                               self.confidence)

    @property
    def percent(self) -> float:
        """The importance-sampled yield estimate in percent."""
        return 100.0 * self.yield_estimate

    def consistent_with(self, direct: YieldEstimate) -> bool:
        """Do this estimate and a plain-MC estimate agree?

        True when the two confidence intervals overlap -- the cross-check
        the yield-verification benchmark applies between the
        importance-sampled and directly-counted yields.
        """
        lo_is, hi_is = self.interval
        lo_mc, hi_mc = direct.interval
        return lo_is <= hi_mc and lo_mc <= hi_is

    def describe(self) -> str:
        """Multi-line report: estimate, CI, ESS, and proposal shift."""
        lo, hi = self.interval
        shift = ", ".join(f"{name}={value:+.2f}s"
                          for name, value in zip(GLOBAL_DIMS, self.shift_sigma,
                                                 strict=True))
        return (f"IS yield {self.percent:.2f}% "
                f"({self.confidence:.0%} CI: [{100 * lo:.2f}%, "
                f"{100 * hi:.2f}%])\n"
                f"  main run {self.n_samples} samples "
                f"(ESS {self.effective_samples:.0f}), "
                f"pilot {self.pilot_samples} samples "
                f"({self.pilot_failures} failures)\n"
                f"  proposal shift: {shift}")


def _draw_shifted(pdk: ProcessKit, size: int, rng: np.random.Generator,
                  shift: np.ndarray, include_mismatch: bool
                  ) -> tuple[ProcessSample, np.ndarray, np.ndarray]:
    """Proposal draw returning ``(sample, weights, x)``.

    ``x`` are the raw standard-normal-frame draws (sigma units, before
    the PDK's -4-sigma positivity clip), which the pilot stage feeds to
    the mean-shift construction without a lossy round-trip through the
    clipped natural-unit values.
    """
    x = shift[None, :] + rng.normal(size=(size, len(GLOBAL_DIMS)))
    # log[N(x;0,I)/N(x;mu,I)] = sum_j mu_j * (mu_j - 2 x_j) / 2
    log_weights = 0.5 * np.sum(shift * (shift - 2.0 * x), axis=1)
    weights = np.exp(log_weights)
    sample = pdk.sample_from_sigma(x, rng=rng,
                                   include_mismatch=include_mismatch)
    return sample, weights, x


def shifted_sample(pdk: ProcessKit, size: int, rng: np.random.Generator,
                   shift_sigma: np.ndarray, *,
                   include_mismatch: bool = True
                   ) -> tuple[ProcessSample, np.ndarray]:
    """Draw dies from the mean-shifted proposal with their weights.

    Parameters
    ----------
    shift_sigma:
        Proposal mean in sigma units, :data:`GLOBAL_DIMS` order.  The
        zero vector reproduces the nominal distribution (weights all 1).

    Returns
    -------
    ``(sample, weights)``: a :class:`ProcessSample` of ``size`` dies and
    the per-die likelihood ratios ``N(x; 0, I) / N(x; shift, I)``.
    """
    shift = np.asarray(shift_sigma, dtype=float)
    if shift.shape != (len(GLOBAL_DIMS),):
        raise ValueError(f"shift must have shape ({len(GLOBAL_DIMS)},)")
    sample, weights, _ = _draw_shifted(pdk, size, rng, shift,
                                       include_mismatch)
    return sample, weights


def _aggregate_margin(performance: dict[str, np.ndarray],
                      specs: SpecSet) -> np.ndarray:
    """Per-sample worst normalised margin (negative = failing)."""
    worst: np.ndarray | None = None
    for spec in specs:
        scale = max(abs(spec.limit), 1e-9)
        margin = spec.margin(np.asarray(performance[spec.name])) / scale
        worst = margin if worst is None else np.minimum(worst, margin)
    return np.atleast_1d(worst)


def _mean_shift(x_pilot: np.ndarray, fail_mask: np.ndarray,
                margins: np.ndarray,
                config: ImportanceSamplingConfig) -> np.ndarray:
    """Mean-shift construction from the pilot population (sigma units)."""
    if np.any(fail_mask):
        centroid = x_pilot[fail_mask].mean(axis=0)
    else:
        # No observed failures: aim at the most marginal tail instead.
        count = max(1, int(round(config.pilot_quantile * margins.size)))
        tail = np.argsort(margins)[:count]
        centroid = x_pilot[tail].mean(axis=0)
    limit = config.max_shift_sigma
    return np.clip(centroid, -limit, limit)


def estimate_yield_importance(evaluator, specs: SpecSet,
                              pdk: ProcessKit,
                              config: ImportanceSamplingConfig | None = None
                              ) -> ImportanceSamplingEstimate:
    """Estimate a design's yield by mean-shift importance sampling.

    Parameters
    ----------
    evaluator:
        Same contract as :func:`repro.mc.engine.monte_carlo`: callable
        ``(ProcessSample) -> dict[name, (S,) array]``.
    specs:
        The specification set defining pass/fail.

    Returns
    -------
    An :class:`ImportanceSamplingEstimate`; total simulator cost is
    ``pilot_samples + n_samples`` evaluator lanes.
    """
    config = config or ImportanceSamplingConfig()
    if config.pilot_samples < 2 or config.n_samples < 2:
        raise ValueError("pilot_samples and n_samples must be >= 2")
    telemetry.counter_add("estimator.simulations",
                          config.pilot_samples + config.n_samples)

    # Pilot: plain (unshifted) draw to locate the failure direction.
    with telemetry.span("yield.importance.pilot",
                        samples=config.pilot_samples):
        pilot_rng = stream(config.seed, "is-pilot")
        zero = np.zeros(len(GLOBAL_DIMS))
        pilot_sample, _, x_pilot = _draw_shifted(
            pdk, config.pilot_samples, pilot_rng, zero,
            config.include_mismatch)
        pilot_perf = {name: np.asarray(values, dtype=float).reshape(-1)
                      for name, values in evaluator(pilot_sample).items()}
        pilot_fail = ~specs.pass_mask(pilot_perf)
        margins = _aggregate_margin(pilot_perf, specs)
        shift = _mean_shift(x_pilot, pilot_fail, margins, config)

    # Main run: shifted proposal + likelihood-ratio reweighting.
    with telemetry.span("yield.importance.main", samples=config.n_samples):
        main_rng = stream(config.seed, "is-main")
        sample, weights = shifted_sample(
            pdk, config.n_samples, main_rng, shift,
            include_mismatch=config.include_mismatch)
        performance = {name: np.asarray(values, dtype=float).reshape(-1)
                       for name, values in evaluator(sample).items()}
        fail = ~specs.pass_mask(performance)

    contributions = weights * fail
    failure_probability = float(np.mean(contributions))
    std_error = float(np.std(contributions, ddof=1)
                      / np.sqrt(config.n_samples))
    weight_sum = float(np.sum(weights))
    weight_sq = float(np.sum(weights * weights))
    ess = (weight_sum * weight_sum / weight_sq) if weight_sq > 0 else 0.0

    return ImportanceSamplingEstimate(
        yield_estimate=1.0 - failure_probability,
        std_error=std_error,
        n_samples=config.n_samples,
        pilot_samples=config.pilot_samples,
        shift_sigma=shift,
        effective_samples=ess,
        pilot_failures=int(np.count_nonzero(pilot_fail)),
        weighted_failure=failure_probability,
        confidence=config.confidence,
    )
