"""Rare-event (high-sigma) failure-probability estimation.

The estimators this library shipped so far resolve yields in the
90-99 % band: direct Monte Carlo needs ``O(1 / p_fail)`` samples to see
a single failure, and even the mean-shift importance sampler
(:mod:`repro.yieldmodel.importance`) relies on a *plain-MC pilot* to
locate the failure region -- hopeless when the failure probability is
10^-6..10^-9, where real sign-off operates (5-6 sigma).  This module
implements the standard rare-event machinery (cf. Jonsson & Lelong,
*Rare event simulation for electronic circuit design*): **multilevel
splitting with adaptive intermediate thresholds over the spec margin**,
driving an **adaptively-shifted importance sampler**.

Algorithm
---------
Work in the sigma-unit global-parameter space of the PDK
(:data:`repro.process.pdk.GLOBAL_DIMS`; every draw goes through
:meth:`~repro.process.pdk.ProcessKit.sample_from_sigma`, sharing one
definition of the sigma -> natural-unit map with every other
estimator).  Let ``g(x)`` be the aggregate normalised spec margin of a
die (negative = failing); the failure region is ``{g < 0}``.

1. **Splitting levels.**  Level ``k`` draws ``n_per_level`` dies from
   the mean-shifted proposal ``N(mu_k, I)`` (``mu_0 = 0``) and sets the
   next intermediate threshold ``L_k`` to the ``level_quantile``-th
   quantile of the level's margins (clamped at 0 from below): the
   *elite* fraction of the level that is closest to -- or inside --
   the failure region.  The next proposal mean ``mu_{k+1}`` is the
   elite centroid (elementwise-clamped at ``max_shift_sigma``).  Levels
   stop as soon as the threshold reaches 0 (the proposal now produces
   failures at ~``level_quantile`` rate) or ``max_levels`` is hit.
2. **Final estimate.**  One unbiased importance-sampled run of
   ``n_final`` dies from the last proposal ``N(mu*, I)``:
   ``p_fail = mean(w * fail)`` with the exact per-die likelihood ratio
   ``w = N(x; 0, I) / N(x; mu*, I)``.  The levels only *locate* the
   proposal -- they never contribute samples to the estimate, so the
   estimator stays unbiased however adaptive the walk was (the level
   streams and the final stream are independent).

Every level is evaluated **lane-stacked** through the
:mod:`repro.exec` backends: the level's sigma coordinates are drawn
centrally from a dedicated stream (``(seed, "rare-level-k")``), then
split into ``chunk_lanes``-bounded chunks whose evaluation -- and,
when enabled, whose per-chunk local-mismatch stream -- is independent
of where it runs.  Results are therefore **bit-identical across
serial/thread/process backends and worker counts**, like every other
estimator in the library.

The returned :class:`RareEventResult` carries the failure probability
with a confidence interval, the equivalent sigma level
``-Phi^-1(p_fail)``, the per-level acceptance ledger, and the total
simulation count -- plus :meth:`~RareEventResult.direct_mc_equivalent`,
the direct-MC sample count a matching confidence-interval half-width
would have cost, which is what the high-sigma benchmark gates on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..errors import YieldModelError
from ..exec import resolve_backend
from ..mc.sampler import child_streams, stream
from ..measure.specs import SpecSet
from ..process.pdk import GLOBAL_DIMS, ProcessKit
from .estimator import _erfinv, normal_interval, z_value
from .importance import _aggregate_margin

__all__ = ["RareEventConfig", "RareLevel", "RareEventResult",
           "estimate_yield_rare", "equivalent_sigma",
           "direct_mc_samples_for_halfwidth"]


def equivalent_sigma(p_fail: float) -> float:
    """The sigma level whose one-sided tail probability is ``p_fail``.

    ``equivalent_sigma(Phi(-beta)) == beta``: the standard "how many
    sigma is this failure rate" conversion of high-sigma sign-off.
    Clamped to the double-precision resolvable range; ``p_fail = 0``
    maps to ``+inf`` and ``p_fail >= 0.5`` to values ``<= 0``.
    """
    if not 0.0 <= p_fail <= 1.0:
        raise YieldModelError(
            f"p_fail must lie in [0, 1], got {p_fail}")
    if p_fail == 0.0:
        return math.inf
    # Phi^-1(1 - p) via erfinv; clamp the argument inside erfinv's open
    # domain (p below ~1e-17 is not resolvable in double precision).
    argument = min(1.0 - 2.0 * p_fail, 1.0 - 1e-16)
    return math.sqrt(2.0) * _erfinv(max(argument, -1.0 + 1e-16))


def direct_mc_samples_for_halfwidth(p_fail: float, half_width: float,
                                    confidence: float = 0.95) -> int:
    """Direct-MC sample count for a target CI half-width on ``p_fail``.

    The normal-approximation binomial interval has half-width
    ``z * sqrt(p (1 - p) / n)``; inverting for ``n`` gives the cost a
    plain Monte-Carlo estimate of the same precision would pay -- the
    yardstick the high-sigma benchmark measures estimator savings
    against.
    """
    if not 0.0 < p_fail < 1.0:
        raise YieldModelError(
            f"p_fail must lie in (0, 1), got {p_fail}")
    if half_width <= 0.0:
        raise YieldModelError(
            f"half_width must be positive, got {half_width}")
    z = z_value(confidence)
    return int(math.ceil(z * z * p_fail * (1.0 - p_fail)
                         / (half_width * half_width)))


@dataclass(frozen=True)
class RareEventConfig:
    """Settings of the rare-event estimator.

    Attributes
    ----------
    n_per_level:
        Dies simulated per splitting level (the threshold/shift
        adaptation budget).
    max_levels:
        Cap on splitting levels.  Reaching it before the failure region
        is flagged in the result (``levels_converged = False``) -- the
        estimate is still unbiased but its proposal may be poor.
    level_quantile:
        Elite fraction per level: each intermediate threshold is this
        quantile of the level's margins.  Smaller walks faster but
        adapts the shift on fewer elite samples.
    n_final:
        Dies of the final unbiased importance-sampled run.
    seed:
        Root seed; every level and the final run use independent
        derived streams (``"rare-level-k"`` / ``"rare-final"``).
    max_shift_sigma:
        Elementwise clamp on every proposal mean, in sigma units.
    include_mismatch:
        Carry local (Pelgrom) mismatch in every evaluation.  Mismatch
        stays at its nominal distribution, so it contributes no
        likelihood ratio (exactly as in the importance sampler).
    confidence:
        Level of the reported intervals.
    chunk_lanes:
        Lane bound per stacked evaluation chunk (fixes the chunk
        geometry and, with mismatch enabled, the per-chunk mismatch
        streams -- part of the result's identity, like
        :attr:`repro.mc.engine.MCConfig.chunk_lanes`).
    backend, workers:
        Execution backend of the chunk sweeps (never affects numeric
        results; see :mod:`repro.exec`).
    """

    n_per_level: int = 2000
    max_levels: int = 12
    level_quantile: float = 0.25
    n_final: int = 4000
    seed: int = 2008
    max_shift_sigma: float = 6.0
    include_mismatch: bool = True
    confidence: float = 0.95
    chunk_lanes: int = 4000
    backend: object = None
    workers: int = 0

    def __post_init__(self) -> None:
        if self.n_per_level < 2 or self.n_final < 2:
            raise YieldModelError(
                "n_per_level and n_final must be >= 2")
        if self.max_levels < 1:
            raise YieldModelError("max_levels must be >= 1")
        if not 0.0 < self.level_quantile < 1.0:
            raise YieldModelError(
                "level_quantile must lie in (0, 1)")
        if self.max_shift_sigma <= 0.0:
            raise YieldModelError("max_shift_sigma must be positive")
        if self.chunk_lanes < 1:
            raise YieldModelError("chunk_lanes must be >= 1")


@dataclass(frozen=True)
class RareLevel:
    """One splitting level of the adaptive walk (the simulation ledger).

    Attributes
    ----------
    index:
        Level number (0 = the unshifted pilot level).
    n_samples:
        Dies simulated at this level.
    threshold:
        Intermediate spec-margin threshold set by this level (clamped
        at 0; the failure region is margin < 0).
    acceptance:
        Fraction of the level's dies at or below the threshold (the
        elite fraction; ~``level_quantile`` by construction, exactly 0
        thresholds excepted).
    failure_fraction:
        Raw fraction of the level's dies already failing -- how close
        the proposal is to the failure region.
    shift_sigma:
        Proposal mean this level was drawn from (sigma units,
        :data:`~repro.process.pdk.GLOBAL_DIMS` order).
    """

    index: int
    n_samples: int
    threshold: float
    acceptance: float
    failure_fraction: float
    shift_sigma: np.ndarray


@dataclass
class RareEventResult:
    """A rare-event failure-probability measurement with diagnostics.

    Attributes
    ----------
    p_fail:
        Unbiased importance-sampled failure-probability estimate.
    std_error:
        Standard error of ``p_fail`` (weighted-population variance of
        the final run).
    levels:
        Per-level ledger of the adaptive walk
        (:class:`RareLevel`; ``levels[k].n_samples`` sums with
        ``n_final`` to :attr:`total_simulations`).
    shift_sigma:
        Final proposal mean (sigma units, GLOBAL_DIMS order).
    n_final:
        Final-run sample count.
    effective_samples:
        Kish effective sample size of the final weighted run.
    levels_converged:
        Whether the threshold walk reached the failure region before
        ``max_levels``.
    confidence:
        Confidence level of the reported intervals.
    """

    p_fail: float
    std_error: float
    levels: list[RareLevel] = field(default_factory=list)
    shift_sigma: np.ndarray = field(
        default_factory=lambda: np.zeros(len(GLOBAL_DIMS)))
    n_final: int = 0
    effective_samples: float = 0.0
    levels_converged: bool = True
    confidence: float = 0.95

    @property
    def yield_estimate(self) -> float:
        """The complementary yield ``1 - p_fail``."""
        return 1.0 - self.p_fail

    @property
    def n_levels(self) -> int:
        """Number of splitting levels the adaptive walk used."""
        return len(self.levels)

    @property
    def total_simulations(self) -> int:
        """Total simulator cost: every level plus the final run."""
        return sum(level.n_samples for level in self.levels) + self.n_final

    @property
    def sigma_level(self) -> float:
        """Equivalent sigma of the failure probability
        (``-Phi^-1(p_fail)``)."""
        return equivalent_sigma(self.p_fail)

    @property
    def interval(self) -> tuple[float, float]:
        """Confidence interval on the true failure probability."""
        return normal_interval(self.p_fail, self.std_error,
                               self.confidence)

    @property
    def yield_interval(self) -> tuple[float, float]:
        """Confidence interval on the true yield."""
        lo, hi = self.interval
        return 1.0 - hi, 1.0 - lo

    @property
    def acceptance_rates(self) -> list[float]:
        """Per-level elite acceptance rates, walk order."""
        return [level.acceptance for level in self.levels]

    def direct_mc_equivalent(self) -> int:
        """Direct-MC sample count for this result's CI half-width.

        What a plain Monte-Carlo estimate of the same precision would
        have cost; the savings factor is this divided by
        :attr:`total_simulations`.
        """
        lo, hi = self.interval
        return direct_mc_samples_for_halfwidth(
            self.p_fail, max((hi - lo) / 2.0, 1e-300), self.confidence)

    def describe(self) -> str:
        """Multi-line report: p_fail, sigma level, CI, level ledger."""
        lo, hi = self.interval
        shift = ", ".join(f"{name}={value:+.2f}s"
                          for name, value in zip(GLOBAL_DIMS, self.shift_sigma,
                                                 strict=True))
        lines = [
            f"rare-event p_fail {self.p_fail:.3e} "
            f"(= {self.sigma_level:.2f} sigma; "
            f"{self.confidence:.0%} CI: [{lo:.3e}, {hi:.3e}])",
            f"  final run {self.n_final} samples "
            f"(ESS {self.effective_samples:.0f}), "
            f"{self.n_levels} splitting levels, "
            f"{self.total_simulations} simulations total",
            f"  final proposal shift: {shift}",
        ]
        if not self.levels_converged:
            lines.append("  WARNING: level walk hit max_levels before "
                         "reaching the failure region")
        for level in self.levels:
            lines.append(
                f"  level {level.index}: threshold {level.threshold:.4g}, "
                f"acceptance {level.acceptance:.2%}, "
                f"failing {level.failure_fraction:.2%}, "
                f"{level.n_samples} samples")
        return "\n".join(lines)


def _chunk_margins(evaluator, specs: SpecSet, pdk: ProcessKit,
                   x: np.ndarray, *, config: RareEventConfig,
                   stage: str, progress=None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate margins + fail mask of sigma coordinates ``x``, chunked.

    The chunk sweep runs on the configured :mod:`repro.exec` backend;
    with mismatch enabled each chunk owns a private derived stream
    (``(seed, "<stage>-mismatch")`` child ``i``), so results are
    bit-identical across backends and worker counts -- the mismatch
    draw never crosses a chunk boundary.
    """
    total = x.shape[0]
    lanes = config.chunk_lanes
    n_chunks = max(1, (total + lanes - 1) // lanes)
    if config.include_mismatch:
        rngs = child_streams(config.seed, f"{stage}-mismatch", n_chunks)
    else:
        rngs = [None] * n_chunks
    bounds = [(i * lanes, min((i + 1) * lanes, total), rngs[i])
              for i in range(n_chunks)]

    def run_chunk(task):
        start, stop, rng = task
        sample = pdk.sample_from_sigma(
            x[start:stop], rng=rng,
            include_mismatch=config.include_mismatch)
        performance = {name: np.asarray(values, dtype=float).reshape(-1)
                       for name, values in evaluator(sample).items()}
        fail = ~specs.pass_mask(performance)
        margins = _aggregate_margin(performance, specs)
        return margins, fail

    backend = resolve_backend(config.backend, config.workers)
    on_done = None
    if progress is not None:
        def on_done(done, total_tasks, index):
            progress(stage, done, total_tasks)
    parts = backend.run(run_chunk, bounds, progress=on_done)
    return (np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]))


def _draw_level(rng: np.random.Generator, size: int,
                shift: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Draw sigma coordinates from ``N(shift, I)`` with their exact
    likelihood ratios ``N(x; 0, I) / N(x; shift, I)``."""
    x = shift[None, :] + rng.normal(size=(size, len(GLOBAL_DIMS)))
    log_weights = 0.5 * np.sum(shift * (shift - 2.0 * x), axis=1)
    return x, np.exp(log_weights)


def estimate_yield_rare(evaluator, specs: SpecSet, pdk: ProcessKit,
                        config: RareEventConfig | None = None, *,
                        progress=None) -> RareEventResult:
    """Estimate a design's rare-event failure probability (see module
    docstring).

    Parameters
    ----------
    evaluator:
        Same contract as :func:`repro.mc.engine.monte_carlo`: callable
        ``(ProcessSample) -> dict[name, (S,) array]``.
    specs:
        The specification set defining pass/fail (and, through the
        aggregate normalised margin, the splitting levels).
    progress:
        Optional callback ``(stage, chunks_done, chunks_total)`` fired
        per completed evaluation chunk.

    Returns
    -------
    A :class:`RareEventResult`; total simulator cost is
    ``n_levels * n_per_level + n_final`` evaluator lanes.
    """
    config = config or RareEventConfig()

    # Phase 1: multilevel splitting walk toward the failure region.
    shift = np.zeros(len(GLOBAL_DIMS))
    levels: list[RareLevel] = []
    converged = False
    for index in range(config.max_levels):
        rng = stream(config.seed, f"rare-level-{index}")
        x, _ = _draw_level(rng, config.n_per_level, shift)
        with telemetry.span("rare.level", index=index,
                            samples=config.n_per_level):
            telemetry.counter_add("estimator.simulations",
                                  config.n_per_level)
            margins, fail = _chunk_margins(
                evaluator, specs, pdk, x, config=config,
                stage=f"rare-level-{index}", progress=progress)
        threshold = max(
            float(np.quantile(margins, config.level_quantile)), 0.0)
        elite = margins <= threshold
        if not np.any(elite):
            # Degenerate margins (all identical, above the quantile):
            # fall back to the worst single die so the walk can move.
            elite = margins <= np.min(margins)
        levels.append(RareLevel(
            index=index,
            n_samples=config.n_per_level,
            threshold=threshold,
            acceptance=float(np.count_nonzero(elite) / margins.size),
            failure_fraction=float(np.count_nonzero(fail) / fail.size),
            shift_sigma=shift.copy(),
        ))
        centroid = x[elite].mean(axis=0)
        shift = np.clip(centroid, -config.max_shift_sigma,
                        config.max_shift_sigma)
        if threshold <= 0.0:
            # The proposal reaches the failure region at ~level_quantile
            # rate: the walk is done, the *next* shift aims inside it.
            converged = True
            break

    # Phase 2: one unbiased importance-sampled run from the final
    # proposal.  The final stream is independent of every level stream,
    # so the shift is fixed by independent randomness and the weighted
    # estimator below is exactly unbiased.
    rng = stream(config.seed, "rare-final")
    x, weights = _draw_level(rng, config.n_final, shift)
    with telemetry.span("rare.final", samples=config.n_final,
                        levels=len(levels)):
        telemetry.counter_add("estimator.simulations", config.n_final)
        _, fail = _chunk_margins(
            evaluator, specs, pdk, x, config=config,
            stage="rare-final", progress=progress)
    contributions = weights * fail
    p_fail = float(np.mean(contributions))
    std_error = float(np.std(contributions, ddof=1)
                      / math.sqrt(config.n_final))
    weight_sum = float(np.sum(weights))
    weight_sq = float(np.sum(weights * weights))
    ess = (weight_sum * weight_sum / weight_sq) if weight_sq > 0 else 0.0

    return RareEventResult(
        p_fail=p_fail,
        std_error=std_error,
        levels=levels,
        shift_sigma=shift,
        n_final=config.n_final,
        effective_samples=ess,
        levels_converged=converged,
        confidence=config.confidence,
    )
