"""Yield-targeted design selection -- the paper's core algorithm.

Given the combined performance + variation model (a Pareto front with
per-point variation percentages) and a required specification, section 4.4
of the paper proceeds:

1. interpolate the variation at the specified performance
   (gain > 50 dB -> dGain = 0.51 %);
2. **guard-band** the requirement by that variation:
   ``new = required + (delta/100)*required`` (50 dB -> 50.26 dB), so that
   even a worst-case (k-sigma) downward excursion still meets the original
   spec -- "this will ensure that the required 50 dB gain will be achieved
   within the process extremes";
3. interpolate the designable parameters at the guard-banded performance
   from the performance table;
4. the resulting design "will produce 100 % yield", verified by Monte
   Carlo.

:class:`CombinedYieldModel` packages steps 1-3 (Table 3 = one
:meth:`guard_band` call per spec; Table 4's design = one
:meth:`design_for_specs` call); :mod:`repro.yieldmodel.estimator` provides
step 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecificationError, YieldModelError
from ..measure.specs import Spec, SpecSet
from ..tablemodel.pareto_table import ParetoTableModel

__all__ = ["GuardBandedTarget", "YieldTargetedDesign", "CombinedYieldModel"]


@dataclass(frozen=True)
class GuardBandedTarget:
    """One row of the paper's Table 3.

    Attributes
    ----------
    name:
        Performance name.
    required:
        The original specification limit.
    variation_pct:
        Variation interpolated at the required performance [%].
    new_value:
        The guard-banded ("new performance") target.
    kind:
        Spec direction (``"ge"``/``"le"``).
    """

    name: str
    required: float
    variation_pct: float
    new_value: float
    kind: str = "ge"


@dataclass
class YieldTargetedDesign:
    """Result of yield-targeted design selection.

    Attributes
    ----------
    parameters:
        Interpolated designable parameter values (natural units).
    nominal_performance:
        The front's nominal performance at the selected point.
    targets:
        The guard-banded target per objective (Table 3 rows).
    front_position:
        The key-objective value at which the front was sampled.
    """

    parameters: dict[str, float]
    nominal_performance: dict[str, float]
    targets: dict[str, GuardBandedTarget]
    front_position: float


class CombinedYieldModel:
    """The paper's combined performance + variation behavioural model.

    Parameters
    ----------
    table:
        A :class:`ParetoTableModel` over the two objectives whose columns
        include every designable parameter and, for each objective, a
        ``"<objective><variation_suffix>"`` variation column.
    parameter_names:
        The designable parameter column names, in GA-string order (they
        become ``lp1..lpN`` in the generated Verilog-A).
    variation_suffix:
        Suffix of the variation columns (default ``"_delta_pct"``).
    ro_column:
        Optional column holding the measured output resistance per front
        point (used by the behavioural output stage).
    """

    def __init__(self, table: ParetoTableModel,
                 parameter_names, *,
                 variation_suffix: str = "_delta_pct",
                 ro_column: str | None = "ro_ohms") -> None:
        self.table = table
        self.parameter_names = tuple(parameter_names)
        self.variation_suffix = variation_suffix
        self.ro_column = ro_column if (ro_column and ro_column
                                       in table.columns) else None
        for name in self.parameter_names:
            if name not in table.columns:
                raise YieldModelError(
                    f"performance table lacks parameter column {name!r}")
        for objective in table.objective_names:
            if self.variation_column(objective) not in table.columns:
                raise YieldModelError(
                    f"performance table lacks variation column for "
                    f"{objective!r}")

    # -- naming helpers ---------------------------------------------------------
    @property
    def objective_names(self) -> tuple[str, ...]:
        """The modelled objectives, key objective first."""
        return self.table.objective_names

    @property
    def objective_aliases(self) -> tuple[str, ...]:
        """Short aliases used in the Verilog-A text (``gain_db -> gain``)."""
        return tuple(name.split("_")[0] for name in self.objective_names)

    def variation_column(self, objective: str) -> str:
        """Name of the variation column belonging to ``objective``."""
        return f"{objective}{self.variation_suffix}"

    # -- queries -----------------------------------------------------------------
    def variation_at(self, objective: str, value) -> float:
        """Interpolated variation [%] at a performance value.

        The paper's ``$table_model(gain, "gain_delta.tbl", "3E")``.  One
        deliberate deviation: when the queried performance lies *outside*
        the sampled front (a specification looser than any front point),
        the variation is clamped to the nearest sampled value instead of
        raising -- variation percentages vary slowly along the front, and
        a spec looser than the whole front must still be guard-bandable.
        Design-*parameter* lookups keep the strict no-extrapolation
        behaviour.
        """
        lo, hi = self.table.key_range(objective)
        extrapolation = "E" if lo <= value <= hi else "C"
        return float(self.table.lookup(objective, value,
                                       self.variation_column(objective),
                                       extrapolation=extrapolation))

    def guard_band(self, spec: Spec) -> GuardBandedTarget:
        """Steps 1+2: variation look-up and guard-banded target (a Table 3
        row).  ``new = required +/- (delta/100)*|required|`` with the sign
        chosen to make the requirement *harder*."""
        if spec.name not in self.objective_names:
            raise SpecificationError(
                f"spec {spec.name!r} is not a model objective "
                f"{self.objective_names}")
        variation = self.variation_at(spec.name, spec.limit)
        shift = (variation / 100.0) * abs(spec.limit)
        new_value = spec.limit + shift if spec.kind == "ge" else spec.limit - shift
        return GuardBandedTarget(spec.name, spec.limit, variation,
                                 new_value, spec.kind)

    def parameters_at(self, key_objective: str, value) -> dict[str, float]:
        """Step 3: designable parameters interpolated at a front position.

        Each interpolated parameter is clamped into the range its column
        actually spans: the cubic table can overshoot between front points
        whose parameter sets differ sharply (the performance-to-parameter
        map is many-valued), and no interpolation should ever leave the
        sampled design box.
        """
        parameters = {}
        for name in self.parameter_names:
            column = self.table.columns[name]
            raw = float(self.table.lookup(key_objective, value, name))
            parameters[name] = float(np.clip(raw, column.min(), column.max()))
        return parameters

    def performance_at(self, key_objective: str, value) -> dict[str, float]:
        """Both nominal objectives at a front position."""
        other = [n for n in self.objective_names if n != key_objective][0]
        return {
            key_objective: float(value),
            other: float(self.table.trade_off(key_objective, value)),
        }

    def nominal_ro(self) -> float:
        """Representative output resistance for the behavioural stage
        (median over the front; a plain 1 Mohm default when the table has
        no measured column)."""
        if self.ro_column is None:
            return 1e6
        return float(np.median(self.table.columns[self.ro_column]))

    def ro_at(self, key_objective: str, value) -> float:
        """Output resistance interpolated at a front position."""
        if self.ro_column is None:
            return self.nominal_ro()
        return float(self.table.lookup(key_objective, value, self.ro_column))

    # -- the headline algorithm ---------------------------------------------------
    def design_for_specs(self, specs: SpecSet, *,
                         strategy: str = "interpolate") -> YieldTargetedDesign:
        """Select the yield-targeted design for a full specification.

        Every spec is guard-banded, the feasible stretch of the front is
        intersected, and the design is read at the *cheapest* feasible
        point: the lowest key-objective value that satisfies every
        guard-banded target (the paper picks exactly its 50.26 dB gain
        point this way).

        Parameters
        ----------
        strategy:
            ``"interpolate"`` (the paper's method) reads the design
            parameters from the cubic-spline table exactly at the
            guard-banded performance.  ``"snap"`` instead takes the
            parameters of the nearest *actual* front point at or beyond
            the target -- robust on sparse fronts, where the
            performance-to-parameter map jumps between neighbouring
            points and interpolated parameters can miss the predicted
            performance (the interpolation error the paper's Table 4
            quantifies at ~1 % for its dense 1022-point front).

        Raises
        ------
        YieldModelError
            If no front point satisfies all guard-banded targets (the
            specs cannot reach 100 % yield on this topology/process).
        """
        if strategy not in ("interpolate", "snap"):
            raise YieldModelError(f"unknown strategy {strategy!r}")
        key = self.objective_names[0]
        other = self.objective_names[1]
        key_lo, key_hi = self.table.key_range(key)

        targets: dict[str, GuardBandedTarget] = {}
        lo, hi = key_lo, key_hi
        for spec in specs:
            target = self.guard_band(spec)
            targets[spec.name] = target
            if spec.name == key:
                if spec.kind == "ge":
                    lo = max(lo, target.new_value)
                else:
                    hi = min(hi, target.new_value)
            else:
                # Constraint on the second objective: map to a key-value
                # bound through the (monotone) front.
                bound = self._key_bound_for(other, target)
                if bound is None:
                    continue  # spec is loose: no constraint on this front
                side, value = bound
                if side == "max":
                    hi = min(hi, value)
                else:
                    lo = max(lo, value)

        if lo > hi:
            descriptions = ", ".join(
                f"{t.name} -> {t.new_value:.4g}" for t in targets.values())
            raise YieldModelError(
                f"guard-banded targets ({descriptions}) admit no point on "
                f"the Pareto front (key range [{key_lo:.4g}, {key_hi:.4g}]); "
                "the specification cannot reach 100% yield here")

        position = lo
        if strategy == "snap":
            keys = self.table.objectives[:, 0]
            at_or_above = keys[keys >= lo - 1e-12]
            if at_or_above.size == 0 or at_or_above.min() > hi + 1e-12:
                raise YieldModelError(
                    "no actual front point lies inside the feasible "
                    f"key interval [{lo:.4g}, {hi:.4g}]")
            position = float(at_or_above.min())

        return YieldTargetedDesign(
            parameters=self.parameters_at(key, position),
            nominal_performance=self.performance_at(key, position),
            targets=targets,
            front_position=float(position),
        )

    def _key_bound_for(self, objective: str,
                       target: GuardBandedTarget) -> tuple[str, float] | None:
        """Translate a target on the *second* objective into a bound on the
        key objective via inverse interpolation along the front."""
        values = self.table._column(objective)
        keys = self.table.objectives[:, 0]
        v_min, v_max = float(values.min()), float(values.max())
        needs_at_least = target.kind == "ge"
        if needs_at_least and target.new_value <= v_min:
            return None  # always satisfied
        if not needs_at_least and target.new_value >= v_max:
            return None
        if needs_at_least and target.new_value > v_max:
            raise YieldModelError(
                f"guard-banded target {objective} >= {target.new_value:.4g} "
                f"exceeds the front maximum {v_max:.4g}")
        if not needs_at_least and target.new_value < v_min:
            raise YieldModelError(
                f"guard-banded target {objective} <= {target.new_value:.4g} "
                f"is below the front minimum {v_min:.4g}")
        # The front is monotone: invert by interpolating key against value.
        order = np.argsort(values)
        key_at_value = float(np.interp(target.new_value, values[order],
                                       keys[order]))
        # On a genuine trade-off front the second objective is
        # anti-correlated with the key (more gain -> less phase margin).
        anti = keys[order][0] > keys[order][-1]
        if needs_at_least:
            # "objective >= target" caps the key from above when the
            # objective falls as the key rises.
            return ("max" if anti else "min", key_at_value)
        return ("min" if anti else "max", key_at_value)
