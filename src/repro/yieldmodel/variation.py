"""Variation model construction (the paper's section 3.4 output).

After Monte Carlo runs on every Pareto point, each performance function
has a population of samples per point.  The paper reduces those to a
single *variation percentage* per point per performance (Table 2's
"dGain (%)" and "dPM (%)") which later drives the guard-banding.

Definition used here (documented in DESIGN.md): the **k-sigma relative
spread**,

``delta_pct = k_sigma * std(samples) / |mean(samples)| * 100``

with ``k_sigma = 3`` by default.  Three sigma is the natural choice
because the paper's guard-banded designs then verify at "100 % yield"
with 500-sample Monte Carlo (one-sided 3-sigma pass probability is
99.87 %, i.e. < 1 expected failure in 500).
"""

from __future__ import annotations

import numpy as np

from ..errors import YieldModelError

__all__ = ["variation_percent", "variation_columns", "smooth_along_front",
           "DEFAULT_K_SIGMA"]

#: Default guard-band width in standard deviations.
DEFAULT_K_SIGMA = 3.0


def variation_percent(samples: np.ndarray, *, k_sigma: float = DEFAULT_K_SIGMA,
                      axis: int = -1) -> np.ndarray:
    """k-sigma relative variation of Monte-Carlo samples, in percent.

    Parameters
    ----------
    samples:
        Performance samples; the Monte-Carlo axis is ``axis``.
        Typical shape: ``(K, S)`` for K Pareto points x S samples.
    k_sigma:
        Guard-band width in standard deviations.

    Returns
    -------
    Variation percentages with the MC axis reduced away.

    Raises
    ------
    YieldModelError
        If any point's samples contain NaN (a failed simulation must be
        handled upstream, not silently averaged) or have a zero mean.
    """
    samples = np.asarray(samples, dtype=float)
    if np.any(np.isnan(samples)):
        raise YieldModelError(
            "variation_percent received NaN samples; drop or repair failed "
            "Monte-Carlo lanes before building the variation model")
    mean = np.mean(samples, axis=axis)
    std = np.std(samples, axis=axis, ddof=1)
    if np.any(np.abs(mean) < 1e-300):
        raise YieldModelError("performance mean is zero; relative variation "
                              "is undefined")
    return k_sigma * std / np.abs(mean) * 100.0


def smooth_along_front(values: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average along a front-ordered column.

    The per-point variation estimate from ``S`` Monte-Carlo samples has a
    relative standard error of roughly ``1/sqrt(2S)`` (~5 % at the paper's
    200 samples) that is *independent* between adjacent front points,
    while the underlying physical variation changes smoothly with the
    design point.  Averaging over a window of neighbouring points removes
    the estimator noise that otherwise makes the cubic-spline
    ``$table_model`` ring; the window shrinks near the front's ends.

    ``window <= 1`` returns the input unchanged.
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    if window <= 1 or n <= 2:
        return values.copy()
    half = min(window // 2, (n - 1) // 2)
    smoothed = np.empty(n)
    for i in range(n):
        reach = min(half, i, n - 1 - i)
        smoothed[i] = values[i - reach:i + reach + 1].mean()
    return smoothed


def variation_columns(mc_samples: dict[str, np.ndarray], *,
                      k_sigma: float = DEFAULT_K_SIGMA,
                      suffix: str = "_delta_pct",
                      smooth_window: int = 0) -> dict[str, np.ndarray]:
    """Build the variation-model columns for a Pareto table.

    Parameters
    ----------
    mc_samples:
        Mapping performance name -> ``(K, S)`` Monte-Carlo samples,
        ordered along the front.
    smooth_window:
        Moving-average window applied along the front
        (:func:`smooth_along_front`); 0 disables smoothing.

    Returns
    -------
    Mapping ``"<name><suffix>"`` -> ``(K,)`` variation percentages, ready
    to attach to a :class:`~repro.tablemodel.pareto_table.ParetoTableModel`.
    """
    columns = {}
    for name, data in mc_samples.items():
        column = variation_percent(data, k_sigma=k_sigma)
        column = smooth_along_front(column, smooth_window)
        columns[f"{name}{suffix}"] = column
    return columns
