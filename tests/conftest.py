"""Shared fixtures: a session-scoped reduced flow run and the netlist
fixture corpus.

The model-building flow takes ~1 s at reduced scale; integration tests
and the filter-flow tests share one run instead of rebuilding it.

``tests/netlists/`` holds the SPICE fixture corpus: ``good_*.cir``
files parse and lint clean, ``bad_*.cir`` files each trigger one
specific lint rule (or a parse error).  Load them through the
``netlist`` fixture so tests never hard-code paths.
"""

from pathlib import Path

import pytest

from repro.flow import reduced_config, run_model_build_flow

NETLIST_DIR = Path(__file__).parent / "netlists"


@pytest.fixture(scope="session")
def netlist():
    """Loader for the netlist corpus: ``netlist("good_divider")`` returns
    the text of ``tests/netlists/good_divider.cir`` (the ``.cir``
    extension is optional)."""
    def load(name: str) -> str:
        path = NETLIST_DIR / (name if name.endswith(".cir")
                              else f"{name}.cir")
        return path.read_text(encoding="utf-8")
    return load


@pytest.fixture(scope="session")
def netlist_path():
    """Like ``netlist`` but returns the file's :class:`~pathlib.Path`
    (for CLI tests that pass file names)."""
    def locate(name: str) -> Path:
        return NETLIST_DIR / (name if name.endswith(".cir")
                              else f"{name}.cir")
    return locate


@pytest.fixture(scope="session")
def reduced_flow():
    """A completed reduced-scale model-building flow (shared, read-only)."""
    return run_model_build_flow(reduced_config())


@pytest.fixture(scope="session")
def combined_model(reduced_flow):
    """The combined yield model from the shared reduced flow."""
    return reduced_flow.model
