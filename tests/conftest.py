"""Shared fixtures: a session-scoped reduced flow run.

The model-building flow takes ~1 s at reduced scale; integration tests
and the filter-flow tests share one run instead of rebuilding it.
"""

import pytest

from repro.flow import reduced_config, run_model_build_flow


@pytest.fixture(scope="session")
def reduced_flow():
    """A completed reduced-scale model-building flow (shared, read-only)."""
    return run_model_build_flow(reduced_config())


@pytest.fixture(scope="session")
def combined_model(reduced_flow):
    """The combined yield model from the shared reduced flow."""
    return reduced_flow.model
