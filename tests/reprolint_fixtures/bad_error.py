# reprolint fixture: MUST trigger error-contract.
# Deliberate contract violations -- excluded from ruff (see ruff.toml).


def load(path):
    try:
        return open(path).read()
    except:
        return ""


def probe(fn):
    try:
        fn()
    except Exception:
        pass
