# reprolint fixture: MUST trigger fingerprint-completeness.


class Workload:
    pass


class TrainWorkload(Workload):
    def __init__(self, n_train, chunk_lanes):
        self.n_train = n_train
        self.chunk_lanes = chunk_lanes  # never reaches config(): stale cache

    def config(self):
        return {"n_train": self.n_train}
