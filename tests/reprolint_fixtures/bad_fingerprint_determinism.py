# reprolint fixture: MUST trigger fingerprint-determinism.
import time


class Thing:
    def config(self):
        # A wall-clock read: two identical configs fingerprint apart.
        return {"stamp": time.time()}
