# reprolint fixture: MUST trigger lock-discipline.
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        # Unlocked read of a field mutated under the lock.
        return self._entries.get(key)

    def reset(self):
        # Unlocked write: a putter can lose its update entirely.
        self._entries = {}
