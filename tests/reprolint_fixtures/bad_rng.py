# reprolint fixture: MUST trigger rng-discipline.
# Deliberate contract violations -- excluded from ruff (see ruff.toml).
import numpy as np


def draw(n):
    # Naked module-level draw: depends on global stream call order.
    return np.random.normal(size=n)
