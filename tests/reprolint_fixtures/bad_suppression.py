# reprolint fixture: MUST trigger suppression-hygiene.

WORKERS = 4  # reprolint: disable=no-such-rule -- the rule id is unknown

LANES = 8  # reprolint: disable=rng-discipline
