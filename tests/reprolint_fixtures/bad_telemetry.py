# reprolint fixture: MUST trigger telemetry-hygiene.
from repro import telemetry


def work():
    telemetry.span("exec.run")  # opened outside `with`: never closed
    telemetry.counter_add("cache.hit")  # off-taxonomy (cache.hits)
