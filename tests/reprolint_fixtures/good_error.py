# reprolint fixture: error-contract passes.


def load(path):
    try:
        return open(path).read()
    except OSError:
        return ""


def probe(fn, log):
    try:
        fn()
    except Exception as exc:
        log.append(repr(exc))
        raise
