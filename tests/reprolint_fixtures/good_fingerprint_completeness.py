# reprolint fixture: fingerprint-completeness passes.


class Workload:
    pass


class TrainWorkload(Workload):
    def __init__(self, n_train, chunk_lanes, backend=None):
        self.n_train = n_train
        self.chunk_lanes = chunk_lanes
        self.backend = backend  # exec-only: exempt by contract

    def config(self):
        return {"n_train": self.n_train, "chunk_lanes": self.chunk_lanes}
