# reprolint fixture: fingerprint-determinism passes.
import json


class Thing:
    seed = 7

    def config(self):
        return {"seed": self.seed}

    def fingerprint(self):
        return json.dumps(self.config(), sort_keys=True)
