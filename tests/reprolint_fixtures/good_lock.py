# reprolint fixture: lock-discipline passes.
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._compact()

    def get(self, key):
        with self._lock:
            return self._entries.get(key)

    def _compact(self):
        # Private helper called only from under the lock: analysed as
        # lock-held (the emit()/_rotate() pattern).
        if len(self._entries) > 100:
            self._entries.clear()
