# reprolint fixture: rng-discipline passes.
import numpy as np


def draw(rng, n):
    # A generator argument keeps the caller in charge of the stream.
    return rng.normal(size=n)


def make(seed):
    return np.random.default_rng(seed)
