# reprolint fixture: a reasoned suppression of a real finding passes.
import numpy as np


def legacy(n):
    return np.random.normal(size=n)  # reprolint: disable=rng-discipline -- fixture demonstrating a sound, reasoned exemption
