# reprolint fixture: telemetry-hygiene passes.
from repro import telemetry


def work(state):
    with telemetry.span("exec.run"):
        telemetry.counter_add("exec.tasks")
        telemetry.counter_add(f"jobs.{state}")
        telemetry.gauge_set("cache.entries", 3)
