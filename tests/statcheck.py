"""Statistical ground truth + CI-derived tolerances for estimator tests.

Every stochastic assertion in this test suite should fail only when the
code is wrong, not when a seed is unlucky -- so tolerances must come
from the sampling distribution of the quantity under test, not from
hand-tuned magic constants.  This module provides:

* **Analytic fixtures** (:func:`linear_gaussian_problem`): evaluators
  whose failure probability is *exactly* ``Phi(-beta)`` by
  construction.  The metric is a normalised linear combination of the
  two threshold-voltage global parameters -- deliberately only the
  ``dvto`` dimensions, because they are the ones
  :meth:`~repro.process.pdk.ProcessKit.sample_from_sigma` maps linearly
  (the ``kp``/``cap`` dimensions carry a physical positivity clamp that
  would bend the Gaussian tail).  That makes the metric an exact
  standard normal for *any* estimator drawing through the sigma-space
  machinery, so a spec at ``beta`` has true failure probability
  ``Phi(-beta)`` out to arbitrary sigma -- the ground truth a
  high-sigma estimator can be checked against at beta = 6 where no
  direct simulation could ever be.

* **CI-derived tolerances**: half-widths of the sampling distribution
  of a proportion (:func:`binomial_halfwidth`), a mean
  (:func:`mean_halfwidth`, :func:`assert_mean_close`), a sample
  quantile (:func:`quantile_halfwidth`), and the noise-reduction ratio
  of the front smoother (:func:`smoothed_noise_ratio_bound`), all at a
  configurable confidence (default 99.9 %, so a correct estimator
  flakes ~once per thousand reruns per assertion, and tightening the
  sample count tightens the assertion automatically).
"""

from __future__ import annotations

import math

import numpy as np

from repro.measure.specs import Spec, SpecSet
from repro.process import C35
from repro.process.pdk import GLOBAL_DIMS
from repro.yieldmodel import z_value

__all__ = ["DEFAULT_CONFIDENCE", "normal_cdf", "normal_tail",
           "binomial_halfwidth", "mean_halfwidth", "assert_mean_close",
           "quantile_halfwidth", "normal_quantile_halfwidth",
           "smoothed_noise_ratio_bound", "intervals_overlap",
           "linear_gaussian_problem", "LinearGaussianProblem"]

#: Default confidence of the derived tolerances: two-sided 99.9 %, so a
#: *correct* estimator trips an assertion ~1 in 1000 reruns.
DEFAULT_CONFIDENCE = 0.999


def normal_cdf(x: float) -> float:
    """The standard normal CDF ``Phi(x)``, exact via ``erfc``."""
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


def normal_tail(beta: float) -> float:
    """Upper-tail probability ``Phi(-beta)`` = P(Z > beta).

    ``erfc`` keeps full relative precision in the far tail where
    ``1 - Phi(beta)`` would cancel catastrophically (at beta = 6 the
    answer is ~1e-9, far below float64's absolute epsilon around 1.0).
    """
    return 0.5 * math.erfc(beta / math.sqrt(2.0))


def binomial_halfwidth(p: float, n: int,
                       confidence: float = DEFAULT_CONFIDENCE) -> float:
    """CI half-width of an ``n``-sample proportion estimate of ``p``.

    The tolerance a direct-MC yield/failure estimate earns at its
    sample count: ``z * sqrt(p (1 - p) / n)``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return z_value(confidence) * math.sqrt(p * (1.0 - p) / n)


def mean_halfwidth(sigma: float, n: int,
                   confidence: float = DEFAULT_CONFIDENCE) -> float:
    """CI half-width of an ``n``-sample mean with known std ``sigma``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return z_value(confidence) * sigma / math.sqrt(n)


def assert_mean_close(values, truth: float, *,
                      confidence: float = DEFAULT_CONFIDENCE,
                      label: str = "mean") -> None:
    """Assert a sample mean is within its own CI of an exact truth.

    The tolerance is the confidence half-width computed from the
    *sample's own* standard error -- the assertion any unbiased
    estimator must satisfy with probability ``confidence``, whatever
    the distribution of ``values``.
    """
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise ValueError("need at least two values for a standard error")
    estimate = float(np.mean(values))
    sem = float(np.std(values, ddof=1)) / math.sqrt(values.size)
    tolerance = z_value(confidence) * sem
    assert abs(estimate - truth) <= tolerance, (
        f"{label} {estimate:.6g} is {abs(estimate - truth):.3g} from the "
        f"exact value {truth:.6g}, beyond the {confidence:.1%} CI "
        f"half-width {tolerance:.3g} (n={values.size})")


def quantile_halfwidth(q: float, n: int, density_at_quantile: float,
                       confidence: float = DEFAULT_CONFIDENCE) -> float:
    """Asymptotic CI half-width of an ``n``-sample ``q``-quantile.

    The sample quantile's sampling std is
    ``sqrt(q (1 - q) / n) / f(F^-1(q))`` (Bahadur); callers supply the
    density at the true quantile.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must lie in (0, 1), got {q}")
    if density_at_quantile <= 0.0:
        raise ValueError("density_at_quantile must be positive")
    return (z_value(confidence) * math.sqrt(q * (1.0 - q) / n)
            / density_at_quantile)


def normal_quantile_halfwidth(q: float, n: int,
                              confidence: float = DEFAULT_CONFIDENCE
                              ) -> float:
    """:func:`quantile_halfwidth` for a standard normal stream."""
    # Invert Phi via bisection on the exact CDF -- no scipy dependency.
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if normal_cdf(mid) < q:
            lo = mid
        else:
            hi = mid
    x_q = 0.5 * (lo + hi)
    density = math.exp(-0.5 * x_q * x_q) / math.sqrt(2.0 * math.pi)
    return quantile_halfwidth(q, n, density, confidence)


def smoothed_noise_ratio_bound(n: int, window: int,
                               confidence: float = DEFAULT_CONFIDENCE
                               ) -> float:
    """Upper bound on ``std(smooth_along_front(x, window)) / std(x)``
    for iid noise ``x`` of length ``n``.

    The smoother averages ``2*reach+1`` neighbours with
    ``reach = min(window // 2, i, n - 1 - i)``, so point ``i``'s
    variance shrinks by exactly that factor; the expected ratio is the
    RMS of the per-point reductions.  The measured ratio fluctuates
    around it with ~``n / window`` effective degrees of freedom (the
    smoothed values are window-correlated), giving the confidence
    factor.
    """
    if n < 3 or window <= 1:
        return 1.0
    half = min(window // 2, (n - 1) // 2)
    reductions = [1.0 / (2 * min(half, i, n - 1 - i) + 1)
                  for i in range(n)]
    expected = math.sqrt(sum(reductions) / n)
    dof = max(2.0, n / window)
    return expected * (1.0 + z_value(confidence) / math.sqrt(2.0 * dof))


def intervals_overlap(a: tuple[float, float],
                      b: tuple[float, float]) -> bool:
    """Whether two confidence intervals share any point."""
    return max(a[0], b[0]) <= min(a[1], b[1])


class LinearGaussianProblem:
    """An analytic fixture: metric ~ N(0, 1) exactly, spec at ``beta``.

    Attributes
    ----------
    evaluator:
        :func:`repro.mc.engine.monte_carlo`-contract evaluator whose
        single metric ``margin_sigma`` is a standard normal under the
        kit's global variation (mismatch-insensitive).
    specs:
        ``margin_sigma <= beta`` -- fails with probability exactly
        ``Phi(-beta)``.
    p_fail:
        The exact failure probability :func:`normal_tail` ``(beta)``.
    """

    def __init__(self, beta: float, weights=(0.8, 0.6), pdk=C35) -> None:
        sigmas = pdk.global_sigmas()
        w = np.asarray(weights, dtype=float)
        if w.shape != (2,) or not np.any(w):
            raise ValueError("weights must be two non-trivial floats")
        w = w / math.sqrt(float(w @ w))
        sigma_n, sigma_p = float(sigmas[0]), float(sigmas[2])

        def evaluator(sample):
            # Only the unclipped dvto dimensions: their sigma -> volt
            # map is exactly linear, so this is exactly N(0, 1).
            z = (w[0] * np.asarray(sample.dvto_n) / sigma_n
                 + w[1] * np.asarray(sample.dvto_p) / sigma_p)
            return {"margin_sigma": z}

        self.beta = float(beta)
        self.weights = w
        self.pdk = pdk
        self.evaluator = evaluator
        self.specs = SpecSet([Spec("margin_sigma", "le", float(beta))])
        self.p_fail = normal_tail(float(beta))

    @property
    def true_yield(self) -> float:
        return 1.0 - self.p_fail

    @property
    def failure_direction(self) -> np.ndarray:
        """Unit vector (sigma space, GLOBAL_DIMS order) toward failure."""
        direction = np.zeros(len(GLOBAL_DIMS))
        direction[0], direction[2] = self.weights
        return direction


def linear_gaussian_problem(beta: float, weights=(0.8, 0.6), pdk=C35
                            ) -> LinearGaussianProblem:
    """Build the analytic fixture (see :class:`LinearGaussianProblem`)."""
    return LinearGaussianProblem(beta, weights, pdk)
