"""AC analysis tests: known transfer functions, batching, linearity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ac_analysis, dc_operating_point, log_frequencies
from repro.circuit import (Capacitor, Circuit, CurrentSource, Inductor,
                           Mosfet, Resistor, VoltageSource)
from repro.process import C35


def rc_lowpass(r=1e3, c=1e-9):
    circuit = Circuit("rc")
    circuit.add(VoltageSource("V1", "in", "0", 0.0, ac_mag=1.0))
    circuit.add(Resistor("R1", "in", "out", r))
    circuit.add(Capacitor("C1", "out", "0", c))
    return circuit


class TestFrequencyGrid:
    def test_log_frequencies_endpoints(self):
        freqs = log_frequencies(10.0, 1e6, 10)
        assert freqs[0] == pytest.approx(10.0)
        assert freqs[-1] == pytest.approx(1e6)

    def test_points_per_decade(self):
        freqs = log_frequencies(1.0, 1e3, 10)
        assert freqs.size == 31

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            log_frequencies(0.0, 1e3)
        with pytest.raises(ValueError):
            log_frequencies(1e3, 1e3)


class TestRCLowpass:
    def test_matches_analytic_everywhere(self):
        r, c = 1e3, 1e-9
        circuit = rc_lowpass(r, c)
        freqs = log_frequencies(1e2, 1e8, 15)
        res = ac_analysis(circuit, freqs)
        measured = res.v("out")[0]
        analytic = 1.0 / (1.0 + 2j * np.pi * freqs * r * c)
        np.testing.assert_allclose(measured, analytic, rtol=1e-9)

    def test_phase_at_corner(self):
        r, c = 1e3, 1e-9
        f0 = 1.0 / (2 * np.pi * r * c)
        res = ac_analysis(rc_lowpass(r, c), [f0])
        assert res.phase_deg("out")[0, 0] == pytest.approx(-45.0, abs=0.01)

    def test_magnitude_db(self):
        res = ac_analysis(rc_lowpass(), [1.0])
        assert res.magnitude_db("out")[0, 0] == pytest.approx(0.0, abs=1e-5)


class TestSecondOrder:
    def test_rlc_bandpass_peak(self):
        circuit = Circuit("rlc")
        circuit.add(CurrentSource("I1", "0", "n", 0.0, ac_mag=1.0))
        circuit.add(Resistor("R1", "n", "0", 1e3))
        circuit.add(Inductor("L1", "n", "0", 1e-6))
        circuit.add(Capacitor("C1", "n", "0", 1e-9))
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        freqs = np.array([f0 / 10, f0, f0 * 10])
        res = ac_analysis(circuit, freqs)
        mags = np.abs(res.v("n")[0])
        # At resonance, L || C is open: |Z| = R.
        assert mags[1] == pytest.approx(1e3, rel=1e-6)
        assert mags[0] < mags[1] and mags[2] < mags[1]


class TestTransferAccessors:
    def test_transfer_ratio(self):
        circuit = rc_lowpass()
        circuit.add(Resistor("Rsrc", "in", "0", 1e6))  # extra load on in
        res = ac_analysis(circuit, [1e3])
        h = res.transfer("out", "in")
        assert np.abs(h[0, 0]) <= 1.0

    def test_ground_node_zero(self):
        res = ac_analysis(rc_lowpass(), [1e3])
        assert np.all(res.v("0") == 0)

    def test_unwrapped_phase_monotone_for_lowpass(self):
        res = ac_analysis(rc_lowpass(), log_frequencies(10, 1e8, 10))
        phase = res.phase_deg("out")[0]
        assert np.all(np.diff(phase) <= 1e-9)
        assert phase[-1] > -95.0  # single pole: never beyond -90


class TestLinearity:
    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(min_value=0.1, max_value=100.0))
    def test_response_scales_with_excitation(self, scale):
        base = ac_analysis(rc_lowpass(), [1e5]).v("out")[0, 0]
        circuit = rc_lowpass()
        circuit.element("V1").ac_mag = scale
        scaled = ac_analysis(circuit, [1e5]).v("out")[0, 0]
        assert scaled == pytest.approx(scale * base, rel=1e-9)

    def test_superposition(self):
        def build(ac1, ac2):
            c = Circuit("sum")
            c.add(VoltageSource("V1", "a", "0", 0.0, ac_mag=ac1))
            c.add(CurrentSource("I1", "0", "out", 0.0, ac_mag=ac2))
            c.add(Resistor("R1", "a", "out", 1e3))
            c.add(Resistor("R2", "out", "0", 1e3))
            return ac_analysis(c, [1e4]).v("out")[0, 0]

        both = build(1.0, 1e-3)
        only_v = build(1.0, 0.0)
        only_i = build(0.0, 1e-3)
        assert both == pytest.approx(only_v + only_i, rel=1e-12)


class TestWithTransistors:
    def test_cs_amplifier_gain_matches_small_signal(self):
        c = Circuit("cs")
        c.add(VoltageSource("VDD", "vdd", "0", 3.3))
        c.add(VoltageSource("VG", "g", "0", 0.9, ac_mag=1.0))
        c.add(Resistor("RD", "vdd", "d", 1e4))
        c.add(Mosfet("M1", "d", "g", "0", "0", C35.nmos, 10e-6, 1e-6))
        op = dc_operating_point(c)
        info = op.device("M1")
        expected = float(info["gm"][0]) / (1e-4 + float(info["gds"][0]))
        res = ac_analysis(c, [1e3], op=op)
        assert np.abs(res.v("d")[0, 0]) == pytest.approx(expected, rel=1e-3)

    def test_op_reuse_gives_same_answer(self):
        c = Circuit("cs")
        c.add(VoltageSource("VDD", "vdd", "0", 3.3))
        c.add(VoltageSource("VG", "g", "0", 0.9, ac_mag=1.0))
        c.add(Resistor("RD", "vdd", "d", 1e4))
        c.add(Mosfet("M1", "d", "g", "0", "0", C35.nmos, 10e-6, 1e-6))
        op = dc_operating_point(c)
        a = ac_analysis(c, [1e6], op=op).v("d")
        b = ac_analysis(c, [1e6]).v("d")
        np.testing.assert_allclose(a, b, rtol=1e-9)


class TestBatchedAC:
    def test_batch_matches_scalars(self):
        caps = np.array([1e-9, 2e-9, 5e-9])
        circuit = rc_lowpass(c=caps)
        freqs = log_frequencies(1e3, 1e7, 5)
        batched = ac_analysis(circuit, freqs)
        for lane, c in enumerate(caps):
            single = ac_analysis(rc_lowpass(c=float(c)), freqs)
            np.testing.assert_allclose(batched.v("out")[lane],
                                       single.v("out")[0], rtol=1e-12)

    def test_result_shapes(self):
        circuit = rc_lowpass(c=np.array([1e-9, 2e-9]))
        freqs = log_frequencies(1e3, 1e6, 4)
        res = ac_analysis(circuit, freqs)
        assert res.batch == 2
        assert res.v("out").shape == (2, freqs.size)
