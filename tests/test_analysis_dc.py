"""DC operating-point solver tests: correctness, homotopies, batching,
and the KCL-residual property on random networks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Assembler, NewtonOptions, dc_operating_point
from repro.analysis.mna import solve_batched
from repro.circuit import (Circuit, Diode, Mosfet, Resistor,
                           VoltageSource)
from repro.errors import SingularMatrixError
from repro.process import C35


class TestBasics:
    def test_report_is_readable(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "d", 1e3))
        c.add(Diode("D1", "d", "0"))
        op = dc_operating_point(c)
        text = op.report()
        assert "V(d)" in text and "D1" in text

    def test_floating_island_resolves_via_gmin_floor(self):
        # Like SPICE, the permanent GMIN floor keeps floating islands
        # solvable; their nodes settle to ground.
        c = Circuit("t")
        c.add(VoltageSource("V1", "a", "0", 1.0))
        c.add(Resistor("R1", "a", "0", 1e3))
        c.add(Resistor("R2", "b", "c", 1e3))  # floating island
        op = dc_operating_point(c)
        assert op.v("b")[0] == pytest.approx(0.0, abs=1e-6)

    def test_voltage_source_loop_is_singular(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "a", "0", 1.0))
        c.add(VoltageSource("V2", "a", "0", 2.0))  # conflicting loop
        c.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(SingularMatrixError):
            dc_operating_point(c)

    def test_warm_start(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "d", 1e3))
        c.add(Diode("D1", "d", "0"))
        cold = dc_operating_point(c)
        warm = dc_operating_point(c, x0=cold.x)
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-8)

    def test_source_scale(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 10.0))
        c.add(Resistor("R1", "in", "out", 1e3))
        c.add(Resistor("R2", "out", "0", 1e3))
        op = dc_operating_point(c, source_scale=0.5)
        assert op.v("out")[0] == pytest.approx(2.5)


class TestKCLProperty:
    """Random resistive ladder networks must satisfy KCL exactly."""

    @settings(max_examples=25, deadline=None)
    @given(
        resistances=st.lists(st.floats(min_value=10.0, max_value=1e6),
                             min_size=2, max_size=12),
        v_in=st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_ladder_kcl_residual(self, resistances, v_in):
        c = Circuit("ladder")
        c.add(VoltageSource("V1", "n0", "0", v_in))
        for i, r in enumerate(resistances):
            c.add(Resistor(f"Rs{i}", f"n{i}", f"n{i + 1}", r))
            c.add(Resistor(f"Rp{i}", f"n{i + 1}", "0", 2 * r))
        op = dc_operating_point(c)
        assembler = op.assembler
        G, rhs = assembler.newton_system(op.x)
        residual = np.einsum("bij,bj->bi", G, op.x) - rhs
        assert np.max(np.abs(residual)) < 1e-9 * max(1.0, abs(v_in))

    @settings(max_examples=15, deadline=None)
    @given(v_in=st.floats(min_value=0.5, max_value=20.0))
    def test_diode_chain_monotone(self, v_in):
        c = Circuit("chain")
        c.add(VoltageSource("V1", "a", "0", v_in))
        c.add(Resistor("R1", "a", "b", 1e3))
        c.add(Diode("D1", "b", "c"))
        c.add(Diode("D2", "c", "0"))
        op = dc_operating_point(c)
        va, vb, vc = op.v("a")[0], op.v("b")[0], op.v("c")[0]
        assert va >= vb >= vc >= 0


class TestHomotopies:
    def test_gmin_strategy_reported(self):
        # A hard case: back-to-back diodes with a huge series resistor and
        # a tight tolerance to provoke fallback use.  Whatever strategy
        # wins, the solution must satisfy the circuit.
        c = Circuit("hard")
        c.add(VoltageSource("V1", "in", "0", 20.0))
        c.add(Resistor("R1", "in", "a", 1e6))
        c.add(Diode("D1", "a", "b", i_s=1e-16))
        c.add(Diode("D2", "b", "0", i_s=1e-16))
        op = dc_operating_point(c)
        assert op.strategy in ("newton", "gmin", "source")
        i_chain = (20.0 - op.v("a")[0]) / 1e6
        assert i_chain > 0

    def test_ota_converges_across_parameter_extremes(self):
        from repro.designs.ota import OTAParameters, build_ota
        # All corners of the W/L box at once (batched).
        lows = [10e-6, 0.35e-6] * 4
        highs = [60e-6, 4e-6] * 4
        corners = np.array([lows, highs,
                            [10e-6, 4e-6] * 4, [60e-6, 0.35e-6] * 4])
        params = OTAParameters.from_array(corners)
        op = dc_operating_point(build_ota(params))
        # All lanes converged, outputs within the rails.
        assert np.all(op.v("out") > 0.1)
        assert np.all(op.v("out") < 3.2)


class TestBatching:
    def test_batched_matches_scalar_loop(self):
        nmos = C35.nmos
        widths = np.array([10e-6, 25e-6, 60e-6])

        def build(w):
            c = Circuit("cs")
            c.add(VoltageSource("VDD", "vdd", "0", 3.3))
            c.add(VoltageSource("VG", "g", "0", 0.9))
            c.add(Resistor("RD", "vdd", "d", 1e4))
            c.add(Mosfet("M1", "d", "g", "0", "0", nmos, w, 1e-6))
            return c

        batched = dc_operating_point(build(widths))
        for lane, w in enumerate(widths):
            single = dc_operating_point(build(float(w)))
            assert batched.v("d")[lane] == pytest.approx(
                single.v("d")[0], rel=1e-9)

    def test_converged_lanes_do_not_drift(self):
        # One easy lane, one hard lane: the easy lane's answer must equal
        # its scalar solution exactly.
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", np.array([1.0, 30.0])))
        c.add(Resistor("R1", "in", "d", 1e3))
        c.add(Diode("D1", "d", "0", i_s=1e-15))
        op = dc_operating_point(c)
        c1 = Circuit("t1")
        c1.add(VoltageSource("V1", "in", "0", 1.0))
        c1.add(Resistor("R1", "in", "d", 1e3))
        c1.add(Diode("D1", "d", "0", i_s=1e-15))
        op1 = dc_operating_point(c1)
        assert op.v("d")[0] == pytest.approx(op1.v("d")[0], rel=1e-6)


class TestSolveBatched:
    def test_stacked_solve(self):
        rng = np.random.default_rng(0)
        matrices = rng.normal(size=(5, 4, 4)) + 4 * np.eye(4)
        rhs = rng.normal(size=(5, 4))
        x = solve_batched(matrices, rhs)
        np.testing.assert_allclose(
            np.einsum("bij,bj->bi", matrices, x), rhs, atol=1e-10)

    def test_singular_raises(self):
        singular = np.zeros((1, 3, 3))
        with pytest.raises(SingularMatrixError):
            solve_batched(singular, np.ones((1, 3)))

    def test_singular_error_names_the_offending_lanes(self):
        # Satellite gate: one bad Monte-Carlo sample must not kill a
        # chunk opaquely -- the error carries exactly the singular lane
        # indices so callers can report, drop, or re-draw them.
        rng = np.random.default_rng(0)
        matrices = rng.normal(size=(5, 3, 3)) + 4 * np.eye(3)
        matrices[1] = 0.0
        matrices[4] = 0.0
        with pytest.raises(SingularMatrixError) as excinfo:
            solve_batched(matrices, np.ones((5, 3)))
        assert excinfo.value.lane_indices == (1, 4)
        assert "lane(s) 1, 4 of 5" in str(excinfo.value)

    def test_singular_lane_report_truncates_long_lists(self):
        matrices = np.zeros((12, 2, 2))
        with pytest.raises(SingularMatrixError) as excinfo:
            solve_batched(matrices, np.ones((12, 2)))
        assert excinfo.value.lane_indices == tuple(range(12))
        assert "(12 total)" in str(excinfo.value)


class TestNewtonOptions:
    def test_option_validation_not_required_but_tolerances_used(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "out", 1e3))
        c.add(Resistor("R2", "out", "0", 1e3))
        loose = dc_operating_point(
            c, options=NewtonOptions(reltol=1e-2, vabstol=1e-3))
        assert loose.v("out")[0] == pytest.approx(0.5, abs=1e-2)

    def test_assembler_reuse(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "0", 1e3))
        assembler = Assembler(c)
        op1 = dc_operating_point(c, assembler=assembler)
        op2 = dc_operating_point(c, assembler=assembler)
        assert op1.assembler is op2.assembler
