"""Transient analysis tests against analytic step/sine responses."""

import numpy as np
import pytest

from repro.analysis import transient_analysis
from repro.circuit import (Capacitor, Circuit, Diode, Inductor, Pulse,
                           Resistor, Sine, VoltageSource)


def rc_step(r=1e3, c=1e-9, v=1.0):
    circuit = Circuit("rc-step")
    circuit.add(VoltageSource("V1", "in", "0", 0.0,
                              waveform=Pulse(0.0, v, delay=0.0, rise=1e-12,
                                             fall=1e-12, width=1.0)))
    circuit.add(Resistor("R1", "in", "out", r))
    circuit.add(Capacitor("C1", "out", "0", c))
    return circuit


class TestRCStep:
    def test_exponential_charge(self):
        tau = 1e-6
        circuit = rc_step(r=1e3, c=1e-9)
        res = transient_analysis(circuit, t_stop=5 * tau, dt=tau / 100)
        v_out = res.v("out")[0]
        analytic = 1.0 - np.exp(-res.times / tau)
        np.testing.assert_allclose(v_out[1:], analytic[1:], atol=5e-3)

    def test_trapezoidal_beats_backward_euler_on_smooth_drive(self):
        # Smooth (sine) drive so integrator order shows: trapezoidal is
        # 2nd order, backward Euler 1st.  (A step input hides this: the
        # discontinuity lands mid-step and dominates both errors.)
        def build():
            c = Circuit("rc-sine")
            c.add(VoltageSource("V1", "in", "0", 0.0,
                                waveform=Sine(0.0, 1.0, 1e5)))
            c.add(Resistor("R1", "in", "out", 1e3))
            c.add(Capacitor("C1", "out", "0", 1e-9))
            return c

        t_stop, dt = 2e-5, 2e-7
        reference = transient_analysis(build(), t_stop=t_stop, dt=dt / 16,
                                       theta=0.5)
        trap = transient_analysis(build(), t_stop=t_stop, dt=dt, theta=0.5)
        be = transient_analysis(build(), t_stop=t_stop, dt=dt, theta=1.0)
        ref_final = reference.v("out")[0][-1]
        err_trap = abs(trap.v("out")[0][-1] - ref_final)
        err_be = abs(be.v("out")[0][-1] - ref_final)
        assert err_trap < err_be / 3

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            transient_analysis(rc_step(), 1e-6, 1e-8, theta=0.3)


class TestSineSteadyState:
    def test_rc_attenuation_at_corner(self):
        r, c = 1e3, 1e-9
        f0 = 1.0 / (2 * np.pi * r * c)
        circuit = Circuit("rc-sine")
        circuit.add(VoltageSource("V1", "in", "0", 0.0,
                                  waveform=Sine(0.0, 1.0, f0)))
        circuit.add(Resistor("R1", "in", "out", r))
        circuit.add(Capacitor("C1", "out", "0", c))
        periods = 8
        res = transient_analysis(circuit, t_stop=periods / f0,
                                 dt=1.0 / (f0 * 200))
        # Steady-state amplitude over the last two periods ~ 1/sqrt(2).
        tail = res.v("out")[0][-400:]
        amplitude = (tail.max() - tail.min()) / 2
        assert amplitude == pytest.approx(1 / np.sqrt(2), rel=0.02)


class TestRLTransient:
    def test_inductor_current_rise(self):
        # Series RL driven by a step: i = V/R (1 - exp(-t R/L)).
        circuit = Circuit("rl")
        circuit.add(VoltageSource("V1", "in", "0", 0.0,
                                  waveform=Pulse(0.0, 1.0, rise=1e-12,
                                                 width=1.0)))
        circuit.add(Resistor("R1", "in", "mid", 100.0))
        circuit.add(Inductor("L1", "mid", "0", 1e-3))
        tau = 1e-3 / 100.0
        res = transient_analysis(circuit, t_stop=3 * tau, dt=tau / 100)
        v_mid = res.v("mid")[0]
        # Node voltage across the inductor decays as the current builds.
        assert v_mid[1] == pytest.approx(1.0, abs=0.05)
        assert v_mid[-1] == pytest.approx(np.exp(-3.0), abs=0.01)


class TestNonlinearTransient:
    def test_diode_rectifier_clamps_negative_half(self):
        circuit = Circuit("rect")
        circuit.add(VoltageSource("V1", "in", "0", 0.0,
                                  waveform=Sine(0.0, 2.0, 1e3)))
        circuit.add(Diode("D1", "in", "out"))
        circuit.add(Resistor("RL", "out", "0", 1e3))
        res = transient_analysis(circuit, t_stop=2e-3, dt=2e-6)
        v_out = res.v("out")[0]
        assert v_out.min() > -0.1          # negative half blocked
        assert v_out.max() > 1.0           # positive half passes (~2 - 0.7)

    def test_initial_condition_is_dc_op(self):
        circuit = rc_step()
        res = transient_analysis(circuit, t_stop=1e-7, dt=1e-9)
        assert res.v("out")[0][0] == pytest.approx(0.0, abs=1e-9)
