"""Baseline (conventional flow) and CLI tests."""

import numpy as np
import pytest

from repro.baselines import DirectMCConfig, run_direct_mc_optimization
from repro.cli import main
from repro.measure import Spec, SpecSet


class TestDirectMCBaseline:
    @pytest.fixture(scope="class")
    def result(self):
        specs = SpecSet([Spec("gain_db", "ge", 45.0, "dB"),
                         Spec("pm_deg", "ge", 70.0, "deg")])
        config = DirectMCConfig(population=8, generations=3,
                                mc_samples_per_candidate=10, seed=1)
        return run_direct_mc_optimization(specs, config)

    def test_simulation_count(self, result):
        # Per generation: pop nominal + pop*mc MC; plus 500 verification.
        expected = 3 * (8 + 8 * 10) + 500
        assert result.transistor_simulations == expected

    def test_best_design_in_bounds(self, result):
        for name, value in result.best_parameters.items():
            if name.startswith("w"):
                assert 10e-6 <= value <= 60e-6
            else:
                assert 0.35e-6 <= value <= 4e-6

    def test_yield_estimate_present(self, result):
        assert 0.0 <= result.best_yield.fraction <= 1.0
        assert result.best_yield.total == 500

    def test_much_more_expensive_than_proposed_per_use(self, result,
                                                       reduced_flow):
        """The structural claim of Table 5: once the model exists, a
        yield-targeted design costs zero transistor simulations, while
        the conventional flow pays per use."""
        assert result.transistor_simulations > 0
        # Proposed flow: design_for_specs is pure interpolation.
        specs = SpecSet([Spec("gain_db", "ge",
                              float(np.mean(
                                  reduced_flow.pareto_objectives[:, 0])),
                              "dB")])
        design = reduced_flow.model.design_for_specs(specs)
        assert design.parameters  # obtained without any simulation


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "W1 (M5,M4)" in out
        assert "Gain weight" in out

    def test_build_target_filter_roundtrip(self, tmp_path, capsys):
        assert main(["build", "--reduced", "--seed", "2008",
                     "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "artefacts written" in out
        assert (tmp_path / "ota_yield_model.va").exists()

        # Target a spec that the reduced front can satisfy.
        arrays = np.load(tmp_path / "flow_result.npz")
        gains = arrays["pareto_objectives"][:, 0]
        spec_gain = float(np.percentile(gains, 50))
        assert main(["target", str(tmp_path), "--gain", f"{spec_gain:.2f}",
                     "--pm", "60"]) == 0
        out = capsys.readouterr().out
        assert "guard-banded targets" in out
        assert "um" in out

    def test_filter_command(self, tmp_path, capsys):
        assert main(["build", "--reduced", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["filter", str(tmp_path), "--samples", "60"]) == 0
        out = capsys.readouterr().out
        assert "yield" in out.lower()

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_corner_flags_parse(self):
        from repro.cli import build_parser
        # The '=' form is required for a leading-negative temperature
        # list (argparse would read a bare '-40,...' as an option).
        args = build_parser().parse_args(
            ["build", "--corners", "tm,ws", "--vdd", "3.0,3.6",
             "--temp=-40,27,125"])
        assert args.corners == "tm,ws"
        assert args.vdd == "3.0,3.6"
        assert args.temp == "-40,27,125"

    def test_corner_build_and_artifacts(self, tmp_path, capsys):
        assert main(["build", "--reduced", "--corners", "tm",
                     "--vdd", "3.3", "--temp", "27",
                     "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "corner verification" in out
        assert "designs passing" in out
        assert (tmp_path / "corner_margins.txt").exists()

    def test_bad_corner_flags_fail_fast(self, capsys):
        assert main(["build", "--reduced", "--corners", "bogus"]) == 2
        assert "unknown corner" in capsys.readouterr().err
        assert main(["build", "--reduced", "--vdd", "3.3;x"]) == 2
        assert "--vdd" in capsys.readouterr().err

    def test_streaming_flags_parse(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["build", "--adaptive-ci", "0.05",
             "--checkpoint", "mc.ckpt.npz"])
        assert args.adaptive_ci == 0.05
        assert args.checkpoint == "mc.ckpt.npz"

    def test_bad_streaming_flags_fail_fast(self, capsys):
        assert main(["build", "--reduced", "--adaptive-ci", "1.5"]) == 2
        assert "--adaptive-ci" in capsys.readouterr().err
        assert main(["build", "--reduced", "--adaptive-ci", "-0.1"]) == 2
        assert "--adaptive-ci" in capsys.readouterr().err
        # A checkpoint without the stage enabled is a configuration
        # mistake, not a silent no-op.
        assert main(["build", "--reduced",
                     "--checkpoint", "mc.ckpt.npz"]) == 2
        assert "--adaptive-ci" in capsys.readouterr().err

    def test_streaming_build_and_artifacts(self, tmp_path, capsys):
        checkpoint = tmp_path / "mc.ckpt.npz"
        assert main(["build", "--reduced", "--generations", "6",
                     "--corners", "tm", "--vdd", "3.3", "--temp", "27",
                     "--adaptive-ci", "0.15",
                     "--checkpoint", str(checkpoint),
                     "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "streaming yield verification" in out
        assert (tmp_path / "streaming_verification.txt").exists()
        assert checkpoint.exists()
