"""Behavioural OTA macromodel and Verilog-A code generation tests."""

import numpy as np
import pytest

from repro.analysis import ac_analysis, dc_operating_point, log_frequencies
from repro.behavioral import (BehavioralOTA, generate_verilog_a,
                              ota_transfer_function, write_verilog_a_package)
from repro.circuit import Capacitor, Circuit, Resistor, VoltageSource
from repro.errors import NetlistError
from repro.measure import f3db
from repro.units import from_db20


def ota_testbench(gain=316.0, ro=1e6, cl=10e-12, pole=None):
    c = Circuit("bota")
    c.add(VoltageSource("VIN", "in", "0", 0.0, ac_mag=1.0))
    c.add(BehavioralOTA("A1", "out", "in", "0", gain=gain, ro=ro,
                        parasitic_pole_hz=pole))
    c.add(Capacitor("CL", "out", "0", cl))
    return c


class TestBehavioralOTA:
    def test_open_circuit_gain(self):
        c = ota_testbench(gain=100.0)
        res = ac_analysis(c, [1.0])
        assert np.abs(res.v("out")[0, 0]) == pytest.approx(100.0, rel=1e-6)

    def test_resistive_divider_with_ro(self):
        c = Circuit("t")
        c.add(VoltageSource("VIN", "in", "0", 1.0))
        c.add(BehavioralOTA("A1", "out", "in", "0", gain=10.0, ro=1e3))
        c.add(Resistor("RL", "out", "0", 1e3))
        op = dc_operating_point(c)
        assert op.v("out")[0] == pytest.approx(5.0)  # 10 * RL/(RL+ro)

    def test_dominant_pole_location(self):
        ro, cl = 1e6, 10e-12
        c = ota_testbench(gain=316.0, ro=ro, cl=cl)
        freqs = log_frequencies(10, 1e9, 15)
        res = ac_analysis(c, freqs)
        mag = res.magnitude_db("out")
        measured = f3db(freqs, mag)[0]
        assert measured == pytest.approx(1 / (2 * np.pi * ro * cl), rel=0.05)

    def test_differential_inputs(self):
        c = Circuit("t")
        c.add(VoltageSource("VP", "p", "0", 1.0))
        c.add(VoltageSource("VN", "n", "0", 0.75))
        c.add(BehavioralOTA("A1", "out", "p", "n", gain=10.0, ro=1.0))
        c.add(Resistor("RL", "out", "0", 1e9))
        op = dc_operating_point(c)
        assert op.v("out")[0] == pytest.approx(2.5, rel=1e-6)

    def test_parasitic_pole_adds_rolloff(self):
        without = ac_analysis(ota_testbench(), [50e6])
        with_pole = ac_analysis(ota_testbench(pole=10e6), [50e6])
        assert (np.abs(with_pole.v("out")[0, 0])
                < np.abs(without.v("out")[0, 0]) / 2)

    def test_batched_parameters(self):
        gains = np.array([100.0, 316.0])
        c = ota_testbench(gain=gains)
        res = ac_analysis(c, [1.0])
        np.testing.assert_allclose(np.abs(res.v("out")[:, 0]), gains,
                                   rtol=1e-6)

    def test_from_table_db_conversion(self):
        ota = BehavioralOTA.from_table("A1", "o", "p", "n",
                                       gain_db=50.0, ro=1e6)
        assert float(np.asarray(ota.gain)) == pytest.approx(from_db20(50.0))

    def test_validation(self):
        with pytest.raises(NetlistError):
            BehavioralOTA("A1", "o", "p", "n", gain=10.0, ro=-1.0)
        with pytest.raises(NetlistError):
            BehavioralOTA("A1", "o", "p", "n", gain=10.0, ro=1.0,
                          parasitic_pole_hz=0.0)

    def test_gm_property(self):
        ota = BehavioralOTA("A1", "o", "p", "n", gain=316.0, ro=1e6)
        assert float(ota.gm) == pytest.approx(316e-6)


class TestTransferFunction:
    def test_matches_circuit_simulation(self):
        gain_db_value, ro, cl = 50.0, 1.2e6, 10e-12
        freqs = log_frequencies(10, 1e8, 10)
        closed_form = ota_transfer_function(freqs, gain_db=gain_db_value,
                                            ro=ro, cl=cl)
        circuit = ota_testbench(gain=from_db20(gain_db_value), ro=ro, cl=cl)
        simulated = ac_analysis(circuit, freqs).v("out")[0]
        np.testing.assert_allclose(np.abs(closed_form), np.abs(simulated),
                                   rtol=1e-6)

    def test_batched_output_shape(self):
        freqs = np.array([1e3, 1e6])
        h = ota_transfer_function(freqs, gain_db=np.array([40.0, 50.0]),
                                  ro=np.array([1e6, 1e6]),
                                  cl=np.array([1e-11, 1e-11]))
        assert h.shape == (2, 2)

    def test_second_pole(self):
        freqs = np.array([1e8])
        one_pole = ota_transfer_function(freqs, gain_db=50.0, ro=1e6,
                                         cl=1e-11)
        two_pole = ota_transfer_function(freqs, gain_db=50.0, ro=1e6,
                                         cl=1e-11, parasitic_pole_hz=np.array(4e7))
        assert np.abs(two_pole[0]) < np.abs(one_pole[0])


class TestCodegen:
    def test_module_text_structure(self):
        source = generate_verilog_a(
            objective_tables={"gain": "gain_delta.tbl",
                              "pm": "pm_delta.tbl"},
            parameter_tables={"lp1": "lp1_data.tbl", "lp2": "lp2_data.tbl"},
            ro_ohms=1.2e6)
        # The structural landmarks of the paper's listing.
        assert 'module ota_yield_model' in source
        assert '$table_model (gain, "gain_delta.tbl", "3E")' in source
        assert 'gain_prop = ((gain_delta/100)*gain)+gain' in source
        assert '$table_model (gain_prop,pm_prop,"lp1_data.tbl","3E,3E")' in source
        assert 'pow(10,gain_prop/20)' in source
        assert 'I(out)*ro' in source
        assert '$fopen("params.dat")' in source
        assert source.count("endmodule") == 1

    def test_requires_two_objectives(self):
        with pytest.raises(ValueError):
            generate_verilog_a(objective_tables={"gain": "g.tbl"},
                               parameter_tables={}, ro_ohms=1.0)

    def test_package_writes_all_files(self, tmp_path, combined_model):
        written = write_verilog_a_package(combined_model, tmp_path)
        assert (tmp_path / "ota_yield_model.va").exists()
        assert (tmp_path / "gain_delta.tbl").exists()
        assert (tmp_path / "pm_delta.tbl").exists()
        for i in range(1, 9):
            assert (tmp_path / f"lp{i}_data.tbl").exists()
        assert written["module"].read_text().startswith("// Combined")

    def test_emitted_tables_are_readable(self, tmp_path, combined_model):
        from repro.tablemodel import TableModel
        write_verilog_a_package(combined_model, tmp_path)
        tm = TableModel.from_file(tmp_path / "gain_delta.tbl", "3C")
        lo, hi = tm.bounds[0]
        mid = 0.5 * (lo + hi)
        assert np.isfinite(tm(mid))
