"""Content-addressed result cache tests.

Covers the canonical fingerprint (canonicalisation rules, determinism,
what is and is not in the key), the crash-safe atomic writers, and the
:class:`~repro.cache.ResultCache` store (round trips, corruption
handling, LRU eviction, operational counters).
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.cache import (CacheStats, ResultCache, atomic_write_bytes,
                         atomic_write_npz, atomic_write_text,
                         canonical_fingerprint, canonicalize,
                         fingerprint_key, library_version)
from repro.errors import ReproError


class TestCanonicalize:
    def test_scalars_pass_through(self):
        for value in (None, True, False, 0, -7, 1.5, "text"):
            assert canonicalize(value) == value

    def test_float_repr_roundtrip(self):
        value = 0.1 + 0.2  # not 0.3: canonical form must keep all bits
        assert canonicalize(value) == value
        assert json.loads(json.dumps(canonicalize(value))) == value

    def test_numpy_scalars_become_native(self):
        assert canonicalize(np.int64(5)) == 5
        assert isinstance(canonicalize(np.int64(5)), int)
        assert canonicalize(np.float64(2.5)) == 2.5

    def test_arrays_become_digests(self):
        data = np.arange(6, dtype=np.float64).reshape(2, 3)
        digest = canonicalize(data)
        assert digest.startswith("sha256:")
        assert "[2, 3]" in digest
        # Stable across identical content, distinct across dtype.
        assert canonicalize(data.copy()) == digest
        assert canonicalize(data.astype(np.float32)) != digest
        assert canonicalize(data + 1) != digest

    def test_dataclasses_and_mappings(self):
        @dataclasses.dataclass
        class Config:
            n: int
            seed: int

        assert canonicalize(Config(n=3, seed=1)) == {"n": 3, "seed": 1}
        assert canonicalize({"b": (1, 2), "a": {3, 1}}) == \
            {"b": [1, 2], "a": [1, 3]}

    def test_mapping_keys_must_be_strings(self):
        with pytest.raises(TypeError, match="string"):
            canonicalize({1: "one"})

    def test_describe_fallback(self):
        class Described:
            def describe(self):
                return "described!"

        assert canonicalize(Described()) == "described!"

    def test_opaque_values_rejected(self):
        with pytest.raises(TypeError, match="canonical"):
            canonicalize(lambda: None)


class TestCanonicalFingerprint:
    def test_deterministic_and_compact(self):
        config = {"z": 1, "a": [2.0, 3]}
        first = canonical_fingerprint("unit", config, evaluator="e")
        second = canonical_fingerprint("unit", dict(config), evaluator="e")
        assert first == second
        assert " " not in first  # compact separators
        payload = json.loads(first)
        assert payload["kind"] == "unit"
        assert payload["evaluator"] == "e"
        assert payload["version"] == library_version()

    def test_kind_and_evaluator_distinguish(self):
        config = {"n": 8}
        base = canonical_fingerprint("a", config)
        assert canonical_fingerprint("b", config) != base
        assert canonical_fingerprint("a", config, evaluator="x") != base

    def test_version_salt(self, monkeypatch):
        import repro
        before = canonical_fingerprint("unit", {"n": 1})
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        after = canonical_fingerprint("unit", {"n": 1})
        assert before != after
        assert json.loads(after)["version"] == "999.0.0"

    def test_key_is_sha256_hex(self):
        fingerprint = canonical_fingerprint("unit", {"n": 1})
        key = fingerprint_key(fingerprint)
        assert len(key) == 64
        assert int(key, 16) >= 0  # hex
        assert fingerprint_key(fingerprint) == key


class TestAtomicWriters:
    def test_bytes_and_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"
        atomic_write_text(path, "résultat")
        assert path.read_text(encoding="utf-8") == "résultat"

    def test_npz_roundtrip(self, tmp_path):
        path = tmp_path / "out.npz"
        arrays = {"a": np.arange(5), "b": np.eye(2)}
        atomic_write_npz(path, arrays)
        with np.load(path) as data:
            np.testing.assert_array_equal(data["a"], arrays["a"])
            np.testing.assert_array_equal(data["b"], arrays["b"])

    def test_failed_write_preserves_previous_content(self, tmp_path,
                                                     monkeypatch):
        # A writer that dies mid-stream must leave the previous file
        # intact and no temp debris behind.
        path = tmp_path / "ckpt.npz"
        atomic_write_npz(path, {"a": np.arange(3)})
        before = path.read_bytes()

        def exploding_savez(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk gone")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_npz(path, {"a": np.arange(99)})
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_concurrent_writers_get_distinct_temp_names(self, tmp_path):
        # The temp-name scheme is (pid, counter): two writes of the same
        # path in one process never share a temp file.
        from repro.cache.store import _tmp_path
        path = tmp_path / "same.npz"
        assert _tmp_path(path) != _tmp_path(path)
        assert _tmp_path(path).parent == path.parent


class TestResultCache:
    def fingerprint(self, n=1):
        return canonical_fingerprint("test-unit", {"n": n})

    def test_roundtrip_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        arrays = {"values": np.linspace(0.0, 1.0, 7),
                  "counts": np.array([3, 9], dtype=np.int64)}
        meta = {"describe": "seven values", "percent": 42.5}
        fingerprint = self.fingerprint()
        cache.put(fingerprint, arrays, meta)
        hit = cache.get(fingerprint)
        assert hit is not None
        assert hit.meta == meta
        assert set(hit.arrays) == {"values", "counts"}
        for name in arrays:
            np.testing.assert_array_equal(hit.arrays[name], arrays[name])
            assert hit.arrays[name].dtype == arrays[name].dtype
        assert fingerprint in cache
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_miss_on_absent_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(self.fingerprint()) is None
        assert cache.stats.misses == 1
        assert self.fingerprint() not in cache

    def test_persists_across_instances(self, tmp_path):
        fingerprint = self.fingerprint()
        ResultCache(tmp_path).put(fingerprint, {"a": np.arange(3)})
        hit = ResultCache(tmp_path).get(fingerprint)
        assert hit is not None
        np.testing.assert_array_equal(hit.arrays["a"], np.arange(3))

    def test_corrupt_entry_dropped_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fingerprint = self.fingerprint()
        cache.put(fingerprint, {"a": np.arange(3)})
        npz = tmp_path / f"{fingerprint_key(fingerprint)}.npz"
        npz.write_bytes(b"not an npz at all")
        assert cache.get(fingerprint) is None
        assert cache.stats.misses == 1
        assert not npz.exists()  # dropped, not left to fail again

    def test_fingerprint_mismatch_never_served(self, tmp_path):
        # Defence in depth: even if an entry lands under the wrong key
        # (digest collision, manual tampering), the embedded fingerprint
        # text must veto it.
        cache = ResultCache(tmp_path)
        fingerprint = self.fingerprint(1)
        cache.put(fingerprint, {"a": np.arange(3)})
        other = self.fingerprint(2)
        key_path = tmp_path / f"{fingerprint_key(other)}.npz"
        (tmp_path / f"{fingerprint_key(fingerprint)}.npz").rename(key_path)
        assert cache.get(other) is None

    def test_reserved_array_names_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="reserved"):
            ResultCache(tmp_path).put(self.fingerprint(),
                                      {"__fingerprint__": np.arange(2)})

    def test_lru_eviction_by_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        prints = [self.fingerprint(n) for n in range(3)]
        for index, fingerprint in enumerate(prints):
            cache.put(fingerprint, {"a": np.arange(4)})
            os.utime(tmp_path / f"{fingerprint_key(fingerprint)}.npz",
                     (index, index))  # deterministic LRU order
        cache.put(self.fingerprint(99), {"a": np.arange(4)})
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        # Oldest entries went first; the newest stored one survives.
        assert cache.get(prints[0]) is None
        assert cache.get(self.fingerprint(99)) is not None

    def test_hit_refreshes_lru_position(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        old, young = self.fingerprint(1), self.fingerprint(2)
        for index, fingerprint in enumerate((old, young)):
            cache.put(fingerprint, {"a": np.arange(4)})
            os.utime(tmp_path / f"{fingerprint_key(fingerprint)}.npz",
                     (index, index))
        cache.get(old)  # refresh: now the *younger* entry is LRU
        cache.put(self.fingerprint(3), {"a": np.arange(4)})
        assert cache.get(old) is not None
        assert cache.get(young) is None

    def test_byte_budget_eviction(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        first, second = self.fingerprint(1), self.fingerprint(2)
        cache.put(first, {"a": np.arange(100)})
        os.utime(tmp_path / f"{fingerprint_key(first)}.npz", (1, 1))
        cache.put(second, {"a": np.arange(100)})
        # Budget of one byte: only the just-stored (protected) entry stays.
        assert cache.keys() == [fingerprint_key(second)]
        assert cache.stats.evictions == 1

    def test_maintenance_helpers(self, tmp_path):
        cache = ResultCache(tmp_path)
        for n in range(3):
            cache.put(self.fingerprint(n), {"a": np.arange(4)})
        assert len(cache) == 3
        assert cache.total_bytes() > 0
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_validation(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path, max_bytes=0)
        with pytest.raises(ReproError):
            ResultCache(tmp_path, max_entries=0)

    def test_stats_describe(self):
        stats = CacheStats(hits=3, misses=1, stores=2, evictions=0)
        assert stats.requests == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert "75.0%" in stats.describe()
        assert CacheStats().hit_rate == 0.0

    def test_concurrent_access_exact_counters(self, tmp_path):
        # Regression: one ResultCache is shared across JobQueue worker
        # threads, but stats updates and LRU eviction used to run
        # unlocked -- concurrent hits could drop increments and racing
        # evictions could double-count.  With the internal lock, N
        # threads hammering the same instance must produce exact totals.
        import threading

        cache = ResultCache(tmp_path)
        workers, rounds = 8, 25
        prints = [self.fingerprint(n) for n in range(4)]
        for fingerprint in prints:
            cache.put(fingerprint, {"a": np.arange(8)})
        start = threading.Barrier(workers)
        errors = []

        def hammer(index):
            try:
                start.wait(timeout=10)
                for round_ in range(rounds):
                    hit = cache.get(prints[(index + round_) % len(prints)])
                    assert hit is not None
                    cache.get(self.fingerprint(1000 + index))  # miss
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert cache.stats.hits == workers * rounds
        assert cache.stats.misses == workers * rounds
        assert cache.stats.stores == len(prints)

    def test_concurrent_puts_with_eviction(self, tmp_path):
        # Eviction under contention: every put may evict; the store must
        # never crash on a concurrently-removed entry and the budget
        # must hold afterwards.
        import threading

        cache = ResultCache(tmp_path, max_entries=3)
        workers, rounds = 6, 15
        start = threading.Barrier(workers)
        errors = []

        def hammer(index):
            try:
                start.wait(timeout=10)
                for round_ in range(rounds):
                    cache.put(self.fingerprint(index * rounds + round_),
                              {"a": np.arange(16)})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(cache) <= 3
        assert cache.stats.stores == workers * rounds
