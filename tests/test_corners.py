"""PVT corner-sweep subsystem tests.

Covers the consistency promises of :mod:`repro.process.c35` (corners sit
on the 3-sigma points of the global variation model, ``tm`` is the
nominal card), the grid/sweep machinery, temperature and supply hooks,
and bit-identity of stacked sweeps across execution backends.
"""

import numpy as np
import pytest

from repro.corners import (CornerGrid, CornerVerification, PVTPoint,
                           corner_sweep, corner_sweep_points,
                           corner_sweep_sequential, default_vdds,
                           format_corner_table)
from repro.designs.ota import OTAParameters, evaluate_ota
from repro.errors import ReproError
from repro.measure.specs import Spec, SpecSet
from repro.process import C35
from repro.yieldmodel import compare_corners_to_mc

OTA_SPECS = SpecSet([Spec("gain_db", "ge", 50.0, "dB"),
                     Spec("pm_deg", "ge", 60.0, "deg")])


def ota_evaluator(params=None):
    """A (ProcessSample) -> performance evaluator for a fixed OTA."""
    params = params or OTAParameters()

    def evaluate(sample):
        tiled = OTAParameters.from_array(
            np.broadcast_to(params.to_array(), (sample.size, 8)))
        return evaluate_ota(tiled, variations=sample)

    return evaluate


class TestCornerConsistency:
    """The c35 docstring's promise: corners = 3-sigma global points."""

    def test_tm_reproduces_nominal_model_card(self):
        tm = C35.corner_def("tm")
        for model in (C35.nmos, C35.pmos):
            dvto = tm.dvto_n if model.polarity == "n" else tm.dvto_p
            kp = tm.kp_scale_n if model.polarity == "n" else tm.kp_scale_p
            assert model.with_variation(dvto=dvto, kp_scale=kp) == model

    def test_tm_sweep_equals_nominal_evaluation(self):
        grid = CornerGrid(corners=("tm",), vdds=(C35.supply,))
        result = corner_sweep(ota_evaluator(), C35, grid)
        nominal = evaluate_ota(OTAParameters())
        for name, values in result.performance.items():
            assert values == pytest.approx(np.asarray(nominal[name]))

    @pytest.mark.parametrize("corner,sign", [("wp", -1.0), ("ws", +1.0)])
    def test_wp_ws_sit_on_three_sigma_points(self, corner, sign):
        c = C35.corner_def(corner)
        gv = C35.global_variation
        assert c.dvto_n == pytest.approx(sign * 3.0 * gv.sigma_vto_n)
        assert c.dvto_p == pytest.approx(sign * 3.0 * gv.sigma_vto_p)
        assert c.kp_scale_n == pytest.approx(1.0 - sign * 3.0 * gv.sigma_kp_n)
        assert c.kp_scale_p == pytest.approx(1.0 - sign * 3.0 * gv.sigma_kp_p)

    def test_cross_corners_mix_polarities(self):
        wo, wz = C35.corner_def("wo"), C35.corner_def("wz")
        assert wo.dvto_n < 0 < wo.dvto_p
        assert wz.dvto_p < 0 < wz.dvto_n


class TestGrid:
    def test_size_and_lane_order(self):
        grid = CornerGrid(corners=("tm", "ws"), vdds=(3.0, 3.6),
                          temps_c=(27.0, 125.0))
        assert grid.size == 8
        points = grid.points()
        # Corner-major product order.
        assert points[0] == PVTPoint("tm", 3.0, 27.0)
        assert points[1] == PVTPoint("tm", 3.0, 125.0)
        assert points[2] == PVTPoint("tm", 3.6, 27.0)
        assert points[4] == PVTPoint("ws", 3.0, 27.0)
        assert grid.labels()[0] == "tm/3V/27C"

    def test_full_grid_defaults(self):
        grid = CornerGrid.full(C35)
        assert grid.corners == tuple(C35.corners)
        assert grid.vdds == default_vdds(C35)
        assert grid.size == 5 * 3 * 3

    def test_from_spec_parsing(self):
        grid = CornerGrid.from_spec(C35, "tm,ws", "3.3", "27")
        assert grid.corners == ("tm", "ws")
        assert grid.vdds == (3.3,)
        assert grid.temps_c == (27.0,)

    def test_from_spec_rejects_unknown_corner(self):
        with pytest.raises(ReproError, match="unknown corner"):
            CornerGrid.from_spec(C35, "tm,ff")

    def test_from_spec_rejects_bad_floats(self):
        with pytest.raises(ReproError, match="bad PVT grid spec"):
            CornerGrid.from_spec(C35, "tm", "3.3;3.0")

    def test_empty_axes_rejected(self):
        with pytest.raises(ReproError):
            CornerGrid(corners=(), vdds=(3.3,))
        with pytest.raises(ReproError):
            CornerGrid(corners=("tm",), vdds=())

    def test_realize_matches_corner_samples(self):
        grid = CornerGrid(corners=("wp", "ws"), vdds=(3.0,), temps_c=(85.0,))
        stacked = grid.realize(C35)
        assert stacked.size == 2
        for lane, point in enumerate(grid.points()):
            single = C35.corner_sample(point.corner, vdd=point.vdd,
                                       temp_c=point.temp_c)
            assert stacked.dvto_n[lane] == single.dvto_n[0]
            assert stacked.kp_scale_p[lane] == single.kp_scale_p[0]
            assert stacked.vdd[lane] == pytest.approx(point.vdd)
            assert stacked.temp_k[lane] == pytest.approx(point.temp_c + 273.15)


class TestTemperatureAndSupplyHooks:
    def test_temperature_shift_signs(self):
        # Hotter silicon: lower |VT| (negative NMOS-frame dvto) and less
        # mobility (kp scale below one).
        dvto, kp = C35.nmos.temperature_shift(273.15 + 125.0)
        assert dvto < 0
        assert kp < 1
        dvto_cold, kp_cold = C35.nmos.temperature_shift(273.15 - 40.0)
        assert dvto_cold > 0
        assert kp_cold > 1

    def test_nominal_temperature_is_identity(self):
        dvto, kp = C35.pmos.temperature_shift(C35.pmos.tnom)
        assert dvto == 0.0
        assert kp == 1.0

    def test_device_variation_folds_temperature(self):
        hot = C35.corner_sample("tm", temp_c=125.0)
        dvto, beta = hot.device_variation(C35.nmos, 10e-6, 1e-6)
        expected_dvto, expected_kp = C35.nmos.temperature_shift(
            125.0 + 273.15)
        assert dvto[0] == pytest.approx(expected_dvto)
        assert beta[0] == pytest.approx(expected_kp)

    def test_vdd_lane_reaches_supply_source(self):
        from repro.designs.ota import build_ota
        sample = C35.corner_sample("tm", vdd=3.0)
        circuit = build_ota(OTAParameters(), variations=sample)
        assert np.asarray(circuit.element("VDD").dc).reshape(-1)[0] == 3.0

    def test_temperature_slows_the_ota(self):
        evaluate = ota_evaluator()
        cold = evaluate(C35.corner_sample("tm", temp_c=-40.0))
        hot = evaluate(C35.corner_sample("tm", temp_c=125.0))
        assert hot["ugf_hz"][0] < cold["ugf_hz"][0]


class TestSweep:
    GRID = CornerGrid(corners=("tm", "wp", "ws"), vdds=(3.0, 3.6),
                      temps_c=(27.0,))

    def test_stacked_equals_sequential_bitwise(self):
        evaluate = ota_evaluator()
        stacked = corner_sweep(evaluate, C35, self.GRID)
        sequential = corner_sweep_sequential(evaluate, C35, self.GRID)
        for name in stacked.performance:
            np.testing.assert_array_equal(stacked.performance[name],
                                          sequential.performance[name])

    def test_bit_identical_across_backends_and_chunking(self):
        evaluate = ota_evaluator()
        reference = corner_sweep(evaluate, C35, self.GRID)
        for backend, chunk in (("serial", 2), ("thread:2", 1),
                               ("thread:3", 4), ("process:2", 2),
                               ("serial", 0)):
            other = corner_sweep(evaluate, C35, self.GRID,
                                 backend=backend, chunk_lanes=chunk)
            for name in reference.performance:
                np.testing.assert_array_equal(reference.performance[name],
                                              other.performance[name])

    def test_sweep_result_margins_and_worst_case(self):
        result = corner_sweep(ota_evaluator(), C35, self.GRID)
        margins = result.margins(OTA_SPECS)
        assert margins["gain_db"].shape == (self.GRID.size,)
        lo, lo_label, hi, hi_label = result.worst_case("gain_db")
        assert lo <= hi
        assert lo_label in self.GRID.labels()
        table = result.table(OTA_SPECS)
        assert "margin(gain_db)" in table
        assert "worst pm_deg" in table

    def test_points_sweep_shapes_and_consistency(self):
        designs = np.stack([OTAParameters().to_array(),
                            OTAParameters(w1=50e-6).to_array()])

        def evaluator(indices, repeats, sample):
            tiled = OTAParameters.from_array(
                np.repeat(designs[indices], repeats, axis=0))
            performance = evaluate_ota(tiled, variations=sample)
            return {"gain_db": performance["gain_db"]}

        swept = corner_sweep_points(evaluator, 2, C35, self.GRID)
        assert swept["gain_db"].shape == (2, self.GRID.size)
        # Each row must equal that design's own single-design sweep.
        for k, params in enumerate((OTAParameters(),
                                    OTAParameters(w1=50e-6))):
            single = corner_sweep(ota_evaluator(params), C35, self.GRID)
            np.testing.assert_array_equal(swept["gain_db"][k],
                                          single.performance["gain_db"])

    def test_points_sweep_chunked_matches_unchunked(self):
        designs = np.stack([OTAParameters(w2=w).to_array()
                            for w in (20e-6, 30e-6, 40e-6)])

        def evaluator(indices, repeats, sample):
            tiled = OTAParameters.from_array(
                np.repeat(designs[indices], repeats, axis=0))
            return {"pm_deg": evaluate_ota(tiled,
                                           variations=sample)["pm_deg"]}

        whole = corner_sweep_points(evaluator, 3, C35, self.GRID)
        chunked = corner_sweep_points(evaluator, 3, C35, self.GRID,
                                      chunk_lanes=self.GRID.size,
                                      backend="thread:2")
        np.testing.assert_array_equal(whole["pm_deg"], chunked["pm_deg"])

    def test_lane_count_mismatch_detected(self):
        def bad_evaluator(sample):
            return {"gain_db": np.zeros(sample.size + 1)}

        with pytest.raises(ReproError, match="lanes"):
            corner_sweep(bad_evaluator, C35, self.GRID)


class TestReporting:
    def test_format_corner_table_without_specs(self):
        grid = CornerGrid(corners=("tm",), vdds=(3.3,), temps_c=(27.0,))
        text = format_corner_table(grid, {"gain_db": np.array([41.0])})
        assert "tm/3.3V/27C" in text
        assert "41" in text

    def test_corner_verification_summary(self):
        grid = CornerGrid(corners=("tm", "ws"), vdds=(3.3,),
                          temps_c=(27.0,))
        samples = {"gain_db": np.array([[55.0, 49.0], [52.0, 51.0]]),
                   "pm_deg": np.array([[70.0, 72.0], [61.0, 63.0]])}
        check = CornerVerification(grid=grid, samples=samples,
                                   specs=OTA_SPECS)
        counts = check.pass_counts()
        assert counts.tolist() == [2, 1]
        best = check.best_worst_margins()
        assert best["gain_db"].tolist() == [5.0, 1.0]
        summary = check.summary_table()
        assert "2/2" in summary and "1/2" in summary
        assert "weakest PVT point: ws/3.3V/27C" in summary
        design = check.design_table(0)
        assert "margin(gain_db)" in design

    def test_compare_corners_to_mc(self):
        rng = np.random.default_rng(0)
        mc = rng.normal(0.0, 1.0, size=(2, 4000))
        corners_wide = np.array([[-5.0, 5.0], [-5.0, 5.0]])
        corners_narrow = np.array([[-1.0, 1.0], [-5.0, 5.0]])
        wide = compare_corners_to_mc({"x": corners_wide}, {"x": mc})["x"]
        assert wide.bounded.tolist() == [True, True]
        assert wide.bounded_fraction == 1.0
        narrow = compare_corners_to_mc({"x": corners_narrow}, {"x": mc})["x"]
        assert narrow.bounded.tolist() == [False, True]
        assert "1/2" in narrow.describe()

    def test_compare_requires_shared_names(self):
        from repro.errors import YieldModelError
        with pytest.raises(YieldModelError, match="share no performance"):
            compare_corners_to_mc({"a": np.zeros((1, 2))},
                                  {"b": np.zeros((1, 3))})

    def test_compare_requires_matching_design_counts(self):
        from repro.errors import YieldModelError
        with pytest.raises(YieldModelError, match="designs"):
            compare_corners_to_mc({"a": np.zeros((2, 3))},
                                  {"a": np.zeros((3, 4))})


class TestFlowIntegration:
    def test_reduced_flow_runs_corner_stage(self, reduced_flow):
        check = reduced_flow.corner_check
        assert check is not None
        assert check.grid.size == 45
        k = reduced_flow.pareto_count
        for values in check.samples.values():
            assert values.shape == (k, 45)
        assert "corner verification" in reduced_flow.ledger.stages
        assert set(check.mc_check) == {"gain_db", "pm_deg"}

    def test_flow_corner_stage_can_be_disabled(self):
        from repro.flow import reduced_config, run_model_build_flow
        import dataclasses
        config = dataclasses.replace(reduced_config(), generations=6,
                                     population=12, mc_samples=10,
                                     max_pareto_points=6, corners="none")
        result = run_model_build_flow(config)
        assert result.corner_check is None
        assert "corner verification" not in result.ledger.stages

    def test_artifacts_include_corner_margins(self, reduced_flow, tmp_path):
        import json
        from repro.flow import save_flow_artifacts
        written = save_flow_artifacts(reduced_flow, tmp_path)
        assert written["corner_margins"].exists()
        text = written["corner_margins"].read_text()
        assert "designs passing" in text
        summary = json.loads((tmp_path / "flow_summary.json").read_text())
        assert summary["corners"]["grid"]["corners"] == list(C35.corners)
        assert "mc_bounded_fraction" in summary["corners"]
        with np.load(tmp_path / "flow_result.npz") as arrays:
            assert "corner_gain_db" in arrays.files
