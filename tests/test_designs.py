"""OTA and filter design tests: parameter spaces, physics sanity,
behavioural-vs-transistor agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import dc_operating_point
from repro.designs import (DEFAULT_FILTER_SPEC, OTA_DESIGN_SPACE, FilterCaps,
                           FilterSpec, OTAParameters, build_filter_behavioral,
                           build_filter_transistor, build_ota, evaluate_filter,
                           evaluate_ota)
from repro.designs.problems import (BehavioralFilterProblem, OTAProblem,
                                    filter_margins)
from repro.errors import ReproError
from repro.process import C35


class TestDesignSpace:
    def test_table1_bounds(self):
        bounds = OTA_DESIGN_SPACE.bounds()
        assert bounds["w1"] == (10e-6, 60e-6)
        assert bounds["l1"] == (0.35e-6, 4e-6)
        assert len(bounds) == 8

    def test_table1_rows_include_weights(self):
        rows = OTA_DESIGN_SPACE.table1_rows()
        assert len(rows) == 10  # 8 parameters + 2 weights
        assert any("Gain weight" in r[0] for r in rows)
        assert any("(M5,M4)" in r[0] for r in rows)


class TestOTAParameters:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=8, max_size=8))
    def test_normalised_roundtrip(self, unit):
        unit = np.asarray(unit)
        params = OTAParameters.from_normalized(unit)
        np.testing.assert_allclose(params.to_normalized(), unit, atol=1e-12)

    def test_from_array_shape_check(self):
        with pytest.raises(ReproError):
            OTAParameters.from_array(np.ones(7))

    def test_out_of_range_normalised_rejected(self):
        with pytest.raises(ReproError):
            OTAParameters.from_normalized(np.full(8, 1.5))

    def test_tile(self):
        params = OTAParameters.from_array(
            np.array([[1e-6] * 8, [2e-6] * 8]))
        tiled = params.tile(3)
        arr = tiled.to_array()
        assert arr.shape == (6, 8)
        np.testing.assert_allclose(arr[:3, 0], 1e-6)
        np.testing.assert_allclose(arr[3:, 0], 2e-6)

    def test_batch_detection(self):
        assert OTAParameters().batch() == 1
        assert OTAParameters(w1=np.ones(4) * 1e-5).batch() == 4


class TestOTACircuit:
    def test_device_count_and_names(self):
        circuit = build_ota(OTAParameters())
        mosfets = [e.name for e in circuit if e.name.startswith("M")]
        assert sorted(mosfets) == [f"M{i}" for i in [1, 10, 2, 3, 4, 5,
                                                     6, 7, 8, 9]]

    def test_all_devices_saturated_at_nominal(self):
        circuit = build_ota(OTAParameters())
        op = dc_operating_point(circuit)
        for name in ("M1", "M2", "M3", "M4", "M5", "M6", "M7", "M9"):
            info = op.device(name)
            assert bool(info["saturated"][0]), f"{name} not saturated"

    def test_branch_currents_balance(self):
        circuit = build_ota(OTAParameters())
        op = dc_operating_point(circuit)
        i_m6 = op.device("M6")["ids"][0]
        i_m9 = op.device("M9")["ids"][0]
        # PMOS sources what NMOS sinks at the (servo-held) output.
        assert abs(i_m6 + i_m9) < 0.05 * abs(i_m9)

    def test_tail_current_mirrors_ibias(self):
        circuit = build_ota(OTAParameters(), ibias=20e-6)
        op = dc_operating_point(circuit)
        i_tail = op.device("M8")["ids"][0]
        assert i_tail == pytest.approx(20e-6, rel=0.15)  # CLM skews it a bit

    def test_output_biased_midrail(self):
        op = dc_operating_point(build_ota(OTAParameters()))
        assert 0.5 < op.v("out")[0] < 2.8


class TestOTAEvaluation:
    def test_nominal_performance_plausible(self):
        perf = evaluate_ota(OTAParameters())
        assert 35.0 < perf["gain_db"][0] < 60.0
        assert 50.0 < perf["pm_deg"][0] < 95.0
        assert perf["ugf_hz"][0] > 1e6

    def test_gain_monotone_in_output_length(self):
        lengths = np.array([0.5e-6, 1e-6, 2e-6, 4e-6])
        params = OTAParameters(l1=lengths, l2=lengths, l4=lengths)
        perf = evaluate_ota(params)
        assert np.all(np.diff(perf["gain_db"]) > 0)
        assert np.all(np.diff(perf["pm_deg"]) < 0)  # the paper's trade-off

    def test_larger_cl_improves_pm(self):
        params = OTAParameters(l1=3e-6, l2=3e-6, l4=3e-6)
        pm_small = evaluate_ota(params, cl=5e-12)["pm_deg"][0]
        pm_large = evaluate_ota(params, cl=20e-12)["pm_deg"][0]
        assert pm_large > pm_small

    def test_batch_equals_scalars(self):
        rng = np.random.default_rng(0)
        unit = rng.random((3, 8))
        batched = evaluate_ota(OTAParameters.from_normalized(unit))
        for lane in range(3):
            single = evaluate_ota(OTAParameters.from_normalized(unit[lane]))
            for key in ("gain_db", "pm_deg"):
                assert batched[key][lane] == pytest.approx(
                    single[key][0], rel=1e-9)

    def test_variations_change_performance(self):
        rng = np.random.default_rng(1)
        sample = C35.sample(8, rng)
        params = OTAParameters.from_array(
            np.broadcast_to(OTAParameters().to_array(), (8, 8)))
        perf = evaluate_ota(params, variations=sample)
        assert np.std(perf["gain_db"]) > 0.01


class TestOTAProblem:
    def test_problem_interface(self):
        problem = OTAProblem()
        assert problem.n_parameters == 8
        assert problem.objective_names() == ("gain_db", "pm_deg")
        values = problem(np.full((2, 8), 0.5))
        assert values.shape == (2, 2)
        assert problem.evaluation_count == 2


class TestFilterCaps:
    def test_bounds_mapping(self):
        low = FilterCaps.from_normalized(np.zeros(3))
        high = FilterCaps.from_normalized(np.ones(3))
        assert low.c1 == pytest.approx(FilterCaps.BOUNDS[0][0])
        assert high.c3 == pytest.approx(FilterCaps.BOUNDS[2][1])

    def test_scaled(self):
        caps = FilterCaps(10e-12, 20e-12, 1e-12).scaled(1.1)
        assert caps.c1 == pytest.approx(11e-12)

    def test_shape_check(self):
        with pytest.raises(ReproError):
            FilterCaps.from_normalized(np.zeros(4))

    def test_to_array_batched(self):
        caps = FilterCaps(np.array([1e-11, 2e-11]), 3e-11, 4e-12)
        assert caps.to_array().shape == (2, 3)


class TestFilterSpec:
    def test_mask_specs(self):
        specs = DEFAULT_FILTER_SPEC.mask_specs()
        assert specs["ripple_db"].kind == "le"
        assert specs["atten_db"].kind == "ge"

    def test_ota_specs_match_paper(self):
        specs = DEFAULT_FILTER_SPEC.ota_specs()
        assert specs["gain_db"].limit == 50.0
        assert specs["pm_deg"].limit == 60.0

    def test_mask_points(self):
        points = DEFAULT_FILTER_SPEC.mask_points()
        assert len(points) == 3


class TestFilterCircuits:
    CAPS = FilterCaps(47e-12, 33e-12, 2e-12)

    def test_behavioral_unity_dc_gain(self):
        circuit = build_filter_behavioral(self.CAPS, ota_gain_db=50.0,
                                          ota_ro=1.1e6)
        perf = evaluate_filter(circuit)
        assert perf["dcgain_db"][0] == pytest.approx(0.0, abs=0.1)

    def test_behavioral_matches_ideal_biquad_formula(self):
        # With very high OTA gain the response approaches the ideal
        # gm-C biquad: w0 = sqrt(gm1 gm2 / C1' C2) with C1' = C1 + C3.
        gain_db_val, ro = 80.0, 1e6
        gm = 10 ** (gain_db_val / 20) / ro
        caps = FilterCaps(60e-12, 30e-12, 0.5e-12)
        circuit = build_filter_behavioral(caps, ota_gain_db=gain_db_val,
                                          ota_ro=ro)
        perf = evaluate_filter(circuit)
        f0 = gm / (2 * np.pi * np.sqrt((caps.c1 + caps.c3) * caps.c2))
        # Butterworth-ish Q: f3db within ~30% of f0.
        assert perf["f3db_hz"][0] == pytest.approx(f0, rel=0.3)

    def test_transistor_close_to_behavioral(self):
        ota = OTAParameters(l1=3e-6, l2=3e-6, l3=1e-6, l4=3e-6,
                            w1=40e-6, w2=40e-6, w4=40e-6)
        ota_perf = evaluate_ota(ota)
        gain_db_val = float(ota_perf["gain_db"][0])
        gm = 2 * np.pi * float(ota_perf["ugf_hz"][0]) * 10e-12
        ro = 10 ** (gain_db_val / 20) / gm
        behavioral = evaluate_filter(build_filter_behavioral(
            self.CAPS, ota_gain_db=gain_db_val, ota_ro=ro))
        transistor = evaluate_filter(build_filter_transistor(self.CAPS, ota))
        assert behavioral["f3db_hz"][0] == pytest.approx(
            transistor["f3db_hz"][0], rel=0.15)
        assert behavioral["dcgain_db"][0] == pytest.approx(
            transistor["dcgain_db"][0], abs=0.2)

    def test_transistor_filter_with_variations(self):
        rng = np.random.default_rng(2)
        sample = C35.sample(5, rng)
        ota = OTAParameters.from_array(
            np.broadcast_to(OTAParameters().to_array(), (5, 8)))
        circuit = build_filter_transistor(self.CAPS, ota, variations=sample)
        perf = evaluate_filter(circuit)
        assert perf["f3db_hz"].shape == (5,)
        assert np.std(perf["f3db_hz"]) > 0


class TestFilterMargins:
    def test_positive_iff_feasible(self):
        spec = FilterSpec()
        perf = {"ripple_db": np.array([0.5, 1.5]),
                "atten_db": np.array([35.0, 25.0])}
        margins = filter_margins(perf, spec)
        assert np.all(margins[0] > 0)
        assert np.all(margins[1] < 0)

    def test_saturation(self):
        spec = FilterSpec()
        perf = {"ripple_db": np.array([100.0]),
                "atten_db": np.array([500.0])}
        margins = filter_margins(perf, spec)
        assert margins[0, 0] == -1.0
        assert margins[0, 1] == 1.0

    def test_nan_maps_to_worst(self):
        spec = FilterSpec()
        perf = {"ripple_db": np.array([np.nan]),
                "atten_db": np.array([np.nan])}
        np.testing.assert_array_equal(filter_margins(perf, spec),
                                      [[-1.0, -1.0]])

    def test_behavioral_problem_interface(self):
        problem = BehavioralFilterProblem(ota_gain_db=50.0, ota_ro=1.1e6)
        values = problem(np.full((3, 3), 0.5))
        assert values.shape == (3, 2)
        assert np.all(values >= -1.0) and np.all(values <= 1.0)
