"""Per-element behavioural tests against hand-solvable circuits."""

import numpy as np
import pytest

from repro.analysis import ac_analysis, dc_operating_point
from repro.circuit import (CCCS, CCVS, PWL, VCCS, VCVS, Capacitor,
                           CurrentSource, Diode, Inductor, Pulse, Resistor,
                           Sine, VoltageSource)
from repro.circuit.netlist import Circuit


def solve(circuit):
    return dc_operating_point(circuit)


class TestResistorNetworks:
    def test_divider(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 10.0))
        c.add(Resistor("R1", "in", "out", 1e3))
        c.add(Resistor("R2", "out", "0", 3e3))
        op = solve(c)
        assert op.v("out")[0] == pytest.approx(7.5)

    def test_parallel_resistors(self):
        c = Circuit("t")
        c.add(CurrentSource("I1", "0", "n", 1e-3))
        c.add(Resistor("R1", "n", "0", 2e3))
        c.add(Resistor("R2", "n", "0", 2e3))
        op = solve(c)
        assert op.v("n")[0] == pytest.approx(1.0)

    def test_wheatstone_bridge_balanced(self):
        c = Circuit("bridge")
        c.add(VoltageSource("V1", "top", "0", 5.0))
        c.add(Resistor("R1", "top", "a", 1e3))
        c.add(Resistor("R2", "a", "0", 1e3))
        c.add(Resistor("R3", "top", "b", 2e3))
        c.add(Resistor("R4", "b", "0", 2e3))
        c.add(Resistor("Rg", "a", "b", 5e2))
        op = solve(c)
        assert op.v("a")[0] == pytest.approx(op.v("b")[0])


class TestSources:
    def test_voltage_source_branch_current(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "n", "0", 10.0))
        c.add(Resistor("R1", "n", "0", 1e3))
        op = solve(c)
        # SPICE convention: current flows plus -> through source -> minus,
        # so a sourcing supply shows -10 mA.
        assert op.branch_current("V1")[0] == pytest.approx(-0.01)

    def test_current_source_direction(self):
        c = Circuit("t")
        c.add(CurrentSource("I1", "0", "n", 1e-3))  # pushes into n
        c.add(Resistor("R1", "n", "0", 1e3))
        op = solve(c)
        assert op.v("n")[0] == pytest.approx(1.0)

    def test_series_voltage_sources(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "a", "0", 3.0))
        c.add(VoltageSource("V2", "b", "a", 2.0))
        c.add(Resistor("R1", "b", "0", 1e3))
        op = solve(c)
        assert op.v("b")[0] == pytest.approx(5.0)

    def test_waveform_value_at(self):
        src = VoltageSource("V1", "a", "0", 1.0,
                            waveform=Pulse(0.0, 5.0, delay=1e-6,
                                           rise=1e-7, fall=1e-7, width=1e-6))
        assert src.value_at(0.0) == 0.0
        assert src.value_at(1.05e-7 + 1e-6) == pytest.approx(5.0, abs=0.5)
        assert src.value_at(1.5e-6) == 5.0

    def test_sine_waveform(self):
        wave = Sine(vo=1.0, va=0.5, freq=1e3)
        assert wave(0.0) == pytest.approx(1.0)
        assert wave(0.25e-3) == pytest.approx(1.5)

    def test_pwl_waveform(self):
        wave = PWL([(0, 0), (1e-6, 1.0), (2e-6, 0.5)])
        assert wave(0.5e-6) == pytest.approx(0.5)
        assert wave(5e-6) == pytest.approx(0.5)  # holds last value

    def test_pwl_needs_two_points(self):
        from repro.errors import NetlistError
        with pytest.raises(NetlistError):
            PWL([(0, 1)])


class TestReactiveElements:
    def test_capacitor_open_in_dc(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 10.0))
        c.add(Resistor("R1", "in", "out", 1e3))
        c.add(Capacitor("C1", "out", "0", 1e-9))
        op = solve(c)
        assert op.v("out")[0] == pytest.approx(10.0)  # no DC current

    def test_inductor_short_in_dc(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 10.0))
        c.add(Resistor("R1", "in", "mid", 1e3))
        c.add(Inductor("L1", "mid", "out", 1e-3))
        c.add(Resistor("R2", "out", "0", 1e3))
        op = solve(c)
        assert op.v("mid")[0] == pytest.approx(op.v("out")[0])
        assert op.v("out")[0] == pytest.approx(5.0)

    def test_lc_resonance(self):
        # Series RLC driven at resonance: inductor and capacitor voltages
        # cancel, the full drive appears across R.
        c = Circuit("rlc")
        c.add(VoltageSource("V1", "in", "0", 0.0, ac_mag=1.0))
        c.add(Resistor("R1", "in", "a", 50.0))
        c.add(Inductor("L1", "a", "b", 1e-6))
        c.add(Capacitor("C1", "b", "0", 1e-9))
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        res = ac_analysis(c, [f0])
        v_r = 1.0 - res.v("a")[0, 0]
        assert abs(v_r) == pytest.approx(1.0, rel=1e-6)


class TestControlledSources:
    def test_vcvs(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 2.0))
        c.add(VCVS("E1", "out", "0", "in", "0", 5.0))
        c.add(Resistor("RL", "out", "0", 1e3))
        op = solve(c)
        assert op.v("out")[0] == pytest.approx(10.0)

    def test_vccs(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 2.0))
        c.add(VCCS("G1", "0", "out", "in", "0", 1e-3))  # 2mA into out
        c.add(Resistor("RL", "out", "0", 1e3))
        op = solve(c)
        assert op.v("out")[0] == pytest.approx(2.0)

    def test_cccs(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "0", 1e3))  # 1mA through V1
        c.add(CCCS("F1", "0", "out", "V1", 2.0))
        c.add(Resistor("RL", "out", "0", 1e3))
        op = solve(c)
        # Branch current of V1 is -1mA (sourcing); F multiplies it.
        assert op.v("out")[0] == pytest.approx(-2.0)

    def test_ccvs(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "0", 1e3))
        c.add(CCVS("H1", "out", "0", "V1", 1e3))
        c.add(Resistor("RL", "out", "0", 1e6))
        op = solve(c)
        assert op.v("out")[0] == pytest.approx(-1.0, rel=1e-3)

    def test_control_source_must_be_voltage_source(self):
        from repro.errors import NetlistError
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "0", 1e3))
        c.add(CCCS("F1", "0", "out", "R1", 2.0))
        c.add(Resistor("RL", "out", "0", 1e3))
        with pytest.raises(NetlistError, match="branch current"):
            solve(c)


class TestDiode:
    def test_forward_drop(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "d", 1e3))
        c.add(Diode("D1", "d", "0"))
        op = solve(c)
        assert 0.5 < op.v("d")[0] < 0.8

    def test_reverse_blocking(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", -5.0))
        c.add(Resistor("R1", "in", "d", 1e3))
        c.add(Diode("D1", "d", "0"))
        op = solve(c)
        # Reverse: essentially no current, node follows the source.
        assert op.v("d")[0] == pytest.approx(-5.0, abs=1e-3)

    def test_current_matches_shockley(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 3.0))
        c.add(Resistor("R1", "in", "d", 1e4))
        c.add(Diode("D1", "d", "0", i_s=1e-14))
        op = solve(c)
        vd = op.v("d")[0]
        i_r = (3.0 - vd) / 1e4
        i_d = 1e-14 * (np.exp(vd / 0.025852) - 1.0)
        assert i_d == pytest.approx(i_r, rel=1e-4)

    def test_op_info(self):
        c = Circuit("t")
        c.add(VoltageSource("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "d", 1e3))
        c.add(Diode("D1", "d", "0"))
        op = solve(c)
        info = op.device("D1")
        assert info["id"][0] > 0
        assert info["gd"][0] > 0
